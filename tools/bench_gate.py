#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the BENCH_*.json files a CI run produced against committed
baselines (bench/baselines/) and fails on large throughput
regressions, so the perf trajectory the benches track is a gate, not
just an uploaded artifact.

Metrics are gated by direction. Higher-is-better metrics (throughput,
speedup and gain ratios, selected by key pattern) fail when they drop
below (1 - margin) of baseline. A per-file direction map additionally
gates selected lower-is-better metrics (tail latencies in the
overload bench); those fail when they rise above 1 / (1 - margin) of
baseline — the same multiplicative band, mirrored, so both directions
tolerate the same host-speed spread. Everything else (counters,
configuration echoes, ungated latencies) is informational. The margin
is deliberately generous (default: fail only below 65% of baseline)
because baselines are recorded on a slower reference host and CI
runners are noisy — the gate exists to catch real regressions (a
disabled fast path, a serialization bug), not 10% jitter.

A result file with no committed baseline WARNS and passes: the first
PR that adds a new bench stays green, and the warning reminds the
author to commit a baseline with --update on the reference host.

Usage:
  tools/bench_gate.py --results build [--baselines bench/baselines]
                      [--margin 0.35] [--update]
                      [--file-margin BENCH_x.json=0.5 ...]

  --update rewrites the baselines from the current results instead of
  comparing (run on the reference host after an intentional change).

  --file-margin overrides the margin for one baseline file
  (repeatable) — e.g. a serving bench whose end-to-end numbers are
  noisier on a single-core host than the kernel microbenches.
"""

import argparse
import json
import pathlib
import shutil
import sys

# Key substrings marking a numeric leaf as a gated, higher-is-better
# metric. Everything else (latencies, counts, phi fits, worker
# counts) is informational.
GATED_PATTERNS = (
    "rps",
    "mpix_s",
    "speedup",
    "gain",
    "vs_serial",
    "gflops",
    "gf_s",
)

# Per-file direction map: key substrings gated LOWER-is-better in
# that file only. Kept per-file so adding a new bench never silently
# starts gating latency fields of the existing ones. Checked before
# GATED_PATTERNS, so a file-scoped entry wins if a key matches both.
LOWER_GATED_FILES = {
    "BENCH_overload.json": ("p99_ms",),
    "BENCH_watchdog.json": ("p99_ms", "stall"),
    "BENCH_cache.json": ("bytes_read", "p99_ms"),
    "BENCH_quant.json": ("p99_ms",),
}

# Built-in per-file margins (CLI --file-margin overrides). The chaos
# harnesses inject latency faults on purpose, so their goodput and
# tail numbers swing more than the fault-free benches on a noisy
# runner.
BUILTIN_FILE_MARGINS = {
    "BENCH_faults.json": 0.5,
    "BENCH_overload.json": 0.5,
    "BENCH_watchdog.json": 0.5,
    "BENCH_cache.json": 0.5,
    "BENCH_quant.json": 0.5,
}


def leaf_direction(fname: str, key: str):
    """'up', 'down', or None (ungated) for a dotted metric path."""
    k = key.lower()
    if any(p in k for p in LOWER_GATED_FILES.get(fname, ())):
        return "down"
    if any(p in k for p in GATED_PATTERNS):
        return "up"
    return None


def numeric_leaves(node, fname: str, prefix=""):
    """Flatten a JSON tree into {dotted.path: (float, direction)} for
    gated keys.

    The whole dotted path is matched, not just the leaf: e.g.
    batch_item_speedup.b4 is gated through its parent key.
    """
    out = {}
    if isinstance(node, dict):
        for k, v in node.items():
            out.update(numeric_leaves(
                v, fname, f"{prefix}.{k}" if prefix else k))
    elif isinstance(node, list):
        for i, v in enumerate(node):
            out.update(numeric_leaves(v, fname, f"{prefix}[{i}]"))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        direction = leaf_direction(fname, prefix)
        if direction:
            out[prefix] = (float(node), direction)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", required=True, type=pathlib.Path,
                    help="directory holding the fresh BENCH_*.json")
    ap.add_argument("--baselines", type=pathlib.Path,
                    default=pathlib.Path("bench/baselines"))
    ap.add_argument("--margin", type=float, default=0.35,
                    help="allowed fractional regression (0.35 = fail "
                         "below 65%% of baseline)")
    ap.add_argument("--file-margin", action="append", default=[],
                    metavar="FILE=MARGIN",
                    help="per-file margin override, e.g. "
                         "BENCH_serving.json=0.5 (repeatable)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baselines from results")
    args = ap.parse_args()

    file_margins = dict(BUILTIN_FILE_MARGINS)
    for spec in args.file_margin:
        name, sep, value = spec.partition("=")
        if not sep:
            print(f"bad --file-margin '{spec}' (want FILE=MARGIN)",
                  file=sys.stderr)
            return 2
        try:
            file_margins[name] = float(value)
        except ValueError:
            print(f"bad --file-margin value in '{spec}'",
                  file=sys.stderr)
            return 2

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if args.update:
        args.baselines.mkdir(parents=True, exist_ok=True)
        updated = 0
        for result in sorted(args.results.glob("BENCH_*.json")):
            shutil.copy(result, args.baselines / result.name)
            print(f"baseline updated: {result.name}")
            updated += 1
        if not updated:
            print(f"no BENCH_*.json found in {args.results}",
                  file=sys.stderr)
            return 1
        return 0

    if not baselines:
        print(f"no baselines in {args.baselines}", file=sys.stderr)
        return 1

    # A fresh bench with no committed baseline must not fail the PR
    # that introduces it — warn so a baseline gets committed soon.
    warnings = []
    known = {b.name for b in baselines}
    for result in sorted(args.results.glob("BENCH_*.json")):
        if result.name not in known:
            warnings.append(
                f"{result.name}: no committed baseline — skipped "
                f"(record one with --update on the reference host)")

    failures = []
    rows = []
    for base_path in baselines:
        margin = file_margins.get(base_path.name, args.margin)
        result_path = args.results / base_path.name
        if not result_path.exists():
            failures.append(f"{base_path.name}: result file missing "
                            f"(bench not run or emission broken)")
            continue
        base = numeric_leaves(json.loads(base_path.read_text()),
                              base_path.name)
        got = numeric_leaves(json.loads(result_path.read_text()),
                             base_path.name)
        for key, (baseline, direction) in sorted(base.items()):
            if baseline <= 0:
                continue  # nothing meaningful to compare against
            if key not in got:
                failures.append(
                    f"{base_path.name}: metric '{key}' disappeared")
                continue
            value = got[key][0]
            ratio = value / baseline
            if direction == "up":
                ok = ratio >= 1.0 - margin
            else:  # lower-is-better: mirrored multiplicative band
                ok = ratio <= 1.0 / (1.0 - margin)
            rows.append((base_path.name, key, direction, baseline,
                         value, ratio, ok))
            if not ok:
                what = ("regressed to" if direction == "up"
                        else "grew to")
                failures.append(
                    f"{base_path.name}: {key} {what} "
                    f"{value:.4g} ({ratio:.0%} of baseline "
                    f"{baseline:.4g}, margin {margin:.0%})")

    width = max((len(r[1]) for r in rows), default=20)
    print(f"{'file':<22} {'metric':<{width}} {'dir':>4} "
          f"{'baseline':>10} {'result':>10} {'ratio':>7}")
    for fname, key, direction, baseline, value, ratio, ok in rows:
        flag = "" if ok else "  << REGRESSION"
        arrow = "up" if direction == "up" else "down"
        print(f"{fname:<22} {key:<{width}} {arrow:>4} "
              f"{baseline:>10.4g} {value:>10.4g} {ratio:>6.0%}{flag}")

    for w in warnings:
        print(f"WARNING: {w}")

    if failures:
        print(f"\nbench gate FAILED ({len(failures)}):",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed: {len(rows)} metrics within margin "
          f"(default {args.margin:.0%}"
          + (f", {len(file_margins)} per-file override(s)"
             if file_margins else "")
          + f"), {len(warnings)} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
