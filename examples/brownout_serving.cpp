/**
 * @file
 * Overload control plane walkthrough: the staged serving engine rides
 * through a storage storm and back out, with every defense visible —
 * the circuit breaker trips and heals, hedged reads race the injected
 * latency tail, and the brownout controller sheds quality (scan
 * depth, then resolution, then admission) and recovers.
 *
 * Waves of requests are served across three phases:
 *
 *   clean     the store behaves; everything is Done at full quality;
 *   storm     ~60% of fetches fail and the rest drag a latency tail:
 *             the breaker opens (fail-fast instead of backoff), the
 *             brownout tier climbs to admission rejection;
 *   recovery  the store heals: half-open probes close the breaker,
 *             the tier steps back down, terminals return to Done.
 *
 * The printed per-wave table shows the brownout tier, breaker state,
 * and terminal mix shifting as the control plane reacts. Terminal
 * conservation (admitted == done + degraded + failed + expired +
 * shed + rejected) is checked at the end.
 *
 * Build & run:  ./build/examples/brownout_serving
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "storage/breaker.hh"
#include "storage/fault_injection.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres example — brownout serving through a storage "
                "storm\n\n");

    // --- Stored objects + trained scale model ----------------------
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 192;
    spec.mean_width = 192;
    SyntheticDataset ds(spec, 32, 17);
    ScaleModelOptions sopts;
    sopts.epochs = 8;
    ScaleModel scale({112, 168, 224}, sopts);
    scale.train(ds, 0, 24, BackboneArch::ResNet18, {0.75}, 96);

    constexpr int kObjects = 6;
    ObjectStore store;
    for (int i = 0; i < kObjects; ++i)
        store.put(static_cast<uint64_t>(i),
                  encodeProgressive(ds.renderAt(i, 224)));
    const int num_scans = store.peek(0).numScans();

    // --- Phase-switching fault script ------------------------------
    // 0 = clean, 1 = storm. The schedule is a pure function of the
    // fetch context, so within a phase it replays deterministically.
    std::atomic<int> phase{0};
    FaultPolicy policy;
    policy.script = [&phase](const FaultContext &ctx) {
        FaultDecision d;
        if (phase.load(std::memory_order_relaxed) != 1)
            return d; // clean phases are fully transparent
        const uint64_t h = ctx.id * 2654435761ull +
                           static_cast<uint64_t>(ctx.attempt) * 40503ull +
                           static_cast<uint64_t>(ctx.from_scans) * 97ull;
        const uint64_t roll = h % 10;
        if (roll < 6)
            d.fail = true; // transient failure, nothing delivered
        else if (roll < 8)
            d.delay_s = 8e-3; // the tail the hedge races
        return d;
    };
    FaultyObjectStore faulty(store, policy);

    BreakerConfig bcfg;
    bcfg.window_s = 0.3;
    bcfg.min_samples = 6;
    bcfg.failure_threshold = 0.5;
    bcfg.cooldown_s = 0.15;
    bcfg.half_open_probes = 2;
    bcfg.close_after = 2;
    BreakerObjectStore breaker(faulty, bcfg);

    StagedEngineConfig cfg;
    cfg.preview_scans = 2;
    cfg.crop_area = 0.75;
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.queue_capacity = 64;
    cfg.scan_depth = [&](uint64_t, int r_idx) {
        return std::min(num_scans, 2 + r_idx);
    };
    cfg.overload.hedge.enable = true;
    cfg.overload.hedge.min_delay_s = 1e-3;
    cfg.overload.hedge.max_delay_s = 5e-3;
    cfg.overload.brownout.enable = true;
    cfg.overload.brownout.window_s = 0.4;
    cfg.overload.brownout.min_samples = 6;
    cfg.overload.brownout.high_pressure = 0.5;
    cfg.overload.brownout.low_pressure = 0.1;
    cfg.overload.brownout.min_dwell_s = 0.15;
    cfg.overload.brownout.preview_cap = 1;
    cfg.overload.brownout.scan_cap = 2;
    cfg.overload.brownout.max_tier = 3;
    StagedServingEngine engine(breaker, scale, nullptr, cfg);

    // --- Waves across clean -> storm -> recovery -------------------
    constexpr int kWave = 12;
    std::printf("%-4s %-9s %5s %-10s %5s %5s %5s %5s %5s\n", "wave",
                "phase", "tier", "breaker", "done", "degr", "fail",
                "rej", "shed");
    uint64_t next_id = 0;
    for (int wave = 0; wave < 24; ++wave) {
        const bool storm = wave >= 6 && wave < 14;
        const char *phase_name = wave < 6      ? "clean"
                                 : storm       ? "storm"
                                               : "recovery";
        phase.store(storm ? 1 : 0, std::memory_order_relaxed);

        std::vector<StagedRequest> reqs(kWave);
        for (auto &r : reqs) {
            r.id = next_id++ % kObjects;
            engine.submit(r);
        }
        int done = 0, degraded = 0, failed = 0, rejected = 0,
            shed = 0;
        for (auto &r : reqs) {
            engine.wait(r);
            switch (r.stateNow()) {
            case StagedState::Done: ++done; break;
            case StagedState::Degraded: ++degraded; break;
            case StagedState::Failed: ++failed; break;
            case StagedState::Rejected: ++rejected; break;
            default: ++shed; break;
            }
        }
        const StagedStats st = engine.stats();
        std::printf("%-4d %-9s %5d %-10s %5d %5d %5d %5d %5d\n", wave,
                    phase_name, st.brownout_tier,
                    breakerStateName(breaker.state()), done, degraded,
                    failed, rejected, shed);
        // Give the controllers wall-clock room: the breaker cooldown
        // and the brownout dwell/idle-recovery are time-based.
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }

    const StagedStats st = engine.stats();
    const ReadStats rs = breaker.stats();
    std::printf("\ntotals: admitted %llu  done %llu  degraded %llu  "
                "failed %llu  expired %llu  shed %llu  rejected %llu  "
                "cancelled %llu\n",
                static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.done),
                static_cast<unsigned long long>(st.degraded),
                static_cast<unsigned long long>(st.failed),
                static_cast<unsigned long long>(st.expired),
                static_cast<unsigned long long>(st.shed_admission),
                static_cast<unsigned long long>(st.rejected),
                static_cast<unsigned long long>(st.cancelled));
    std::printf("breaker: trips %llu  fast-fails %llu   hedges: "
                "issued %llu  wins %llu   brownout: drops %llu  "
                "recoveries %llu\n",
                static_cast<unsigned long long>(rs.breaker_trips),
                static_cast<unsigned long long>(rs.breaker_fast_fails),
                static_cast<unsigned long long>(st.hedges_issued),
                static_cast<unsigned long long>(st.hedge_wins),
                static_cast<unsigned long long>(st.tier_drops),
                static_cast<unsigned long long>(st.tier_recoveries));
    std::printf("supervision: reads abandoned %llu  watchdog flags "
                "%llu\n",
                static_cast<unsigned long long>(st.reads_abandoned),
                static_cast<unsigned long long>(st.watchdog_flags));

    const uint64_t sum = st.done + st.degraded + st.failed +
                         st.expired + st.shed_admission + st.rejected +
                         st.cancelled;
    if (st.admitted != sum) {
        std::printf("TERMINAL CONSERVATION VIOLATED: admitted %llu != "
                    "%llu\n",
                    static_cast<unsigned long long>(st.admitted),
                    static_cast<unsigned long long>(sum));
        return 1;
    }
    std::printf("terminal conservation holds: admitted == sum of "
                "terminals (%llu)\n",
                static_cast<unsigned long long>(sum));
    return 0;
}
