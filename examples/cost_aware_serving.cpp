/**
 * @file
 * Cost-aware serving walk-through: the Section VIII-d and VIII-b
 * extensions working together —
 *   1. train a scale model and sweep the cost-aware selection
 *      trade-off (lambda) between predicted accuracy and backbone
 *      FLOPs,
 *   2. pipeline the scale model with the backbone and compare
 *      sustainable request rates against the sequential endpoint
 *      (Section VII-c),
 *   3. price a month of the resulting traffic with the cloud cost
 *      model.
 *
 * Build & run:  ./build/examples/cost_aware_serving
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/serving.hh"
#include "storage/cost.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres cost-aware serving example\n\n");

    // A small ImageNet-like dataset and a trained scale model.
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 200;
    spec.mean_width = 240;
    SyntheticDataset dataset(spec, 400, 19);
    BackboneAccuracyModel backbone(BackboneArch::ResNet50, spec, 1);

    const std::vector<int> grid = {112, 168, 224, 280, 336};
    ScaleModelOptions sopts;
    sopts.epochs = 20;
    ScaleModel scale(grid, sopts);
    scale.train(dataset, 0, 300, BackboneArch::ResNet50,
                {0.56, 0.75, 1.0}, 192);

    // 1. Cost-aware selection: lambda trades predicted-correctness
    //    for compute (Section VIII-d). Costs are backbone GFLOPs.
    std::vector<double> costs;
    for (const int r : grid)
        costs.push_back(backboneGflops(BackboneArch::ResNet50, r));

    std::printf("lambda sweep (accuracy vs mean GFLOPs, 100 eval "
                "images):\n");
    std::printf("%-8s %-10s %-12s\n", "lambda", "accuracy",
                "mean GFLOPs");
    for (const double lambda : {0.0, 0.1, 0.3, 0.6}) {
        int correct = 0;
        double gflops = 0.0;
        for (int i = 300; i < 400; ++i) {
            const Image img = dataset.renderAt(i, 192);
            const Image preview = resize(img, 112, 112);
            const int idx = scale.chooseResolutionIndexCostAware(
                preview, lambda, costs);
            const int res = grid[idx];
            gflops += costs[idx];
            if (backbone.correct(dataset.record(i), 0.75, res))
                ++correct;
        }
        std::printf("%-8.2f %-10.1f %-12.2f\n", lambda,
                    static_cast<double>(correct),
                    gflops / 100.0);
    }

    // 2. Pipelined endpoint capacity (Section VII-c).
    const double host_gflops = 8.0;
    const double backbone_s =
        backboneGflops(BackboneArch::ResNet50, 224) / host_gflops;
    // The x4 models the untuned scale model's lower hardware
    // utilization (the paper's Section VII-c measures ~30% of a
    // tuned RN50@224 pass; ours is proportionally cheaper because
    // the backbone here is untuned too).
    const double scale_s = scaleModelGflops() * 4.0 / host_gflops;
    std::printf("\nendpoint capacity (backbone %.0f ms, scale %.1f "
                "ms):\n  sequential %.2f req/s, pipelined %.2f req/s\n",
                backbone_s * 1e3, scale_s * 1e3,
                1.0 / (backbone_s + scale_s), 1.0 / backbone_s);

    ServingConfig scfg;
    scfg.arrival_rate_hz = 0.95 / backbone_s;
    scfg.num_requests = 2000;
    const auto pipe = simulateServingPipelined(scfg, [&](int, int) {
        return StagedService{224, scale_s, backbone_s};
    });
    const auto stats = ServingStats::fromRequests(pipe);
    std::printf("  at %.2f req/s pipelined: mean %.0f ms, p99 %.0f "
                "ms\n", scfg.arrival_rate_hz,
                stats.mean_latency_s * 1e3, stats.p99_latency_s * 1e3);

    // 3. The monthly bill at that traffic, full reads vs the ~25%
    //    savings a calibrated dynamic policy measures on this profile.
    Workload w;
    w.corpus_images = 500000;
    w.mean_image_bytes = 150000;
    w.reads_per_month = static_cast<int64_t>(
        scfg.arrival_rate_hz * 3600 * 24 * 30);
    const MonthlyCost full = monthlyCost(w);
    w.mean_read_fraction = 0.75;
    w.extra_requests_per_read = 0.5;
    const MonthlyCost dyn = monthlyCost(w);
    std::printf("\nmonthly bill at this traffic:\n"
                "  full reads    $%.0f (storage $%.0f, egress $%.0f)\n"
                "  dynamic reads $%.0f (storage $%.0f, egress $%.0f)\n"
                "  saved         $%.0f/month\n",
                full.total(), full.storage_usd, full.egress_usd,
                dyn.total(), dyn.storage_usd, dyn.egress_usd,
                full.total() - dyn.total());
    return 0;
}
