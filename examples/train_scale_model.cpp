/**
 * @file
 * Scale-model training walkthrough (paper Section IV): train the
 * multilabel resolution predictor with the Figure-5 cross-validation
 * sharding scheme and inspect its per-resolution predictions against
 * the backbone's actual correctness on held-out images.
 *
 * Build & run:  ./build/examples/train_scale_model
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "util/table.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres example — training the scale model\n\n");

    const DatasetSpec spec = imagenetLike();
    const int n_train = 280;
    const int n_eval = 60;
    SyntheticDataset dataset(spec, n_train + n_eval, 23);
    const std::vector<int> grid = {112, 168, 224, 280, 336, 392, 448};

    ScaleModelOptions opts;
    opts.epochs = 30;
    opts.num_shards = 4; // the paper's Figure-5 scheme
    ScaleModel scale(grid, opts);
    std::printf("training on %d images, %d shards, crops "
                "{25,56,75,100}%%...\n", n_train, opts.num_shards);
    const double loss = scale.train(dataset, 0, n_train,
                                    BackboneArch::ResNet18,
                                    {0.25, 0.56, 0.75, 1.0}, 192);
    std::printf("final BCE loss: %.3f\n\n", loss);

    // Held-out check: does the predictor's chosen resolution match a
    // resolution at which the backbone is actually correct?
    BackboneAccuracyModel backbone(BackboneArch::ResNet18, spec, 99);
    TablePrinter table("held-out evaluation (crop 75%)");
    table.setHeader({"metric", "value"});
    int chosen_correct = 0;
    int best_possible = 0;
    int static224 = 0;
    std::vector<int> hist(grid.size(), 0);
    for (int i = n_train; i < n_train + n_eval; ++i) {
        const Image preview = resize(
            centerCropFraction(dataset.renderAt(i, 192), 0.75), 112,
            112);
        const int idx = scale.chooseResolutionIndex(preview);
        ++hist[idx];
        const ImageRecord &rec = dataset.record(i);
        chosen_correct += backbone.correct(rec, 0.75, grid[idx]);
        static224 += backbone.correct(rec, 0.75, 224);
        for (int r : grid) {
            if (backbone.correct(rec, 0.75, r)) {
                ++best_possible;
                break;
            }
        }
    }
    table.addRow({"dynamic accuracy",
                  TablePrinter::num(100.0 * chosen_correct / n_eval, 1)});
    table.addRow({"static 224 accuracy",
                  TablePrinter::num(100.0 * static224 / n_eval, 1)});
    table.addRow({"oracle (any res correct)",
                  TablePrinter::num(100.0 * best_possible / n_eval, 1)});
    table.print();

    std::printf("\nchosen-resolution histogram:");
    for (size_t i = 0; i < grid.size(); ++i)
        std::printf(" %d:%d", grid[i], hist[i]);
    std::printf("\n");
    return 0;
}
