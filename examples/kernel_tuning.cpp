/**
 * @file
 * Kernel-tuning walkthrough (paper Section VI): autotune the
 * convolution layers of ResNet-18 at a non-library resolution and
 * compare per-layer throughput against the library implementation
 * whose blocking was fixed offline for 224.
 *
 * Build & run:  ./build/examples/kernel_tuning [resolution]
 */

#include <cstdio>
#include <cstdlib>

#include "nn/builders.hh"
#include "nn/kernel_selector.hh"
#include "tuning/tuner.hh"
#include "util/table.hh"

using namespace tamres;

int
main(int argc, char **argv)
{
    const int resolution = argc > 1 ? std::atoi(argv[1]) : 168;
    std::printf("tamres example — autotuning ResNet-18 convolutions "
                "at %dx%d\n\n", resolution, resolution);

    auto net = buildResNet18();
    const auto problems =
        AutoTuner::convProblems(*net, {1, 3, resolution, resolution});
    std::printf("found %zu unique conv shapes\n\n", problems.size());

    AutoTuner tuner;
    TuneOptions opts;
    opts.trials = 8;
    opts.reps = 2;
    opts.time_budget_s = 1.0;

    TablePrinter table("per-layer tuning results");
    table.setHeader({"shape", "library GF/s", "tuned GF/s", "speedup",
                     "winning config"});
    double lib_total = 0.0, tuned_total = 0.0;
    for (const auto &p : problems) {
        const MeasureResult lib =
            measureConv(p, KernelSelector::libraryConfig(p), 2);
        const MeasureResult best = tuner.tune(p, opts);
        lib_total += lib.seconds;
        tuned_total += best.seconds;
        table.addRow({p.key(), TablePrinter::num(lib.gflops(p), 2),
                      TablePrinter::num(best.gflops(p), 2),
                      TablePrinter::num(lib.seconds / best.seconds, 2),
                      best.config.toString()});
    }
    table.print();
    std::printf("\nsummed conv time: library %.1f ms, tuned %.1f ms "
                "(%.2fx)\n", lib_total * 1e3, tuned_total * 1e3,
                lib_total / tuned_total);
    std::printf("the gap is the Section VI effect: blocking chosen "
                "for 224-family shapes loses utilization at %d.\n",
                resolution);
    return 0;
}
