/**
 * @file
 * Serving simulation (paper Section VIII-a): a request stream served
 * by the dynamic pipeline, with a mid-run load burst handled by
 * shrinking the crop — the scale model automatically compensates by
 * lowering chosen resolutions, cutting average compute cost without a
 * model swap.
 *
 * Build & run:  ./build/examples/dynamic_serving
 */

#include <cstdio>

#include "core/pipeline.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres example — dynamic serving with load "
                "shedding\n\n");

    DatasetSpec spec = imagenetLike();
    spec.mean_height = 200;
    spec.mean_width = 240;
    const int n_train = 24;
    const int n_requests = 30;
    SyntheticDataset dataset(spec, n_train + n_requests, 13);

    ObjectStore store;
    dataset.ingest(store, 0, dataset.size());

    const std::vector<int> grid = {112, 168, 224, 280, 336};
    ScaleModelOptions sopts;
    sopts.epochs = 20;
    ScaleModel scale(grid, sopts);
    scale.train(dataset, 0, n_train, BackboneArch::ResNet18,
                {0.25, 0.56, 0.75, 1.0}, 192);

    DynamicPipeline::Config cfg;
    cfg.resolutions = grid;
    cfg.policy.resolutions = grid;
    cfg.policy.thresholds.assign(grid.size(), 0.97);
    cfg.crop_area = 0.75;
    DynamicPipeline pipeline(store, scale, cfg);

    const BandwidthModel bw;
    double gflops_normal = 0.0, gflops_burst = 0.0;
    uint64_t bytes_normal = 0, bytes_burst = 0;
    int count_normal = 0, count_burst = 0;

    for (int i = 0; i < n_requests; ++i) {
        // A burst arrives for requests 10..19: shed load by shrinking
        // the crop (objects appear larger; the scale model then picks
        // cheaper resolutions — paper Section VIII-a).
        const bool burst = i >= 10 && i < 20;
        pipeline.setCropArea(burst ? 0.30 : 0.75);

        const uint64_t id = dataset.record(n_train + i).id;
        const auto d = pipeline.process(id);
        const double gf =
            backboneGflops(BackboneArch::ResNet18, d.resolution) +
            scaleModelGflops();
        std::printf("req %2d %s crop=%.2f -> res %3d, %5zu bytes, "
                    "%.2f GFLOPs\n",
                    i, burst ? "[burst]" : "        ",
                    burst ? 0.30 : 0.75, d.resolution, d.bytes_read,
                    gf);
        if (burst) {
            gflops_burst += gf;
            bytes_burst += d.bytes_read;
            ++count_burst;
        } else {
            gflops_normal += gf;
            bytes_normal += d.bytes_read;
            ++count_normal;
        }
    }

    std::printf("\nnormal: %.2f GFLOPs/req, %.1f KiB/req (transfer "
                "%.2f ms/req)\n",
                gflops_normal / count_normal,
                bytes_normal / 1024.0 / count_normal,
                bw.transferSeconds(bytes_normal, count_normal) * 1e3 /
                    count_normal);
    std::printf("burst:  %.2f GFLOPs/req, %.1f KiB/req — the tighter "
                "crop sheds compute while the scale model keeps the "
                "object scale matched\n",
                gflops_burst / count_burst,
                bytes_burst / 1024.0 / count_burst);
    return 0;
}
