/**
 * @file
 * Composing the efficiency levers on one endpoint:
 *   1. build ResNet-18, fold batch norms and fuse ReLUs,
 *   2. calibrate and rewrite it to int8 (nn/quant),
 *   3. measure fp32 vs int8 latency at two resolutions,
 *   4. serve a bursty request stream through the batched queueing
 *      simulation with the measured costs, comparing a static-
 *      resolution endpoint against one that sheds to the lower
 *      resolution when the queue grows (the paper's Section VIII-a
 *      load-adaptation story, with quantization underneath).
 *
 * Build & run:  ./build/examples/quantized_serving
 */

#include <cstdio>

#include "core/serving.hh"
#include "nn/builders.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "tensor/tensor_ops.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace tamres;

namespace {

double
latencyAt(Graph &g, int res)
{
    Tensor in({1, 3, res, res});
    Rng rng(res);
    fillUniform(in, rng, 0.0f, 1.0f);
    return medianRunSeconds([&] { g.run(in); }, 3);
}

} // namespace

int
main()
{
    std::printf("tamres quantized serving example\n\n");

    // 1-2. Inference-optimized fp32 and int8 builds of the same net.
    auto fp32 = buildResNet18(1000, 1);
    optimizeForInference(*fp32);

    auto int8 = buildResNet18(1000, 1);
    optimizeForInference(*int8);
    Tensor cal({1, 3, 224, 224});
    Rng cal_rng(42);
    fillUniform(cal, cal_rng, 0.0f, 1.0f);
    const QuantCalibration calib = calibrateActivations(*int8, {cal});
    const int n_quant = quantizeConvs(*int8, &calib);
    std::printf("rewrote %d convolutions to int8\n\n", n_quant);

    // 3. Measured latencies.
    std::printf("%-10s %-12s %-12s\n", "res", "fp32 ms", "int8 ms");
    double int8_hi = 0.0, int8_lo = 0.0;
    for (const int res : {224, 112}) {
        const double f = latencyAt(*fp32, res);
        const double q = latencyAt(*int8, res);
        if (res == 224)
            int8_hi = q;
        else
            int8_lo = q;
        std::printf("%-10d %-12.1f %-12.1f\n", res, f * 1e3, q * 1e3);
    }

    // 4. Bursty load through the batched simulator: offered load sits
    //    above the 224-only capacity; the shedding policy drops to 112
    //    when more than four requests wait.
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = 1.3 / int8_hi;
    cfg.base.num_requests = 2000;
    cfg.base.seed = 9;
    cfg.max_batch = 4;
    cfg.linger_s = 0.002;

    const auto static_reqs = simulateServingBatched(
        cfg, [&](int, int batch, int) {
            return std::pair{224, int8_hi * batch};
        });
    const auto shed_reqs = simulateServingBatched(
        cfg, [&](int, int batch, int depth) {
            const bool shed = depth > 4;
            return std::pair{shed ? 112 : 224,
                             (shed ? int8_lo : int8_hi) * batch};
        });

    const ServingStats s_static = ServingStats::fromRequests(static_reqs);
    const ServingStats s_shed = ServingStats::fromRequests(shed_reqs);
    int shed_count = 0;
    for (const auto &r : shed_reqs)
        shed_count += r.resolution == 112;

    std::printf("\nendpoint at 1.3x the 224-only capacity:\n");
    std::printf("  static 224 : p99 %7.0f ms, mean queue %6.2f s\n",
                s_static.p99_latency_s * 1e3, s_static.mean_queueing_s);
    std::printf("  shed to 112: p99 %7.0f ms, mean queue %6.2f s "
                "(%d/%d requests shed)\n",
                s_shed.p99_latency_s * 1e3, s_shed.mean_queueing_s,
                shed_count, cfg.base.num_requests);
    std::printf("\nthe queue-aware policy absorbs the burst by paying "
                "resolution, not latency — and the scale model keeps "
                "object scales matched at 112 (Section VIII-a).\n");
    return 0;
}
