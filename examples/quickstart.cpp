/**
 * @file
 * Quickstart: the complete dynamic-resolution flow on a handful of
 * images —
 *   1. generate a synthetic dataset (ImageNet-like profile),
 *   2. progressively encode it into a byte-metered object store,
 *   3. calibrate per-resolution SSIM read thresholds (paper Sec. V),
 *   4. train the scale model (paper Sec. IV, Figure-5 sharding),
 *   5. serve images through the DynamicPipeline and report choices,
 *      bytes moved, and savings.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres quickstart — dynamic resolution inference\n\n");

    // 1. A small ImageNet-like synthetic dataset (smaller stored
    //    images keep this example fast).
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 220;
    spec.mean_width = 260;
    const int n_cal = 24;  // calibration + training slice
    const int n_serve = 8; // served requests
    SyntheticDataset dataset(spec, n_cal + n_serve, /*seed=*/7);

    // 2. Ingest into the object store (progressive encoding).
    ObjectStore store;
    dataset.ingest(store, 0, dataset.size());
    std::printf("ingested %zu images, %.1f KiB total\n", store.size(),
                store.storedBytes() / 1024.0);

    // 3. Calibrate read thresholds against a simulated trained
    //    backbone (see DESIGN.md for the substitution rationale).
    const std::vector<int> grid = {112, 168, 224, 280};
    BackboneAccuracyModel backbone(BackboneArch::ResNet18, spec, 1);
    QualityTable table(dataset, 0, n_cal, grid);
    CalibrationOptions copts;
    copts.max_accuracy_loss = 0.02; // relaxed for the tiny sample
    const StoragePolicy policy =
        calibrate(table, dataset, backbone, copts);
    for (size_t r = 0; r < grid.size(); ++r) {
        std::printf("calibrated SSIM threshold @%d: %.4f\n", grid[r],
                    policy.thresholds[r]);
    }

    // 4. Train the scale model on the calibration slice.
    ScaleModelOptions sopts;
    sopts.epochs = 20;
    ScaleModel scale(grid, sopts);
    const double loss = scale.train(dataset, 0, n_cal,
                                    BackboneArch::ResNet18,
                                    {0.25, 0.56, 0.75, 1.0}, 192);
    std::printf("scale model trained (final BCE %.3f)\n\n", loss);

    // 5. Serve.
    DynamicPipeline::Config cfg;
    cfg.resolutions = grid;
    cfg.policy = policy;
    cfg.crop_area = 0.75;
    DynamicPipeline pipeline(store, scale, cfg);

    store.resetStats();
    std::printf("%-6s %-10s %-6s %-10s\n", "image", "resolution",
                "scans", "bytes");
    for (int i = n_cal; i < n_cal + n_serve; ++i) {
        const uint64_t id = dataset.record(i).id;
        const auto d = pipeline.process(id);
        std::printf("%-6d %-10d %-6d %-10zu\n", i, d.resolution,
                    d.scans_read, d.bytes_read);
    }
    const ReadStats &stats = store.stats();
    std::printf("\nserved %llu requests, read %.1f KiB of %.1f KiB "
                "(%.1f%% saved)\n",
                static_cast<unsigned long long>(stats.requests),
                stats.bytes_read / 1024.0, stats.bytes_full / 1024.0,
                stats.savings() * 100);
    return 0;
}
