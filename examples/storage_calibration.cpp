/**
 * @file
 * Storage-calibration walkthrough (paper Section V): build measured
 * quality/rate tables for two dataset profiles, binary-search the
 * per-resolution SSIM thresholds, and report the resulting read
 * savings at a fixed accuracy budget — demonstrating why the two
 * datasets need different thresholds.
 *
 * Build & run:  ./build/examples/storage_calibration
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "util/table.hh"

using namespace tamres;

namespace {

void
calibrateDataset(DatasetSpec spec)
{
    // Shrink stored sizes so the example runs in seconds.
    spec.mean_height = spec.mean_height / 2;
    spec.mean_width = spec.mean_width / 2;

    const int n = 30;
    SyntheticDataset dataset(spec, n, 5);
    const std::vector<int> grid = {112, 168, 224};
    QualityTable table(dataset, 0, n, grid);
    BackboneAccuracyModel backbone(BackboneArch::ResNet50, spec, 1);

    CalibrationOptions opts;
    opts.max_accuracy_loss = 0.02;
    const StoragePolicy policy =
        calibrate(table, dataset, backbone, opts);

    TablePrinter out("calibration — " + spec.name);
    out.setHeader({"res", "SSIM threshold", "read", "savings%",
                   "acc default", "acc calibrated"});
    for (size_t r = 0; r < grid.size(); ++r) {
        const PolicyEval eval = evaluateThreshold(
            table, dataset, backbone, static_cast<int>(r),
            policy.thresholds[r], 0.75);
        out.addRow({std::to_string(grid[r]),
                    TablePrinter::num(policy.thresholds[r], 4),
                    TablePrinter::num(eval.read_fraction, 3),
                    TablePrinter::num(eval.savings() * 100, 1),
                    TablePrinter::num(eval.accuracy_full * 100, 1),
                    TablePrinter::num(eval.accuracy_policy * 100, 1)});
    }
    out.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("tamres example — SSIM-guided storage calibration\n\n");
    calibrateDataset(imagenetLike());
    calibrateDataset(carsLike());
    std::printf("note: the Cars-like profile tolerates lower fidelity "
                "(shape-dominated classes), so its thresholds sit "
                "lower and its savings are larger — the paper's "
                "core Section V observation.\n");
    return 0;
}
