/**
 * @file
 * Codec and quality-metric tour: the storage substrate on its own —
 *   1. progressively encode an image under both entropy coders and
 *      compare scan-by-scan byte costs,
 *   2. decode prefixes and score them with the full metric family
 *      (PSNR, SSIM, MS-SSIM, and the blind no-reference score),
 *   3. resample the decoded image with each filter and compare
 *      fidelity against a high-resolution render,
 *   4. compare scan scripts and color treatments (spectral selection
 *      vs successive approximation, planar vs YCbCr 4:2:0).
 *
 * Build & run:  ./build/examples/codec_tour
 */

#include <cstdio>

#include "codec/progressive.hh"
#include "image/color.hh"
#include "image/filters.hh"
#include "image/metrics.hh"
#include "image/noref.hh"
#include "image/synthetic.hh"

using namespace tamres;

int
main()
{
    std::printf("tamres codec & metrics tour\n\n");

    // A detailed synthetic image (cars-like size).
    SyntheticImageSpec ispec;
    ispec.height = 320;
    ispec.width = 480;
    ispec.texture_detail = 0.65;
    ispec.seed = 5;
    const Image img = generateSyntheticImage(ispec);

    // 1. Entropy coders.
    ProgressiveConfig rl;
    ProgressiveConfig hf;
    hf.entropy = EntropyCoder::Huffman;
    const EncodedImage enc_rl = encodeProgressive(img, rl);
    const EncodedImage enc_hf = encodeProgressive(img, hf);
    std::printf("scan-by-scan bytes (%dx%d image):\n", ispec.width,
                ispec.height);
    std::printf("%-6s %-12s %-12s %-8s\n", "scan", "runlength",
                "huffman", "ratio");
    for (int s = 1; s <= enc_rl.numScans(); ++s) {
        const size_t b_rl =
            enc_rl.scan_offsets[s] - enc_rl.scan_offsets[s - 1];
        const size_t b_hf =
            enc_hf.scan_offsets[s] - enc_hf.scan_offsets[s - 1];
        std::printf("%-6d %-12zu %-12zu %-8.3f\n", s, b_rl, b_hf,
                    static_cast<double>(b_hf) / b_rl);
    }
    std::printf("total: runlength %zu B, huffman %zu B\n\n",
                enc_rl.totalBytes(), enc_hf.totalBytes());

    // 2. Quality metrics per prefix.
    const Image full = decodeProgressive(enc_hf);
    const double sharp_ref = sharpness(full);
    std::printf("quality per scan prefix:\n");
    std::printf("%-6s %-10s %-8s %-8s %-9s %-7s\n", "scans",
                "read frac", "SSIM", "MS-SSIM", "PSNR(dB)", "blind");
    for (int k = 1; k <= enc_hf.numScans(); ++k) {
        const Image d = decodeProgressive(enc_hf, k);
        std::printf("%-6d %-10.3f %-8.4f %-8.4f %-9.1f %-7.3f\n", k,
                    static_cast<double>(enc_hf.bytesForScans(k)) /
                        enc_hf.totalBytes(),
                    ssim(d, full), msSsim(d, full), psnr(d, full),
                    norefQuality(d, sharp_ref));
    }

    // 3. Resampling filters: downscale the decode to 224 and compare
    //    against a native-224 render of the same latent image.
    SyntheticImageSpec at224 = ispec;
    at224.height = 224;
    at224.width = 224;
    const Image native = generateSyntheticImage(at224);
    std::printf("\nresize 480x320 -> 224x224, PSNR vs native render:\n");
    for (const ResizeFilter f :
         {ResizeFilter::Bilinear, ResizeFilter::Area,
          ResizeFilter::Bicubic, ResizeFilter::Lanczos3}) {
        const Image resized = resizeWith(full, 224, 224, f);
        std::printf("  %-9s %.2f dB\n", resizeFilterName(f),
                    psnr(native, resized));
    }

    // 4. Scan scripts and color modes. Chroma statistics are
    //    naturalized first (photographic channels correlate; the
    //    synthetic generator's do not).
    const Image natural = desaturateChroma(img, 0.35f);
    std::printf("\nscan script x color mode (Huffman entropy):\n");
    std::printf("%-22s %-9s %-12s %-10s\n", "mode", "scans",
                "total B", "B to SSIM>=.95");
    struct ModeRow
    {
        const char *name;
        bool successive;
        ColorMode color;
    };
    for (const ModeRow m :
         {ModeRow{"spectral / planar", false, ColorMode::Planar},
          ModeRow{"successive / planar", true, ColorMode::Planar},
          ModeRow{"spectral / 4:2:0", false, ColorMode::YCbCr420},
          ModeRow{"successive / 4:2:0", true, ColorMode::YCbCr420}}) {
        ProgressiveConfig cfg;
        cfg.entropy = EntropyCoder::Huffman;
        cfg.color = m.color;
        if (m.successive)
            cfg.scans = ProgressiveConfig::successiveScans();
        const EncodedImage enc = encodeProgressive(natural, cfg);
        const Image ref = decodeProgressive(enc);
        size_t bytes_at = enc.totalBytes();
        for (int k = 1; k <= enc.numScans(); ++k) {
            if (ssim(decodeProgressive(enc, k), ref) >= 0.95) {
                bytes_at = enc.bytesForScans(k);
                break;
            }
        }
        std::printf("%-22s %-9d %-12zu %-10zu\n", m.name,
                    enc.numScans(), enc.totalBytes(), bytes_at);
    }
    return 0;
}
