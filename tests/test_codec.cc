/**
 * @file
 * Unit and property tests for the progressive codec: DCT roundtrip,
 * quantization, bitstream, scan structure, and progressive refinement
 * invariants.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "codec/bitstream.hh"
#include "codec/dct.hh"
#include "codec/progressive.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "tests/threads_env.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

TEST(BitStream, RoundTripBits)
{
    BitWriter bw;
    bw.writeBits(0b1011, 4);
    bw.writeBit(1);
    bw.writeBits(0x1234, 16);
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(br.readBits(4), 0b1011u);
    EXPECT_EQ(br.readBit(), 1u);
    EXPECT_EQ(br.readBits(16), 0x1234u);
}

TEST(BitStream, ManyRandomValues)
{
    Rng rng(31);
    std::vector<std::pair<uint32_t, int>> vals;
    BitWriter bw;
    for (int i = 0; i < 1000; ++i) {
        const int nbits = 1 + static_cast<int>(rng.uniformInt(
            static_cast<uint64_t>(24)));
        const uint32_t v =
            static_cast<uint32_t>(rng.next()) & ((1u << nbits) - 1);
        vals.emplace_back(v, nbits);
        bw.writeBits(v, nbits);
    }
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    for (const auto &[v, nbits] : vals)
        EXPECT_EQ(br.readBits(nbits), v);
}

TEST(BitStreamError, OverrunThrowsTruncated)
{
    const uint8_t one = 0xff;
    BitReader br(&one, 1);
    br.readBits(8);
    try {
        br.readBit();
        FAIL() << "expected Error{Truncated}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Truncated);
        EXPECT_NE(std::string(e.what()).find("overrun"),
                  std::string::npos);
    }
}

TEST(Dct, RoundTripRandomBlocks)
{
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        float block[64], freq[64], back[64];
        for (float &v : block)
            v = static_cast<float>(rng.uniform(-128.0, 127.0));
        forwardDct8x8(block, freq);
        inverseDct8x8(freq, back);
        for (int i = 0; i < 64; ++i)
            EXPECT_NEAR(back[i], block[i], 1e-2f);
    }
}

TEST(Dct, ConstantBlockIsDcOnly)
{
    float block[64], freq[64];
    for (float &v : block)
        v = 100.0f;
    forwardDct8x8(block, freq);
    EXPECT_NEAR(freq[0], 800.0f, 1e-2f); // 100 * 8 (orthonormal DC gain)
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(freq[i], 0.0f, 1e-3f);
}

TEST(Dct, EnergyPreserved)
{
    // Orthonormal transform: Parseval holds.
    Rng rng(6);
    float block[64], freq[64];
    for (float &v : block)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    forwardDct8x8(block, freq);
    double e_in = 0.0, e_out = 0.0;
    for (int i = 0; i < 64; ++i) {
        e_in += static_cast<double>(block[i]) * block[i];
        e_out += static_cast<double>(freq[i]) * freq[i];
    }
    EXPECT_NEAR(e_in, e_out, 1e-3);
}

TEST(Zigzag, IsPermutation)
{
    const int *zz = zigzagOrder();
    std::set<int> seen(zz, zz + 64);
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 63);
    // DC first, then the two nearest AC coefficients.
    EXPECT_EQ(zz[0], 0);
    EXPECT_TRUE(zz[1] == 1 || zz[1] == 8);
}

TEST(Quant, StepDecreasesWithQuality)
{
    for (int i = 0; i < 64; ++i) {
        EXPECT_GE(quantStep(i, 10), quantStep(i, 50));
        EXPECT_GE(quantStep(i, 50), quantStep(i, 95));
        EXPECT_GE(quantStep(i, 95), 1);
    }
}

TEST(Quant, HighFrequencyCoarser)
{
    // The JPEG table quantizes high frequencies more aggressively.
    EXPECT_LT(quantStep(0, 85), quantStep(63, 85));
}

Image
testImage(int h = 48, int w = 48, int cls = 1, uint64_t seed = 11)
{
    return generateSyntheticImage({.height = h, .width = w,
                                   .class_id = cls, .seed = seed});
}

TEST(Progressive, DefaultScansPartitionSpectrum)
{
    const auto scans = ProgressiveConfig::defaultScans();
    ASSERT_EQ(scans.size(), 5u);
    EXPECT_EQ(scans.front().lo, 0);
    EXPECT_EQ(scans.back().hi, 63);
    for (size_t i = 1; i < scans.size(); ++i)
        EXPECT_EQ(scans[i].lo, scans[i - 1].hi + 1);
}

TEST(Progressive, FullDecodeCloseToSource)
{
    const Image src = testImage();
    const EncodedImage enc = encodeProgressive(src, {.quality = 90});
    const Image dec = decodeProgressive(enc);
    EXPECT_GT(psnr(src, dec), 30.0);
    EXPECT_GT(ssim(src, dec), 0.93);
}

TEST(Progressive, QualityControlsRateAndDistortion)
{
    const Image src = testImage(64, 64);
    const EncodedImage lo = encodeProgressive(src, {.quality = 30});
    const EncodedImage hi = encodeProgressive(src, {.quality = 92});
    EXPECT_LT(lo.totalBytes(), hi.totalBytes());
    EXPECT_LT(psnr(src, decodeProgressive(lo)),
              psnr(src, decodeProgressive(hi)));
}

TEST(Progressive, ScanOffsetsMonotone)
{
    const EncodedImage enc = encodeProgressive(testImage());
    ASSERT_EQ(enc.scan_offsets.size(), enc.scans.size() + 1);
    EXPECT_EQ(enc.scan_offsets.front(), 0u);
    for (size_t i = 1; i < enc.scan_offsets.size(); ++i)
        EXPECT_GT(enc.scan_offsets[i], enc.scan_offsets[i - 1]);
    EXPECT_EQ(enc.scan_offsets.back(), enc.totalBytes());
}

TEST(Progressive, QualityImprovesMonotonicallyWithScans)
{
    // The core progressive-encoding property the paper's Figure 2
    // illustrates: each scan refines the image.
    const Image src = testImage(56, 72, 3, 21);
    const EncodedImage enc = encodeProgressive(src);
    const Image full = decodeProgressive(enc);
    double prev = -1.0;
    for (int k = 1; k <= enc.numScans(); ++k) {
        const double s = ssim(decodeProgressive(enc, k), full);
        EXPECT_GT(s, prev - 1e-9)
            << "scan " << k << " did not refine quality";
        prev = s;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(Progressive, ZeroScansIsFlatPreview)
{
    const EncodedImage enc = encodeProgressive(testImage());
    const Image dec = decodeProgressive(enc, 0);
    // All coefficients missing -> level-shift gray everywhere.
    for (size_t i = 0; i < dec.numel(); ++i)
        EXPECT_NEAR(dec.data()[i], 128.0f / 255.0f, 1e-5f);
}

TEST(Progressive, DcScanGivesCoarseImage)
{
    const Image src = testImage(64, 64, 2, 9);
    const EncodedImage enc = encodeProgressive(src);
    const Image dc_only = decodeProgressive(enc, 1);
    // Coarse but correlated with the source.
    EXPECT_GT(psnr(src, dc_only), 10.0);
    EXPECT_LT(psnr(src, dc_only), psnr(src, decodeProgressive(enc)));
}

TEST(Progressive, NonMultipleOf8Dimensions)
{
    const Image src = testImage(37, 51, 4, 13);
    const EncodedImage enc = encodeProgressive(src);
    const Image dec = decodeProgressive(enc);
    EXPECT_EQ(dec.height(), 37);
    EXPECT_EQ(dec.width(), 51);
    EXPECT_GT(psnr(src, dec), 25.0);
}

TEST(Progressive, CustomScanScript)
{
    ProgressiveConfig cfg;
    cfg.scans = {{0, 0}, {1, 63}};
    const Image src = testImage();
    const EncodedImage enc = encodeProgressive(src, cfg);
    EXPECT_EQ(enc.numScans(), 2);
    const Image dec = decodeProgressive(enc);
    EXPECT_GT(ssim(src, dec), 0.9);
}

TEST(ProgressiveDeath, BadScanScriptRejected)
{
    ProgressiveConfig cfg;
    cfg.scans = {{0, 0}, {2, 63}}; // gap at coefficient 1
    EXPECT_DEATH(encodeProgressive(testImage(), cfg), "scan script");
}

TEST(Progressive, BytesForScans)
{
    const EncodedImage enc = encodeProgressive(testImage());
    EXPECT_EQ(enc.bytesForScans(0), 0u);
    EXPECT_EQ(enc.bytesForScans(enc.numScans()), enc.totalBytes());
    EXPECT_LT(enc.bytesForScans(1), enc.totalBytes());
}

TEST(Progressive, ComplexImagesCostMoreBytes)
{
    // The entropy layer must be content-adaptive: a flat image
    // compresses far better than a textured one.
    Image flat(64, 64, 3);
    for (size_t i = 0; i < flat.numel(); ++i)
        flat.data()[i] = 0.5f;
    SyntheticImageSpec busy_spec{.height = 64, .width = 64,
                                 .class_id = 1, .seed = 5,
                                 .texture_detail = 1.0};
    const Image busy = generateSyntheticImage(busy_spec);
    const EncodedImage enc_flat = encodeProgressive(flat);
    const EncodedImage enc_busy = encodeProgressive(busy);
    EXPECT_LT(enc_flat.totalBytes() * 2, enc_busy.totalBytes());
}

TEST(Progressive, LaterScansCarryHighFrequency)
{
    // Reading only the first two scans gives a blurrier image than
    // reading four, measured against the source.
    const Image src = testImage(64, 64, 1, 33);
    const EncodedImage enc = encodeProgressive(src);
    EXPECT_LT(psnr(src, decodeProgressive(enc, 2)),
              psnr(src, decodeProgressive(enc, 4)) + 1e-9);
}

/** Parameterized roundtrip across qualities and sizes. */
class ProgressiveSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ProgressiveSweep, RoundTripMonotone)
{
    const auto [quality, size] = GetParam();
    const Image src = testImage(size, size, 2, 7);
    const EncodedImage enc = encodeProgressive(src, {.quality = quality});
    const Image full = decodeProgressive(enc);
    double prev = -1.0;
    for (int k = 0; k <= enc.numScans(); ++k) {
        const double s = ssim(decodeProgressive(enc, k), full);
        EXPECT_GE(s, prev - 1e-6);
        prev = s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    QualityBySize, ProgressiveSweep,
    ::testing::Combine(::testing::Values(40, 70, 90),
                       ::testing::Values(24, 40, 72)));

// --- Restart intervals (parallel entropy decode) ---------------------

bool
imagesIdentical(const Image &a, const Image &b)
{
    if (a.height() != b.height() || a.width() != b.width() ||
        a.channels() != b.channels())
        return false;
    for (size_t i = 0; i < a.numel(); ++i) {
        if (a.data()[i] != b.data()[i])
            return false;
    }
    return true;
}

TEST(Restart, PayloadBytesIdenticalToLegacyEncode)
{
    // Restart points are a side table: the entropy payload must be
    // byte-for-byte what a marker-free encode produces, so enabling
    // them changes no storage metric.
    const Image src = testImage(72, 56, 2, 21);
    for (const EntropyCoder coder :
         {EntropyCoder::RunLength, EntropyCoder::Huffman}) {
        ProgressiveConfig legacy;
        legacy.entropy = coder;
        legacy.restart_interval = 0;
        ProgressiveConfig restart = legacy;
        restart.restart_interval = 16;

        const EncodedImage a = encodeProgressive(src, legacy);
        const EncodedImage b = encodeProgressive(src, restart);
        EXPECT_EQ(a.version, EncodedImage::kVersionLegacy);
        EXPECT_EQ(b.version, EncodedImage::kVersionRestart);
        EXPECT_FALSE(a.hasRestartMarkers());
        EXPECT_TRUE(b.hasRestartMarkers());
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.scan_offsets, b.scan_offsets);
    }
}

TEST(Restart, ParallelDecodeBitExactAcrossThreadCounts)
{
    const Image src = testImage(96, 88, 1, 22);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 8;
    const EncodedImage enc = encodeProgressive(src, cfg);
    ASSERT_TRUE(enc.hasRestartMarkers());

    // Serial reference: the same stream with its side table stripped
    // decodes through the legacy path.
    EncodedImage stripped = enc;
    stripped.version = EncodedImage::kVersionLegacy;
    stripped.restart_bits.clear();
    stripped.restart_interval = 0;

    for (int k = 0; k <= enc.numScans(); ++k) {
        const Image want = decodeProgressive(stripped, k);
        for (const int threads : {1, 2, 8}) {
            ThreadsEnv env(threads);
            const Image got = decodeProgressive(enc, k);
            EXPECT_TRUE(imagesIdentical(want, got))
                << "scan " << k << ", " << threads << " threads";
        }
    }
}

TEST(Restart, LegacyStreamStillDecodes)
{
    // A marker-free (v1) stream must decode exactly as before, at any
    // thread count — backward compatibility with pre-restart streams.
    const Image src = testImage(64, 40, 3, 23);
    ProgressiveConfig cfg;
    cfg.restart_interval = 0;
    const EncodedImage enc = encodeProgressive(src, cfg);
    EXPECT_FALSE(enc.hasRestartMarkers());
    ThreadsEnv env(8);
    const Image out = decodeProgressive(enc);
    EXPECT_GT(psnr(src, out), 28.0);
}

TEST(Restart, SuccessiveApproximationScriptRoundTrips)
{
    // Refinement scans must stay range-independent too.
    const Image src = testImage(80, 64, 2, 24);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 8;
    const EncodedImage enc = encodeProgressive(src, cfg);

    EncodedImage stripped = enc;
    stripped.version = EncodedImage::kVersionLegacy;
    stripped.restart_bits.clear();
    stripped.restart_interval = 0;

    ThreadsEnv env(8);
    EXPECT_TRUE(imagesIdentical(decodeProgressive(stripped),
                                decodeProgressive(enc)));
}

TEST(RestartError, OffsetPastStreamThrows)
{
    const Image src = testImage(48, 48, 1, 25);
    ProgressiveConfig cfg;
    cfg.restart_interval = 8;
    EncodedImage enc = encodeProgressive(src, cfg);
    ASSERT_TRUE(enc.hasRestartMarkers());
    // A vandalized side table pointing past the scan must hit the
    // bounds-checked seek, not read out of the buffer.
    enc.restart_bits[1].back() = (enc.bytes.size() + 64) * 8;
    try {
        decodeProgressive(enc);
        FAIL() << "expected Error{Truncated}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Truncated);
    }
}

TEST(RestartError, TruncatedRestartStreamThrows)
{
    const Image src = testImage(48, 48, 1, 26);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 8;
    EncodedImage enc = encodeProgressive(src, cfg);
    enc.bytes.resize(enc.bytes.size() / 2);
    EXPECT_THROW(decodeProgressive(enc, enc.numScans()), Error);
}

} // namespace
} // namespace tamres
