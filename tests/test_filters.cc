/**
 * @file
 * Tests for the higher-order resampling filters (bicubic, Lanczos-3),
 * Gaussian blur, Sobel magnitude, and MS-SSIM: interpolation
 * correctness on analytic signals, identity/flat-field invariants,
 * anti-aliasing behaviour, and cross-filter quality ordering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "image/filters.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
constantImage(int h, int w, float v, int channels = 3)
{
    Image img(h, w, channels);
    for (size_t i = 0; i < img.numel(); ++i)
        img.data()[i] = v;
    return img;
}

/** Horizontal linear ramp from 0 to 1. */
Image
rampImage(int h, int w)
{
    Image img(h, w, 1);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            img.at(0, y, x) = static_cast<float>(x) / (w - 1);
    return img;
}

Image
noiseImage(int h, int w, uint64_t seed)
{
    Image img(h, w, 3);
    Rng rng(seed);
    for (size_t i = 0; i < img.numel(); ++i)
        img.data()[i] = static_cast<float>(rng.uniform());
    return img;
}

class AllFiltersTest : public ::testing::TestWithParam<ResizeFilter>
{};

TEST_P(AllFiltersTest, FlatFieldIsPreserved)
{
    const Image src = constantImage(40, 56, 0.625f);
    const Image up = resizeWith(src, 80, 100, GetParam());
    const Image down = resizeWith(src, 17, 23, GetParam());
    for (size_t i = 0; i < up.numel(); ++i)
        EXPECT_NEAR(up.data()[i], 0.625f, 2e-3f);
    for (size_t i = 0; i < down.numel(); ++i)
        EXPECT_NEAR(down.data()[i], 0.625f, 2e-3f);
}

TEST_P(AllFiltersTest, IdentityResizeIsNearExact)
{
    const Image src = noiseImage(32, 48, 7);
    const Image same = resizeWith(src, 32, 48, GetParam());
    ASSERT_EQ(same.height(), 32);
    ASSERT_EQ(same.width(), 48);
    // Bilinear/area/bicubic/lanczos all interpolate exactly at sample
    // positions when in == out (modulo clamping at 0/1).
    for (int c = 0; c < 3; ++c)
        for (int y = 0; y < 32; ++y)
            for (int x = 0; x < 48; ++x)
                EXPECT_NEAR(same.at(c, y, x), src.at(c, y, x), 1e-3f)
                    << resizeFilterName(GetParam());
}

TEST_P(AllFiltersTest, RampStaysMonotone)
{
    const Image src = rampImage(16, 64);
    const Image up = resizeWith(src, 16, 150, GetParam());
    for (int x = 1; x < up.width(); ++x)
        EXPECT_GE(up.at(0, 8, x) - up.at(0, 8, x - 1), -5e-3f)
            << resizeFilterName(GetParam()) << " at x=" << x;
}

TEST_P(AllFiltersTest, OutputDimensionsAreExact)
{
    const Image src = noiseImage(37, 53, 3);
    const Image dst = resizeWith(src, 112, 224, GetParam());
    EXPECT_EQ(dst.height(), 112);
    EXPECT_EQ(dst.width(), 224);
    EXPECT_EQ(dst.channels(), 3);
}

INSTANTIATE_TEST_SUITE_P(
    Filters, AllFiltersTest,
    ::testing::Values(ResizeFilter::Bilinear, ResizeFilter::Area,
                      ResizeFilter::Bicubic, ResizeFilter::Lanczos3),
    [](const ::testing::TestParamInfo<ResizeFilter> &info) {
        return resizeFilterName(info.param);
    });

TEST(Bicubic, ReconstructsLinearRampExactly)
{
    // Cubic interpolation reproduces polynomials up to degree 3; a
    // linear ramp upsampled 2x must stay linear away from the borders.
    const Image src = rampImage(8, 33);
    const Image up = resizeBicubic(src, 8, 65);
    for (int x = 8; x < 57; ++x) {
        const double expected =
            ((x + 0.5) * 33.0 / 65.0 - 0.5) / 32.0;
        EXPECT_NEAR(up.at(0, 4, x), expected, 5e-3);
    }
}

TEST(Lanczos3, UpsampleBeatsBilinearOnTexture)
{
    // Render the same synthetic content at high resolution as ground
    // truth, downscale, then compare upsampling quality.
    SyntheticImageSpec spec;
    spec.height = 128;
    spec.width = 128;
    spec.texture_detail = 0.7;
    const Image ref = generateSyntheticImage(spec);
    const Image small = resizeArea(ref, 64, 64);
    const Image up_bil = resizeBilinear(small, 128, 128);
    const Image up_lan = resizeLanczos3(small, 128, 128);
    EXPECT_GT(psnr(ref, up_lan), psnr(ref, up_bil));
}

TEST(Lanczos3, DownscaleAntiAliases)
{
    // A Nyquist-rate checkerboard downscaled 4x must collapse toward
    // mid-gray; with the stretched (anti-aliasing) kernel the residual
    // swing stays small.
    Image checker(64, 64, 1);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            checker.at(0, y, x) = ((x + y) & 1) ? 1.0f : 0.0f;
    const Image down = resizeLanczos3(checker, 16, 16);
    for (int y = 2; y < 14; ++y)
        for (int x = 2; x < 14; ++x)
            EXPECT_NEAR(down.at(0, y, x), 0.5f, 0.08f);
}

TEST(GaussianBlur, PreservesMeanAndReducesVariance)
{
    const Image src = noiseImage(48, 48, 11);
    const Image blurred = gaussianBlur(src, 1.8);
    EXPECT_NEAR(blurred.mean(), src.mean(), 5e-3);

    auto variance = [](const Image &img) {
        double m = img.mean(), acc = 0.0;
        for (size_t i = 0; i < img.numel(); ++i) {
            const double d = img.data()[i] - m;
            acc += d * d;
        }
        return acc / static_cast<double>(img.numel());
    };
    EXPECT_LT(variance(blurred), 0.25 * variance(src));
}

TEST(GaussianBlur, SigmaZeroIsIdentity)
{
    const Image src = noiseImage(16, 16, 5);
    const Image same = gaussianBlur(src, 0.0);
    for (size_t i = 0; i < src.numel(); ++i)
        EXPECT_EQ(same.data()[i], src.data()[i]);
}

TEST(GaussianBlur, LargerSigmaBlursMore)
{
    const Image src = noiseImage(40, 40, 13);
    const double s1 = psnr(src, gaussianBlur(src, 0.8));
    const double s2 = psnr(src, gaussianBlur(src, 2.5));
    EXPECT_GT(s1, s2);
}

TEST(SobelMagnitude, FlatFieldIsZeroAndEdgeIsStrong)
{
    Image img = constantImage(24, 24, 0.5f, 1);
    const Image flat = sobelMagnitude(img);
    for (int y = 1; y < 23; ++y)
        for (int x = 1; x < 23; ++x)
            EXPECT_NEAR(flat.at(0, y, x), 0.0f, 1e-6f);

    // Vertical step edge at x = 12.
    for (int y = 0; y < 24; ++y)
        for (int x = 12; x < 24; ++x)
            img.at(0, y, x) = 1.0f;
    const Image edges = sobelMagnitude(img);
    double on_edge = 0.0, off_edge = 0.0;
    for (int y = 2; y < 22; ++y) {
        on_edge += edges.at(0, y, 12);
        off_edge += edges.at(0, y, 5);
    }
    EXPECT_GT(on_edge, 10.0 * (off_edge + 1e-9));
}

TEST(MsSsim, IdenticalImagesScoreOne)
{
    const Image img = noiseImage(64, 64, 17);
    EXPECT_NEAR(msSsim(img, img), 1.0, 1e-9);
}

TEST(MsSsim, BoundedAndOrderedLikeSsim)
{
    SyntheticImageSpec spec;
    spec.height = 96;
    spec.width = 96;
    const Image ref = generateSyntheticImage(spec);
    const Image mild = gaussianBlur(ref, 0.8);
    const Image heavy = gaussianBlur(ref, 3.0);
    const double q_mild = msSsim(ref, mild);
    const double q_heavy = msSsim(ref, heavy);
    EXPECT_GT(q_mild, q_heavy);
    EXPECT_GT(q_mild, 0.0);
    EXPECT_LE(q_mild, 1.0);
    // Same ordering as single-scale SSIM.
    EXPECT_GT(ssim(ref, mild), ssim(ref, heavy));
}

TEST(MsSsim, MoreForgivingOfLowFrequencyShiftThanSsim)
{
    // A small constant luminance offset is structurally harmless;
    // MS-SSIM discounts luminance except at the coarsest scale, so it
    // should penalize the shift no more than single-scale SSIM.
    const Image ref = noiseImage(88, 88, 23);
    Image shifted = ref;
    for (size_t i = 0; i < shifted.numel(); ++i)
        shifted.data()[i] =
            std::min(1.0f, shifted.data()[i] + 0.05f);
    EXPECT_GE(msSsim(ref, shifted) + 1e-6, ssim(ref, shifted));
}

TEST(MsSsim, SmallImagesFallBackToFewerLevels)
{
    // 24px images only support two dyadic levels with an 11-tap
    // window; the call must still succeed and stay bounded.
    const Image a = noiseImage(24, 24, 3);
    const Image b = gaussianBlur(a, 1.0);
    const double q = msSsim(a, b, 5);
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 1.0);
}

} // namespace
} // namespace tamres
