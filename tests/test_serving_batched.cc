/**
 * @file
 * Tests for the dynamically batched serving simulation: reduction to
 * the plain FIFO server, batch formation invariants, and the
 * throughput/latency tradeoffs batching is supposed to exhibit.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/serving.hh"

namespace tamres {
namespace {

/** Sub-linear batch cost: full price for the first item, 40% each
 * additional one (im2col GEMMs amortize packing and weight reuse). */
double
batchCost(double base_s, int batch)
{
    return base_s * (1.0 + 0.4 * (batch - 1));
}

TEST(BatchedServing, ReducesToPlainFifoAtBatchOne)
{
    ServingConfig cfg;
    cfg.arrival_rate_hz = 40.0;
    cfg.num_requests = 500;
    cfg.seed = 7;
    const auto plain = simulateServing(
        cfg, [](int, int) { return std::pair{224, 0.02}; });

    BatchedConfig bcfg;
    bcfg.base = cfg;
    bcfg.max_batch = 1;
    bcfg.linger_s = 0.0;
    const auto batched = simulateServingBatched(
        bcfg, [](int, int, int) { return std::pair{224, 0.02}; });

    ASSERT_EQ(plain.size(), batched.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        ASSERT_DOUBLE_EQ(batched[i].arrival_s, plain[i].arrival_s);
        ASSERT_DOUBLE_EQ(batched[i].start_s, plain[i].start_s);
        ASSERT_DOUBLE_EQ(batched[i].finish_s, plain[i].finish_s);
        ASSERT_EQ(batched[i].batch, 1);
    }
}

TEST(BatchedServing, InvariantsHold)
{
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = 120.0;
    cfg.base.num_requests = 800;
    cfg.base.seed = 3;
    cfg.max_batch = 6;
    cfg.linger_s = 0.004;
    const auto reqs = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.02, batch)};
        });

    ASSERT_EQ(reqs.size(), 800u);
    double prev_start = 0.0;
    for (const auto &r : reqs) {
        EXPECT_GE(r.queueing(), -1e-12);
        EXPECT_GT(r.latency(), 0.0);
        EXPECT_GE(r.batch, 1);
        EXPECT_LE(r.batch, cfg.max_batch);
        EXPECT_GE(r.start_s, prev_start); // FIFO batches
        prev_start = r.start_s;
    }
    const ServingStats stats = ServingStats::fromRequests(reqs);
    EXPECT_GT(stats.utilization, 0.0);
    EXPECT_LE(stats.utilization, 1.0 + 1e-9);
    EXPECT_GE(stats.mean_batch, 1.0);
    EXPECT_LE(stats.mean_batch, cfg.max_batch);
}

TEST(BatchedServing, BatchingRescuesOverload)
{
    // Arrivals at 100 Hz against a 50 Hz batch-1 server: unbatched the
    // queue grows without bound; with sub-linear batch costs an
    // 8-batch sustains ~150 Hz and latency stays bounded.
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = 100.0;
    cfg.base.num_requests = 2000;
    cfg.base.seed = 11;
    cfg.linger_s = 0.0;

    cfg.max_batch = 1;
    const auto unbatched = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.02, batch)};
        });
    cfg.max_batch = 8;
    const auto batched = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.02, batch)};
        });

    const ServingStats u = ServingStats::fromRequests(unbatched);
    const ServingStats b = ServingStats::fromRequests(batched);
    EXPECT_GT(b.mean_batch, 2.0);
    EXPECT_LT(b.mean_latency_s, u.mean_latency_s / 10)
        << "batched " << b.mean_latency_s << "s vs unbatched "
        << u.mean_latency_s << "s";
    // The overloaded single server must show runaway queueing.
    EXPECT_GT(u.mean_queueing_s, 1.0);
    EXPECT_LT(b.p99_latency_s, 1.0);
}

TEST(BatchedServing, LingerIsPureLatencyWhenIdle)
{
    // At 2 Hz against a 20 ms service, batches never form; lingering
    // only delays every request by the window.
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = 2.0;
    cfg.base.num_requests = 400;
    cfg.base.seed = 13;
    cfg.max_batch = 8;

    cfg.linger_s = 0.0;
    const auto eager = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.02, batch)};
        });
    cfg.linger_s = 0.05;
    const auto lingering = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.02, batch)};
        });

    const ServingStats e = ServingStats::fromRequests(eager);
    const ServingStats l = ServingStats::fromRequests(lingering);
    EXPECT_LT(e.mean_batch, 1.2);
    EXPECT_NEAR(l.mean_latency_s - e.mean_latency_s, 0.05, 0.015);
}

TEST(BatchedServing, FullBatchLaunchesBeforeWindowCloses)
{
    // A huge linger with a burst of arrivals: batches must launch as
    // soon as they fill, not wait out the window.
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = 1000.0;
    cfg.base.num_requests = 64;
    cfg.base.seed = 17;
    cfg.max_batch = 4;
    cfg.linger_s = 10.0;
    const auto reqs = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{224, batchCost(0.001, batch)};
        });
    for (const auto &r : reqs) {
        EXPECT_EQ(r.batch, 4);
        EXPECT_LT(r.latency(), 1.0)
            << "request waited out the linger window despite a full "
               "batch";
    }
}

/** Parameter sweep: invariants across (max_batch, linger, load). */
struct BatchedCase
{
    int max_batch;
    double linger_s;
    double rate_hz;
};

class BatchedSweep : public ::testing::TestWithParam<BatchedCase>
{};

TEST_P(BatchedSweep, StatsSane)
{
    const BatchedCase c = GetParam();
    BatchedConfig cfg;
    cfg.base.arrival_rate_hz = c.rate_hz;
    cfg.base.num_requests = 600;
    cfg.base.seed = 23;
    cfg.max_batch = c.max_batch;
    cfg.linger_s = c.linger_s;
    const auto reqs = simulateServingBatched(
        cfg, [](int, int batch, int) {
            return std::pair{168, batchCost(0.015, batch)};
        });
    const ServingStats stats = ServingStats::fromRequests(reqs);
    EXPECT_GT(stats.mean_latency_s, 0.0);
    EXPECT_GE(stats.p99_latency_s, stats.mean_latency_s * 0.5);
    EXPECT_GE(stats.mean_batch, 1.0);
    EXPECT_LE(stats.mean_batch, c.max_batch);
    EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchedSweep,
    ::testing::Values(BatchedCase{1, 0.0, 30.0},
                      BatchedCase{2, 0.0, 60.0},
                      BatchedCase{4, 0.005, 90.0},
                      BatchedCase{8, 0.01, 120.0},
                      BatchedCase{8, 0.0, 200.0},
                      BatchedCase{16, 0.02, 400.0}),
    [](const ::testing::TestParamInfo<BatchedCase> &info) {
        const BatchedCase &c = info.param;
        return "b" + std::to_string(c.max_batch) + "_l" +
               std::to_string(static_cast<int>(c.linger_s * 1000)) +
               "ms_r" + std::to_string(static_cast<int>(c.rate_hz));
    });

} // namespace
} // namespace tamres
