/**
 * @file
 * Tests for the dataset simulator and the calibrated backbone accuracy
 * model — including the qualitative invariants the paper establishes
 * (train-test resolution discrepancy, crop/scale coupling, SSIM knees)
 * and quantitative anchors from Table I.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/accuracy_model.hh"
#include "sim/dataset.hh"

namespace tamres {
namespace {

double
accuracyAt(const SyntheticDataset &ds, const BackboneAccuracyModel &m,
           double crop, int res, double q = 1.0, int n = 4000)
{
    int correct = 0;
    for (int i = 0; i < n; ++i)
        correct += m.correct(ds.record(i), crop, res, q);
    return static_cast<double>(correct) / n;
}

class SimFixture : public ::testing::Test
{
  protected:
    SimFixture()
        : imagenet(imagenetLike(), 4000, 42),
          cars(carsLike(), 4000, 42),
          rn18_in(BackboneArch::ResNet18, imagenet.spec(), 1),
          rn50_in(BackboneArch::ResNet50, imagenet.spec(), 1),
          rn18_cars(BackboneArch::ResNet18, cars.spec(), 1),
          rn50_cars(BackboneArch::ResNet50, cars.spec(), 1)
    {}

    SyntheticDataset imagenet, cars;
    BackboneAccuracyModel rn18_in, rn50_in, rn18_cars, rn50_cars;
};

TEST(Dataset, DeterministicRecords)
{
    SyntheticDataset a(imagenetLike(), 50, 7);
    SyntheticDataset b(imagenetLike(), 50, 7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.record(i).id, b.record(i).id);
        EXPECT_EQ(a.record(i).label, b.record(i).label);
        EXPECT_EQ(a.record(i).object_scale, b.record(i).object_scale);
    }
}

TEST(Dataset, SpecsDiffer)
{
    const DatasetSpec in = imagenetLike();
    const DatasetSpec cars = carsLike();
    // Cars images are larger and objects fill more of the frame
    // (paper Section V).
    EXPECT_GT(cars.mean_width, in.mean_width);
    EXPECT_GT(cars.object_scale_mean, in.object_scale_mean);
}

TEST(Dataset, MeanDimensionsApproximateSpec)
{
    SyntheticDataset ds(imagenetLike(), 3000, 11);
    double h = 0.0, w = 0.0;
    for (int i = 0; i < ds.size(); ++i) {
        h += ds.record(i).height;
        w += ds.record(i).width;
    }
    // Lognormal jitter biases the mean up slightly; generous bounds.
    EXPECT_NEAR(h / ds.size(), 405, 40);
    EXPECT_NEAR(w / ds.size(), 472, 45);
}

TEST(Dataset, RenderMatchesRecordGeometry)
{
    SyntheticDataset ds(carsLike(), 3, 5);
    const Image img = ds.render(1);
    EXPECT_EQ(img.height(), ds.record(1).height);
    EXPECT_EQ(img.width(), ds.record(1).width);
}

TEST(Dataset, RenderAtClampsLongSide)
{
    SyntheticDataset ds(carsLike(), 3, 5);
    const Image img = ds.renderAt(0, 128);
    EXPECT_LE(std::max(img.height(), img.width()), 128);
    // Aspect preserved within rounding.
    const double ar_full = static_cast<double>(ds.record(0).width) /
                           ds.record(0).height;
    const double ar_small =
        static_cast<double>(img.width()) / img.height();
    EXPECT_NEAR(ar_full, ar_small, 0.05);
}

TEST(Dataset, ShardRangePartitions)
{
    const int size = 103;
    const int k = 4;
    int covered = 0;
    int prev_end = 0;
    for (int s = 0; s < k; ++s) {
        const auto [b, e] = shardRange(size, k, s);
        EXPECT_EQ(b, prev_end);
        EXPECT_GT(e, b);
        covered += e - b;
        prev_end = e;
    }
    EXPECT_EQ(covered, size);
}

TEST(Dataset, IngestStoresAllImages)
{
    SyntheticDataset ds(imagenetLike(), 4, 3);
    ObjectStore store;
    ds.ingest(store, 0, 4);
    EXPECT_EQ(store.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(store.contains(ds.record(i).id));
}

TEST_F(SimFixture, TrainTestResolutionDiscrepancy)
{
    // Paper Table I: at a 75% crop, accuracy peaks near 280, NOT at
    // the highest resolution.
    const double a224 = accuracyAt(imagenet, rn18_in, 0.75, 224);
    const double a280 = accuracyAt(imagenet, rn18_in, 0.75, 280);
    const double a448 = accuracyAt(imagenet, rn18_in, 0.75, 448);
    EXPECT_GT(a280, a224 - 0.005);
    EXPECT_GT(a280, a448 + 0.01);
}

TEST_F(SimFixture, TableIAnchorsWithinTolerance)
{
    // Paper Table I (ResNet-18, ImageNet, 75% crop).
    const std::vector<std::pair<int, double>> anchors = {
        {112, 0.478}, {168, 0.627}, {224, 0.695}, {280, 0.707},
        {336, 0.701}, {392, 0.694}, {448, 0.689},
    };
    for (const auto &[res, paper] : anchors) {
        const double ours = accuracyAt(imagenet, rn18_in, 0.75, res);
        EXPECT_NEAR(ours, paper, 0.04)
            << "resolution " << res << ": paper " << paper << " ours "
            << ours;
    }
}

TEST_F(SimFixture, ResNet50StrongerThanResNet18)
{
    for (int res : {112, 224, 336}) {
        EXPECT_GT(accuracyAt(imagenet, rn50_in, 0.75, res),
                  accuracyAt(imagenet, rn18_in, 0.75, res));
        EXPECT_GT(accuracyAt(cars, rn50_cars, 0.75, res),
                  accuracyAt(cars, rn18_cars, 0.75, res));
    }
}

TEST_F(SimFixture, SmallCropsFavorLowResolutions)
{
    // Paper Figures 8/9: at a 25% center crop the low resolutions win;
    // at 100% the high resolutions win.
    EXPECT_GT(accuracyAt(imagenet, rn18_in, 0.25, 168),
              accuracyAt(imagenet, rn18_in, 0.25, 448));
    EXPECT_GT(accuracyAt(imagenet, rn18_in, 1.0, 336),
              accuracyAt(imagenet, rn18_in, 1.0, 112));
}

TEST_F(SimFixture, CarsCollapsesHarderAtLowResolution)
{
    // Paper: Cars@112 (75% crop) drops to ~36% while ImageNet keeps
    // ~48% — fine-grained classes need detail.
    const double cars112 = accuracyAt(cars, rn18_cars, 0.75, 112);
    const double in112 = accuracyAt(imagenet, rn18_in, 0.75, 112);
    EXPECT_LT(cars112, in112 - 0.05);
}

TEST_F(SimFixture, Cars25CropInversion)
{
    // Paper Section VII-b: for Cars at a 25% crop, accuracy at 448 is
    // LOWER than at 112 — the hallmark scale-mismatch inversion.
    EXPECT_LT(accuracyAt(cars, rn18_cars, 0.25, 448),
              accuracyAt(cars, rn18_cars, 0.25, 112) + 0.02);
}

TEST_F(SimFixture, QualityOnlyHurtsBelowKnee)
{
    // SSIM slightly below 1.0 must cost nothing (the basis for the
    // 20-30% read savings).
    const double full = accuracyAt(imagenet, rn18_in, 0.75, 224, 1.0);
    const double near = accuracyAt(imagenet, rn18_in, 0.75, 224, 0.995);
    EXPECT_NEAR(full, near, 0.004);
    // Far below the knee it must hurt.
    const double bad = accuracyAt(imagenet, rn18_in, 0.75, 224, 0.90);
    EXPECT_LT(bad, full - 0.01);
}

TEST_F(SimFixture, HigherResolutionToleratesLowerSsim)
{
    // Section V observation encoded as a decreasing knee.
    const AccuracyParams p =
        accuracyParams(BackboneArch::ResNet18, imagenetLike());
    const double knee112 = p.q_knee0;
    const double knee448 =
        p.q_knee0 - p.q_knee_slope * std::log(448.0 / 112.0);
    EXPECT_GT(knee112, knee448);

    // Behavioral check: the same sub-knee SSIM costs more accuracy at
    // 112 than at 448.
    const double loss112 =
        accuracyAt(imagenet, rn18_in, 0.75, 112, 1.0) -
        accuracyAt(imagenet, rn18_in, 0.75, 112, 0.97);
    const double loss448 =
        accuracyAt(imagenet, rn18_in, 0.75, 448, 1.0) -
        accuracyAt(imagenet, rn18_in, 0.75, 448, 0.97);
    EXPECT_GT(loss112, loss448);
}

TEST_F(SimFixture, CorrectnessMonotoneInMargin)
{
    // For any image, improving quality can never flip a correct
    // prediction to incorrect (deterministic threshold draw).
    int flips = 0;
    for (int i = 0; i < 500; ++i) {
        const ImageRecord &rec = imagenet.record(i);
        const bool low = rn18_in.correct(rec, 0.75, 224, 0.95);
        const bool high = rn18_in.correct(rec, 0.75, 224, 1.0);
        flips += low && !high;
    }
    EXPECT_EQ(flips, 0);
}

TEST_F(SimFixture, PCorrectConsistentWithDraws)
{
    // Empirical accuracy should track the mean predicted probability
    // (frozen per-image difficulty draws need a large sample).
    SyntheticDataset big(imagenetLike(), 30000, 4242);
    double p_sum = 0.0;
    int correct = 0;
    for (int i = 0; i < big.size(); ++i) {
        const ImageRecord &rec = big.record(i);
        p_sum += rn18_in.pCorrect(rec, 0.75, 280);
        correct += rn18_in.correct(rec, 0.75, 280);
    }
    EXPECT_NEAR(p_sum / big.size(),
                static_cast<double>(correct) / big.size(), 0.012);
}

TEST_F(SimFixture, SeedsProduceDistinctModels)
{
    BackboneAccuracyModel seed2(BackboneArch::ResNet18, imagenet.spec(),
                                2);
    int disagreements = 0;
    for (int i = 0; i < 2000; ++i) {
        const ImageRecord &rec = imagenet.record(i);
        disagreements += rn18_in.correct(rec, 0.75, 224) !=
                         seed2.correct(rec, 0.75, 224);
    }
    EXPECT_GT(disagreements, 20);   // different training runs
    EXPECT_LT(disagreements, 1000); // but highly correlated
}

TEST(AccuracyModelDeath, InvalidCrop)
{
    SyntheticDataset ds(imagenetLike(), 2, 1);
    BackboneAccuracyModel m(BackboneArch::ResNet18, ds.spec(), 1);
    EXPECT_DEATH(m.correct(ds.record(0), 0.0, 224), "crop area");
    EXPECT_DEATH(m.correct(ds.record(0), 1.5, 224), "crop area");
}

TEST(ArchName, Strings)
{
    EXPECT_EQ(archName(BackboneArch::ResNet18), "ResNet-18");
    EXPECT_EQ(archName(BackboneArch::ResNet50), "ResNet-50");
}

/** Parameterized: the scale-mismatch peak exists for every config. */
class PeakSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(PeakSweep, InteriorPeakAt75Crop)
{
    const auto [arch_i, dataset_i] = GetParam();
    const DatasetSpec spec =
        dataset_i == 0 ? imagenetLike() : carsLike();
    SyntheticDataset ds(spec, 4000, 42);
    BackboneAccuracyModel m(static_cast<BackboneArch>(arch_i), spec, 1);
    std::vector<double> acc;
    for (int r : {112, 168, 224, 280, 336, 392, 448})
        acc.push_back(accuracyAt(ds, m, 0.75, r));
    const auto best = std::max_element(acc.begin(), acc.end());
    const size_t idx = best - acc.begin();
    EXPECT_GE(idx, 2u) << "peak too early";
    EXPECT_LE(idx, 5u) << "peak should not sit at 448";
}

INSTANTIATE_TEST_SUITE_P(ArchByDataset, PeakSweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

} // namespace
} // namespace tamres
