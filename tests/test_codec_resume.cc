/**
 * @file
 * Tests for the resumable ProgressiveDecoder: suspending after any
 * scan prefix and resuming later must be bit-identical to a one-shot
 * decode at any thread count, on legacy (v1) and restart-interval
 * (v2) streams, under byte-gated advances and streams whose byte
 * buffer grows between advances (ranged reads appending scans).
 *
 * Run in the TSan CI leg: the resumed decode fans restart ranges over
 * the thread pool from whatever thread resumes, so the suspend points
 * double as synchronization seams worth racing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "codec/progressive.hh"
#include "image/synthetic.hh"
#include "tests/threads_env.hh"
#include "util/cancel.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
randomImage(int h, int w, uint64_t seed)
{
    Image img(h, w, 3);
    Rng rng(seed);
    const float base = static_cast<float>(rng.uniform());
    for (size_t i = 0; i < img.numel(); ++i)
        img.data()[i] = std::clamp(
            base + static_cast<float>(rng.uniform(-0.35, 0.35)), 0.0f,
            1.0f);
    return img;
}

bool
samePixels(const Image &a, const Image &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * a.numel()) == 0;
}

/** Strip the restart side tables: a valid v1 stream, same bytes. */
EncodedImage
asLegacy(const EncodedImage &enc)
{
    EncodedImage legacy = enc;
    legacy.version = EncodedImage::kVersionLegacy;
    legacy.restart_bits.clear();
    legacy.restart_interval = 0;
    return legacy;
}

TEST(CodecResume, EverySuspendPointMatchesOneShotOnV1AndV2)
{
    const Image src = randomImage(41, 29, 3);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 7;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const EncodedImage legacy = asLegacy(enc);

    for (const EncodedImage *stream : {&enc, &legacy}) {
        for (const int threads : {1, 4}) {
            ThreadsEnv env(threads);
            // Suspend after j scans, resume to k, for every j <= k.
            for (int j = 0; j <= stream->numScans(); ++j) {
                ProgressiveDecoder dec(*stream);
                EXPECT_EQ(dec.advanceTo(j), j);
                EXPECT_TRUE(samePixels(dec.image(),
                                       decodeProgressive(*stream, j)))
                    << "prefix " << j << " at " << threads
                    << " threads, v" << stream->version;
                for (int k = j; k <= stream->numScans(); ++k) {
                    dec.advanceTo(k);
                    ASSERT_EQ(dec.scansDecoded(), k);
                }
                EXPECT_TRUE(samePixels(
                    dec.image(),
                    decodeProgressive(*stream, stream->numScans())))
                    << "resume from " << j;
            }
        }
    }
}

TEST(CodecResume, AdvanceNeverRewinds)
{
    const Image src = randomImage(24, 24, 4);
    const EncodedImage enc = encodeProgressive(src);
    ProgressiveDecoder dec(enc);
    dec.advanceTo(3);
    EXPECT_EQ(dec.advanceTo(1), 3) << "advanceTo must not rewind";
    EXPECT_TRUE(samePixels(dec.image(), decodeProgressive(enc, 3)));
}

TEST(CodecResume, ByteGatedAdvanceDecodesExactlyCoveredScans)
{
    const Image src = randomImage(33, 27, 5);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    ProgressiveDecoder dec(enc);

    // One byte short of scan k's end covers only k-1 scans.
    for (int k = 1; k <= enc.numScans(); ++k) {
        EXPECT_EQ(dec.scansCoveredBy(enc.scan_offsets[k] - 1), k - 1);
        EXPECT_EQ(dec.scansCoveredBy(enc.scan_offsets[k]), k);
    }

    size_t budget = 0;
    int decoded = 0;
    Rng rng(6);
    while (decoded < enc.numScans()) {
        budget = std::min(
            enc.bytes.size(),
            budget + 1 +
                static_cast<size_t>(rng.uniformInt(
                    static_cast<uint64_t>(enc.bytes.size() / 3))));
        decoded = dec.advanceWithBytes(budget);
        EXPECT_EQ(decoded, dec.scansCoveredBy(budget));
        EXPECT_TRUE(
            samePixels(dec.image(), decodeProgressive(enc, decoded)))
            << "byte budget " << budget;
    }
}

TEST(CodecResume, SuspendedDecoderContinuesWhenBytesArriveLater)
{
    // Model a ranged read: the EncodedImage starts with only the
    // preview scans' bytes, the decoder suspends, more bytes are
    // appended, the SAME decoder resumes — final pixels must be
    // bit-identical to a one-shot full decode.
    const Image src = randomImage(37, 45, 8);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 16;
    const EncodedImage full = encodeProgressive(src, cfg);
    const Image want = decodeProgressive(full);

    EncodedImage streamed = full;
    streamed.bytes.resize(full.scan_offsets[2]);
    ProgressiveDecoder dec(streamed);
    EXPECT_EQ(dec.advanceWithBytes(streamed.bytes.size()), 2);
    EXPECT_TRUE(samePixels(dec.image(), decodeProgressive(full, 2)));

    // The next ranged read appends the remaining scans.
    streamed.bytes.insert(streamed.bytes.end(),
                          full.bytes.begin() + full.scan_offsets[2],
                          full.bytes.end());
    ThreadsEnv env(4);
    EXPECT_EQ(dec.advanceWithBytes(streamed.bytes.size()),
              full.numScans());
    EXPECT_TRUE(samePixels(dec.image(), want));
}

TEST(CodecResume, SuccessiveApproximationAndChromaSubsamplingResume)
{
    // Refinement scans mutate existing coefficients in place — the
    // hardest case for suspended state — and 4:2:0 chroma exercises
    // the subsampled-plane geometry.
    const Image src = randomImage(40, 32, 9);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.color = ColorMode::YCbCr420;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 4;
    const EncodedImage enc = encodeProgressive(src, cfg);

    for (const int threads : {1, 8}) {
        ThreadsEnv env(threads);
        ProgressiveDecoder dec(enc);
        for (int k = 1; k <= enc.numScans(); ++k) {
            dec.advanceTo(k);
            ASSERT_TRUE(
                samePixels(dec.image(), decodeProgressive(enc, k)))
                << "SA prefix " << k << " at " << threads
                << " threads";
        }
    }
}

TEST(CodecResume, CancelledAdvanceStopsOnBitIdenticalPrefix)
{
    // Cancellation is only observed BETWEEN scans — a scan is the
    // atomic decode unit — so however deep the cancel lands, the
    // suspended prefix must be bit-identical to a clean decode of
    // that depth, and clearing the token must let the SAME decoder
    // resume to a bit-identical full decode.
    const Image src = randomImage(37, 31, 12);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 8;
    const EncodedImage enc = encodeProgressive(src, cfg);

    for (const int threads : {1, 4}) {
        ThreadsEnv env(threads);
        ProgressiveDecoder dec(enc);
        CancelToken tok;
        dec.setCancel(&tok);
        dec.advanceTo(2);
        tok.cancel(CancelReason::Client);
        try {
            dec.advanceTo(enc.numScans());
            FAIL() << "expected Error{Cancelled}";
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
        }
        EXPECT_EQ(dec.scansDecoded(), 2)
            << "cancel must land on the scan boundary, never inside";
        EXPECT_TRUE(samePixels(dec.image(),
                               decodeProgressive(enc, 2)))
            << "cancelled prefix differs from a clean 2-scan decode";

        dec.setCancel(nullptr);
        dec.advanceTo(enc.numScans());
        EXPECT_TRUE(samePixels(
            dec.image(),
            decodeProgressive(enc, enc.numScans())))
            << "resume after cancel not bit-identical at " << threads
            << " threads";
    }
}

TEST(CodecResume, WatchdogFiredTokenThrowsFailFastAndStateSurvives)
{
    // Supervision firings (Watchdog/Abandoned) surface as fail-fast
    // Transient — the operation was abandoned, not the request — and
    // must leave the decoder clean at the boundary for the degrade
    // path to serve the prefix.
    const Image src = randomImage(24, 28, 13);
    const EncodedImage enc = encodeProgressive(src);
    ProgressiveDecoder dec(enc);
    CancelToken tok;
    dec.setCancel(&tok);
    dec.advanceTo(1);
    tok.cancel(CancelReason::Watchdog);
    try {
        dec.advanceTo(enc.numScans());
        FAIL() << "expected fail-fast Error{Transient}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transient);
        EXPECT_TRUE(e.failFast());
    }
    EXPECT_EQ(dec.scansDecoded(), 1);
    EXPECT_TRUE(samePixels(dec.image(), decodeProgressive(enc, 1)));
    dec.setCancel(nullptr);
    dec.advanceTo(enc.numScans());
    EXPECT_TRUE(samePixels(dec.image(), decodeProgressive(enc)));
}

TEST(CodecResume, CancelAtEveryBoundaryPreservesBitIdentity)
{
    // Exhaustive: for every boundary j, cancel there, verify the
    // prefix, then re-decode the object cold to full depth and
    // compare with the never-cancelled reference — cancellation must
    // leave no trace in either the suspended or the re-served path.
    const Image src = randomImage(29, 35, 14);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 16;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image want = decodeProgressive(enc);

    for (int j = 0; j <= enc.numScans(); ++j) {
        ProgressiveDecoder dec(enc);
        CancelToken tok;
        dec.setCancel(&tok);
        dec.advanceTo(j);
        tok.cancel(CancelReason::Deadline);
        if (j < enc.numScans())
            EXPECT_THROW(dec.advanceTo(enc.numScans()), Error)
                << "boundary " << j;
        EXPECT_EQ(dec.scansDecoded(), j);
        EXPECT_TRUE(samePixels(dec.image(),
                               decodeProgressive(enc, j)))
            << "boundary " << j;

        ProgressiveDecoder cold(enc);
        cold.advanceTo(enc.numScans());
        EXPECT_TRUE(samePixels(cold.image(), want))
            << "re-serve after cancel at boundary " << j;
    }
}

TEST(CodecSnapshot, ResumeBitIdenticalAtEveryBoundary)
{
    // The decode-cache contract: snapshot() after j scans, hand the
    // snapshot to a FRESH decoder over a delivery whose payload is
    // zero-filled up to the resume offset (bytes below the boundary
    // are never read), and both the resumed prefix and the decode it
    // continues into must be bit-identical to cold decodes.
    const Image src = randomImage(39, 31, 21);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 8;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const EncodedImage legacy = asLegacy(enc);

    for (const EncodedImage *stream : {&enc, &legacy}) {
        const Image want =
            decodeProgressive(*stream, stream->numScans());
        for (const int threads : {1, 4}) {
            ThreadsEnv env(threads);
            for (int j = 0; j <= stream->numScans(); ++j) {
                ProgressiveDecoder dec(*stream);
                dec.advanceTo(j);
                const DecoderSnapshot snap = dec.snapshot();
                ASSERT_TRUE(snap.valid());
                ASSERT_EQ(snap.scansDecoded(), j);

                EncodedImage streamed = stream->headerCopy();
                streamed.bytes.assign(stream->scan_offsets[j], 0);
                ProgressiveDecoder resumed(streamed, snap);
                ASSERT_EQ(resumed.scansDecoded(), j);
                EXPECT_TRUE(
                    samePixels(resumed.image(),
                               decodeProgressive(*stream, j)))
                    << "resumed prefix " << j << " at " << threads
                    << " threads, v" << stream->version;

                // The missing range arrives: real bytes appended
                // after the zero placeholder, decode runs to full.
                streamed.bytes.insert(
                    streamed.bytes.end(),
                    stream->bytes.begin() + stream->scan_offsets[j],
                    stream->bytes.end());
                EXPECT_EQ(
                    resumed.advanceWithBytes(streamed.bytes.size()),
                    stream->numScans());
                EXPECT_TRUE(samePixels(resumed.image(), want))
                    << "resume from snapshot at " << j;
            }
        }
    }
}

TEST(CodecSnapshot, OneSnapshotServesManyConcurrentResumes)
{
    // A cached snapshot is shared by every request that hits it; the
    // deep-copy-on-resume contract means N concurrent resumes from
    // ONE snapshot never alias each other's coefficient state. Run
    // under TSan in CI.
    const Image src = randomImage(43, 37, 22);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 16;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image want = decodeProgressive(enc, enc.numScans());
    const int j = 2;
    const Image at_j = decodeProgressive(enc, j);

    ProgressiveDecoder dec(enc);
    dec.advanceTo(j);
    const DecoderSnapshot snap = dec.snapshot();

    constexpr int kResumers = 8;
    std::vector<int> ok(kResumers, 0);
    std::vector<std::thread> workers;
    workers.reserve(kResumers);
    for (int w = 0; w < kResumers; ++w) {
        workers.emplace_back([&, w] {
            EncodedImage streamed = enc.headerCopy();
            streamed.bytes.assign(enc.scan_offsets[j], 0);
            ProgressiveDecoder resumed(streamed, snap);
            const bool prefix_ok =
                samePixels(resumed.image(), at_j);
            // Half stop at the prefix, half continue to full: mixed
            // read-only and advancing users of the same snapshot.
            bool full_ok = true;
            if (w % 2 == 0) {
                streamed.bytes.insert(
                    streamed.bytes.end(),
                    enc.bytes.begin() + enc.scan_offsets[j],
                    enc.bytes.end());
                resumed.advanceWithBytes(streamed.bytes.size());
                full_ok = samePixels(resumed.image(), want);
            }
            ok[w] = prefix_ok && full_ok;
        });
    }
    for (auto &t : workers)
        t.join();
    for (int w = 0; w < kResumers; ++w)
        EXPECT_TRUE(ok[w]) << "resumer " << w;

    // The donor decoder is untouched by the resumes.
    EXPECT_EQ(dec.scansDecoded(), j);
    EXPECT_TRUE(samePixels(dec.image(), at_j));
}

TEST(CodecSnapshotError, MismatchedStreamRejectedAsCorrupt)
{
    // A snapshot fingerprints its source stream (geometry, quality,
    // color, scan script); resuming against a DIFFERENT object —
    // what a put()-replaced id would look like without invalidation —
    // must throw Corrupt, never decode garbage.
    const Image a = randomImage(32, 32, 23);
    const Image b = randomImage(40, 24, 24);
    const EncodedImage enc_a = encodeProgressive(a);
    const EncodedImage enc_b = encodeProgressive(b);

    ProgressiveDecoder dec(enc_a);
    dec.advanceTo(2);
    const DecoderSnapshot snap = dec.snapshot();

    EncodedImage streamed = enc_b.headerCopy();
    streamed.bytes = enc_b.bytes;
    try {
        ProgressiveDecoder resumed(streamed, snap);
        FAIL() << "expected Error{Corrupt}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Corrupt);
    }

    EXPECT_THROW(ProgressiveDecoder(streamed, DecoderSnapshot{}),
                 Error)
        << "an invalid (default) snapshot must be rejected too";
}

TEST(CodecResumeError, TruncatedAdvanceThrowsAndStateSurvives)
{
    const Image src = randomImage(24, 24, 11);
    EncodedImage enc = encodeProgressive(src);
    const size_t full = enc.bytes.size();
    enc.bytes.resize(enc.scan_offsets[2]);
    ProgressiveDecoder dec(enc);
    dec.advanceTo(2); // covered prefix is fine
    try {
        dec.advanceTo(enc.numScans());
        FAIL() << "expected Error{Truncated}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Truncated);
    }
    // The failed advance must leave the decoder resumable: restoring
    // the missing bytes and re-advancing yields the clean decode.
    EXPECT_EQ(dec.scansDecoded(), 2);
    enc.bytes.resize(full);
    const EncodedImage clean = encodeProgressive(src);
    std::memcpy(enc.bytes.data() + enc.scan_offsets[2],
                clean.bytes.data() + enc.scan_offsets[2],
                full - enc.scan_offsets[2]);
    dec.advanceTo(enc.numScans());
    EXPECT_TRUE(samePixels(dec.image(), decodeProgressive(clean)));
}

} // namespace
} // namespace tamres
