/**
 * @file
 * Correctness tests for the Winograd F(2x2, 3x3) and depthwise conv
 * kernels against the reference loop nest, across a sweep of shapes,
 * paddings, and blocking parameters, plus validity-predicate checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/builders.hh"
#include "nn/conv_kernels.hh"
#include "nn/graph.hh"
#include "nn/kernel_selector.hh"
#include "nn/ops.hh"
#include "tensor/tensor_ops.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

struct ConvCase
{
    ConvProblem problem;
    const char *name;
};

std::vector<float>
randomVec(size_t n, uint64_t seed, float lo = -1.0f, float hi = 1.0f)
{
    std::vector<float> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(lo, hi));
    return v;
}

/** Run cfg and reference on random data; return max abs error. */
double
maxError(const ConvProblem &p, const ConvConfig &cfg)
{
    const size_t in_n = static_cast<size_t>(p.n) * p.ic * p.ih * p.iw;
    const size_t w_n = static_cast<size_t>(p.oc) * (p.ic / p.groups) *
                       p.kh * p.kw;
    const size_t out_n =
        static_cast<size_t>(p.n) * p.oc * p.oh() * p.ow();
    const auto in = randomVec(in_n, 1);
    const auto w = randomVec(w_n, 2, -0.5f, 0.5f);
    const auto bias = randomVec(p.oc, 3);
    std::vector<float> out(out_n), ref(out_n);
    convForward(p, in.data(), w.data(), bias.data(), out.data(), cfg);
    convReference(p, in.data(), w.data(), bias.data(), ref.data());
    double err = 0.0;
    for (size_t i = 0; i < out_n; ++i)
        err = std::max(err,
                       std::fabs(static_cast<double>(out[i]) - ref[i]));
    return err;
}

// --- Winograd ---

class WinogradShapes : public ::testing::TestWithParam<ConvProblem>
{};

TEST_P(WinogradShapes, MatchesReference)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    ASSERT_TRUE(convConfigValid(GetParam(), cfg));
    // Winograd loses a little precision to the transforms; tolerance
    // scales with the reduction depth.
    const double tol = 1e-3 * std::sqrt(GetParam().ic * 9.0);
    EXPECT_LT(maxError(GetParam(), cfg), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinogradShapes,
    ::testing::Values(
        // Even output extent, pad 1 (the ResNet interior case).
        ConvProblem{1, 16, 16, 16, 8, 3, 3, 1, 1, 1},
        // Odd output extent: fringe tiles exercised.
        ConvProblem{1, 8, 15, 15, 8, 3, 3, 1, 1, 1},
        // No padding.
        ConvProblem{1, 4, 18, 18, 4, 3, 3, 1, 0, 1},
        // Rectangular.
        ConvProblem{1, 8, 14, 22, 16, 3, 3, 1, 1, 1},
        // Batch > 1.
        ConvProblem{2, 8, 12, 12, 8, 3, 3, 1, 1, 1},
        // Deep channels (the regime where Winograd wins).
        ConvProblem{1, 64, 14, 14, 64, 3, 3, 1, 1, 1},
        // Tiny spatial extent: single partial tile row/column.
        ConvProblem{1, 4, 5, 5, 4, 3, 3, 1, 1, 1},
        // Minimum extent.
        ConvProblem{1, 2, 3, 3, 2, 3, 3, 1, 1, 1}),
    [](const ::testing::TestParamInfo<ConvProblem> &info) {
        std::string k = info.param.key();
        for (char &c : k)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return k;
    });

TEST(Winograd, ThreadedMatchesReference)
{
    const ConvProblem p{1, 16, 18, 18, 16, 3, 3, 1, 1, 1};
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    cfg.wino_tile_block = 8;
    cfg.threads = 4;
    ASSERT_TRUE(convConfigValid(p, cfg));
    EXPECT_LT(maxError(p, cfg), 0.05);
}

TEST(Winograd, TileBlockSweepAllMatch)
{
    const ConvProblem p{1, 16, 20, 20, 16, 3, 3, 1, 1, 1};
    for (int tb : {4, 16, 64, 100, 256, 4096}) {
        ConvConfig cfg;
        cfg.algo = ConvAlgo::Winograd;
        cfg.wino_tile_block = tb;
        ASSERT_TRUE(convConfigValid(p, cfg)) << "tb=" << tb;
        EXPECT_LT(maxError(p, cfg), 0.05) << "tb=" << tb;
    }
}

TEST(Winograd, GemmKnobSweepAllMatch)
{
    const ConvProblem p{1, 32, 12, 12, 32, 3, 3, 1, 1, 1};
    for (int mr : {2, 4, 8}) {
        for (int nr : {4, 8, 16}) {
            ConvConfig cfg;
            cfg.algo = ConvAlgo::Winograd;
            cfg.mr = mr;
            cfg.nr = nr;
            cfg.mc = 16;
            cfg.kc = 32;
            cfg.nc = 64;
            ASSERT_TRUE(convConfigValid(p, cfg));
            EXPECT_LT(maxError(p, cfg), 0.05)
                << "mr=" << mr << " nr=" << nr;
        }
    }
}

TEST(Winograd, ValidityRejectsIneligibleProblems)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    // Stride 2.
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 8, 3, 3, 2, 1, 1}, cfg));
    // 1x1 kernel.
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 8, 1, 1, 1, 0, 1}, cfg));
    // Grouped.
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 8, 3, 3, 1, 1, 8}, cfg));
    // 7x7 kernel.
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 3, 32, 32, 8, 7, 7, 1, 3, 1}, cfg));
}

// --- Depthwise ---

class DepthwiseShapes : public ::testing::TestWithParam<ConvProblem>
{};

TEST_P(DepthwiseShapes, MatchesReference)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Depthwise;
    ASSERT_TRUE(convConfigValid(GetParam(), cfg));
    EXPECT_LT(maxError(GetParam(), cfg), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DepthwiseShapes,
    ::testing::Values(
        // MobileNetV2's 3x3 stride-1 depthwise.
        ConvProblem{1, 32, 28, 28, 32, 3, 3, 1, 1, 32},
        // Stride-2 downsampling depthwise.
        ConvProblem{1, 24, 28, 28, 24, 3, 3, 2, 1, 24},
        // 5x5 depthwise.
        ConvProblem{1, 8, 17, 17, 8, 5, 5, 1, 2, 8},
        // Batch > 1, odd extent.
        ConvProblem{2, 16, 15, 19, 16, 3, 3, 1, 1, 16}),
    [](const ::testing::TestParamInfo<ConvProblem> &info) {
        std::string k = info.param.key();
        for (char &c : k)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return k;
    });

TEST(Depthwise, ThreadedMatchesReference)
{
    const ConvProblem p{2, 16, 21, 17, 16, 3, 3, 1, 1, 16};
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Depthwise;
    cfg.ow_tile = 8;
    cfg.threads = 4;
    ASSERT_TRUE(convConfigValid(p, cfg));
    EXPECT_LT(maxError(p, cfg), 1e-4);
}

TEST(ThreadedConv, AllAlgosMatchReference)
{
    // Every algorithm family at a multi-thread config against the
    // serial reference loop nest.
    const ConvProblem dense{2, 12, 17, 19, 20, 3, 3, 1, 1, 1};
    for (ConvAlgo algo :
         {ConvAlgo::Direct, ConvAlgo::Im2col, ConvAlgo::Winograd}) {
        ConvConfig cfg;
        cfg.algo = algo;
        cfg.mc = 16;
        cfg.kc = 32;
        cfg.nc = 64;
        cfg.threads = 3;
        ASSERT_TRUE(convConfigValid(dense, cfg))
            << convAlgoName(algo);
        const double tol = algo == ConvAlgo::Winograd ? 0.05 : 1e-3;
        EXPECT_LT(maxError(dense, cfg), tol) << convAlgoName(algo);
    }
}

TEST(Depthwise, OwTileSweepAllMatch)
{
    const ConvProblem p{1, 12, 14, 30, 12, 3, 3, 1, 1, 12};
    for (int owt : {1, 4, 7, 16, 32}) {
        ConvConfig cfg;
        cfg.algo = ConvAlgo::Depthwise;
        cfg.ow_tile = owt;
        ASSERT_TRUE(convConfigValid(p, cfg));
        EXPECT_LT(maxError(p, cfg), 1e-4) << "ow_tile=" << owt;
    }
}

TEST(Depthwise, ValidityRequiresFullGrouping)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Depthwise;
    // Dense conv.
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 8, 3, 3, 1, 1, 1}, cfg));
    // Grouped but not depthwise (2 channels per group).
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 8, 3, 3, 1, 1, 4}, cfg));
    // Depthwise with channel multiplier (oc != ic).
    EXPECT_FALSE(convConfigValid(
        ConvProblem{1, 8, 16, 16, 16, 3, 3, 1, 1, 8}, cfg));
}

TEST(GraphWithNewAlgos, ResNetOutputsMatchLibraryMode)
{
    // Register Winograd for every eligible conv of a small ResNet-18
    // and Depthwise for MobileNet's grouped convs, then verify whole-
    // network outputs match Library mode (numerical tolerance scaled
    // for the transform arithmetic).
    auto check = [](Graph &graph, int res, float tol) {
        KernelSelector::instance().clearTuned();
        Tensor in({1, 3, res, res});
        Rng rng(3);
        fillUniform(in, rng, 0.0f, 1.0f);

        KernelSelector::instance().setMode(KernelMode::Library);
        const Tensor ref = graph.run(in);

        // Register the specialized algos where valid.
        graph.visitShapes(
            {1, 3, res, res},
            [&](Op &op, const std::vector<Shape> &ins) {
                auto *conv = dynamic_cast<Conv2d *>(&op);
                if (!conv)
                    return;
                const ConvProblem p = conv->problemFor(ins[0]);
                ConvConfig wino;
                wino.algo = ConvAlgo::Winograd;
                ConvConfig dw;
                dw.algo = ConvAlgo::Depthwise;
                if (convConfigValid(p, wino))
                    KernelSelector::instance().registerTuned(p, wino);
                else if (convConfigValid(p, dw))
                    KernelSelector::instance().registerTuned(p, dw);
            });
        KernelSelector::instance().setMode(KernelMode::Tuned);
        const Tensor out = graph.run(in);
        KernelSelector::instance().setMode(KernelMode::Library);
        KernelSelector::instance().clearTuned();

        ASSERT_EQ(out.numel(), ref.numel());
        for (size_t i = 0; i < out.numel(); ++i)
            ASSERT_NEAR(out.data()[i], ref.data()[i], tol) << i;
    };

    auto rn18 = buildResNet18(10, 5);
    check(*rn18, 64, 2e-2f);
    auto mbv2 = buildMobileNetV2(10, 5);
    check(*mbv2, 64, 2e-2f);
}

TEST(ConvAlgoNames, AllDistinct)
{
    EXPECT_STREQ(convAlgoName(ConvAlgo::Reference), "reference");
    EXPECT_STREQ(convAlgoName(ConvAlgo::Direct), "direct");
    EXPECT_STREQ(convAlgoName(ConvAlgo::Im2col), "im2col");
    EXPECT_STREQ(convAlgoName(ConvAlgo::Winograd), "winograd");
    EXPECT_STREQ(convAlgoName(ConvAlgo::Depthwise), "depthwise");
}

TEST(ConvConfigString, EncodesWinogradKnobs)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    cfg.wino_tile_block = 128;
    const std::string s = cfg.toString();
    EXPECT_NE(s.find("winograd"), std::string::npos);
    EXPECT_NE(s.find("tb=128"), std::string::npos);
}

} // namespace
} // namespace tamres
