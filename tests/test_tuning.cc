/**
 * @file
 * Tests for the autotuner: measurement sanity, cache persistence, and
 * the never-regress-below-seeds property.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/builders.hh"
#include "nn/kernel_selector.hh"
#include "tuning/tuner.hh"

namespace tamres {
namespace {

ConvProblem
smallProblem()
{
    return {.n = 1, .ic = 16, .ih = 28, .iw = 28, .oc = 16, .kh = 3,
            .kw = 3, .stride = 1, .pad = 1};
}

TEST(Measure, PositiveTimeAndThroughput)
{
    const ConvProblem p = smallProblem();
    const MeasureResult r =
        measureConv(p, KernelSelector::defaultConfig(p), 2);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.gflops(p), 0.0);
}

TEST(Measure, ReferenceSlowerThanBlocked)
{
    // On any sane host the reference loop nest cannot beat the blocked
    // GEMM on a compute-heavy shape.
    const ConvProblem p{.n = 1, .ic = 64, .ih = 28, .iw = 28, .oc = 64,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    const MeasureResult ref =
        measureConv(p, {.algo = ConvAlgo::Reference}, 2);
    const MeasureResult gemm =
        measureConv(p, KernelSelector::defaultConfig(p), 2);
    EXPECT_LT(gemm.seconds, ref.seconds);
}

TEST(Tuner, BestAtLeastAsGoodAsSeeds)
{
    const ConvProblem p = smallProblem();
    AutoTuner tuner;
    TuneOptions opts;
    opts.trials = 6;
    opts.reps = 2;
    opts.time_budget_s = 5.0;
    const MeasureResult best = tuner.tune(p, opts);

    const MeasureResult lib =
        measureConv(p, KernelSelector::libraryConfig(p), 2);
    // Allow 25% measurement noise on a shared host.
    EXPECT_LT(best.seconds, lib.seconds * 1.25);
}

TEST(Tuner, EnumeratesResNetConvProblems)
{
    auto g = buildResNet18();
    const auto problems =
        AutoTuner::convProblems(*g, {1, 3, 224, 224});
    // 20 convs, but repeated blocks share shapes: expect 12 unique.
    EXPECT_GE(problems.size(), 10u);
    EXPECT_LE(problems.size(), 20u);
    for (const auto &p : problems) {
        EXPECT_GT(p.macs(), 0);
        EXPECT_EQ(p.n, 1);
    }
}

TEST(Tuner, ProblemsChangeWithResolution)
{
    auto g = buildResNet18();
    const auto at224 = AutoTuner::convProblems(*g, {1, 3, 224, 224});
    const auto at112 = AutoTuner::convProblems(*g, {1, 3, 112, 112});
    ASSERT_EQ(at224.size(), at112.size());
    EXPECT_NE(at224[0].key(), at112[0].key());
}

TEST(ConfigCache, RoundTripThroughFile)
{
    const std::string path = "/tmp/tamres_test_cache.txt";
    std::remove(path.c_str());
    const ConvProblem p = smallProblem();
    const ConvConfig cfg{.algo = ConvAlgo::Direct, .oc_tile = 2,
                         .ow_tile = 14};
    {
        ConfigCache cache(path);
        EXPECT_EQ(cache.size(), 0u);
        cache.store(p, cfg, 12.5);
    }
    {
        ConfigCache cache(path);
        EXPECT_EQ(cache.size(), 1u);
        ConvConfig got;
        double gf = 0.0;
        ASSERT_TRUE(cache.lookup(p, got, &gf));
        EXPECT_EQ(got, cfg);
        EXPECT_NEAR(gf, 12.5, 1e-6);
    }
    std::remove(path.c_str());
}

TEST(ConfigCache, MissingLookupFails)
{
    ConfigCache cache;
    ConvConfig cfg;
    EXPECT_FALSE(cache.lookup(smallProblem(), cfg, nullptr));
}

TEST(ConfigCache, TunerUsesCache)
{
    const std::string path = "/tmp/tamres_test_cache2.txt";
    std::remove(path.c_str());
    ConfigCache cache(path);
    const ConvProblem p = smallProblem();
    const ConvConfig pinned{.algo = ConvAlgo::Direct, .oc_tile = 4,
                            .ow_tile = 7};
    cache.store(p, pinned, 99.0);

    AutoTuner tuner(&cache);
    TuneOptions opts;
    opts.trials = 2;
    // Cache hit: returns the pinned config without re-measuring.
    const MeasureResult r = tuner.tune(p, opts);
    EXPECT_EQ(r.config, pinned);
    std::remove(path.c_str());
}

TEST(Tuner, TuneNetworkRegistersConfigs)
{
    KernelSelector &sel = KernelSelector::instance();
    sel.clearTuned();
    auto g = buildTinyCnn(4, 8);
    AutoTuner tuner;
    TuneOptions opts;
    opts.trials = 3;
    opts.reps = 1;
    opts.time_budget_s = 2.0;
    tuner.tuneNetwork(*g, {1, 3, 32, 32}, opts);
    EXPECT_EQ(sel.tunedCount(),
              AutoTuner::convProblems(*g, {1, 3, 32, 32}).size());
    sel.clearTuned();
}

} // namespace
} // namespace tamres
