/**
 * @file
 * Tests for post-training int8 quantization: scalar helpers, the
 * integer convolution kernel, QuantConv2d, calibration, and the
 * whole-graph rewrite.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/builders.hh"
#include "nn/graph.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Tensor
randomTensor(const Shape &shape, Rng &rng, double amp = 1.0)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = static_cast<float>(rng.uniform(-amp, amp));
    return t;
}

/** Relative RMS error of @p got vs @p want. */
double
relError(const float *got, const float *want, size_t n)
{
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(got[i]) - want[i];
        num += d * d;
        den += static_cast<double>(want[i]) * want[i];
    }
    return std::sqrt(num / std::max(den, 1e-20));
}

// --- scalar helpers ---

TEST(QuantHelpers, MaxAbs)
{
    const float v[] = {0.5f, -2.25f, 1.0f, 0.0f};
    EXPECT_FLOAT_EQ(maxAbsValue(v, 4), 2.25f);
    EXPECT_FLOAT_EQ(maxAbsValue(v, 0), 0.0f);
}

TEST(QuantHelpers, ScaleNeverZero)
{
    EXPECT_GT(symmetricScale(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(symmetricScale(127.0f), 1.0f);
}

TEST(QuantHelpers, RoundTripErrorBound)
{
    Rng rng(5);
    constexpr size_t n = 4096;
    std::vector<float> src(n), back(n);
    std::vector<int8_t> q(n);
    for (size_t i = 0; i < n; ++i)
        src[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
    const float scale = symmetricScale(maxAbsValue(src.data(), n));
    quantizeSymmetric(src.data(), n, scale, q.data());
    dequantizeSymmetric(q.data(), n, scale, back.data());
    for (size_t i = 0; i < n; ++i) {
        // Round-to-nearest: error at most half a step.
        EXPECT_LE(std::abs(back[i] - src[i]), scale * 0.5f + 1e-7f);
    }
}

TEST(QuantHelpers, SaturatesAtClampEdge)
{
    const float big[] = {10.0f, -10.0f};
    int8_t q[2];
    quantizeSymmetric(big, 2, /*scale=*/0.01f, q);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -127);
}

// --- integer convolution kernel ---

struct ConvCase
{
    int ic, ih, iw, oc, k, stride, pad;
};

class Int8ConvSweep : public ::testing::TestWithParam<ConvCase>
{};

TEST_P(Int8ConvSweep, MatchesReferenceWithinQuantNoise)
{
    const ConvCase c = GetParam();
    ConvProblem p;
    p.n = 2;
    p.ic = c.ic;
    p.ih = c.ih;
    p.iw = c.iw;
    p.oc = c.oc;
    p.kh = p.kw = c.k;
    p.stride = c.stride;
    p.pad = c.pad;

    Rng rng(17);
    const int K = p.ic * p.kh * p.kw;
    std::vector<float> in(static_cast<size_t>(p.n) * p.ic * p.ih *
                          p.iw);
    std::vector<float> w(static_cast<size_t>(p.oc) * K);
    std::vector<float> bias(p.oc);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto &v : bias)
        v = static_cast<float>(rng.uniform(-0.1, 0.1));

    const size_t out_n =
        static_cast<size_t>(p.n) * p.oc * p.oh() * p.ow();
    std::vector<float> ref(out_n), got(out_n);
    convReference(p, in.data(), w.data(), bias.data(), ref.data());

    std::vector<int8_t> wq(w.size());
    std::vector<float> w_scales(p.oc);
    for (int oc = 0; oc < p.oc; ++oc) {
        const float *row = w.data() + static_cast<size_t>(oc) * K;
        w_scales[oc] = symmetricScale(maxAbsValue(row, K));
        quantizeSymmetric(row, K, w_scales[oc],
                          wq.data() + static_cast<size_t>(oc) * K);
    }
    convForwardInt8(p, in.data(), /*act_scale=*/0.0f, wq.data(),
                    w_scales.data(), bias.data(), /*fused_relu=*/false,
                    got.data());
    EXPECT_LT(relError(got.data(), ref.data(), out_n), 0.03)
        << "int8 conv deviates beyond quantization noise";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Int8ConvSweep,
    ::testing::Values(ConvCase{3, 17, 17, 8, 3, 1, 1},
                      ConvCase{8, 14, 14, 16, 3, 2, 1},
                      ConvCase{16, 9, 9, 8, 1, 1, 0},
                      ConvCase{4, 21, 13, 6, 5, 2, 2},
                      ConvCase{32, 7, 7, 32, 3, 1, 1},
                      ConvCase{8, 8, 8, 4, 7, 1, 3}),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        const ConvCase &c = info.param;
        return "ic" + std::to_string(c.ic) + "k" + std::to_string(c.k) +
               "s" + std::to_string(c.stride) + "p" +
               std::to_string(c.pad) + "_" + std::to_string(c.ih) +
               "x" + std::to_string(c.iw) + "oc" +
               std::to_string(c.oc);
    });

TEST(Int8Conv, PerChannelBeatsPerTensor)
{
    // Give output channels wildly different weight magnitudes; a
    // single tensor-wide scale starves the small channels of
    // precision, the per-channel scheme does not.
    ConvProblem p;
    p.n = 1;
    p.ic = 4;
    p.ih = p.iw = 12;
    p.oc = 4;
    p.kh = p.kw = 3;
    p.stride = 1;
    p.pad = 1;
    const int K = p.ic * 9;

    Rng rng(23);
    std::vector<float> in(static_cast<size_t>(p.ic) * p.ih * p.iw);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> w(static_cast<size_t>(p.oc) * K);
    const float channel_amp[4] = {4.0f, 0.02f, 0.5f, 0.005f};
    for (int oc = 0; oc < p.oc; ++oc) {
        for (int k = 0; k < K; ++k) {
            w[static_cast<size_t>(oc) * K + k] = static_cast<float>(
                rng.uniform(-channel_amp[oc], channel_amp[oc]));
        }
    }

    const size_t out_n = static_cast<size_t>(p.oc) * p.oh() * p.ow();
    std::vector<float> ref(out_n);
    convReference(p, in.data(), w.data(), nullptr, ref.data());

    // Per-channel scales.
    std::vector<int8_t> wq(w.size());
    std::vector<float> scales(p.oc);
    for (int oc = 0; oc < p.oc; ++oc) {
        const float *row = w.data() + static_cast<size_t>(oc) * K;
        scales[oc] = symmetricScale(maxAbsValue(row, K));
        quantizeSymmetric(row, K, scales[oc],
                          wq.data() + static_cast<size_t>(oc) * K);
    }
    std::vector<float> got_pc(out_n);
    convForwardInt8(p, in.data(), 0.0f, wq.data(), scales.data(),
                    nullptr, false, got_pc.data());

    // One tensor-wide scale.
    const float global = symmetricScale(maxAbsValue(w.data(),
                                                    w.size()));
    std::vector<float> gscales(p.oc, global);
    quantizeSymmetric(w.data(), w.size(), global, wq.data());
    std::vector<float> got_pt(out_n);
    convForwardInt8(p, in.data(), 0.0f, wq.data(), gscales.data(),
                    nullptr, false, got_pt.data());

    // Global RMS hides the damage (large channels dominate); the
    // failure mode of a tensor-wide scale is that it quantizes the
    // small channels' weights to all-zero. Compare the worst
    // per-output-channel relative error.
    const size_t npix = static_cast<size_t>(p.oh()) * p.ow();
    double worst_pc = 0.0, worst_pt = 0.0;
    for (int oc = 0; oc < p.oc; ++oc) {
        const size_t off = static_cast<size_t>(oc) * npix;
        worst_pc = std::max(worst_pc,
                            relError(got_pc.data() + off,
                                     ref.data() + off, npix));
        worst_pt = std::max(worst_pt,
                            relError(got_pt.data() + off,
                                     ref.data() + off, npix));
    }
    EXPECT_LT(worst_pc, 0.05);
    EXPECT_GT(worst_pt, 0.5)
        << "expected the tensor-wide scale to zero out the smallest "
           "channel";
}

// --- QuantConv2d op ---

TEST(QuantConv2d, MatchesFloatConv)
{
    Rng rng(31);
    Conv2d conv("c", 8, 12, 3, 1, 1, 1, /*bias=*/true);
    conv.initKaiming(rng);
    const Tensor in = randomTensor({1, 8, 15, 15}, rng);

    Tensor want(conv.outputShape({in.shape()}));
    conv.forward({&in}, want);

    QuantConv2d qconv(conv);
    EXPECT_EQ(qconv.outputShape({in.shape()}), want.shape());
    EXPECT_EQ(qconv.flops({in.shape()}), conv.flops({in.shape()}));
    Tensor got(want.shape());
    qconv.forward({&in}, got);
    EXPECT_LT(relError(got.data(), want.data(),
                       static_cast<size_t>(got.numel())), 0.03);
}

TEST(QuantConv2d, CarriesFusedRelu)
{
    Rng rng(37);
    Conv2d conv("c", 4, 4, 3, 1, 1);
    conv.initKaiming(rng);
    conv.setFusedRelu(true);
    QuantConv2d qconv(conv);
    EXPECT_TRUE(qconv.fusedRelu());

    const Tensor in = randomTensor({1, 4, 9, 9}, rng);
    Tensor out(qconv.outputShape({in.shape()}));
    qconv.forward({&in}, out);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_GE(out.data()[i], 0.0f);
}

TEST(QuantConv2d, StaticScaleMatchesDynamicWhenCalibrated)
{
    Rng rng(41);
    Conv2d conv("c", 4, 6, 3, 1, 1);
    conv.initKaiming(rng);
    const Tensor in = randomTensor({1, 4, 11, 11}, rng);
    const float scale = symmetricScale(
        maxAbsValue(in.data(), static_cast<size_t>(in.numel())));

    QuantConv2d dynamic(conv, 0.0f);
    QuantConv2d fixed(conv, scale);
    Tensor a(dynamic.outputShape({in.shape()}));
    Tensor b(a.shape());
    dynamic.forward({&in}, a);
    fixed.forward({&in}, b);
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(QuantConv2dDeath, RejectsGroupedConvs)
{
    Rng rng(43);
    Conv2d depthwise("dw", 8, 8, 3, 1, 1, /*groups=*/8);
    depthwise.initKaiming(rng);
    EXPECT_DEATH(QuantConv2d{depthwise}, "groups");
}

// --- calibration + whole-graph rewrite ---

TEST(QuantGraph, CalibrationRecordsPerConvMaxima)
{
    auto g = buildTinyCnn(4, 8, 7);
    Rng rng(47);
    std::vector<Tensor> samples;
    samples.push_back(randomTensor({1, 3, 32, 32}, rng, 0.5));
    samples.push_back(randomTensor({1, 3, 32, 32}, rng, 1.0));
    const QuantCalibration cal = calibrateActivations(*g, samples);

    int convs = 0;
    g->forEachOp([&](Op &op) {
        if (op.type() == "Conv2d")
            ++convs;
    });
    EXPECT_EQ(static_cast<int>(cal.act_max.size()), convs);
    for (const auto &[name, m] : cal.act_max)
        EXPECT_GT(m, 0.0f) << name;

    // The graph input plane max must be what the first conv saw: the
    // larger of the two sample amplitudes.
    float first_max = 0.0f;
    for (const Tensor &t : samples)
        first_max = std::max(
            first_max,
            maxAbsValue(t.data(), static_cast<size_t>(t.numel())));
    bool found_first = false;
    for (const auto &[name, m] : cal.act_max) {
        if (std::abs(m - first_max) < 1e-6f)
            found_first = true;
    }
    EXPECT_TRUE(found_first);
}

TEST(QuantGraph, ResNet18RewriteKeepsOutputsClose)
{
    auto g = buildResNet18(16, /*seed=*/7);
    foldBatchNorms(*g);
    fuseConvRelu(*g);
    Rng rng(53);
    const Tensor in = randomTensor({1, 3, 64, 64}, rng, 0.8);
    const Tensor want = g->run(in);

    const QuantCalibration cal = calibrateActivations(*g, {in});
    const int rewritten = quantizeConvs(*g, &cal);
    EXPECT_EQ(rewritten, 20); // 17 residual/stem convs + 3 downsamples

    int remaining_fp32 = 0;
    g->forEachOp([&](Op &op) {
        if (op.type() == "Conv2d")
            ++remaining_fp32;
    });
    EXPECT_EQ(remaining_fp32, 0);

    const Tensor got = g->run(in);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_LT(relError(got.data(), want.data(),
                       static_cast<size_t>(got.numel())), 0.10)
        << "quantization noise after 20 stacked int8 layers";
}

TEST(QuantGraph, MobileNetV2KeepsDepthwiseInFp32)
{
    auto g = buildMobileNetV2(8, /*seed=*/9);
    foldBatchNorms(*g);
    const int rewritten = quantizeConvs(*g);
    EXPECT_GT(rewritten, 0);
    int depthwise = 0;
    g->forEachOp([&](Op &op) {
        if (op.type() == "Conv2d") {
            auto &conv = static_cast<Conv2d &>(op);
            EXPECT_GT(conv.groups(), 1)
                << "ungrouped conv '" << op.name() << "' survived";
            ++depthwise;
        }
    });
    EXPECT_GT(depthwise, 0);

    Rng rng(59);
    const Tensor in = randomTensor({1, 3, 64, 64}, rng);
    const Tensor out = g->run(in);
    EXPECT_EQ(out.shape(), (Shape{1, 8}));
}

TEST(QuantGraph, FlopsUnchangedByRewrite)
{
    auto g = buildResNet18(8, 11);
    const Shape in{1, 3, 96, 96};
    const int64_t before = g->flops(in);
    quantizeConvs(*g);
    EXPECT_EQ(g->flops(in), before);
}

} // namespace
} // namespace tamres
