/**
 * @file
 * Tests for the fine-tuning baseline (Touvron et al. [31]): apparent-
 * scale estimation, the scale shift itself, and the behavioural
 * contract the paper's comparison rests on — fine-tuning helps at the
 * assumed crop and hurts when the test-time crop deviates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/finetune.hh"
#include "core/pipeline.hh"
#include "sim/dataset.hh"

namespace tamres {
namespace {

SyntheticDataset
makeDataset(int n = 4000, uint64_t seed = 3)
{
    return SyntheticDataset(imagenetLike(), n, seed);
}

double
staticAccuracy(const SyntheticDataset &ds,
               const BackboneAccuracyModel &model, int resolution,
               double crop)
{
    return evalStatic(ds, 0, ds.size(), model, resolution, crop)
        .accuracy;
}

TEST(MeanApparentScale, ScalesLinearlyWithResolution)
{
    const auto ds = makeDataset(500);
    const double at224 =
        meanApparentScalePx(ds, 0, ds.size(), 0.75, 224);
    const double at448 =
        meanApparentScalePx(ds, 0, ds.size(), 0.75, 448);
    EXPECT_NEAR(at448, 2.0 * at224, 1e-9);
}

TEST(MeanApparentScale, TighterCropLooksBigger)
{
    const auto ds = makeDataset(500);
    const double full = meanApparentScalePx(ds, 0, ds.size(), 1.0, 224);
    const double tight =
        meanApparentScalePx(ds, 0, ds.size(), 0.25, 224);
    EXPECT_GT(tight, full);
    // The f_cap saturation bounds the gain below the raw 2x of a 25%
    // crop.
    EXPECT_LT(tight, 2.0 * full);
}

TEST(MeanApparentScale, CapBindsForTightCrops)
{
    const auto ds = makeDataset(500);
    const double capped =
        meanApparentScalePx(ds, 0, ds.size(), 0.25, 224, 1.25);
    // With f capped at 1.25 the apparent size cannot exceed 280.
    EXPECT_LE(capped, 224 * 1.25 + 1e-9);
    const double uncapped =
        meanApparentScalePx(ds, 0, ds.size(), 0.25, 224, 100.0);
    EXPECT_GT(uncapped, capped);
}

TEST(MeanApparentScaleDeath, BadSlice)
{
    const auto ds = makeDataset(10);
    EXPECT_DEATH(meanApparentScalePx(ds, 5, 5, 0.75, 224), "slice");
    EXPECT_DEATH(meanApparentScalePx(ds, 0, 11, 0.75, 224), "slice");
}

TEST(FineTune, ShiftsPreferredScale)
{
    const auto ds = makeDataset(200);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    const double before = model.params().s_star;
    model.fineTuneToScale(before * 2.0);
    EXPECT_NEAR(model.params().s_star, before * 2.0, 1e-9);
}

TEST(FineTuneDeath, NonPositiveScale)
{
    const auto ds = makeDataset(10);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    EXPECT_DEATH(model.fineTuneToScale(0.0), "positive");
}

TEST(FineTune, HelpsAtTheAssumedOperatingPoint)
{
    // The paper's Table I setting: inference at 448 with a model
    // trained for 224-ish scales shows the train-test discrepancy;
    // fine-tuning for (75% crop, 448) must recover accuracy there.
    const auto ds = makeDataset();
    BackboneAccuracyModel vanilla(BackboneArch::ResNet18, ds.spec(), 1);
    const BackboneAccuracyModel tuned = fineTunedBackbone(
        BackboneArch::ResNet18, ds, 1, 0, ds.size() / 2, 0.75, 448);

    const double acc_vanilla = staticAccuracy(ds, vanilla, 448, 0.75);
    const double acc_tuned = staticAccuracy(ds, tuned, 448, 0.75);
    EXPECT_GT(acc_tuned, acc_vanilla + 0.005);
}

TEST(FineTune, HurtsWhenTheCropAssumptionBreaks)
{
    // Fine-tuned for a tight 25% crop at 448 (large apparent scale),
    // then evaluated on full-frame images at 224: the specialization
    // must cost accuracy relative to the vanilla backbone. This is
    // the fragility that motivates dynamic resolution (Section VII-b).
    const auto ds = makeDataset();
    BackboneAccuracyModel vanilla(BackboneArch::ResNet18, ds.spec(), 1);
    const BackboneAccuracyModel tuned = fineTunedBackbone(
        BackboneArch::ResNet18, ds, 1, 0, ds.size() / 2, 0.25, 448);

    const double acc_vanilla = staticAccuracy(ds, vanilla, 224, 1.0);
    const double acc_tuned = staticAccuracy(ds, tuned, 224, 1.0);
    EXPECT_LT(acc_tuned, acc_vanilla - 0.005);
}

TEST(FineTune, MatchesAssumedScaleAcrossCropsAtFixedResolution)
{
    // For each assumed crop, the backbone fine-tuned for that crop
    // should be the best (or tied-best) of the fine-tuned family when
    // evaluated at that crop — specialization is real, not a uniform
    // buff.
    const auto ds = makeDataset();
    const double crops[] = {0.25, 0.75};
    BackboneAccuracyModel tuned_for[2] = {
        fineTunedBackbone(BackboneArch::ResNet18, ds, 1, 0,
                          ds.size() / 2, crops[0], 336),
        fineTunedBackbone(BackboneArch::ResNet18, ds, 1, 0,
                          ds.size() / 2, crops[1], 336)};
    for (int test_c = 0; test_c < 2; ++test_c) {
        const double acc_match =
            staticAccuracy(ds, tuned_for[test_c], 336, crops[test_c]);
        const double acc_mismatch = staticAccuracy(
            ds, tuned_for[1 - test_c], 336, crops[test_c]);
        EXPECT_GE(acc_match, acc_mismatch - 0.002)
            << "test crop " << crops[test_c];
    }
}

} // namespace
} // namespace tamres
