/**
 * @file
 * Edge-tail, dispatch, and overflow tests for the int8 quantized GEMM
 * path (convForwardInt8Gemm + quad-K packed panels).
 *
 * The planned int8 path promises BITWISE identity — not tolerance —
 * across every axis that reorders work: SIMD dispatch level (scalar /
 * AVX2 vpmaddwd / AVX512-VNNI vpdpbusd / NEON), the VNNI sub-switch,
 * prepacked vs on-the-fly weight packing, cache blocking, thread
 * count, and batch size. Integer accumulation is exact and
 * order-independent and the fp32 epilogue is one fixed expression, so
 * every run of the same problem must produce the same bytes. These
 * tests memcmp, never approx-compare; the naive reference kernel
 * (convForwardInt8) is the oracle.
 *
 * Shapes follow test_gemm_micro: extents deliberately not divisible
 * by any mr/nr or the kc in play, forcing row, column, k and quad-K
 * padding tails through every micro-kernel.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/conv_kernels.hh"
#include "nn/quant.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace tamres {
namespace {

std::vector<float>
randomVec(size_t n, uint64_t seed, float scale = 1.0f)
{
    std::vector<float> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-scale, scale));
    return v;
}

/** Levels available in this process (deduplicated). */
std::vector<SimdLevel>
levels()
{
    std::vector<SimdLevel> out{SimdLevel::Scalar};
    if (simdDetected() != SimdLevel::Scalar)
        out.push_back(simdDetected());
    return out;
}

/** All (mr, nr) pairs the int8 validity predicate accepts. */
std::vector<std::pair<int, int>>
supportedInt8MicroShapes()
{
    const ConvProblem p{.n = 1, .ic = 4, .ih = 1, .iw = 8, .oc = 4,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    std::vector<std::pair<int, int>> out;
    for (int mr : {1, 2, 4, 6, 8}) {
        for (int nr : {4, 8, 16}) {
            ConvConfig cfg;
            cfg.algo = ConvAlgo::Im2col;
            cfg.mr = mr;
            cfg.nr = nr;
            if (convConfigValidInt8(p, cfg))
                out.emplace_back(mr, nr);
        }
    }
    return out;
}

/** Per-output-channel weight quantization, the QuantConv2d scheme. */
void
quantizeWeights(const std::vector<float> &w, int oc, int K,
                std::vector<int8_t> &wq, std::vector<float> &scales)
{
    wq.resize(w.size());
    scales.resize(static_cast<size_t>(oc));
    for (int m = 0; m < oc; ++m) {
        const float *row = w.data() + static_cast<size_t>(m) * K;
        scales[static_cast<size_t>(m)] =
            symmetricScale(maxAbsValue(row, static_cast<size_t>(K)));
        quantizeSymmetric(row, static_cast<size_t>(K),
                          scales[static_cast<size_t>(m)],
                          wq.data() + static_cast<size_t>(m) * K);
    }
}

/** Per-image dynamic activation quantization, the oracle's rule. */
void
quantizeInput(const ConvProblem &p, const std::vector<float> &in,
              std::vector<int8_t> &qin, std::vector<float> &scales)
{
    const size_t per = static_cast<size_t>(p.ic) * p.ih * p.iw;
    qin.resize(static_cast<size_t>(p.n) * per);
    scales.resize(static_cast<size_t>(p.n));
    for (int n = 0; n < p.n; ++n) {
        const float *src = in.data() + static_cast<size_t>(n) * per;
        scales[static_cast<size_t>(n)] =
            symmetricScale(maxAbsValue(src, per));
        quantizeSymmetric(src, per, scales[static_cast<size_t>(n)],
                          qin.data() + static_cast<size_t>(n) * per);
    }
}

// Awkward extents (mirrors test_gemm_micro): not divisible by any mr
// (1,2,4,8), nr (8,16), the kc values used below, or 4 (the quad-K
// interleave), forcing every padding tail.
constexpr int kM = 13;
constexpr int kN = 23;
constexpr int kK = 37;

ConvConfig
int8Config(int mr, int nr, int kc = 16)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Im2col;
    cfg.mr = mr;
    cfg.nr = nr;
    cfg.mc = 8;  // not divisible by mr=8? equal - still ragged vs M=13
    cfg.kc = kc;
    cfg.nc = 20; // not divisible by nr -> ragged B panels
    cfg.threads = 1;
    return cfg;
}

/**
 * Run the int8 GEMM via a 1x1 pointwise conv (M=oc, K=ic, N=ih*iw):
 * exactly one blocked GEMM, no im2col copy.
 */
void
int8GemmViaConv(int M, int N, int K, const ConvConfig &cfg,
                bool prepack, uint64_t seed, std::vector<float> &out)
{
    const ConvProblem p{.n = 1, .ic = K, .ih = 1, .iw = N, .oc = M,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    ASSERT_TRUE(convConfigValidInt8(p, cfg)) << cfg.toString();

    const std::vector<float> w = randomVec(
        static_cast<size_t>(M) * K, seed, 0.5f);
    const std::vector<float> in = randomVec(
        static_cast<size_t>(K) * N, seed + 1);
    const std::vector<float> bias = randomVec(
        static_cast<size_t>(M), seed + 2, 0.1f);

    std::vector<int8_t> wq;
    std::vector<float> w_scales;
    quantizeWeights(w, M, K, wq, w_scales);
    std::vector<int8_t> qin;
    std::vector<float> act_scales;
    quantizeInput(p, in, qin, act_scales);

    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = bias.data();
    epi.act_scales = act_scales.data();
    epi.relu = (seed % 2) == 0;

    PackedConvWeights packed;
    if (prepack) {
        packConvWeightsInt8(p, cfg, wq.data(), packed);
        ASSERT_TRUE(packed.valid && packed.quantized);
    }
    out.assign(static_cast<size_t>(M) * N, -1e30f);
    convForwardInt8Gemm(p, qin.data(), epi, wq.data(),
                        prepack ? &packed : nullptr, out.data(), cfg);
}

TEST(QuantGemm, EdgeTailsBitwiseIdenticalAcrossDispatchLevels)
{
    const auto shapes = supportedInt8MicroShapes();
    ASSERT_FALSE(shapes.empty());
    for (const auto &[mr, nr] : shapes) {
        for (const int kc : {16, kK}) { // kc=37: k tail not mult of 4
            const ConvConfig cfg = int8Config(mr, nr, kc);
            std::vector<float> want;
            {
                SimdLevelGuard guard(SimdLevel::Scalar);
                int8GemmViaConv(kM, kN, kK, cfg, false, 7, want);
            }
            for (const SimdLevel lvl : levels()) {
                for (const bool vnni : {false, true}) {
                    SimdLevelGuard guard(lvl);
                    SimdVnniGuard vguard(vnni);
                    std::vector<float> got;
                    int8GemmViaConv(kM, kN, kK, cfg, false, 7, got);
                    ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                             want.size() *
                                                 sizeof(float)))
                        << "mr=" << mr << " nr=" << nr << " kc=" << kc
                        << " level=" << simdLevelName(lvl)
                        << " vnni=" << vnni;
                }
            }
        }
    }
}

TEST(QuantGemm, PrepackedBitwiseIdenticalToOnTheFly)
{
    const auto shapes = supportedInt8MicroShapes();
    for (const auto &[mr, nr] : shapes) {
        const ConvConfig cfg = int8Config(mr, nr);
        for (const SimdLevel lvl : levels()) {
            SimdLevelGuard guard(lvl);
            std::vector<float> unpacked, prepacked;
            int8GemmViaConv(kM, kN, kK, cfg, false, 11, unpacked);
            int8GemmViaConv(kM, kN, kK, cfg, true, 11, prepacked);
            ASSERT_EQ(0, std::memcmp(unpacked.data(), prepacked.data(),
                                     unpacked.size() * sizeof(float)))
                << "mr=" << mr << " nr=" << nr
                << " level=" << simdLevelName(lvl);
        }
    }
}

TEST(QuantGemm, PlannedPathBitwiseMatchesNaiveOracle)
{
    // A real spatial conv (im2col path) with awkward extents.
    ConvProblem p;
    p.n = 3;
    p.ic = 5;
    p.ih = 9;
    p.iw = 7;
    p.oc = 13;
    p.kh = p.kw = 3;
    p.stride = 2;
    p.pad = 1;

    const int K = p.ic * p.kh * p.kw;
    const std::vector<float> w = randomVec(
        static_cast<size_t>(p.oc) * K, 21, 0.5f);
    const std::vector<float> in = randomVec(
        static_cast<size_t>(p.n) * p.ic * p.ih * p.iw, 22);
    const std::vector<float> bias = randomVec(
        static_cast<size_t>(p.oc), 23, 0.1f);

    std::vector<int8_t> wq;
    std::vector<float> w_scales;
    quantizeWeights(w, p.oc, K, wq, w_scales);
    std::vector<int8_t> qin;
    std::vector<float> act_scales;
    quantizeInput(p, in, qin, act_scales);

    const size_t out_n = static_cast<size_t>(p.n) * p.oc * p.oh() *
                         p.ow();
    std::vector<float> want(out_n);
    convForwardInt8(p, in.data(), 0.0f, wq.data(), w_scales.data(),
                    bias.data(), /*fused_relu=*/true, want.data());

    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = bias.data();
    epi.act_scales = act_scales.data();
    epi.relu = true;

    ConvConfig cfg; // the default int8 blocking QuantConv2d emits
    ASSERT_TRUE(convConfigValidInt8(p, cfg));
    PackedConvWeights packed;
    packConvWeightsInt8(p, cfg, wq.data(), packed);

    for (const SimdLevel lvl : levels()) {
        for (const bool vnni : {false, true}) {
            SimdLevelGuard guard(lvl);
            SimdVnniGuard vguard(vnni);
            std::vector<float> got(out_n, -1e30f);
            convForwardInt8Gemm(p, qin.data(), epi, wq.data(), &packed,
                                got.data(), cfg);
            ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                     out_n * sizeof(float)))
                << "level=" << simdLevelName(lvl) << " vnni=" << vnni;
        }
    }
}

TEST(QuantGemm, BatchNBitwiseEqualsNTimesBatchOne)
{
    // Per-image dynamic scales: each image quantizes on its own max,
    // so a batch-3 run must reproduce three batch-1 runs exactly.
    ConvProblem p;
    p.n = 3;
    p.ic = 6;
    p.ih = p.iw = 11;
    p.oc = 10;
    p.kh = p.kw = 3;
    p.stride = 1;
    p.pad = 1;

    const int K = p.ic * p.kh * p.kw;
    const std::vector<float> w = randomVec(
        static_cast<size_t>(p.oc) * K, 31, 0.5f);
    const std::vector<float> in = randomVec(
        static_cast<size_t>(p.n) * p.ic * p.ih * p.iw, 32);

    std::vector<int8_t> wq;
    std::vector<float> w_scales;
    quantizeWeights(w, p.oc, K, wq, w_scales);

    const size_t per_out = static_cast<size_t>(p.oc) * p.oh() * p.ow();
    std::vector<float> batched(static_cast<size_t>(p.n) * per_out);
    convForwardInt8(p, in.data(), 0.0f, wq.data(), w_scales.data(),
                    nullptr, false, batched.data());

    std::vector<int8_t> qin;
    std::vector<float> act_scales;
    quantizeInput(p, in, qin, act_scales);
    ConvConfig cfg;
    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = nullptr;
    epi.act_scales = act_scales.data();
    epi.relu = false;

    std::vector<float> planned(batched.size(), -1e30f);
    convForwardInt8Gemm(p, qin.data(), epi, wq.data(), nullptr,
                        planned.data(), cfg);
    ASSERT_EQ(0, std::memcmp(planned.data(), batched.data(),
                             batched.size() * sizeof(float)));

    // Per-image runs of the planned path, byte-compared slice-wise.
    ConvProblem p1 = p;
    p1.n = 1;
    const size_t per_in = static_cast<size_t>(p.ic) * p.ih * p.iw;
    for (int n = 0; n < p.n; ++n) {
        QuantConvEpilogue e1 = epi;
        e1.act_scales = act_scales.data() + n;
        std::vector<float> one(per_out, -1e30f);
        convForwardInt8Gemm(p1, qin.data() + n * per_in, e1, wq.data(),
                            nullptr, one.data(), cfg);
        ASSERT_EQ(0, std::memcmp(one.data(),
                                 planned.data() + n * per_out,
                                 per_out * sizeof(float)))
            << "image " << n;
    }
}

TEST(QuantGemm, Int32AccumulatorSurvivesDeepestBackboneReduction)
{
    // The deepest reduction a backbone poses: 512 channels x 3x3
    // (K = 4608). Constant same-sign inputs and weights quantize to
    // +-127 everywhere, so every accumulator reaches the analytic
    // worst case K * 127 * 127 = 74,322,432 — far under 2^31, and the
    // test would see wraparound as a sign flip.
    ConvProblem p;
    p.n = 1;
    p.ic = 512;
    p.ih = p.iw = 3;
    p.oc = 2;
    p.kh = p.kw = 3;
    p.stride = 1;
    p.pad = 1;
    const int K = p.ic * p.kh * p.kw;

    std::vector<float> w(static_cast<size_t>(p.oc) * K, 1.0f);
    std::vector<float> in(static_cast<size_t>(p.ic) * p.ih * p.iw,
                          1.0f);
    std::vector<int8_t> wq;
    std::vector<float> w_scales;
    quantizeWeights(w, p.oc, K, wq, w_scales);
    std::vector<int8_t> qin;
    std::vector<float> act_scales;
    quantizeInput(p, in, qin, act_scales);

    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = nullptr;
    epi.act_scales = act_scales.data();
    epi.relu = false;

    const size_t out_n = static_cast<size_t>(p.oc) * p.oh() * p.ow();
    std::vector<float> want(out_n);
    convForwardInt8(p, in.data(), 0.0f, wq.data(), w_scales.data(),
                    nullptr, false, want.data());

    ConvConfig cfg;
    for (const SimdLevel lvl : levels()) {
        for (const bool vnni : {false, true}) {
            SimdLevelGuard guard(lvl);
            SimdVnniGuard vguard(vnni);
            std::vector<float> got(out_n, -1e30f);
            convForwardInt8Gemm(p, qin.data(), epi, wq.data(), nullptr,
                                got.data(), cfg);
            ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                     out_n * sizeof(float)))
                << "level=" << simdLevelName(lvl) << " vnni=" << vnni;
            // The center pixel sees the full K-deep window: its value
            // must equal the analytic accumulator, positive and huge.
            const int center = p.oh() * p.ow() / 2;
            const float analytic = static_cast<float>(K) * 127.0f *
                                   127.0f *
                                   (act_scales[0] * w_scales[0]);
            EXPECT_GT(got[static_cast<size_t>(center)], 0.0f);
            EXPECT_FLOAT_EQ(analytic,
                            got[static_cast<size_t>(center)]);
        }
    }
}

TEST(QuantGemm, PackCountMovesOnPackNotOnPrepackedForward)
{
    const ConvProblem p{.n = 1, .ic = kK, .ih = 1, .iw = kN, .oc = kM,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    ConvConfig cfg;
    ASSERT_TRUE(convConfigValidInt8(p, cfg));

    const std::vector<float> w = randomVec(
        static_cast<size_t>(kM) * kK, 41, 0.5f);
    const std::vector<float> in = randomVec(
        static_cast<size_t>(kK) * kN, 42);
    std::vector<int8_t> wq;
    std::vector<float> w_scales;
    quantizeWeights(w, kM, kK, wq, w_scales);
    std::vector<int8_t> qin;
    std::vector<float> act_scales;
    quantizeInput(p, in, qin, act_scales);
    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = nullptr;
    epi.act_scales = act_scales.data();

    const uint64_t before_pack = convWeightPackCount();
    PackedConvWeights packed;
    packConvWeightsInt8(p, cfg, wq.data(), packed);
    EXPECT_GT(convWeightPackCount(), before_pack);

    std::vector<float> out(static_cast<size_t>(kM) * kN);
    const uint64_t steady = convWeightPackCount();
    for (int rep = 0; rep < 3; ++rep)
        convForwardInt8Gemm(p, qin.data(), epi, wq.data(), &packed,
                            out.data(), cfg);
    EXPECT_EQ(steady, convWeightPackCount())
        << "prepacked int8 forward must not repack weights";
}

} // namespace
} // namespace tamres
