/**
 * @file
 * Property sweeps over the calibrated accuracy model and the static
 * pipeline evaluator — the response-surface invariants every accuracy
 * experiment in the paper rests on, checked across the full
 * (arch x dataset x crop x resolution) grid rather than at spot
 * values.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.hh"
#include "sim/accuracy_model.hh"
#include "sim/dataset.hh"

namespace tamres {
namespace {

using GridParam = std::tuple<BackboneArch, bool /*cars*/, double>;

class ResponseSurface : public ::testing::TestWithParam<GridParam>
{
  protected:
    static SyntheticDataset *imagenet_;
    static SyntheticDataset *cars_;

    static void
    SetUpTestSuite()
    {
        imagenet_ = new SyntheticDataset(imagenetLike(), 6000, 7);
        cars_ = new SyntheticDataset(carsLike(), 6000, 7);
    }

    static void
    TearDownTestSuite()
    {
        delete imagenet_;
        delete cars_;
    }

    const SyntheticDataset &
    dataset() const
    {
        return std::get<1>(GetParam()) ? *cars_ : *imagenet_;
    }

    BackboneArch arch() const { return std::get<0>(GetParam()); }
    double crop() const { return std::get<2>(GetParam()); }

    double
    accuracyAt(int res, double ssim_q = 1.0) const
    {
        const SyntheticDataset &ds = dataset();
        BackboneAccuracyModel model(arch(), ds.spec(), 1);
        int correct = 0;
        for (int i = 0; i < ds.size(); ++i)
            if (model.correct(ds.record(i), crop(), res, ssim_q))
                ++correct;
        return static_cast<double>(correct) / ds.size();
    }
};

SyntheticDataset *ResponseSurface::imagenet_ = nullptr;
SyntheticDataset *ResponseSurface::cars_ = nullptr;

TEST_P(ResponseSurface, AccuracyIsUnimodalInResolution)
{
    // The train-test discrepancy [31]: accuracy rises to a peak then
    // declines. Checked as: no "valley" — once the curve turns down
    // it never meaningfully recovers (1-point tolerance for sampling
    // noise).
    std::vector<double> acc;
    for (const int r : paperResolutions())
        acc.push_back(accuracyAt(r));
    bool declining = false;
    for (size_t i = 1; i < acc.size(); ++i) {
        if (declining)
            EXPECT_LT(acc[i], acc[i - 1] + 0.01)
                << "valley at " << paperResolutions()[i];
        if (acc[i] < acc[i - 1] - 0.005)
            declining = true;
    }
    // And the curve is not flat: the peak clearly beats 112.
    const double peak = *std::max_element(acc.begin(), acc.end());
    EXPECT_GT(peak, acc.front() + 0.02);
}

TEST_P(ResponseSurface, QualityDegradationNeverHelps)
{
    for (const int r : {112, 224, 448}) {
        const double full = accuracyAt(r, 1.0);
        const double degraded = accuracyAt(r, 0.95);
        const double trashed = accuracyAt(r, 0.85);
        EXPECT_LE(degraded, full + 1e-9) << "res " << r;
        EXPECT_LE(trashed, degraded + 1e-9) << "res " << r;
    }
}

TEST_P(ResponseSurface, HigherResolutionToleratesLowerSsim)
{
    // The Section V observation that makes calibration worthwhile:
    // at matched SSIM just below the knee, the accuracy *drop* from
    // full quality is larger at 112 than at 448.
    const double q = 0.97;
    const double drop_lo = accuracyAt(112, 1.0) - accuracyAt(112, q);
    const double drop_hi = accuracyAt(448, 1.0) - accuracyAt(448, q);
    EXPECT_GE(drop_lo, drop_hi - 0.002);
}

TEST_P(ResponseSurface, DeterministicAcrossCalls)
{
    EXPECT_EQ(accuracyAt(224), accuracyAt(224));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ResponseSurface,
    ::testing::Combine(
        ::testing::Values(BackboneArch::ResNet18,
                          BackboneArch::ResNet50),
        ::testing::Bool(),
        ::testing::Values(0.25, 0.56, 0.75, 1.0)),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        const BackboneArch arch = std::get<0>(info.param);
        const bool cars = std::get<1>(info.param);
        const int crop_pct = static_cast<int>(
            std::get<2>(info.param) * 100 + 0.5);
        return std::string(arch == BackboneArch::ResNet18 ? "rn18"
                                                          : "rn50") +
               (cars ? "_cars_" : "_imagenet_") +
               std::to_string(crop_pct);
    });

TEST(CropScalePreference, SmallCropsFavorLowerResolutions)
{
    // Figure 8/9's organizing fact, on the evaluator the figures use:
    // the best static resolution is non-decreasing in crop area.
    SyntheticDataset ds(imagenetLike(), 6000, 9);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    int prev_best = 0;
    for (const double crop : {0.25, 0.56, 0.75, 1.0}) {
        double best_acc = 0.0;
        int best_res = 0;
        for (const int r : paperResolutions()) {
            const double a =
                evalStatic(ds, 0, ds.size(), model, r, crop).accuracy;
            if (a > best_acc) {
                best_acc = a;
                best_res = r;
            }
        }
        EXPECT_GE(best_res, prev_best) << "crop " << crop;
        prev_best = best_res;
    }
}

TEST(PipelineCosts, GflopsScaleNearQuadratically)
{
    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        const double g224 = backboneGflops(arch, 224);
        const double g448 = backboneGflops(arch, 448);
        // Paper Table I: 1.8 -> 7.3 GFLOPs for RN18 (ratio ~4.06).
        EXPECT_GT(g448 / g224, 3.6) << archName(arch);
        EXPECT_LT(g448 / g224, 4.6) << archName(arch);
    }
    // The paper's headline scale-model cost: MobileNetV2@112 = 0.08.
    EXPECT_NEAR(scaleModelGflops(), 0.08, 0.02);
}

} // namespace
} // namespace tamres
