/**
 * @file
 * Parallel-execution guarantees: codec encode/decode and every conv
 * algorithm are bit-identical at 1 vs N worker threads, the batched
 * bit-writer concatenates streams exactly, and the thread pool
 * propagates exceptions and survives nested use.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "codec/bitstream.hh"
#include "codec/progressive.hh"
#include "image/synthetic.hh"
#include "nn/conv_kernels.hh"
#include "tests/threads_env.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace tamres {
namespace {

// --- Thread pool semantics -------------------------------------------

TEST(ThreadPoolParallel, RespectsMaxParts)
{
    ThreadPool pool(8);
    std::atomic<int> calls{0};
    pool.parallelFor(
        100,
        [&](int64_t, int64_t) { ++calls; },
        2);
    EXPECT_LE(calls.load(), 2);
}

TEST(ThreadPoolParallel, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](int64_t b, int64_t) {
                             if (b == 0)
                                 throw std::runtime_error("chunk boom");
                         }),
        std::runtime_error);
    // The pool must stay usable after a throwing job.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(10, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolParallel, SerialFallbackPropagatesExceptions)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     5, [](int64_t, int64_t) { throw 42; }),
                 int);
}

TEST(ThreadPoolParallel, NestedCallsDegradeToSerial)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallelFor(8, [&](int64_t b, int64_t e) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        for (int64_t i = b; i < e; ++i) {
            // Reentrant use of the same pool must not deadlock and
            // must still cover the inner range exactly once.
            pool.parallelFor(10, [&](int64_t ib, int64_t ie) {
                total += ie - ib;
            });
        }
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolParallel, NestedGlobalPoolFromKernels)
{
    // The codec and kernels share the global pool; nesting through it
    // must serialize, not deadlock.
    std::atomic<int> inner{0};
    ThreadPool::global().parallelFor(4, [&](int64_t, int64_t) {
        ThreadPool::global().parallelFor(
            4, [&](int64_t b, int64_t e) {
                inner += static_cast<int>(e - b);
            });
    });
    EXPECT_EQ(inner.load(), 16);
}

// --- Batched bit-writer ----------------------------------------------

TEST(BitWriterBatched, AppendMatchesSerialWrites)
{
    Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        BitWriter serial;
        std::vector<BitWriter> pieces(3);
        for (int p = 0; p < 3; ++p) {
            const int writes =
                1 + static_cast<int>(rng.uniformInt(uint64_t(40)));
            for (int i = 0; i < writes; ++i) {
                const int nbits = 1 + static_cast<int>(rng.uniformInt(
                    uint64_t(24)));
                const uint32_t v = static_cast<uint32_t>(rng.next()) &
                                   ((1u << nbits) - 1);
                serial.writeBits(v, nbits);
                pieces[p].writeBits(v, nbits);
            }
        }
        BitWriter glued;
        for (const BitWriter &p : pieces)
            glued.append(p);
        EXPECT_EQ(glued.bitSize(), serial.bitSize());
        EXPECT_EQ(glued.bytes(), serial.bytes());
    }
}

TEST(BitWriterBatched, PeekAndSkip)
{
    BitWriter bw;
    bw.writeBits(0b1011001, 7);
    bw.writeBits(0xAB, 8);
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(br.peekBits(7), 0b1011001u);
    EXPECT_EQ(br.peekBits(7), 0b1011001u); // peek does not consume
    br.skipBits(7);
    EXPECT_EQ(br.readBits(8), 0xABu);
    // Past-the-end peeks are zero-padded.
    EXPECT_EQ(br.peekBits(8), 0u);
}

// --- Codec determinism -----------------------------------------------

EncodedImage
encodeWithThreads(const Image &img, const ProgressiveConfig &cfg,
                  int threads)
{
    ThreadsEnv env(threads);
    return encodeProgressive(img, cfg);
}

TEST(CodecParallel, EncodeBitIdenticalAcrossThreadCounts)
{
    const Image img = generateSyntheticImage(
        {.height = 96, .width = 80, .class_id = 3, .seed = 29});
    for (const EntropyCoder entropy :
         {EntropyCoder::RunLength, EntropyCoder::Huffman}) {
        ProgressiveConfig cfg;
        cfg.entropy = entropy;
        cfg.scans = ProgressiveConfig::successiveScans();
        const EncodedImage e1 = encodeWithThreads(img, cfg, 1);
        for (int threads : {2, 4, 7}) {
            const EncodedImage en =
                encodeWithThreads(img, cfg, threads);
            EXPECT_EQ(e1.bytes, en.bytes)
                << "entropy=" << entropyCoderName(entropy)
                << " threads=" << threads;
            EXPECT_EQ(e1.scan_offsets, en.scan_offsets);
        }
    }
}

TEST(CodecParallel, DecodeBitIdenticalAcrossThreadCounts)
{
    const Image img = generateSyntheticImage(
        {.height = 64, .width = 64, .class_id = 1, .seed = 5});
    ProgressiveConfig cfg;
    cfg.color = ColorMode::YCbCr;
    const EncodedImage enc = encodeWithThreads(img, cfg, 1);
    Image d1;
    {
        ThreadsEnv env(1);
        d1 = decodeProgressive(enc);
    }
    for (int threads : {2, 4}) {
        ThreadsEnv env(threads);
        const Image dn = decodeProgressive(enc);
        ASSERT_EQ(dn.numel(), d1.numel());
        EXPECT_EQ(std::memcmp(dn.data(), d1.data(),
                              sizeof(float) * d1.numel()),
                  0)
            << "threads=" << threads;
    }
}

TEST(CodecParallel, RoundTripQualityUnchangedByThreads)
{
    const Image img = generateSyntheticImage(
        {.height = 72, .width = 56, .class_id = 2, .seed = 41});
    const EncodedImage e1 = encodeWithThreads(img, {}, 1);
    const EncodedImage e4 = encodeWithThreads(img, {}, 4);
    EXPECT_EQ(e1.bytes, e4.bytes);
}

// --- Conv kernel determinism -----------------------------------------

std::vector<float>
runConvWithThreads(const ConvProblem &p, ConvConfig cfg, int threads)
{
    const size_t in_n = static_cast<size_t>(p.n) * p.ic * p.ih * p.iw;
    const size_t w_n = static_cast<size_t>(p.oc) * (p.ic / p.groups) *
                       p.kh * p.kw;
    std::vector<float> in(in_n), w(w_n), bias(p.oc);
    Rng rng(7);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto &v : bias)
        v = static_cast<float>(rng.uniform(-0.1, 0.1));
    std::vector<float> out(static_cast<size_t>(p.n) * p.oc * p.oh() *
                           p.ow());
    cfg.threads = threads;
    convForward(p, in.data(), w.data(), bias.data(), out.data(), cfg);
    return out;
}

void
expectThreadInvariant(const ConvProblem &p, const ConvConfig &cfg)
{
    const std::vector<float> serial = runConvWithThreads(p, cfg, 1);
    for (int threads : {2, 4, 5}) {
        const std::vector<float> par =
            runConvWithThreads(p, cfg, threads);
        ASSERT_EQ(par.size(), serial.size());
        EXPECT_EQ(std::memcmp(par.data(), serial.data(),
                              serial.size() * sizeof(float)),
                  0)
            << cfg.toString() << " differs at " << threads
            << " threads";
    }
}

TEST(ConvParallel, Im2colBitIdenticalBatch1)
{
    // Batch 1 exercises the column-sliced GEMM parallelism.
    expectThreadInvariant(
        ConvProblem{1, 32, 28, 28, 48, 3, 3, 1, 1, 1},
        ConvConfig{.algo = ConvAlgo::Im2col, .mc = 32, .kc = 64,
                   .nc = 256, .mr = 4, .nr = 8});
}

TEST(ConvParallel, Im2colBitIdenticalBatched)
{
    // Batch >= threads exercises the outer (n, group) parallelism.
    expectThreadInvariant(
        ConvProblem{6, 16, 14, 14, 24, 3, 3, 1, 1, 1},
        ConvConfig{.algo = ConvAlgo::Im2col, .mc = 32, .kc = 64,
                   .nc = 128, .mr = 2, .nr = 8});
}

TEST(ConvParallel, PointwiseBitIdentical)
{
    expectThreadInvariant(
        ConvProblem{1, 64, 14, 14, 96, 1, 1, 1, 0, 1},
        ConvConfig{.algo = ConvAlgo::Im2col, .mc = 32, .kc = 64,
                   .nc = 128, .mr = 4, .nr = 8});
}

TEST(ConvParallel, WinogradBitIdentical)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    cfg.wino_tile_block = 16;
    expectThreadInvariant(ConvProblem{2, 16, 20, 20, 16, 3, 3, 1, 1, 1},
                          cfg);
}

TEST(ConvParallel, DirectBitIdentical)
{
    expectThreadInvariant(
        ConvProblem{1, 16, 23, 17, 24, 3, 3, 2, 1, 1},
        ConvConfig{.algo = ConvAlgo::Direct, .oc_tile = 4,
                   .ow_tile = 8});
}

TEST(ConvParallel, DepthwiseBitIdentical)
{
    expectThreadInvariant(
        ConvProblem{2, 24, 19, 15, 24, 3, 3, 1, 1, 24},
        ConvConfig{.algo = ConvAlgo::Depthwise, .ow_tile = 7});
}

TEST(ConvParallel, ThreadsKnobValidated)
{
    const ConvProblem p{1, 8, 16, 16, 8, 3, 3, 1, 1, 1};
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Im2col;
    cfg.threads = -1;
    EXPECT_FALSE(convConfigValid(p, cfg));
    cfg.threads = 4;
    EXPECT_TRUE(convConfigValid(p, cfg));
    EXPECT_NE(cfg.toString().find(",t=4"), std::string::npos);
}

TEST(ConvParallel, KeyFormatStable)
{
    // The tuner's transfer-seed sscanf depends on this exact format.
    const ConvProblem p{2, 3, 224, 224, 64, 7, 7, 2, 3, 1};
    EXPECT_EQ(p.key(), "2x3x224x224_oc64_k7x7_s2_p3_g1");
}

} // namespace
} // namespace tamres
