/**
 * @file
 * Tests for the StagedServingEngine: a request entering as encoded
 * progressive bytes must flow through ranged preview read ->
 * resumable partial decode -> scale-model decision (with queue-depth
 * shed capping) -> incremental read -> batched backbone, produce
 * exactly the inference result of an inline (engine-free) pipeline,
 * meter exactly the bytes its decisions demand, and keep the
 * backbone stage's steady state pack-free.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "nn/builders.hh"
#include "nn/conv_kernels.hh"
#include "nn/passes.hh"
#include "sim/dataset.hh"
#include "tests/threads_env.hh"

namespace tamres {
namespace {

DatasetSpec
tinySpec()
{
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 96;
    spec.mean_width = 96;
    spec.size_jitter = 0.1;
    return spec;
}

/** Shared fixture state: dataset, trained scale model, filled store. */
class StagedEngineTest : public ::testing::Test
{
  protected:
    static constexpr int kObjects = 4;
    static constexpr int kGridLo = 48;
    static constexpr int kGridHi = 64;

    StagedEngineTest() : ds_(tinySpec(), 24, 11)
    {
        ScaleModelOptions opts;
        opts.epochs = 3;
        scale_ = std::make_unique<ScaleModel>(
            std::vector<int>{kGridLo, kGridHi}, opts);
        scale_->train(ds_, 0, 16, BackboneArch::ResNet18, {0.75}, 64);

        ProgressiveConfig cfg;
        cfg.quality = ds_.spec().encode_quality;
        cfg.entropy = EntropyCoder::Huffman;
        cfg.restart_interval = 32;
        for (int i = 0; i < kObjects; ++i)
            store_.put(static_cast<uint64_t>(i),
                       encodeProgressive(ds_.renderAt(16 + i, 96),
                                         cfg));
    }

    StagedEngineConfig
    baseConfig() const
    {
        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 1;
        cfg.queue_capacity = 64;
        cfg.backbone.workers = 1;
        cfg.backbone.max_batch = 4;
        cfg.backbone.max_delay_us = 500;
        return cfg;
    }

    /** The engine-free reference for one object's staged flow. */
    struct InlineRef
    {
        int r_idx = 0;
        int scans = 0;
        size_t bytes = 0;
        Tensor input;
    };

    InlineRef
    inlineReference(uint64_t id, const StagedEngineConfig &cfg) const
    {
        const EncodedImage &enc = store_.peek(id);
        InlineRef ref;
        const Image preview = resize(
            centerCropFraction(decodeProgressive(enc,
                                                 cfg.preview_scans),
                               cfg.crop_area),
            scale_->options().input_res, scale_->options().input_res);
        ref.r_idx = scale_->chooseResolutionIndex(preview);
        ref.scans = cfg.scan_depth
                        ? std::clamp(cfg.scan_depth(id, ref.r_idx),
                                     cfg.preview_scans,
                                     enc.numScans())
                        : enc.numScans();
        ref.bytes = enc.bytesForScans(ref.scans);
        const int r = scale_->resolutions()[ref.r_idx];
        const Image sized = resize(
            centerCropFraction(decodeProgressive(enc, ref.scans),
                               cfg.crop_area),
            r, r);
        ref.input = Tensor({1, 3, r, r});
        std::copy_n(sized.data(), sized.numel(), ref.input.data());
        return ref;
    }

    SyntheticDataset ds_;
    std::unique_ptr<ScaleModel> scale_;
    ObjectStore store_;
};

TEST_F(StagedEngineTest, ServesBitIdenticalToInlinePipeline)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [](uint64_t, int r_idx) { return 3 + r_idx; };

    // Inline references computed before the engine exists.
    std::vector<InlineRef> refs;
    std::vector<Tensor> expected;
    for (int i = 0; i < kObjects; ++i) {
        refs.push_back(inlineReference(i, cfg));
        expected.push_back(g->run(refs.back().input));
    }

    StagedServingEngine engine(store_, *scale_, g.get(), cfg);
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done) << i;
        EXPECT_EQ(reqs[i].resolution_index, refs[i].r_idx) << i;
        EXPECT_EQ(reqs[i].resolution,
                  scale_->resolutions()[refs[i].r_idx]);
        EXPECT_EQ(reqs[i].preview_scans, cfg.preview_scans);
        EXPECT_EQ(reqs[i].scans_read, refs[i].scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, refs[i].bytes) << i;
        ASSERT_EQ(reqs[i].infer.output.numel(), expected[i].numel());
        EXPECT_EQ(std::memcmp(reqs[i].infer.output.data(),
                              expected[i].data(),
                              sizeof(float) * expected[i].numel()),
                  0)
            << "request " << i << " output diverged from the inline "
            << "decode -> decide -> infer pipeline";
        EXPECT_GT(reqs[i].latency_s, 0.0);
        EXPECT_GE(reqs[i].latency_s, reqs[i].decode_s);
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));
    EXPECT_EQ(st.backbone.served, static_cast<uint64_t>(kObjects));
}

TEST_F(StagedEngineTest, DecisionOnlyModeMetersExactBytes)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [](uint64_t, int r_idx) { return 2 + r_idx; };

    // References computed BEFORE the engine exists: the scale model's
    // forward pass reuses internal buffers, so external inference
    // while the decision stage serves is illegal (see contract).
    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));
    store_.resetStats();

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(kObjects);
    size_t want_bytes = 0;
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    uint64_t want_scans = 0;
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        const InlineRef &ref = refs[i];
        EXPECT_EQ(reqs[i].resolution_index, ref.r_idx);
        EXPECT_EQ(reqs[i].scans_read, ref.scans);
        EXPECT_EQ(reqs[i].bytes_read, ref.bytes);
        want_bytes += ref.bytes;
        want_scans += static_cast<uint64_t>(ref.scans);
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));
    EXPECT_EQ(st.bytes_read, want_bytes);
    EXPECT_EQ(st.scans_read, want_scans);
    EXPECT_EQ(st.backbone.served, 0u) << "no backbone stage ran";
    // The store metered exactly what the requests report.
    EXPECT_EQ(store_.stats().bytes_read, want_bytes);
    uint64_t hist_total = 0;
    for (uint64_t h : st.resolution_hist)
        hist_total += h;
    EXPECT_EQ(hist_total, st.decoded);
}

TEST_F(StagedEngineTest, ShedCapLowersExactlyTheHighDecisions)
{
    // First pass, uncapped: record how many decisions land on the
    // high resolution. Decisions are deterministic per object, so a
    // second, capped pass must lower exactly those.
    StagedEngineConfig cfg = baseConfig();
    int high = 0;
    {
        StagedServingEngine engine(store_, *scale_, nullptr, cfg);
        std::vector<StagedRequest> reqs(kObjects);
        for (int i = 0; i < kObjects; ++i) {
            reqs[i].id = static_cast<uint64_t>(i);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (int i = 0; i < kObjects; ++i) {
            engine.wait(reqs[i]);
            if (reqs[i].resolution == kGridHi)
                ++high;
        }
    }

    // Cap at the low resolution whenever anything is queued (depth is
    // always >= 1 at decision time) — makeShedPolicy's rule with
    // shed_depth 0.
    cfg.shed_cap = makeShedPolicy(0, kGridLo, 0);
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        EXPECT_EQ(reqs[i].resolution, kGridLo)
            << "capped decision must land on the shed resolution";
    }
    EXPECT_EQ(engine.stats().shed_cap_applied,
              static_cast<uint64_t>(high));
}

TEST_F(StagedEngineTest, FixedResolutionIsTheStaticBaseline)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.fixed_resolution = kGridHi;
    store_.resetStats();
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 1;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.resolution, kGridHi);
    EXPECT_EQ(req.preview_scans, 0) << "static mode reads no preview";
    EXPECT_EQ(req.scans_read, store_.peek(1).numScans())
        << "static mode is a full-prefix read";
    EXPECT_EQ(req.bytes_read, store_.peek(1).totalBytes());
}

TEST_F(StagedEngineTest, ExpiredAndShedRequestsTerminate)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.queue_capacity = 2;
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);

    // Saturate the 2-deep decode queue from one thread: some of the
    // burst must shed at admission.
    std::vector<StagedRequest> burst(16);
    int admitted = 0, shed = 0;
    for (auto &r : burst) {
        r.id = 0;
        if (engine.submit(r))
            ++admitted;
        else
            ++shed;
    }
    for (auto &r : burst)
        engine.wait(r);
    EXPECT_GT(shed, 0);
    EXPECT_EQ(engine.stats().shed_admission,
              static_cast<uint64_t>(shed));
    for (auto &r : burst) {
        const StagedState s = r.stateNow();
        EXPECT_TRUE(s == StagedState::Done || s == StagedState::Shed);
    }

    // A request whose deadline has already passed at formation time
    // is dropped before any byte is read.
    store_.resetStats();
    StagedRequest doomed;
    doomed.id = 0;
    doomed.deadline_s = 1e-9;
    ASSERT_TRUE(engine.submit(doomed));
    engine.wait(doomed);
    EXPECT_EQ(doomed.stateNow(), StagedState::Expired);
    EXPECT_EQ(doomed.bytes_read, 0u);
    EXPECT_EQ(engine.stats().expired, 1u);
}

TEST_F(StagedEngineTest, BackboneStageSteadyStateIsPackFree)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    StagedServingEngine engine(store_, *scale_, g.get(), cfg);

    auto round = [&](std::vector<StagedRequest> &reqs) {
        for (int i = 0; i < kObjects; ++i) {
            reqs[i].id = static_cast<uint64_t>(i);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (auto &r : reqs) {
            engine.wait(r);
            ASSERT_EQ(r.stateNow(), StagedState::Done);
        }
    };

    // Warm round compiles plans and builds the shared prepacks; the
    // steady state must then add ZERO weight packs no matter how many
    // staged rounds run (requests are reused, so the handoff tensors
    // recycle too).
    std::vector<StagedRequest> reqs(kObjects);
    round(reqs);
    const uint64_t packs = convWeightPackCount();
    for (int r = 0; r < 3; ++r)
        round(reqs);
    EXPECT_EQ(convWeightPackCount(), packs)
        << "staged steady state repacked conv weights";
    engine.drain();
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(4 * kObjects));
    EXPECT_EQ(st.backbone.served, static_cast<uint64_t>(4 * kObjects));
}

TEST_F(StagedEngineTest, ConcurrentDecodeWorkersMatchInline)
{
    // Two decode workers racing over the store and the scale model
    // must produce the same per-object decisions as the serial
    // inline pipeline (TSan leg covers the synchronization).
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.scan_depth = [](uint64_t, int r_idx) { return 3 + r_idx; };
    ThreadsEnv env(4);

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(4 * kObjects);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].id = static_cast<uint64_t>(i % kObjects);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        const InlineRef &ref = refs[i % kObjects];
        EXPECT_EQ(reqs[i].resolution_index, ref.r_idx) << i;
        EXPECT_EQ(reqs[i].scans_read, ref.scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, ref.bytes) << i;
    }
}

} // namespace
} // namespace tamres
