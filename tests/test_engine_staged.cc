/**
 * @file
 * Tests for the StagedServingEngine: a request entering as encoded
 * progressive bytes must flow through ranged preview read ->
 * resumable partial decode -> scale-model decision (with queue-depth
 * shed capping) -> incremental read -> batched backbone, produce
 * exactly the inference result of an inline (engine-free) pipeline,
 * meter exactly the bytes its decisions demand, and keep the
 * backbone stage's steady state pack-free.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include <chrono>

#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "nn/builders.hh"
#include "nn/conv_kernels.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "sim/dataset.hh"
#include "storage/breaker.hh"
#include "storage/fault_injection.hh"
#include "tests/threads_env.hh"
#include "util/clock.hh"
#include "util/error.hh"

namespace tamres {
namespace {

DatasetSpec
tinySpec()
{
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 96;
    spec.mean_width = 96;
    spec.size_jitter = 0.1;
    return spec;
}

/** Shared fixture state: dataset, trained scale model, filled store. */
class StagedEngineTest : public ::testing::Test
{
  protected:
    static constexpr int kObjects = 4;
    static constexpr int kGridLo = 48;
    static constexpr int kGridHi = 64;

    StagedEngineTest() : ds_(tinySpec(), 24, 11)
    {
        ScaleModelOptions opts;
        opts.epochs = 3;
        scale_ = std::make_unique<ScaleModel>(
            std::vector<int>{kGridLo, kGridHi}, opts);
        scale_->train(ds_, 0, 16, BackboneArch::ResNet18, {0.75}, 64);

        ProgressiveConfig cfg;
        cfg.quality = ds_.spec().encode_quality;
        cfg.entropy = EntropyCoder::Huffman;
        cfg.restart_interval = 32;
        for (int i = 0; i < kObjects; ++i)
            store_.put(static_cast<uint64_t>(i),
                       encodeProgressive(ds_.renderAt(16 + i, 96),
                                         cfg));
    }

    StagedEngineConfig
    baseConfig() const
    {
        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 1;
        cfg.queue_capacity = 64;
        cfg.backbone.workers = 1;
        cfg.backbone.max_batch = 4;
        cfg.backbone.max_delay_us = 500;
        return cfg;
    }

    /** The engine-free reference for one object's staged flow. */
    struct InlineRef
    {
        int r_idx = 0;
        int scans = 0;
        size_t bytes = 0;
        Tensor input;
    };

    InlineRef
    inlineReference(uint64_t id, const StagedEngineConfig &cfg) const
    {
        const EncodedImage &enc = store_.peek(id);
        InlineRef ref;
        const Image preview = resize(
            centerCropFraction(decodeProgressive(enc,
                                                 cfg.preview_scans),
                               cfg.crop_area),
            scale_->options().input_res, scale_->options().input_res);
        ref.r_idx = scale_->chooseResolutionIndex(preview);
        ref.scans = cfg.scan_depth
                        ? std::clamp(cfg.scan_depth(id, ref.r_idx),
                                     cfg.preview_scans,
                                     enc.numScans())
                        : enc.numScans();
        ref.bytes = enc.bytesForScans(ref.scans);
        const int r = scale_->resolutions()[ref.r_idx];
        const Image sized = resize(
            centerCropFraction(decodeProgressive(enc, ref.scans),
                               cfg.crop_area),
            r, r);
        ref.input = Tensor({1, 3, r, r});
        std::copy_n(sized.data(), sized.numel(), ref.input.data());
        return ref;
    }

    SyntheticDataset ds_;
    std::unique_ptr<ScaleModel> scale_;
    ObjectStore store_;
};

TEST_F(StagedEngineTest, ServesBitIdenticalToInlinePipeline)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [](uint64_t, int r_idx) { return 3 + r_idx; };

    // Inline references computed before the engine exists.
    std::vector<InlineRef> refs;
    std::vector<Tensor> expected;
    for (int i = 0; i < kObjects; ++i) {
        refs.push_back(inlineReference(i, cfg));
        expected.push_back(g->run(refs.back().input));
    }

    StagedServingEngine engine(store_, *scale_, g.get(), cfg);
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done) << i;
        EXPECT_EQ(reqs[i].resolution_index, refs[i].r_idx) << i;
        EXPECT_EQ(reqs[i].resolution,
                  scale_->resolutions()[refs[i].r_idx]);
        EXPECT_EQ(reqs[i].preview_scans, cfg.preview_scans);
        EXPECT_EQ(reqs[i].scans_read, refs[i].scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, refs[i].bytes) << i;
        ASSERT_EQ(reqs[i].infer.output.numel(), expected[i].numel());
        EXPECT_EQ(std::memcmp(reqs[i].infer.output.data(),
                              expected[i].data(),
                              sizeof(float) * expected[i].numel()),
                  0)
            << "request " << i << " output diverged from the inline "
            << "decode -> decide -> infer pipeline";
        EXPECT_GT(reqs[i].latency_s, 0.0);
        EXPECT_GE(reqs[i].latency_s, reqs[i].decode_s);
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));
    EXPECT_EQ(st.backbone.served, static_cast<uint64_t>(kObjects));
}

TEST_F(StagedEngineTest, DecisionOnlyModeMetersExactBytes)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [](uint64_t, int r_idx) { return 2 + r_idx; };

    // References computed BEFORE the engine exists: the scale model's
    // forward pass reuses internal buffers, so external inference
    // while the decision stage serves is illegal (see contract).
    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));
    store_.resetStats();

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(kObjects);
    size_t want_bytes = 0;
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    uint64_t want_scans = 0;
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        const InlineRef &ref = refs[i];
        EXPECT_EQ(reqs[i].resolution_index, ref.r_idx);
        EXPECT_EQ(reqs[i].scans_read, ref.scans);
        EXPECT_EQ(reqs[i].bytes_read, ref.bytes);
        want_bytes += ref.bytes;
        want_scans += static_cast<uint64_t>(ref.scans);
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));
    EXPECT_EQ(st.bytes_read, want_bytes);
    EXPECT_EQ(st.scans_read, want_scans);
    EXPECT_EQ(st.backbone.served, 0u) << "no backbone stage ran";
    // The store metered exactly what the requests report.
    EXPECT_EQ(store_.stats().bytes_read, want_bytes);
    uint64_t hist_total = 0;
    for (uint64_t h : st.resolution_hist)
        hist_total += h;
    EXPECT_EQ(hist_total, st.decoded);
}

TEST_F(StagedEngineTest, ShedCapLowersExactlyTheHighDecisions)
{
    // First pass, uncapped: record how many decisions land on the
    // high resolution. Decisions are deterministic per object, so a
    // second, capped pass must lower exactly those.
    StagedEngineConfig cfg = baseConfig();
    int high = 0;
    {
        StagedServingEngine engine(store_, *scale_, nullptr, cfg);
        std::vector<StagedRequest> reqs(kObjects);
        for (int i = 0; i < kObjects; ++i) {
            reqs[i].id = static_cast<uint64_t>(i);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (int i = 0; i < kObjects; ++i) {
            engine.wait(reqs[i]);
            if (reqs[i].resolution == kGridHi)
                ++high;
        }
    }

    // Cap at the low resolution whenever anything is queued (depth is
    // always >= 1 at decision time) — makeShedPolicy's rule with
    // shed_depth 0.
    cfg.shed_cap = makeShedPolicy(0, kGridLo, 0);
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        EXPECT_EQ(reqs[i].resolution, kGridLo)
            << "capped decision must land on the shed resolution";
    }
    EXPECT_EQ(engine.stats().shed_cap_applied,
              static_cast<uint64_t>(high));
}

TEST_F(StagedEngineTest, FixedResolutionIsTheStaticBaseline)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.fixed_resolution = kGridHi;
    store_.resetStats();
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 1;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.resolution, kGridHi);
    EXPECT_EQ(req.preview_scans, 0) << "static mode reads no preview";
    EXPECT_EQ(req.scans_read, store_.peek(1).numScans())
        << "static mode is a full-prefix read";
    EXPECT_EQ(req.bytes_read, store_.peek(1).totalBytes());
}

TEST_F(StagedEngineTest, ExpiredAndShedRequestsTerminate)
{
    StagedEngineConfig cfg = baseConfig();
    cfg.queue_capacity = 2;
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);

    // Saturate the 2-deep decode queue from one thread: some of the
    // burst must shed at admission.
    std::vector<StagedRequest> burst(16);
    int admitted = 0, shed = 0;
    for (auto &r : burst) {
        r.id = 0;
        if (engine.submit(r))
            ++admitted;
        else
            ++shed;
    }
    for (auto &r : burst)
        engine.wait(r);
    EXPECT_GT(shed, 0);
    EXPECT_EQ(engine.stats().shed_admission,
              static_cast<uint64_t>(shed));
    for (auto &r : burst) {
        const StagedState s = r.stateNow();
        EXPECT_TRUE(s == StagedState::Done || s == StagedState::Shed);
    }

    // A request whose deadline has already passed at formation time
    // is dropped before any byte is read.
    store_.resetStats();
    StagedRequest doomed;
    doomed.id = 0;
    doomed.deadline_s = 1e-9;
    ASSERT_TRUE(engine.submit(doomed));
    engine.wait(doomed);
    EXPECT_EQ(doomed.stateNow(), StagedState::Expired);
    EXPECT_EQ(doomed.bytes_read, 0u);
    EXPECT_EQ(engine.stats().expired, 1u);
}

TEST_F(StagedEngineTest, BackboneStageSteadyStateIsPackFree)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    StagedServingEngine engine(store_, *scale_, g.get(), cfg);

    auto round = [&](std::vector<StagedRequest> &reqs) {
        for (int i = 0; i < kObjects; ++i) {
            reqs[i].id = static_cast<uint64_t>(i);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (auto &r : reqs) {
            engine.wait(r);
            ASSERT_EQ(r.stateNow(), StagedState::Done);
        }
    };

    // Warm round compiles plans and builds the shared prepacks; the
    // steady state must then add ZERO weight packs no matter how many
    // staged rounds run (requests are reused, so the handoff tensors
    // recycle too).
    std::vector<StagedRequest> reqs(kObjects);
    round(reqs);
    const uint64_t packs = convWeightPackCount();
    for (int r = 0; r < 3; ++r)
        round(reqs);
    EXPECT_EQ(convWeightPackCount(), packs)
        << "staged steady state repacked conv weights";
    engine.drain();
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(4 * kObjects));
    EXPECT_EQ(st.backbone.served, static_cast<uint64_t>(4 * kObjects));
}

TEST_F(StagedEngineTest, ConcurrentDecodeWorkersMatchInline)
{
    // Two decode workers racing over the store and the scale model
    // must produce the same per-object decisions as the serial
    // inline pipeline (TSan leg covers the synchronization).
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.scan_depth = [](uint64_t, int r_idx) { return 3 + r_idx; };
    ThreadsEnv env(4);

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(4 * kObjects);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].id = static_cast<uint64_t>(i % kObjects);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done);
        const InlineRef &ref = refs[i % kObjects];
        EXPECT_EQ(reqs[i].resolution_index, ref.r_idx) << i;
        EXPECT_EQ(reqs[i].scans_read, ref.scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, ref.bytes) << i;
    }
}

/** Fast backoff so retry tests spend microseconds, not milliseconds. */
static StagedRetryConfig
fastRetry()
{
    StagedRetryConfig rc;
    rc.backoff_base_s = 1e-4;
    rc.backoff_max_s = 1e-3;
    return rc;
}

TEST_F(StagedEngineTest, RetryThenSucceedMatchesCleanPipeline)
{
    // Every range's FIRST delivery throws a transient fault; the
    // retry must recover and the request must then be
    // indistinguishable from a clean run: same decision, same scans,
    // and — because a transient throw delivers zero bytes — the same
    // metered byte count.
    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.fail = (ctx.attempt == 0);
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done) << i;
        EXPECT_EQ(reqs[i].resolution_index, refs[i].r_idx) << i;
        EXPECT_EQ(reqs[i].scans_read, refs[i].scans) << i;
        EXPECT_EQ(reqs[i].scans_intended, refs[i].scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, refs[i].bytes) << i;
        EXPECT_EQ(reqs[i].retries, 2)
            << "preview + resume fetch each take exactly one retry";
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));
    EXPECT_EQ(st.retries, static_cast<uint64_t>(2 * kObjects));
    EXPECT_EQ(st.fetch_faults, static_cast<uint64_t>(2 * kObjects));
    EXPECT_EQ(st.degraded, 0u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.retry_giveups, 0u);
    EXPECT_EQ(faulty.stats().faults_transient,
              static_cast<uint64_t>(2 * kObjects));
}

TEST_F(StagedEngineTest, RetryExhaustedDegradesBitIdentically)
{
    // The resume fetch fails on every attempt; the preview is clean.
    // The request must degrade to the preview scan depth and the
    // served output must be BIT-IDENTICAL to an inline pipeline that
    // decodes exactly that prefix.
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();

    const EncodedImage &enc = store_.peek(0);
    const Image preview = resize(
        centerCropFraction(decodeProgressive(enc, cfg.preview_scans),
                           cfg.crop_area),
        scale_->options().input_res, scale_->options().input_res);
    const int r_idx = scale_->chooseResolutionIndex(preview);
    const int r = scale_->resolutions()[r_idx];
    const Image degraded_img = resize(
        centerCropFraction(decodeProgressive(enc, cfg.preview_scans),
                           cfg.crop_area),
        r, r);
    Tensor degraded_input({1, 3, r, r});
    std::copy_n(degraded_img.data(), degraded_img.numel(),
                degraded_input.data());
    const Tensor expected = g->run(degraded_input);

    FaultPolicy policy;
    const int kprev = cfg.preview_scans;
    policy.script = [kprev](const FaultContext &ctx) {
        FaultDecision d;
        d.fail = (ctx.from_scans >= kprev);
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedServingEngine engine(faulty, *scale_, g.get(), cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);

    ASSERT_EQ(req.stateNow(), StagedState::Degraded);
    EXPECT_EQ(req.resolution_index, r_idx);
    EXPECT_EQ(req.scans_read, cfg.preview_scans);
    EXPECT_EQ(req.scans_intended, enc.numScans());
    EXPECT_EQ(req.retries, cfg.retry.max_attempts - 1);
    ASSERT_EQ(req.infer.output.numel(), expected.numel());
    EXPECT_EQ(std::memcmp(req.infer.output.data(), expected.data(),
                          sizeof(float) * expected.numel()),
              0)
        << "degraded response diverged from a clean decode of the "
        << "already-available scan prefix";
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.degraded, 1u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.retry_giveups, 1u);
    EXPECT_EQ(st.fetch_faults,
              static_cast<uint64_t>(cfg.retry.max_attempts));
    EXPECT_EQ(st.backbone.served, 1u)
        << "the degraded request still rode the backbone stage";
}

TEST_F(StagedEngineTest, BackoffNeverOutlivesTheDeadline)
{
    // Every fetch fails and the nominal backoff (5 s) dwarfs the
    // request deadline (250 ms): the engine must abandon the retry
    // sleep instead of serving it, so the request terminates almost
    // immediately — never 5 s later.
    StagedEngineConfig cfg = baseConfig();
    cfg.retry.max_attempts = 10;
    cfg.retry.backoff_base_s = 5.0;
    cfg.retry.backoff_max_s = 5.0;
    cfg.retry.jitter = 0.0;

    FaultPolicy policy;
    policy.script = [](const FaultContext &) {
        FaultDecision d;
        d.fail = true;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    req.deadline_s = 0.25;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const StagedState s = req.stateNow();
    EXPECT_TRUE(s == StagedState::Failed || s == StagedState::Expired)
        << "state " << static_cast<int>(s);
    EXPECT_LT(elapsed, 2.0)
        << "a retry backoff ran past the 250 ms deadline";
    EXPECT_GE(engine.stats().retry_giveups, 1u);
}

TEST_F(StagedEngineTest, PoisonedRequestDoesNotStallItsBatch)
{
    // One request names a missing object; it must fail as a
    // structured terminal while every other request in the same
    // decode drain completes untouched.
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_batch = kObjects + 1;

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest poisoned;
    poisoned.id = 404; // never stored
    ASSERT_TRUE(engine.submit(poisoned));
    std::vector<StagedRequest> reqs(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        reqs[i].id = static_cast<uint64_t>(i);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }

    engine.wait(poisoned);
    EXPECT_EQ(poisoned.stateNow(), StagedState::Failed);
    EXPECT_EQ(poisoned.bytes_read, 0u);
    for (int i = 0; i < kObjects; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), StagedState::Done) << i;
        EXPECT_EQ(reqs[i].resolution_index, refs[i].r_idx) << i;
        EXPECT_EQ(reqs[i].scans_read, refs[i].scans) << i;
        EXPECT_EQ(reqs[i].bytes_read, refs[i].bytes) << i;
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.decoded, static_cast<uint64_t>(kObjects));

    // The worker that absorbed the poison keeps serving.
    StagedRequest again;
    again.id = 0;
    ASSERT_TRUE(engine.submit(again));
    engine.wait(again);
    EXPECT_EQ(again.stateNow(), StagedState::Done);
}

TEST_F(StagedEngineTest, ChaosRunTerminatesEveryRequest)
{
    // Seeded stochastic faults across concurrent decode workers:
    // every admitted request must reach a structured terminal, and
    // every Done request must still carry the clean decision.
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.retry = fastRetry();
    ThreadsEnv env(4);

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    FaultPolicy policy;
    policy.seed = 0xC0FFEE;
    policy.transient_p = 0.05;
    policy.truncate_p = 0.04;
    policy.corrupt_p = 0.04;
    policy.latency_tail_p = 0.05;
    policy.latency_tail_scale_s = 2e-4;
    policy.latency_max_s = 2e-3;
    FaultyObjectStore faulty(store_, policy);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    std::vector<StagedRequest> reqs(8 * kObjects);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].id = static_cast<uint64_t>(i % kObjects);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    uint64_t done = 0, degraded = 0, failed = 0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        engine.wait(reqs[i]);
        const StagedState s = reqs[i].stateNow();
        switch (s) {
        case StagedState::Done:
            ++done;
            EXPECT_EQ(reqs[i].resolution_index,
                      refs[i % kObjects].r_idx)
                << i;
            EXPECT_EQ(reqs[i].scans_read, refs[i % kObjects].scans)
                << i;
            break;
        case StagedState::Degraded:
            ++degraded;
            EXPECT_GT(reqs[i].scans_read, 0) << i;
            EXPECT_LT(reqs[i].scans_read, reqs[i].scans_intended)
                << i;
            break;
        case StagedState::Failed:
            ++failed;
            break;
        default:
            FAIL() << "request " << i << " reached state "
                   << static_cast<int>(s)
                   << " under chaos with no deadline set";
        }
    }
    engine.drain();
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.decoded, done + degraded);
    EXPECT_EQ(st.done, done);
    EXPECT_EQ(st.degraded, degraded);
    EXPECT_EQ(st.failed, failed);
    EXPECT_GT(done, 0u) << "chaos mix was survivable by design";
    // Terminal conservation: every admitted request reached exactly
    // one terminal.
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected);
}

// --------------------------------------------------------------------
// Overload control plane: circuit breaker, hedged reads, brownout.
// --------------------------------------------------------------------

TEST_F(StagedEngineTest, BreakerStateMachineWalksDeterministically)
{
    // Scripted faults + a manual clock drive the full Closed -> Open
    // -> HalfOpen -> (probe failure) -> Open -> HalfOpen -> Closed
    // walk with zero sleeps: every transition is a pure function of
    // the fault schedule and the injected time.
    ManualClock clk;
    std::atomic<bool> failing{true};
    FaultPolicy policy;
    policy.script = [&failing](const FaultContext &) {
        FaultDecision d;
        d.fail = failing.load();
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    BreakerConfig bc;
    bc.clock = &clk;
    bc.window_s = 1.0;
    bc.min_samples = 4;
    bc.failure_threshold = 0.5;
    bc.cooldown_s = 0.5;
    bc.half_open_probes = 1;
    bc.close_after = 2;
    BreakerObjectStore breaker(faulty, bc);

    const int n = store_.peek(0).numScans();
    auto fetch = [&] {
        std::vector<uint8_t> buf;
        breaker.fetchScanRange(0, 0, n, buf, false, SIZE_MAX);
    };

    // Closed: failures accumulate until the window holds min_samples
    // of 100% badness, then the breaker trips.
    for (int i = 0; i < 4; ++i) {
        clk.advance(0.01);
        EXPECT_THROW(fetch(), Error);
        EXPECT_EQ(breaker.state(), i < 3 ? BreakerState::Closed
                                         : BreakerState::Open)
            << "failure " << i;
    }
    EXPECT_EQ(breaker.breakerStats().trips, 1u);

    // Open: fetches fail fast with the typed marker and never reach
    // the base store.
    const uint64_t base_faults = faulty.stats().faults_transient;
    clk.advance(0.01);
    try {
        fetch();
        FAIL() << "an Open breaker admitted a fetch";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transient);
        EXPECT_TRUE(e.failFast());
    }
    EXPECT_EQ(faulty.stats().faults_transient, base_faults)
        << "fail-fast must not generate base-store traffic";
    EXPECT_GE(breaker.breakerStats().fast_fails, 1u);

    // Cooldown expires: the next fetch is a HalfOpen probe. The store
    // is still sick, so the probe fails and the breaker re-opens.
    clk.advance(bc.cooldown_s + 0.01);
    EXPECT_THROW(fetch(), Error);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.breakerStats().probe_failures, 1u);
    EXPECT_EQ(breaker.breakerStats().trips, 2u);

    // The store heals; after the next cooldown, close_after probe
    // successes close the breaker.
    failing.store(false);
    clk.advance(bc.cooldown_s + 0.01);
    EXPECT_NO_THROW(fetch());
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_NO_THROW(fetch());
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.breakerStats().closes, 1u);

    // Closed again: healthy traffic flows.
    clk.advance(0.01);
    EXPECT_NO_THROW(fetch());
    EXPECT_EQ(breaker.state(), BreakerState::Closed);

    // The merged ReadStats carry the breaker counters.
    const ReadStats rs = breaker.stats();
    EXPECT_EQ(rs.breaker_trips, 2u);
    EXPECT_GE(rs.breaker_fast_fails, 1u);
}

TEST_F(StagedEngineTest, BreakerOpenDegradesWithoutBackoffSleep)
{
    // With the breaker already Open, the engine's retry loop must
    // honor failFast(): no backoff is slept (the manual clock the
    // engine sleeps on does not move), the request terminates
    // immediately instead of burning its deadline toward a store
    // that is known-down.
    ManualClock clk;
    FaultPolicy policy;
    policy.script = [](const FaultContext &) {
        FaultDecision d;
        d.fail = true;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    BreakerConfig bc;
    bc.clock = &clk;
    bc.min_samples = 1;
    bc.failure_threshold = 0.5;
    bc.cooldown_s = 1e9; // stays Open for the whole test
    BreakerObjectStore breaker(faulty, bc);

    // Trip it with one direct failing fetch.
    {
        std::vector<uint8_t> buf;
        EXPECT_THROW(breaker.fetchScanRange(0, 0, 1, buf, false,
                                            SIZE_MAX),
                     Error);
    }
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry.max_attempts = 10;
    cfg.retry.backoff_base_s = 5.0; // would dominate if ever slept
    cfg.retry.backoff_max_s = 5.0;
    cfg.overload.clock = &clk;

    StagedServingEngine engine(breaker, *scale_, nullptr, cfg);
    const double t0 = clk.now();
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);

    EXPECT_EQ(req.stateNow(), StagedState::Failed)
        << "nothing decodable: no prefix to degrade to";
    EXPECT_EQ(clk.now(), t0)
        << "a fail-fast fetch fault must not sleep a backoff";
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.retry_giveups, 2u)
        << "preview and resume fetches each gave up once";
    EXPECT_EQ(st.retries, 0u);
    EXPECT_GE(breaker.breakerStats().fast_fails, 2u);
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected);
}

TEST_F(StagedEngineTest, BrownoutTiersDropAndRecoverDeterministically)
{
    // Scripted resume-fetch failures generate Degraded pressure; the
    // controller must walk tier 0 -> 1 -> 2 -> 3 (admission
    // rejection), then — once the store heals — recover back to 0.
    // The walk is driven entirely by the manual clock and runs
    // identically at any decode worker count.
    for (int workers : {1, 2}) {
        ManualClock clk;
        std::atomic<bool> failing{true};
        FaultPolicy policy;
        policy.script = [&failing](const FaultContext &ctx) {
            FaultDecision d;
            d.fail = failing.load() && ctx.from_scans >= 1;
            return d;
        };
        FaultyObjectStore faulty(store_, policy);

        StagedEngineConfig cfg = baseConfig();
        cfg.decode_workers = workers;
        cfg.retry = fastRetry();
        cfg.overload.clock = &clk;
        cfg.overload.brownout.enable = true;
        cfg.overload.brownout.window_s = 1.0;
        cfg.overload.brownout.min_samples = 4;
        cfg.overload.brownout.high_pressure = 0.5;
        cfg.overload.brownout.low_pressure = 0.25;
        cfg.overload.brownout.min_dwell_s = 0.5;
        cfg.overload.brownout.preview_cap = 1;
        cfg.overload.brownout.scan_cap = 2;

        StagedServingEngine engine(faulty, *scale_, nullptr, cfg);

        // One serial submit-wait round of 4 requests; returns how
        // many were refused at admission.
        auto round = [&](std::vector<StagedState> *terminals) {
            int refused = 0;
            for (int i = 0; i < 4; ++i) {
                StagedRequest req;
                req.id = static_cast<uint64_t>(i % kObjects);
                if (!engine.submit(req))
                    ++refused;
                engine.wait(req);
                if (terminals)
                    terminals->push_back(req.stateNow());
            }
            return refused;
        };

        // Pressure rounds: tier must climb one step per round (each
        // round provides min_samples of 100% badness, and the clock
        // provides the dwell).
        for (int want_tier = 1; want_tier <= 3; ++want_tier) {
            clk.advance(1.0);
            round(nullptr);
            EXPECT_EQ(engine.stats().brownout_tier, want_tier)
                << "workers " << workers;
        }
        const StagedStats pressured = engine.stats();
        EXPECT_EQ(pressured.tier_drops, 3u);
        EXPECT_GT(pressured.degraded, 0u);

        // Tier 3 refuses everything with the typed terminal.
        {
            StagedRequest req;
            req.id = 0;
            EXPECT_FALSE(engine.submit(req));
            EXPECT_EQ(req.stateNow(), StagedState::Rejected);
        }
        EXPECT_GT(engine.stats().rejected, 0u);

        // The store heals. Tier 3 sees no outcome samples (it rejects
        // everything), so idle recovery must step it down; the
        // following healthy rounds walk it back to 0.
        failing.store(false);
        int recovery_rounds = 0;
        while (engine.stats().brownout_tier > 0 &&
               recovery_rounds < 12) {
            clk.advance(1.5);
            round(nullptr);
            ++recovery_rounds;
        }
        EXPECT_EQ(engine.stats().brownout_tier, 0)
            << "workers " << workers << ": controller never recovered";

        // Healthy steady state at tier 0: full quality again.
        clk.advance(1.0);
        std::vector<StagedState> terminals;
        round(&terminals);
        for (StagedState s : terminals)
            EXPECT_EQ(s, StagedState::Done);

        const StagedStats st = engine.stats();
        EXPECT_GE(st.tier_recoveries, 3u);
        EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                                   st.expired + st.shed_admission +
                                   st.rejected)
            << "workers " << workers;
    }
}

TEST_F(StagedEngineTest, BrownoutTierCapsDepthAndResolution)
{
    // At tier >= 2 a request must see the depth caps AND the
    // resolution floor, and still serve bit-identically to an inline
    // pipeline that decodes exactly the capped prefix.
    ManualClock clk;
    std::atomic<bool> failing{true};
    FaultPolicy policy;
    policy.script = [&failing](const FaultContext &ctx) {
        FaultDecision d;
        d.fail = failing.load() && ctx.from_scans >= 1;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.overload.clock = &clk;
    cfg.overload.brownout.enable = true;
    cfg.overload.brownout.window_s = 1.0;
    cfg.overload.brownout.min_samples = 4;
    cfg.overload.brownout.high_pressure = 0.5;
    cfg.overload.brownout.min_dwell_s = 0.5;
    cfg.overload.brownout.preview_cap = 1;
    cfg.overload.brownout.scan_cap = 2;
    cfg.overload.brownout.max_tier = 2; // no admission rejection

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    auto pressure_round = [&] {
        for (int i = 0; i < 4; ++i) {
            StagedRequest req;
            req.id = static_cast<uint64_t>(i % kObjects);
            ASSERT_TRUE(engine.submit(req));
            engine.wait(req);
        }
    };
    clk.advance(1.0);
    pressure_round();
    clk.advance(1.0);
    pressure_round();
    ASSERT_EQ(engine.stats().brownout_tier, 2);

    // Healthy request at tier 2: preview capped to 1 scan, total
    // capped to 2, resolution shed to the grid floor.
    failing.store(false);
    StagedRequest req;
    req.id = 1;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.preview_scans, 1);
    EXPECT_EQ(req.scans_read, 2);
    EXPECT_EQ(req.scans_intended, 2);
    EXPECT_EQ(req.resolution, kGridLo);
    EXPECT_EQ(req.bytes_read, store_.peek(1).bytesForScans(2))
        << "capped request must meter exactly the capped prefix";
    // The capped counter fires exactly when the model's (1-scan
    // preview) choice sat above the floor.
    const Image preview1 = resize(
        centerCropFraction(decodeProgressive(store_.peek(1), 1),
                           cfg.crop_area),
        scale_->options().input_res, scale_->options().input_res);
    if (scale_->resolutions()[scale_->chooseResolutionIndex(
            preview1)] > kGridLo)
        EXPECT_GT(engine.stats().brownout_capped, 0u);
    // max_tier honored: pressure never pushed past 2.
    EXPECT_LE(engine.stats().brownout_tier, 2);
}

TEST_F(StagedEngineTest, BrownoutShedsToInt8BackboneTier)
{
    // Precision before resolution: with int8_tier = 1 the first
    // brownout step routes backbone traffic to the quantized graph.
    // Scripted faults climb the tier; once the store heals, a clean
    // request must serve Done on the int8 backbone, bit-identical to
    // the quantized graph's direct execution on the exact input the
    // engine built — and terminal conservation must hold throughout.
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    auto q = buildResNet18(8, 5);
    quantizeGraph(*q);

    ManualClock clk;
    std::atomic<bool> failing{true};
    FaultPolicy policy;
    policy.script = [&failing](const FaultContext &ctx) {
        FaultDecision d;
        d.fail = failing.load() && ctx.from_scans >= 1;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.backbone.quant_graph = q.get();
    cfg.overload.clock = &clk;
    cfg.overload.brownout.enable = true;
    cfg.overload.brownout.window_s = 1.0;
    cfg.overload.brownout.min_samples = 4;
    cfg.overload.brownout.high_pressure = 0.5;
    cfg.overload.brownout.min_dwell_s = 0.5;
    cfg.overload.brownout.max_tier = 1;  // precision only
    cfg.overload.brownout.int8_tier = 1; // tier 1 -> int8 backbone
    cfg.overload.brownout.preview_cap = 8; // depth caps out of the way
    cfg.overload.brownout.scan_cap = 8;

    StagedServingEngine engine(faulty, *scale_, g.get(), cfg);

    // Pressure round: every request degrades, the window fills with
    // bad outcomes, the tier climbs to 1.
    clk.advance(1.0);
    for (int i = 0; i < 4; ++i) {
        StagedRequest req;
        req.id = static_cast<uint64_t>(i % kObjects);
        ASSERT_TRUE(engine.submit(req));
        engine.wait(req);
    }
    ASSERT_EQ(engine.stats().brownout_tier, 1);

    // Healthy request at tier 1: full scan depth and resolution (only
    // precision shed), served on the quantized backbone.
    failing.store(false);
    StagedRequest req;
    req.id = 1;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_TRUE(req.infer.want_int8);
    EXPECT_TRUE(req.infer.served_int8)
        << "tier >= int8_tier must serve on the quantized graph";
    const Tensor expect = q->run(req.infer.input);
    ASSERT_EQ(req.infer.output.numel(), expect.numel());
    EXPECT_EQ(std::memcmp(req.infer.output.data(), expect.data(),
                          sizeof(float) * expect.numel()),
              0)
        << "int8-tier output diverged from the quantized graph";

    engine.drain();
    const StagedStats st = engine.stats();
    EXPECT_GE(st.brownout_int8, 1u);
    EXPECT_GE(st.backbone.served_int8, 1u);
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected + st.cancelled)
        << "terminal conservation with the int8 tier active";
}

TEST_F(StagedEngineTest, HedgedReadCutsInjectedTailLatency)
{
    // The first delivery attempt of every range carries a large
    // injected delay; the retry-attempt draw is clean. With hedging
    // on, the backup fetch (attempt 1) must win long before the
    // primary's delay elapses — and the result must be bit-identical
    // to the clean pipeline. Hedge timing is wall-clock by design, so
    // this test injects REAL delays and bounds REAL elapsed time.
    constexpr double kSlow = 0.25;
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.delay_s = ctx.attempt == 0 ? kSlow : 0.0;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.overload.hedge.enable = true;
    cfg.overload.hedge.max_delay_s = 5e-3; // bootstrap hedge delay
    cfg.overload.hedge.min_delay_s = 1e-3;
    cfg.overload.hedge.max_per_request = 2; // both stage fetches hedge

    std::vector<InlineRef> refs;
    for (int i = 0; i < kObjects; ++i)
        refs.push_back(inlineReference(i, cfg));

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.resolution_index, refs[0].r_idx);
    EXPECT_EQ(req.scans_read, refs[0].scans);
    EXPECT_EQ(req.bytes_read, refs[0].bytes)
        << "the adopted winner delivered the exact clean range";
    EXPECT_GE(req.hedges, 1);
    EXPECT_LT(elapsed, kSlow)
        << "hedge failed to cut the injected tail";

    const StagedStats st = engine.stats();
    EXPECT_GE(st.hedges_issued, 1u);
    EXPECT_GE(st.hedge_wins, 1u);
    // Honest metering: once the loser settles, the engine has charged
    // its bytes too (the store metered both fetches all along).
    engine.stop();
    EXPECT_GE(engine.stats().bytes_read, req.bytes_read);
    EXPECT_GE(faulty.stats().requests, 2u);
}

// --------------------------------------------------------------------
// Request lifecycle supervision: cooperative cancellation, timed-fetch
// containment of hung reads, and the serving watchdog.
// --------------------------------------------------------------------

TEST_F(StagedEngineTest, StageTimeoutAbandonsHungReadThenRecovers)
{
    // stage_timeout_s bounds the PHYSICAL read, not just backoff (the
    // documented semantics): a preview read wedged indefinitely is
    // abandoned when its stage budget lapses and the stage gives up —
    // but the shortfall is non-fatal. The stage-4 fetch runs on a
    // FRESH budget, recovers the whole range, and the request lands
    // Done at full depth, bit-identical to the inline pipeline that
    // saw the same 0-scan (mid-gray) preview.
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.hang = ctx.from_scans == 0 && ctx.to_scans == 2 &&
                 ctx.attempt == 0;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.retry.stage_timeout_s = 0.05;
    StagedEngineConfig ref_cfg = cfg;
    ref_cfg.preview_scans = 0; // what the degraded decision sees
    const InlineRef ref = inlineReference(0, ref_cfg);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.resolution_index, ref.r_idx);
    EXPECT_EQ(req.scans_read, ref.scans);
    EXPECT_EQ(req.bytes_read, ref.bytes)
        << "the recovery fetch delivered the exact clean range";
    EXPECT_LT(elapsed, 2.0)
        << "a hung read must be bounded by the stage budget, "
           "not by the hang";

    const StagedStats st = engine.stats();
    EXPECT_GE(st.reads_abandoned, 1u);
    EXPECT_GE(st.retry_giveups, 1u);
    EXPECT_EQ(faulty.stats().faults_hung, 1u);
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected + st.cancelled);
}

TEST_F(StagedEngineTest, PermanentHangDegradesAndDrainStaysLive)
{
    // Every resume-range read wedges on every attempt. With the
    // timed-fetch bound the request must degrade to its preview
    // prefix within the stage budget, drain()/stop() must return
    // promptly (the wedged I/O-pool task is woken by the abandoned
    // fetch's token, never joined against a hang), and the abandoned
    // read's late unwind must not double-account bytes_read.
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.hang = ctx.from_scans >= 1;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.retry.stage_timeout_s = 0.04;
    const size_t preview_bytes =
        store_.peek(0).bytesForScans(cfg.preview_scans);

    const auto t0 = std::chrono::steady_clock::now();
    {
        StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
        StagedRequest req;
        req.id = 0;
        ASSERT_TRUE(engine.submit(req));
        engine.wait(req);

        ASSERT_EQ(req.stateNow(), StagedState::Degraded);
        EXPECT_EQ(req.scans_read, cfg.preview_scans)
            << "degrade serves the clean preview prefix";
        EXPECT_GT(req.scans_intended, cfg.preview_scans);
        EXPECT_EQ(req.bytes_read, preview_bytes);

        engine.drain(); // must not wait on the wedged read
        const StagedStats st = engine.stats();
        EXPECT_GE(st.reads_abandoned, 1u);
        EXPECT_GE(st.retry_giveups, 1u);
        EXPECT_EQ(st.bytes_read, preview_bytes)
            << "an abandoned read must not meter bytes it never "
               "delivered";
        EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                                   st.expired + st.shed_admission +
                                   st.rejected + st.cancelled);
        engine.stop();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(elapsed, 5.0)
        << "drain()/stop() hung on a permanently wedged read";
}

TEST_F(StagedEngineTest, LateCompletionOfAbandonedReadMetersOnce)
{
    // An abandoned read that eventually completes (an uncancellable
    // injected delay, not a hang) must neither crash nor
    // double-account: its token fired at abandonment, so the base
    // store refuses delivery when the sleep finally ends.
    constexpr double kSlowS = 0.15;
    FaultPolicy policy;
    policy.latency_max_s = kSlowS;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.delay_s = ctx.from_scans == 0 && ctx.to_scans == 2 &&
                            ctx.attempt == 0
                        ? kSlowS
                        : 0.0;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.retry.stage_timeout_s = 0.03;
    StagedEngineConfig ref_cfg = cfg;
    ref_cfg.preview_scans = 0; // the abandoned preview decodes nothing
    const InlineRef ref = inlineReference(0, ref_cfg);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.bytes_read, ref.bytes);

    // stop() joins the I/O pool, so the late completion has settled
    // by the time stats are read.
    engine.stop();
    const StagedStats st = engine.stats();
    EXPECT_GE(st.reads_abandoned, 1u);
    EXPECT_EQ(st.bytes_read, ref.bytes)
        << "late completion double-accounted bytes_read";
    EXPECT_EQ(st.done, 1u);
}

TEST_F(StagedEngineTest, ClientCancelTerminatesCancelledAndLeavesNoTrace)
{
    // A queued request cancelled before formation must terminate
    // Cancelled without touching storage; a re-serve of the same
    // object afterwards must be bit-identical to the clean reference.
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.delay_s = ctx.id == 0 ? 0.03 : 0.0; // occupy the worker
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 1;
    const InlineRef ref = inlineReference(1, cfg);

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest busy, victim;
    busy.id = 0;
    victim.id = 1;
    ASSERT_TRUE(engine.submit(busy));
    ASSERT_TRUE(engine.submit(victim));
    engine.cancel(victim);
    engine.wait(busy);
    engine.wait(victim);

    EXPECT_EQ(busy.stateNow(), StagedState::Done);
    ASSERT_EQ(victim.stateNow(), StagedState::Cancelled);
    EXPECT_EQ(victim.bytes_read, 0u)
        << "cancelled-at-formation must not touch storage";

    // Idempotent + post-terminal cancel is a no-op.
    engine.cancel(victim);

    StagedRequest again;
    again.id = 1;
    ASSERT_TRUE(engine.submit(again));
    engine.wait(again);
    ASSERT_EQ(again.stateNow(), StagedState::Done);
    EXPECT_EQ(again.resolution_index, ref.r_idx);
    EXPECT_EQ(again.scans_read, ref.scans);
    EXPECT_EQ(again.bytes_read, ref.bytes)
        << "re-serve after cancel not bit-identical to clean run";

    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cancelled, 1u);
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected + st.cancelled);
}

TEST_F(StagedEngineTest, ClientCancelWakesWedgedReadMidFlight)
{
    // No stage timeout, no hedge: the worker runs the synchronous
    // fetch path and wedges inside a scripted hang. cancel() must
    // wake the wedged read via the request token (polled between
    // delivery chunks / in the hang loop), and the request must
    // terminate Cancelled with its clean preview prefix metered.
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.hang = ctx.from_scans >= 1;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    while (faulty.stats().faults_hung < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    engine.cancel(req);
    engine.wait(req);

    ASSERT_EQ(req.stateNow(), StagedState::Cancelled);
    EXPECT_EQ(req.scans_read, cfg.preview_scans)
        << "cancellation lands on the clean preview boundary";
    EXPECT_EQ(req.bytes_read,
              store_.peek(0).bytesForScans(cfg.preview_scans))
        << "the bytes actually read are still metered";
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cancelled, 1u);
    EXPECT_EQ(st.bytes_read, req.bytes_read);
}

TEST_F(StagedEngineTest, WatchdogFlagsWedgedWorkerAndFailFasts)
{
    // Liveness budgets run on the injectable engine clock: the worker
    // wedges in a hung read, the ManualClock advances past the
    // budget, and the supervisor (wall-clock cadence by design) must
    // flag the silent worker, dump diagnostics, and fail-fast the
    // request — which degrades to its clean preview prefix.
    ManualClock clk;
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.hang = ctx.from_scans >= 1;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.retry = fastRetry();
    cfg.overload.clock = &clk;
    cfg.overload.watchdog.enable = true;
    cfg.overload.watchdog.liveness_budget_s = 1.0;
    cfg.overload.watchdog.poll_interval_s = 0.002;

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    // Only once the worker is provably wedged does the budget clock
    // move — a deterministic flag, not a racy one.
    while (faulty.stats().faults_hung < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    clk.advance(2.0);
    engine.wait(req);

    ASSERT_EQ(req.stateNow(), StagedState::Degraded)
        << "watchdog fail-fast degrades to the decoded prefix";
    EXPECT_EQ(req.scans_read, cfg.preview_scans);
    const StagedStats st = engine.stats();
    EXPECT_GE(st.watchdog_flags, 1u);
    EXPECT_GE(st.retry_giveups, 1u);
    EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                               st.expired + st.shed_admission +
                               st.rejected + st.cancelled);
}

TEST_F(StagedEngineTest, ChaosWithHangsUnderSupervisionConserves)
{
    // Acceptance: seeded chaos including wedged reads (hang_p > 0)
    // with the full supervision stack on — timed fetches + watchdog —
    // must terminate EVERY request with a structured terminal, keep
    // the extended conservation identity exact, and tear down
    // promptly.
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.retry = fastRetry();
    cfg.retry.stage_timeout_s = 0.02;
    cfg.overload.watchdog.enable = true;
    cfg.overload.watchdog.liveness_budget_s = 0.5;
    cfg.overload.watchdog.poll_interval_s = 0.005;
    ThreadsEnv env(4);

    FaultPolicy policy;
    policy.seed = 0xD06;
    policy.hang_p = 0.08;
    policy.transient_p = 0.05;
    policy.truncate_p = 0.04;
    policy.corrupt_p = 0.03;
    FaultyObjectStore faulty(store_, policy);

    const auto t0 = std::chrono::steady_clock::now();
    {
        StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
        std::vector<StagedRequest> reqs(8 * kObjects);
        for (size_t i = 0; i < reqs.size(); ++i) {
            reqs[i].id = static_cast<uint64_t>(i % kObjects);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (size_t i = 0; i < reqs.size(); ++i) {
            engine.wait(reqs[i]);
            const StagedState s = reqs[i].stateNow();
            EXPECT_TRUE(s == StagedState::Done ||
                        s == StagedState::Degraded ||
                        s == StagedState::Failed)
                << "request " << i << " reached state "
                << static_cast<int>(s);
        }
        engine.drain();
        const StagedStats st = engine.stats();
        EXPECT_EQ(st.admitted, st.done + st.degraded + st.failed +
                                   st.expired + st.shed_admission +
                                   st.rejected + st.cancelled)
            << "conservation identity broken under hangs";
        EXPECT_GT(st.done, 0u);
        EXPECT_GE(faulty.stats().faults_hung, 1u)
            << "the seed produced no hangs; raise hang_p";
        EXPECT_GE(st.reads_abandoned, faulty.stats().faults_hung)
            << "every hang must have been contained by abandonment";
        engine.stop();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(elapsed, 30.0) << "supervised chaos run wedged";
}

TEST_F(StagedEngineTest, HedgeBudgetZeroNeverHedges)
{
    // A global in-flight budget of zero disables backups even with
    // hedging enabled: the slow primary is simply awaited.
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.delay_s = ctx.attempt == 0 ? 0.05 : 0.0;
        return d;
    };
    FaultyObjectStore faulty(store_, policy);

    StagedEngineConfig cfg = baseConfig();
    cfg.overload.hedge.enable = true;
    cfg.overload.hedge.max_delay_s = 2e-3;
    cfg.overload.hedge.inflight_budget = 0;

    StagedServingEngine engine(faulty, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.hedges_issued, 0u);
    EXPECT_EQ(st.hedge_wins, 0u);
    EXPECT_EQ(req.hedges, 0);
}

TEST_F(StagedEngineTest, CacheHitSkipsStageOneFetchAndChargesZero)
{
    // Serve the same object twice with the decode cache on: the first
    // request pays the physical fetches and seeds the cache; the
    // second hits at full depth and must charge ZERO store bytes.
    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [](uint64_t, int) { return 4; };
    DecodeCacheConfig ccfg;
    ccfg.require_second_hit = false; // deterministic single-pass seed
    DecodeCache cache(ccfg);
    cfg.cache = &cache;
    store_.attachCache(&cache);
    store_.resetStats();
    const size_t full4 = store_.peek(0).bytesForScans(4);

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest first;
    first.id = 0;
    ASSERT_TRUE(engine.submit(first));
    engine.wait(first);
    ASSERT_EQ(first.stateNow(), StagedState::Done);
    EXPECT_EQ(first.bytes_read, full4);
    EXPECT_EQ(store_.stats().bytes_read, full4);

    StagedRequest second;
    second.id = 0;
    ASSERT_TRUE(engine.submit(second));
    engine.wait(second);
    ASSERT_EQ(second.stateNow(), StagedState::Done);
    EXPECT_EQ(second.scans_read, 4);
    EXPECT_EQ(second.bytes_read, 0u)
        << "a full-depth hit must skip every physical fetch";
    EXPECT_EQ(store_.stats().bytes_read, full4)
        << "the store saw no extra bytes for the hit request";

    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cache_hits, 1u);
    EXPECT_EQ(st.cache_misses, 1u);
    EXPECT_EQ(st.cache_bytes_saved, full4);
    EXPECT_EQ(st.cache.hits, st.cache_hits + st.cache_resumes)
        << "every cache-level hit is an engine hit or resume";
    engine.stop();
    store_.detachCache(&cache);
}

TEST_F(StagedEngineTest, CachePartialHitChargesOnlyTheDelta)
{
    // A cached shallow prefix (depth 2) under a deeper decision: the
    // stage-1 fetch is skipped, and the stage-4 fetch charges exactly
    // the missing scan range.
    const EncodedImage &enc = store_.peek(0);
    const int deep = std::min(5, enc.numScans());
    DecodeCacheConfig ccfg;
    ccfg.require_second_hit = false;
    DecodeCache cache(ccfg);
    store_.attachCache(&cache);

    {
        // Seed pass: decisions stop at the preview depth, so the
        // cache ends up holding depth-2 entries only.
        StagedEngineConfig cfg = baseConfig();
        cfg.scan_depth = [](uint64_t, int) { return 2; };
        cfg.cache = &cache;
        StagedServingEngine engine(store_, *scale_, nullptr, cfg);
        StagedRequest req;
        req.id = 0;
        ASSERT_TRUE(engine.submit(req));
        engine.wait(req);
        ASSERT_EQ(req.stateNow(), StagedState::Done);
    }
    store_.resetStats();

    StagedEngineConfig cfg = baseConfig();
    cfg.scan_depth = [deep](uint64_t, int) { return deep; };
    cfg.cache = &cache;
    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest req;
    req.id = 0;
    ASSERT_TRUE(engine.submit(req));
    engine.wait(req);
    ASSERT_EQ(req.stateNow(), StagedState::Done);
    EXPECT_EQ(req.scans_read, deep);
    const size_t delta =
        enc.bytesForScans(deep) - enc.bytesForScans(2);
    EXPECT_EQ(req.bytes_read, delta)
        << "a partial hit must charge only the missing range";
    EXPECT_EQ(store_.stats().bytes_read, delta);

    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cache_hits, 1u);
    EXPECT_EQ(st.cache_bytes_saved, enc.bytesForScans(2));

    // The stage-4 fetch reached the new depth, so a THIRD request is
    // a full hit: zero bytes.
    StagedRequest third;
    third.id = 0;
    ASSERT_TRUE(engine.submit(third));
    engine.wait(third);
    ASSERT_EQ(third.stateNow(), StagedState::Done);
    EXPECT_EQ(third.bytes_read, 0u);
    engine.stop();
    store_.detachCache(&cache);
}

TEST_F(StagedEngineTest, CacheHitServesBitIdenticalThroughBackbone)
{
    // With preview depth == decision depth, round 2 hits the cached
    // preview entry and must produce byte-for-byte the round-1 (and
    // inline-reference) backbone output: a cache hit can change only
    // what the request paid, never what it was served.
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    StagedEngineConfig cfg = baseConfig();
    cfg.preview_scans = 4;
    cfg.scan_depth = [](uint64_t, int) { return 4; };
    DecodeCacheConfig ccfg;
    ccfg.require_second_hit = false;
    DecodeCache cache(ccfg);
    cfg.cache = &cache;
    store_.attachCache(&cache);

    std::vector<InlineRef> refs;
    std::vector<Tensor> expected;
    for (int i = 0; i < kObjects; ++i) {
        refs.push_back(inlineReference(i, cfg));
        expected.push_back(g->run(refs.back().input));
    }

    StagedServingEngine engine(store_, *scale_, g.get(), cfg);
    for (int round = 0; round < 2; ++round) {
        std::vector<StagedRequest> reqs(kObjects);
        for (int i = 0; i < kObjects; ++i) {
            reqs[i].id = static_cast<uint64_t>(i);
            ASSERT_TRUE(engine.submit(reqs[i]));
        }
        for (int i = 0; i < kObjects; ++i) {
            engine.wait(reqs[i]);
            ASSERT_EQ(reqs[i].stateNow(), StagedState::Done)
                << "round " << round << " object " << i;
            EXPECT_EQ(reqs[i].resolution_index, refs[i].r_idx);
            if (round == 1)
                EXPECT_EQ(reqs[i].bytes_read, 0u)
                    << "round-2 request " << i << " must be a hit";
            ASSERT_EQ(reqs[i].infer.output.numel(),
                      expected[i].numel());
            EXPECT_EQ(std::memcmp(reqs[i].infer.output.data(),
                                  expected[i].data(),
                                  sizeof(float) * expected[i].numel()),
                      0)
                << "round " << round << " object " << i
                << " output diverged";
        }
    }
    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cache_hits, static_cast<uint64_t>(kObjects));
    engine.stop();
    store_.detachCache(&cache);
}

TEST_F(StagedEngineTest, CacheStageFourResumeInFixedResolutionMode)
{
    // fixed_resolution mode never fetches a preview (kprev == 0), so
    // the cache engages on the stage-4 path alone: round 2 resumes
    // from the cached full-depth snapshot and fetches nothing.
    StagedEngineConfig cfg = baseConfig();
    cfg.fixed_resolution = kGridLo;
    cfg.scan_depth = [](uint64_t, int) { return 4; };
    DecodeCacheConfig ccfg;
    ccfg.require_second_hit = false;
    DecodeCache cache(ccfg);
    cfg.cache = &cache;
    const size_t full4 = store_.peek(0).bytesForScans(4);

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    StagedRequest first;
    first.id = 0;
    ASSERT_TRUE(engine.submit(first));
    engine.wait(first);
    ASSERT_EQ(first.stateNow(), StagedState::Done);
    EXPECT_EQ(first.bytes_read, full4);

    StagedRequest second;
    second.id = 0;
    ASSERT_TRUE(engine.submit(second));
    engine.wait(second);
    ASSERT_EQ(second.stateNow(), StagedState::Done);
    EXPECT_EQ(second.scans_read, 4);
    EXPECT_EQ(second.bytes_read, 0u);

    const StagedStats st = engine.stats();
    EXPECT_EQ(st.cache_hits, 0u) << "no stage-1 lookup without preview";
    EXPECT_EQ(st.cache_resumes, 1u);
    EXPECT_EQ(st.cache_bytes_saved, full4);
    engine.stop();
}

TEST_F(StagedEngineTest, CacheOnConservesTerminalsUnderConcurrency)
{
    // TSan-exercised: multiple workers, repeated traffic over a small
    // hot set with the cache on (second-hit admission active, small
    // capacity to force eviction churn). Terminal conservation and
    // the hit/resume accounting identity must survive the races.
    StagedEngineConfig cfg = baseConfig();
    cfg.decode_workers = 2;
    cfg.decode_batch = 2;
    cfg.scan_depth = [](uint64_t, int r_idx) { return 3 + r_idx; };
    DecodeCacheConfig ccfg;
    ccfg.capacity_bytes = 512u << 10; // small: churn admissions
    DecodeCache cache(ccfg);
    cfg.cache = &cache;
    store_.attachCache(&cache);
    store_.resetStats();

    StagedServingEngine engine(store_, *scale_, nullptr, cfg);
    constexpr int kReqs = 48;
    std::vector<StagedRequest> reqs(kReqs);
    for (int i = 0; i < kReqs; ++i) {
        reqs[i].id = static_cast<uint64_t>(i % kObjects);
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < kReqs; ++i)
        engine.wait(reqs[i]);
    engine.stop();

    const StagedStats st = engine.stats();
    EXPECT_EQ(st.admitted, static_cast<uint64_t>(kReqs));
    EXPECT_EQ(st.admitted,
              st.done + st.degraded + st.failed + st.expired +
                  st.shed_admission + st.rejected + st.cancelled)
        << "terminal conservation with the cache on";
    EXPECT_EQ(st.done, static_cast<uint64_t>(kReqs));
    EXPECT_EQ(st.cache.hits, st.cache_hits + st.cache_resumes);
    // Honest metering: the store's meter matches the engine's even
    // when hits skipped fetches entirely.
    EXPECT_EQ(store_.stats().bytes_read, st.bytes_read);
    EXPECT_LE(st.cache.bytes, ccfg.capacity_bytes);
    // Hot set of 4 objects over 48 requests: the cache must have
    // actually engaged.
    EXPECT_GT(st.cache_hits + st.cache_resumes, 0u);
    store_.detachCache(&cache);
}

} // namespace
} // namespace tamres
