/**
 * @file
 * Unit tests for the storage module: byte accounting, incremental
 * reads, byte delivery, fault injection, the hot-object decode cache,
 * bandwidth model.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "image/synthetic.hh"
#include "storage/breaker.hh"
#include "storage/decode_cache.hh"
#include "storage/fault_injection.hh"
#include "storage/object_store.hh"
#include "util/cancel.hh"
#include "util/clock.hh"
#include "util/error.hh"

namespace tamres {
namespace {

EncodedImage
encodeTest(uint64_t seed)
{
    return encodeProgressive(generateSyntheticImage(
        {.height = 40, .width = 40, .class_id = 1, .seed = seed}));
}

TEST(ObjectStore, PutAndContains)
{
    ObjectStore store;
    EXPECT_FALSE(store.contains(7));
    store.put(7, encodeTest(1));
    EXPECT_TRUE(store.contains(7));
    EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStore, StoredBytesSum)
{
    ObjectStore store;
    const EncodedImage a = encodeTest(1);
    const EncodedImage b = encodeTest(2);
    store.put(1, a);
    store.put(2, b);
    EXPECT_EQ(store.storedBytes(), a.totalBytes() + b.totalBytes());
}

TEST(ObjectStore, ReadChargesPrefixBytes)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(3);
    store.put(1, enc);
    store.readScans(1, 2);
    EXPECT_EQ(store.stats().requests, 1u);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(2));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, IncrementalReadChargesOnlyDelta)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(4);
    store.put(1, enc);
    store.readScans(1, 2);
    store.readAdditionalScans(1, 2, 4);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(4));
    // The full-read denominator counted once per logical request.
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, ZeroPrefixIncrementalReadDoesNotDoubleChargeFull)
{
    // A 0-scan first read (preview_scans = 0) followed by an
    // incremental range starting at scan 0 must still charge the
    // full-read denominator exactly once for the logical request.
    ObjectStore store;
    const EncodedImage enc = encodeTest(5);
    store.put(1, enc);
    store.readScans(1, 0);
    store.readAdditionalScans(1, 0, 1);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(1));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, RangedByteReadsMeterWithoutDecoding)
{
    // The staged-engine fetch path: readScanRangeBytes charges the
    // incremental bytes and charges the denominator only on the
    // prefix-starting (from == 0) fetch.
    ObjectStore store;
    const EncodedImage enc = encodeTest(6);
    store.put(1, enc);
    EXPECT_EQ(store.readScanRangeBytes(1, 0, 2), enc.bytesForScans(2));
    EXPECT_EQ(store.readScanRangeBytes(1, 2, 4),
              enc.bytesForScans(4) - enc.bytesForScans(2));
    EXPECT_EQ(store.stats().requests, 2u);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(4));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, SavingsComputed)
{
    ObjectStore store;
    store.put(1, encodeTest(5));
    store.readScans(1, 1);
    const ReadStats &s = store.stats();
    EXPECT_GT(s.savings(), 0.0);
    EXPECT_LT(s.savings(), 1.0);
    EXPECT_NEAR(s.relativeReadSize() + s.savings(), 1.0, 1e-12);
}

TEST(ObjectStore, ResetStatsKeepsObjects)
{
    ObjectStore store;
    store.put(1, encodeTest(6));
    store.readScans(1, 1);
    store.resetStats();
    EXPECT_EQ(store.stats().requests, 0u);
    EXPECT_TRUE(store.contains(1));
}

TEST(ObjectStore, DecodedPreviewMatchesDirectDecode)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(7);
    store.put(9, enc);
    const Image via_store = store.readScans(9, 3);
    const Image direct = decodeProgressive(enc, 3);
    ASSERT_EQ(via_store.numel(), direct.numel());
    for (size_t i = 0; i < direct.numel(); ++i)
        EXPECT_EQ(via_store.data()[i], direct.data()[i]);
}

TEST(ObjectStoreError, MissingObjectThrowsNotFound)
{
    // A missing id is a request error the serving tier maps to a
    // per-request failure — a typed throw, never a process abort.
    ObjectStore store;
    try {
        store.readScans(404, 1);
        FAIL() << "expected Error{NotFound}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::NotFound);
        EXPECT_NE(std::string(e.what()).find("not in store"),
                  std::string::npos);
    }
    EXPECT_THROW(store.peek(404), Error);
    std::vector<uint8_t> buf;
    EXPECT_THROW(store.fetchScanRange(404, 0, 1, buf), Error);
    // The store stays fully usable after a failed lookup.
    store.put(404, encodeTest(9));
    EXPECT_NO_THROW(store.readScans(404, 1));
}

TEST(ObjectStoreDeath, BadIncrementalRange)
{
    ObjectStore store;
    store.put(1, encodeTest(8));
    EXPECT_DEATH(store.readAdditionalScans(1, 3, 2), "scan range");
}

TEST(ObjectStore, FetchScanRangeDeliversAndMetersBytes)
{
    // The byte-delivering path the staged engine decodes from: the
    // appended bytes are the exact payload range, and the metering
    // matches readScanRangeBytes.
    ObjectStore store;
    const EncodedImage enc = encodeTest(10);
    store.put(1, enc);
    std::vector<uint8_t> buf;
    EXPECT_EQ(store.fetchScanRange(1, 0, 2, buf), enc.bytesForScans(2));
    EXPECT_EQ(buf.size(), enc.bytesForScans(2));
    EXPECT_EQ(store.fetchScanRange(1, 2, 4, buf),
              enc.bytesForScans(4) - enc.bytesForScans(2));
    EXPECT_EQ(buf.size(), enc.bytesForScans(4));
    EXPECT_EQ(std::memcmp(buf.data(), enc.bytes.data(), buf.size()), 0);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(4));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, FetchScanRangeRetryDoesNotDoubleChargeFull)
{
    // A retried from == 0 fetch passes charge_full = false so the
    // full-read denominator stays once-per-logical-request.
    ObjectStore store;
    const EncodedImage enc = encodeTest(11);
    store.put(1, enc);
    std::vector<uint8_t> buf;
    store.fetchScanRange(1, 0, 2, buf);
    buf.clear(); // simulate discarding a damaged delivery
    store.fetchScanRange(1, 0, 2, buf, /*charge_full=*/false);
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
    EXPECT_EQ(store.stats().bytes_read, 2 * enc.bytesForScans(2));
}

TEST(ObjectStore, FetchScanRangeHonorsMaxBytes)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(12);
    store.put(1, enc);
    std::vector<uint8_t> buf;
    const size_t cap = enc.bytesForScans(1) / 2;
    EXPECT_EQ(store.fetchScanRange(1, 0, 1, buf, true, cap), cap);
    EXPECT_EQ(buf.size(), cap);
    // Only the delivered bytes are metered.
    EXPECT_EQ(store.stats().bytes_read, cap);
}

TEST(FaultInjection, CleanPolicyIsTransparent)
{
    ObjectStore base;
    const EncodedImage enc = encodeTest(13);
    base.put(1, enc);
    FaultyObjectStore store(base, FaultPolicy{});
    std::vector<uint8_t> buf;
    EXPECT_EQ(store.fetchScanRange(1, 0, enc.numScans(), buf, true,
                                   SIZE_MAX),
              enc.totalBytes());
    EXPECT_EQ(std::memcmp(buf.data(), enc.bytes.data(), buf.size()), 0);
    const ReadStats s = store.stats();
    EXPECT_EQ(s.faults_transient + s.faults_truncated +
                  s.faults_corrupted + s.faults_delayed,
              0u);
}

TEST(FaultInjection, DeterministicAcrossReplays)
{
    // Same seed + same call sequence => identical outcomes, including
    // which attempts fail and which bytes get damaged.
    ObjectStore base;
    const EncodedImage enc = encodeTest(14);
    for (uint64_t id = 1; id <= 6; ++id)
        base.put(id, enc);
    FaultPolicy policy;
    policy.seed = 42;
    policy.transient_p = 0.3;
    policy.truncate_p = 0.3;
    policy.corrupt_p = 0.3;

    const auto replay = [&](std::vector<std::vector<uint8_t>> &outs,
                            std::vector<int> &outcomes) {
        FaultyObjectStore store(base, policy);
        for (uint64_t id = 1; id <= 6; ++id) {
            for (int attempt = 0; attempt < 3; ++attempt) {
                std::vector<uint8_t> buf;
                try {
                    store.fetchScanRange(id, 0, 2, buf, true, SIZE_MAX);
                    outcomes.push_back(1);
                } catch (const Error &e) {
                    EXPECT_EQ(e.kind(), ErrorKind::Transient);
                    outcomes.push_back(0);
                }
                outs.push_back(std::move(buf));
            }
        }
    };
    std::vector<std::vector<uint8_t>> a_bytes, b_bytes;
    std::vector<int> a_out, b_out;
    replay(a_bytes, a_out);
    replay(b_bytes, b_out);
    EXPECT_EQ(a_out, b_out);
    EXPECT_EQ(a_bytes, b_bytes);
    // With 30% rates over 18 draws, something must have fired.
    int fired = 0;
    for (int i = 0; i < static_cast<int>(a_out.size()); ++i)
        fired += a_out[i] == 0;
    for (size_t i = 0; i < a_bytes.size(); ++i)
        if (!a_bytes[i].empty() && a_bytes[i].size() < enc.bytesForScans(2))
            ++fired;
    EXPECT_GT(fired, 0);
}

TEST(FaultInjection, ScriptedFaultsHitExactAttempts)
{
    // A scripted schedule gives tests full control: fail attempt 0,
    // truncate attempt 1, corrupt attempt 2, clean from attempt 3.
    ObjectStore base;
    const EncodedImage enc = encodeTest(15);
    base.put(1, enc);
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        if (ctx.attempt == 0)
            d.fail = true;
        else if (ctx.attempt == 1)
            d.deliver_bytes = ctx.range_bytes / 2;
        else if (ctx.attempt == 2)
            d.flip_bit = 13;
        return d;
    };
    FaultyObjectStore store(base, policy);

    std::vector<uint8_t> buf;
    // A Transient throw happens before any base delivery: nothing is
    // appended and nothing is charged, so the retry keeps
    // charge_full = true until a delivery lands.
    EXPECT_THROW(store.fetchScanRange(1, 0, 2, buf, true, SIZE_MAX),
                 Error);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(store.stats().bytes_full, 0u);
    EXPECT_EQ(store.fetchScanRange(1, 0, 2, buf, true, SIZE_MAX),
              enc.bytesForScans(2) / 2);
    buf.clear();
    EXPECT_EQ(store.fetchScanRange(1, 0, 2, buf, false, SIZE_MAX),
              enc.bytesForScans(2));
    EXPECT_NE(std::memcmp(buf.data(), enc.bytes.data(), buf.size()), 0);
    buf.clear();
    EXPECT_EQ(store.fetchScanRange(1, 0, 2, buf, false, SIZE_MAX),
              enc.bytesForScans(2));
    EXPECT_EQ(std::memcmp(buf.data(), enc.bytes.data(), buf.size()), 0);

    const ReadStats s = store.stats();
    EXPECT_EQ(s.faults_transient, 1u);
    EXPECT_EQ(s.faults_truncated, 1u);
    EXPECT_EQ(s.faults_corrupted, 1u);
    // Base accounting still meters only delivered bytes, with the
    // denominator charged once (first successful delivery).
    EXPECT_EQ(s.bytes_read,
              enc.bytesForScans(2) / 2 + 2 * enc.bytesForScans(2));
    EXPECT_EQ(s.bytes_full, enc.totalBytes());
}

TEST(FaultInjection, MissingObjectStillNotFound)
{
    ObjectStore base;
    FaultPolicy policy;
    policy.transient_p = 1.0; // would otherwise always fail Transient
    FaultyObjectStore store(base, policy);
    std::vector<uint8_t> buf;
    try {
        store.fetchScanRange(404, 0, 1, buf, true, SIZE_MAX);
        FAIL() << "expected Error{NotFound}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::NotFound);
    }
}

TEST(Cancellation, PreFiredTokenStopsDeliveryBeforeAnyChunk)
{
    // The base store polls the token between per-scan delivery
    // chunks; a token fired before the call delivers nothing,
    // charges no full-read denominator, and throws by reason.
    ObjectStore store;
    const EncodedImage enc = encodeTest(21);
    store.put(1, enc);

    CancelToken client;
    client.cancel(CancelReason::Client);
    std::vector<uint8_t> buf;
    try {
        store.fetchScanRange(1, 0, enc.numScans(), buf, true,
                             SIZE_MAX, &client);
        FAIL() << "expected Error{Cancelled}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
    }
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(store.stats().bytes_read, 0u);
    EXPECT_EQ(store.stats().bytes_full, 0u)
        << "a fired fetch must not charge the full-read denominator";
    EXPECT_EQ(store.stats().requests, 1u)
        << "the attempt itself is still metered";

    // An Abandoned-fired token (timed-fetch supervision) surfaces as
    // the fail-fast Transient the retry ladder and breaker expect.
    CancelToken abandoned;
    abandoned.cancel(CancelReason::Abandoned);
    try {
        store.fetchScanRange(1, 0, enc.numScans(), buf, true,
                             SIZE_MAX, &abandoned);
        FAIL() << "expected fail-fast Error{Transient}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transient);
        EXPECT_TRUE(e.failFast());
    }
}

TEST(Cancellation, UnfiredTokenDeliversBitIdenticalBytes)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(22);
    store.put(1, enc);
    CancelToken tok;
    std::vector<uint8_t> clean, guarded;
    store.fetchScanRange(1, 0, enc.numScans(), clean, true, SIZE_MAX);
    EXPECT_EQ(store.fetchScanRange(1, 0, enc.numScans(), guarded,
                                   true, SIZE_MAX, &tok),
              clean.size());
    EXPECT_EQ(guarded, clean);
}

TEST(FaultInjection, HungReadWakesWhenTokenFires)
{
    // A scripted hang wedges the read until supervision fires the
    // fetch token; the read then throws instead of delivering, and
    // the hang is metered.
    ObjectStore base;
    const EncodedImage enc = encodeTest(23);
    base.put(1, enc);
    FaultPolicy policy;
    policy.script = [](const FaultContext &) {
        FaultDecision d;
        d.hang = true;
        return d;
    };
    FaultyObjectStore store(base, policy);

    CancelToken tok;
    std::atomic<bool> threw{false};
    std::atomic<bool> fail_fast{false};
    std::thread reader([&] {
        std::vector<uint8_t> buf;
        try {
            store.fetchScanRange(1, 0, enc.numScans(), buf, true,
                                 SIZE_MAX, &tok);
        } catch (const Error &e) {
            threw.store(e.kind() == ErrorKind::Transient);
            fail_fast.store(e.failFast());
        }
    });
    // Let the reader reach the hang, then abandon it.
    while (store.stats().faults_hung < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    tok.cancel(CancelReason::Abandoned);
    reader.join();
    EXPECT_TRUE(threw.load());
    EXPECT_TRUE(fail_fast.load())
        << "an abandoned hung read must fail fast into the ladder";
    EXPECT_EQ(store.stats().faults_hung, 1u);
    EXPECT_EQ(store.stats().bytes_read, 0u);
}

TEST(FaultInjection, ReleaseHangsWakesWedgedAndDisarmsFutureHangs)
{
    ObjectStore base;
    const EncodedImage enc = encodeTest(24);
    base.put(1, enc);
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        d.hang = ctx.attempt == 0;
        return d;
    };
    FaultyObjectStore store(base, policy);

    std::atomic<bool> released{false};
    std::thread reader([&] {
        std::vector<uint8_t> buf;
        try {
            store.fetchScanRange(1, 0, 1, buf, true, SIZE_MAX);
        } catch (const Error &e) {
            released.store(e.kind() == ErrorKind::Transient);
        }
    });
    while (store.stats().faults_hung < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    store.releaseHangs();
    reader.join();
    EXPECT_TRUE(released.load());

    // Future hang decisions throw immediately instead of blocking —
    // the escape hatch is permanent.
    std::vector<uint8_t> buf;
    store.resetAttempts(); // attempt 0 hangs again by script
    EXPECT_THROW(store.fetchScanRange(1, 0, 1, buf, true, SIZE_MAX),
                 Error);
    EXPECT_EQ(store.stats().faults_hung, 2u);
    // The next attempt is clean and delivers.
    EXPECT_EQ(store.fetchScanRange(1, 0, 1, buf, true, SIZE_MAX),
              enc.bytesForScans(1));
}

TEST(Breaker, CountsAbandonedReadsButReleasesClientCancels)
{
    // Abandoned/watchdog firings arrive as fail-fast Transient and
    // must count as breaker failures (a tier that wedges reads is
    // sick); client cancels arrive as Cancelled and must NOT poison
    // the health window.
    ObjectStore base;
    const EncodedImage enc = encodeTest(25);
    base.put(1, enc);

    BreakerConfig bc;
    bc.min_samples = 2;
    bc.failure_threshold = 0.5;
    {
        BreakerObjectStore breaker(base, bc);
        CancelToken abandoned;
        abandoned.cancel(CancelReason::Abandoned);
        std::vector<uint8_t> buf;
        for (int i = 0; i < 2; ++i) {
            buf.clear();
            EXPECT_THROW(breaker.fetchScanRange(1, 0, 1, buf, false,
                                                SIZE_MAX, &abandoned),
                         Error);
        }
        EXPECT_EQ(breaker.state(), BreakerState::Open)
            << "two abandoned reads are two tier failures";
        EXPECT_EQ(breaker.breakerStats().trips, 1u);
    }
    {
        BreakerObjectStore breaker(base, bc);
        CancelToken client;
        client.cancel(CancelReason::Client);
        std::vector<uint8_t> buf;
        for (int i = 0; i < 4; ++i) {
            buf.clear();
            EXPECT_THROW(breaker.fetchScanRange(1, 0, 1, buf, false,
                                                SIZE_MAX, &client),
                         Error);
        }
        EXPECT_EQ(breaker.state(), BreakerState::Closed)
            << "client cancels say nothing about tier health";
        EXPECT_EQ(breaker.breakerStats().trips, 0u);
    }
}

TEST(ReadStats, MergeAccumulates)
{
    ReadStats a{.requests = 1, .bytes_read = 10, .bytes_full = 20};
    ReadStats b{.requests = 2, .bytes_read = 5, .bytes_full = 30};
    b.faults_delayed = 1;
    b.faults_transient = 2;
    b.faults_truncated = 3;
    b.faults_corrupted = 4;
    b.breaker_fast_fails = 5;
    b.breaker_trips = 6;
    a.merge(b);
    EXPECT_EQ(a.requests, 3u);
    EXPECT_EQ(a.bytes_read, 15u);
    EXPECT_EQ(a.bytes_full, 50u);
    EXPECT_EQ(a.faults_delayed, 1u);
    EXPECT_EQ(a.faults_transient, 2u);
    EXPECT_EQ(a.faults_truncated, 3u);
    EXPECT_EQ(a.faults_corrupted, 4u);
    EXPECT_EQ(a.breaker_fast_fails, 5u);
    EXPECT_EQ(a.breaker_trips, 6u);
}

TEST(FaultInjection, ConcurrentMeteringConserves)
{
    // TSan-exercised: four threads hammer fetchScanRange through the
    // fault decorator (transient + truncate draws, no latency), over
    // both per-thread ids and one id shared by every thread. The
    // metering contract must conserve exactly under contention: every
    // call either threw Transient or delivered bytes that were
    // metered once, and the full-read denominator is charged once per
    // successful prefix-starting delivery.
    ObjectStore base;
    const EncodedImage enc = encodeTest(21);
    for (uint64_t id = 1; id <= 4; ++id)
        base.put(id, enc);
    FaultPolicy policy;
    policy.seed = 7;
    policy.transient_p = 0.25;
    policy.truncate_p = 0.25;
    FaultyObjectStore store(base, policy);

    constexpr int kThreads = 4;
    constexpr int kIters = 64;
    std::atomic<uint64_t> thrown{0};
    std::atomic<uint64_t> delivered_calls{0};
    std::atomic<uint64_t> delivered_bytes{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                // Odd iterations contend on the shared id 1; even
                // ones stay on the thread's own object.
                const uint64_t id =
                    (i % 2) ? 1 : static_cast<uint64_t>(t + 1);
                std::vector<uint8_t> buf;
                try {
                    const size_t got = store.fetchScanRange(
                        id, 0, 2, buf, /*charge_full=*/true, SIZE_MAX);
                    EXPECT_EQ(buf.size(), got);
                    delivered_calls.fetch_add(1);
                    delivered_bytes.fetch_add(got);
                } catch (const Error &e) {
                    EXPECT_EQ(e.kind(), ErrorKind::Transient);
                    thrown.fetch_add(1);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    const ReadStats s = store.stats();
    EXPECT_EQ(thrown.load() + delivered_calls.load(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(s.requests, delivered_calls.load());
    EXPECT_EQ(s.bytes_read, delivered_bytes.load());
    EXPECT_EQ(s.faults_transient, thrown.load());
    // Truncated deliveries still charge the denominator: one full
    // charge per successful from == 0 fetch.
    EXPECT_EQ(s.bytes_full, delivered_calls.load() * enc.totalBytes());
    // With 25% + 25% rates over 256 draws, both sides must be
    // populated or the test is vacuous.
    EXPECT_GT(thrown.load(), 0u);
    EXPECT_GT(delivered_calls.load(), 0u);
}

TEST(Breaker, ComposesAndPassesThroughWhenClosed)
{
    // BreakerObjectStore is a transparent decorator while Closed:
    // byte-identical delivery, full ObjectStore surface forwarded,
    // base counters visible through stats() with zeroed breaker
    // fields. NotFound is a data error, not a tier-health signal —
    // even a hair-trigger breaker must not count it.
    ObjectStore base;
    const EncodedImage enc = encodeTest(22);
    ManualClock clk;
    FaultyObjectStore faulty(base, FaultPolicy{});
    BreakerConfig bcfg;
    bcfg.min_samples = 1;
    bcfg.failure_threshold = 0.01;
    bcfg.clock = &clk;
    BreakerObjectStore store(faulty, bcfg);

    store.put(1, enc); // forwarded through both decorators
    EXPECT_TRUE(store.contains(1));
    EXPECT_FALSE(store.contains(2));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.storedBytes(), enc.totalBytes());
    EXPECT_EQ(store.peek(1).totalBytes(), enc.totalBytes());
    EXPECT_EQ(store.readScanRangeBytes(1, 0, 1), enc.bytesForScans(1));

    std::vector<uint8_t> buf;
    for (int i = 0; i < 3; ++i) {
        buf.clear();
        EXPECT_EQ(store.fetchScanRange(1, 0, enc.numScans(), buf, true,
                                       SIZE_MAX),
                  enc.totalBytes());
        clk.advance(0.01);
    }
    EXPECT_EQ(std::memcmp(buf.data(), enc.bytes.data(), buf.size()), 0);
    EXPECT_EQ(store.state(), BreakerState::Closed);

    for (int i = 0; i < 4; ++i) {
        try {
            buf.clear();
            store.fetchScanRange(404, 0, 1, buf, true, SIZE_MAX);
            FAIL() << "expected Error{NotFound}";
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::NotFound);
            EXPECT_FALSE(e.failFast());
        }
    }
    EXPECT_EQ(store.state(), BreakerState::Closed)
        << "NotFound must not trip the breaker";

    const ReadStats s = store.stats();
    EXPECT_EQ(s.bytes_read, 3 * enc.totalBytes() + enc.bytesForScans(1));
    EXPECT_EQ(s.breaker_fast_fails, 0u);
    EXPECT_EQ(s.breaker_trips, 0u);
    EXPECT_EQ(store.breakerStats().probes, 0u);
}

TEST(Breaker, ConcurrentFailFastConservesCounters)
{
    // TSan-exercised: four threads hammer an always-failing store
    // through the breaker. Exactly one trip happens (cooldown never
    // expires under the frozen manual clock), and afterwards every
    // call fail-fasts without touching the base tier. Every call is
    // accounted exactly once: base-transient or breaker-fast-fail.
    ObjectStore base;
    base.put(1, encodeTest(23));
    FaultPolicy policy;
    policy.transient_p = 1.0;
    FaultyObjectStore faulty(base, policy);
    ManualClock clk;
    BreakerConfig bcfg;
    bcfg.min_samples = 4;
    bcfg.failure_threshold = 0.5;
    bcfg.cooldown_s = 1e9; // never half-opens in this test
    bcfg.clock = &clk;
    BreakerObjectStore store(faulty, bcfg);

    constexpr int kThreads = 4;
    constexpr int kIters = 32;
    std::atomic<uint64_t> thrown{0};
    std::atomic<uint64_t> fast{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                std::vector<uint8_t> buf;
                try {
                    store.fetchScanRange(1, 0, 1, buf, true, SIZE_MAX);
                    ADD_FAILURE() << "fetch cannot succeed here";
                } catch (const Error &e) {
                    EXPECT_EQ(e.kind(), ErrorKind::Transient);
                    thrown.fetch_add(1);
                    fast.fetch_add(e.failFast() ? 1 : 0);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(thrown.load(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(store.state(), BreakerState::Open);
    const ReadStats s = store.stats();
    EXPECT_EQ(s.breaker_trips, 1u);
    EXPECT_EQ(s.breaker_fast_fails, fast.load());
    EXPECT_EQ(s.faults_transient + s.breaker_fast_fails,
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_GT(s.breaker_fast_fails, 0u);
}

TEST(FaultInjection, ConvenienceReadsRouteThroughTheFaultPath)
{
    // The unified read API: readScans & co. are non-virtual wrappers
    // whose physical transfer goes through fetchScanRange — the ONE
    // virtual primitive — so injected faults perturb EVERY read entry
    // point, and the wrapper decodes the DELIVERED bytes, not the
    // store's pristine object.
    ObjectStore base;
    const EncodedImage enc = encodeTest(26);
    base.put(1, enc);
    FaultPolicy policy;
    policy.script = [](const FaultContext &ctx) {
        FaultDecision d;
        if (ctx.attempt == 0)
            d.fail = true;
        else if (ctx.attempt == 1)
            d.deliver_bytes = ctx.range_bytes / 2;
        return d;
    };
    FaultyObjectStore store(base, policy);

    try {
        store.readScans(1, 2);
        FAIL() << "expected Error{Transient}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transient);
    }
    try {
        store.readScans(1, 2);
        FAIL() << "expected Error{Truncated}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Truncated)
            << "a short delivery must fail the wrapper's decode";
    }
    const Image img = store.readScans(1, 2);
    const Image want = decodeProgressive(enc, 2);
    ASSERT_EQ(img.numel(), want.numel());
    EXPECT_EQ(std::memcmp(img.data(), want.data(),
                          sizeof(float) * want.numel()),
              0);
}

/** Snapshot of @p enc's decoder state after @p depth scans. */
DecoderSnapshot
snapshotAt(const EncodedImage &enc, int depth)
{
    ProgressiveDecoder dec(enc);
    dec.advanceTo(depth);
    return dec.snapshot();
}

TEST(DecodeCache, LookupReturnsDeepestEntryInRange)
{
    const EncodedImage enc = encodeTest(30);
    DecodeCacheConfig cfg;
    cfg.require_second_hit = false;
    DecodeCache cache(cfg);
    cache.insert(1, 2, decodeProgressive(enc, 2), snapshotAt(enc, 2));
    cache.insert(1, 4, Image(), snapshotAt(enc, 4));

    const DecodeCache::EntryPtr deep = cache.lookup(1, 1, enc.numScans());
    ASSERT_TRUE(deep);
    EXPECT_EQ(deep->depth, 4);
    EXPECT_TRUE(deep->preview.empty()) << "snapshot-only entry";

    const DecodeCache::EntryPtr shallow = cache.lookup(1, 1, 3);
    ASSERT_TRUE(shallow);
    EXPECT_EQ(shallow->depth, 2);
    EXPECT_FALSE(shallow->preview.empty());

    EXPECT_EQ(cache.lookup(1, 5, enc.numScans()), nullptr)
        << "min_depth above every entry";
    EXPECT_EQ(cache.lookup(1, 3, 3), nullptr)
        << "nothing inside [3, 3]";
    EXPECT_EQ(cache.lookup(2, 0, enc.numScans()), nullptr)
        << "unknown id";

    const DecodeCacheStats s = cache.stats();
    EXPECT_EQ(s.insertions, 2u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(DecodeCache, ByteCapacityDrivesLruEviction)
{
    const EncodedImage enc = encodeTest(31);
    // Measure one snapshot-only entry's charged size, then build a
    // cache that fits exactly two of them.
    size_t per_entry = 0;
    {
        DecodeCacheConfig probe;
        probe.require_second_hit = false;
        DecodeCache c(probe);
        c.insert(1, 2, Image(), snapshotAt(enc, 2));
        per_entry = c.stats().bytes;
        ASSERT_GT(per_entry, 0u);
    }
    DecodeCacheConfig cfg;
    cfg.require_second_hit = false;
    cfg.capacity_bytes = 2 * per_entry;
    DecodeCache cache(cfg);

    cache.insert(10, 2, Image(), snapshotAt(enc, 2));
    cache.insert(11, 2, Image(), snapshotAt(enc, 2));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_LE(cache.stats().bytes, cfg.capacity_bytes);

    // Touch 10 so 11 is the LRU tail, then overflow: 11 must go.
    ASSERT_TRUE(cache.lookup(10, 2, 2));
    cache.insert(12, 2, Image(), snapshotAt(enc, 2));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytes, cfg.capacity_bytes);
    EXPECT_TRUE(cache.lookup(10, 2, 2)) << "recently used survives";
    EXPECT_FALSE(cache.lookup(11, 2, 2)) << "LRU tail evicted";
    EXPECT_TRUE(cache.lookup(12, 2, 2));

    // Conservation: everything admitted is resident or evicted.
    const DecodeCacheStats s = cache.stats();
    EXPECT_EQ(s.insertions, s.entries + s.evictions + s.invalidations);
}

TEST(DecodeCache, OversizedEntryNeverAdmitted)
{
    const EncodedImage enc = encodeTest(32);
    DecodeCacheConfig cfg;
    cfg.require_second_hit = false;
    cfg.capacity_bytes = 16; // smaller than any real entry
    DecodeCache cache(cfg);
    cache.insert(1, 2, decodeProgressive(enc, 2), snapshotAt(enc, 2));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().admission_rejects, 1u);
    EXPECT_EQ(cache.lookup(1, 0, enc.numScans()), nullptr);
}

TEST(DecodeCache, SecondHitAdmissionGatesOneHitWonders)
{
    const EncodedImage enc = encodeTest(33);
    DecodeCache cache; // require_second_hit defaults on
    cache.insert(1, 2, Image(), snapshotAt(enc, 2));
    EXPECT_EQ(cache.lookup(1, 2, 2), nullptr)
        << "first offer only registers the key";
    EXPECT_EQ(cache.stats().admission_rejects, 1u);

    cache.insert(1, 2, Image(), snapshotAt(enc, 2));
    EXPECT_TRUE(cache.lookup(1, 2, 2)) << "second offer admits";
    EXPECT_EQ(cache.stats().insertions, 1u);

    // Depths gate independently: a new depth for a hot id still waits
    // for its own second offer.
    cache.insert(1, 4, Image(), snapshotAt(enc, 4));
    EXPECT_EQ(cache.lookup(1, 4, 4), nullptr);

    // invalidate() forgets admission history: the replaced object's
    // first offer is a genuinely new key.
    cache.invalidate(1);
    EXPECT_EQ(cache.lookup(1, 2, 2), nullptr);
    cache.insert(1, 2, Image(), snapshotAt(enc, 2));
    EXPECT_EQ(cache.lookup(1, 2, 2), nullptr)
        << "history was dropped with the entries";
    cache.insert(1, 2, Image(), snapshotAt(enc, 2));
    EXPECT_TRUE(cache.lookup(1, 2, 2));
}

TEST(DecodeCache, PutInvalidatesThroughDecoratorStack)
{
    // The engine attaches the cache to the store's root(); a put()
    // through ANY decorator layer must drop the id's entries before a
    // stale snapshot can be resumed.
    ObjectStore base;
    const EncodedImage enc = encodeTest(34);
    base.put(1, enc);

    DecodeCacheConfig cfg;
    cfg.require_second_hit = false;
    DecodeCache cache(cfg);
    FaultyObjectStore faulty(base, FaultPolicy{});
    BreakerObjectStore store(faulty, BreakerConfig{});
    store.attachCache(&cache); // lands on root() == base

    cache.insert(1, 2, Image(), snapshotAt(enc, 2));
    cache.insert(1, 3, Image(), snapshotAt(enc, 3));
    cache.insert(2, 2, Image(), snapshotAt(enc, 2));
    ASSERT_TRUE(cache.lookup(1, 2, 3));

    store.put(1, encodeTest(35)); // through both decorators
    EXPECT_EQ(cache.lookup(1, 0, 99), nullptr)
        << "every depth for the replaced id must be gone";
    EXPECT_EQ(cache.stats().invalidations, 2u);
    EXPECT_TRUE(cache.lookup(2, 2, 2)) << "other ids untouched";

    store.detachCache(&cache);
    store.put(1, encodeTest(36));
    EXPECT_TRUE(cache.lookup(2, 2, 2))
        << "a detached cache no longer sees puts";
}

TEST(DecodeCache, ConcurrentHitEvictInvalidateConserves)
{
    // TSan-exercised: four threads race lookups, inserts and
    // invalidations on a cache sized to churn. Returned entries stay
    // usable after eviction/invalidation (immutability), and the
    // admitted-entry conservation identity holds at quiesce.
    const EncodedImage enc = encodeTest(37);
    size_t per_entry = 0;
    {
        DecodeCacheConfig probe;
        probe.require_second_hit = false;
        DecodeCache c(probe);
        c.insert(1, 2, Image(), snapshotAt(enc, 2));
        per_entry = c.stats().bytes;
    }
    DecodeCacheConfig cfg;
    cfg.require_second_hit = false;
    cfg.capacity_bytes = 3 * per_entry; // forces constant eviction
    DecodeCache cache(cfg);

    const DecoderSnapshot snap2 = snapshotAt(enc, 2);
    constexpr int kThreads = 4;
    constexpr int kIters = 128;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>((t * kIters + i) % 8);
                cache.insert(id, 2, Image(), snap2);
                const DecodeCache::EntryPtr e =
                    cache.lookup(id, 1, enc.numScans());
                if (e) {
                    // The entry must stay intact however the cache
                    // churns underneath the reference.
                    EXPECT_EQ(e->depth, 2);
                    EXPECT_TRUE(e->snap.valid());
                }
                if (i % 16 == 0)
                    cache.invalidate(id);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    const DecodeCacheStats s = cache.stats();
    EXPECT_LE(s.bytes, cfg.capacity_bytes);
    EXPECT_EQ(s.insertions, s.entries + s.evictions + s.invalidations);
}

TEST(ReadStats, EmptyIsNeutral)
{
    ReadStats s;
    EXPECT_DOUBLE_EQ(s.relativeReadSize(), 1.0);
    EXPECT_DOUBLE_EQ(s.savings(), 0.0);
}

TEST(BandwidthModel, TransferTimeScalesWithBytes)
{
    BandwidthModel bw;
    EXPECT_GT(bw.transferSeconds(2'000'000),
              bw.transferSeconds(1'000'000));
    // Request latency dominates tiny transfers.
    EXPECT_NEAR(bw.transferSeconds(0, 1), bw.request_latency_s, 1e-12);
}

TEST(BandwidthModel, CostProportional)
{
    BandwidthModel bw{.dollars_per_gb = 0.05};
    EXPECT_NEAR(bw.transferCost(2e9), 0.10, 1e-9);
}

} // namespace
} // namespace tamres
