/**
 * @file
 * Unit tests for the storage module: byte accounting, incremental
 * reads, bandwidth model.
 */

#include <gtest/gtest.h>

#include "image/synthetic.hh"
#include "storage/object_store.hh"

namespace tamres {
namespace {

EncodedImage
encodeTest(uint64_t seed)
{
    return encodeProgressive(generateSyntheticImage(
        {.height = 40, .width = 40, .class_id = 1, .seed = seed}));
}

TEST(ObjectStore, PutAndContains)
{
    ObjectStore store;
    EXPECT_FALSE(store.contains(7));
    store.put(7, encodeTest(1));
    EXPECT_TRUE(store.contains(7));
    EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStore, StoredBytesSum)
{
    ObjectStore store;
    const EncodedImage a = encodeTest(1);
    const EncodedImage b = encodeTest(2);
    store.put(1, a);
    store.put(2, b);
    EXPECT_EQ(store.storedBytes(), a.totalBytes() + b.totalBytes());
}

TEST(ObjectStore, ReadChargesPrefixBytes)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(3);
    store.put(1, enc);
    store.readScans(1, 2);
    EXPECT_EQ(store.stats().requests, 1u);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(2));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, IncrementalReadChargesOnlyDelta)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(4);
    store.put(1, enc);
    store.readScans(1, 2);
    store.readAdditionalScans(1, 2, 4);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(4));
    // The full-read denominator counted once per logical request.
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, ZeroPrefixIncrementalReadDoesNotDoubleChargeFull)
{
    // A 0-scan first read (preview_scans = 0) followed by an
    // incremental range starting at scan 0 must still charge the
    // full-read denominator exactly once for the logical request.
    ObjectStore store;
    const EncodedImage enc = encodeTest(5);
    store.put(1, enc);
    store.readScans(1, 0);
    store.readAdditionalScans(1, 0, 1);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(1));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, RangedByteReadsMeterWithoutDecoding)
{
    // The staged-engine fetch path: readScanRangeBytes charges the
    // incremental bytes and charges the denominator only on the
    // prefix-starting (from == 0) fetch.
    ObjectStore store;
    const EncodedImage enc = encodeTest(6);
    store.put(1, enc);
    EXPECT_EQ(store.readScanRangeBytes(1, 0, 2), enc.bytesForScans(2));
    EXPECT_EQ(store.readScanRangeBytes(1, 2, 4),
              enc.bytesForScans(4) - enc.bytesForScans(2));
    EXPECT_EQ(store.stats().requests, 2u);
    EXPECT_EQ(store.stats().bytes_read, enc.bytesForScans(4));
    EXPECT_EQ(store.stats().bytes_full, enc.totalBytes());
}

TEST(ObjectStore, SavingsComputed)
{
    ObjectStore store;
    store.put(1, encodeTest(5));
    store.readScans(1, 1);
    const ReadStats &s = store.stats();
    EXPECT_GT(s.savings(), 0.0);
    EXPECT_LT(s.savings(), 1.0);
    EXPECT_NEAR(s.relativeReadSize() + s.savings(), 1.0, 1e-12);
}

TEST(ObjectStore, ResetStatsKeepsObjects)
{
    ObjectStore store;
    store.put(1, encodeTest(6));
    store.readScans(1, 1);
    store.resetStats();
    EXPECT_EQ(store.stats().requests, 0u);
    EXPECT_TRUE(store.contains(1));
}

TEST(ObjectStore, DecodedPreviewMatchesDirectDecode)
{
    ObjectStore store;
    const EncodedImage enc = encodeTest(7);
    store.put(9, enc);
    const Image via_store = store.readScans(9, 3);
    const Image direct = decodeProgressive(enc, 3);
    ASSERT_EQ(via_store.numel(), direct.numel());
    for (size_t i = 0; i < direct.numel(); ++i)
        EXPECT_EQ(via_store.data()[i], direct.data()[i]);
}

TEST(ObjectStoreDeath, MissingObject)
{
    ObjectStore store;
    EXPECT_DEATH(store.readScans(404, 1), "not in store");
}

TEST(ObjectStoreDeath, BadIncrementalRange)
{
    ObjectStore store;
    store.put(1, encodeTest(8));
    EXPECT_DEATH(store.readAdditionalScans(1, 3, 2), "scan range");
}

TEST(ReadStats, MergeAccumulates)
{
    ReadStats a{.requests = 1, .bytes_read = 10, .bytes_full = 20};
    ReadStats b{.requests = 2, .bytes_read = 5, .bytes_full = 30};
    a.merge(b);
    EXPECT_EQ(a.requests, 3u);
    EXPECT_EQ(a.bytes_read, 15u);
    EXPECT_EQ(a.bytes_full, 50u);
}

TEST(ReadStats, EmptyIsNeutral)
{
    ReadStats s;
    EXPECT_DOUBLE_EQ(s.relativeReadSize(), 1.0);
    EXPECT_DOUBLE_EQ(s.savings(), 0.0);
}

TEST(BandwidthModel, TransferTimeScalesWithBytes)
{
    BandwidthModel bw;
    EXPECT_GT(bw.transferSeconds(2'000'000),
              bw.transferSeconds(1'000'000));
    // Request latency dominates tiny transfers.
    EXPECT_NEAR(bw.transferSeconds(0, 1), bw.request_latency_s, 1e-12);
}

TEST(BandwidthModel, CostProportional)
{
    BandwidthModel bw{.dollars_per_gb = 0.05};
    EXPECT_NEAR(bw.transferCost(2e9), 0.10, 1e-9);
}

} // namespace
} // namespace tamres
