/**
 * @file
 * Tests for the color transform and the codec's YCbCr / 4:2:0 /
 * successive-approximation modes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/progressive.hh"
#include "image/color.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
testImage(int h = 48, int w = 48, int cls = 1, uint64_t seed = 11)
{
    return generateSyntheticImage({.height = h, .width = w,
                                   .class_id = cls, .seed = seed});
}

/**
 * Shrink chroma contrast toward gray. The synthetic generator textures
 * each RGB channel independently, which is unnaturally chroma-busy;
 * photographs have strongly correlated channels. Chroma-heavy codec
 * modes are designed for (and tested on) the natural statistics.
 */
Image
naturalizeChroma(const Image &img, float keep = 0.35f)
{
    return desaturateChroma(img, keep);
}

Image
randomImage(int h, int w, uint64_t seed)
{
    Rng rng(seed);
    Image img(h, w, 3);
    for (size_t i = 0; i < img.numel(); ++i)
        img.data()[i] = static_cast<float>(rng.uniform());
    return img;
}

// --- RGB <-> YCbCr ---

TEST(Color, KnownValues)
{
    Image px(1, 1, 3);
    // White: Y = 1, chroma centered.
    px.at(0, 0, 0) = 1.0f;
    px.at(1, 0, 0) = 1.0f;
    px.at(2, 0, 0) = 1.0f;
    Image ycc = rgbToYcbcr(px);
    EXPECT_NEAR(ycc.at(0, 0, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(ycc.at(1, 0, 0), 0.5f, 1e-5f);
    EXPECT_NEAR(ycc.at(2, 0, 0), 0.5f, 1e-5f);

    // Pure red: Y = 0.299, Cr above center.
    px.at(0, 0, 0) = 1.0f;
    px.at(1, 0, 0) = 0.0f;
    px.at(2, 0, 0) = 0.0f;
    ycc = rgbToYcbcr(px);
    EXPECT_NEAR(ycc.at(0, 0, 0), 0.299f, 1e-5f);
    EXPECT_GT(ycc.at(2, 0, 0), 0.9f);
}

TEST(Color, RoundTripIsIdentity)
{
    const Image src = randomImage(23, 31, 7);
    const Image back = ycbcrToRgb(rgbToYcbcr(src));
    for (size_t i = 0; i < src.numel(); ++i)
        EXPECT_NEAR(back.data()[i], src.data()[i], 2e-3f);
}

TEST(Color, GrayImagesHaveCenteredChroma)
{
    Image gray(8, 8, 3);
    for (size_t i = 0; i < gray.numel(); ++i)
        gray.data()[i] = 0.3f;
    const Image ycc = rgbToYcbcr(gray);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            EXPECT_NEAR(ycc.at(1, y, x), 0.5f, 1e-5f);
            EXPECT_NEAR(ycc.at(2, y, x), 0.5f, 1e-5f);
        }
    }
}

TEST(ColorDeath, RequiresThreeChannels)
{
    Image mono(4, 4, 1);
    EXPECT_DEATH(rgbToYcbcr(mono), "3-channel");
    EXPECT_DEATH(ycbcrToRgb(mono), "3-channel");
}

// --- 2x2 subsampling ---

TEST(Subsample, DimensionsRoundUp)
{
    Image odd(7, 9, 1);
    const Image sub = downsamplePlane2x2(odd);
    EXPECT_EQ(sub.height(), 4);
    EXPECT_EQ(sub.width(), 5);
}

TEST(Subsample, ConstantPlaneIsExact)
{
    Image flat(10, 14, 1);
    for (size_t i = 0; i < flat.numel(); ++i)
        flat.data()[i] = 0.42f;
    const Image sub = downsamplePlane2x2(flat);
    const Image up = upsamplePlane2x(sub, 10, 14);
    for (size_t i = 0; i < up.numel(); ++i)
        EXPECT_NEAR(up.data()[i], 0.42f, 1e-6f);
}

TEST(Subsample, SmoothGradientSurvivesRoundTrip)
{
    Image grad(32, 32, 1);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            grad.at(0, y, x) = (y + x) / 64.0f;
    const Image up = upsamplePlane2x(downsamplePlane2x2(grad), 32, 32);
    double max_err = 0.0;
    for (size_t i = 0; i < up.numel(); ++i)
        max_err = std::max(
            max_err,
            std::abs(static_cast<double>(up.data()[i]) -
                     grad.data()[i]));
    EXPECT_LT(max_err, 0.05);
}

// --- Codec color modes ---

TEST(CodecColor, YcbcrRoundTripQuality)
{
    const Image src = naturalizeChroma(testImage(64, 64));
    ProgressiveConfig cfg;
    cfg.color = ColorMode::YCbCr;
    const EncodedImage enc = encodeProgressive(src, cfg);
    EXPECT_EQ(enc.color, ColorMode::YCbCr);
    const Image dec = decodeProgressive(enc);
    EXPECT_GT(psnr(src, dec), 28.0);
    EXPECT_GT(ssim(src, dec), 0.85);
}

TEST(CodecColor, Subsampled420RoundTripQuality)
{
    const Image src = naturalizeChroma(testImage(64, 64));
    ProgressiveConfig cfg;
    cfg.color = ColorMode::YCbCr420;
    const Image dec = decodeProgressive(encodeProgressive(src, cfg));
    EXPECT_GT(psnr(src, dec), 26.0);
    EXPECT_GT(ssim(src, dec), 0.85);
}

TEST(CodecColor, ChromaModesShrinkBytes)
{
    // Harder chroma quantization and subsampling should both reduce
    // total bytes on natural-statistics content.
    const Image src = naturalizeChroma(testImage(96, 96, 3, 29));
    ProgressiveConfig cfg;
    const size_t planar = encodeProgressive(src, cfg).totalBytes();
    cfg.color = ColorMode::YCbCr;
    const size_t ycbcr = encodeProgressive(src, cfg).totalBytes();
    cfg.color = ColorMode::YCbCr420;
    const size_t sub = encodeProgressive(src, cfg).totalBytes();
    EXPECT_LT(ycbcr, planar);
    EXPECT_LT(sub, ycbcr);
}

TEST(CodecColor, OddDimensions420)
{
    const Image src = naturalizeChroma(testImage(45, 51, 2, 3));
    ProgressiveConfig cfg;
    cfg.color = ColorMode::YCbCr420;
    const Image dec = decodeProgressive(encodeProgressive(src, cfg));
    EXPECT_EQ(dec.height(), 45);
    EXPECT_EQ(dec.width(), 51);
    EXPECT_GT(psnr(src, dec), 24.0);
}

TEST(CodecColorDeath, YcbcrNeedsThreeChannels)
{
    Image mono(16, 16, 1);
    for (size_t i = 0; i < mono.numel(); ++i)
        mono.data()[i] = 0.5f;
    ProgressiveConfig cfg;
    cfg.color = ColorMode::YCbCr;
    EXPECT_DEATH(encodeProgressive(mono, cfg), "3 channels");
}

TEST(CodecColor, ModeNames)
{
    EXPECT_STREQ(colorModeName(ColorMode::Planar), "planar");
    EXPECT_STREQ(colorModeName(ColorMode::YCbCr), "ycbcr");
    EXPECT_STREQ(colorModeName(ColorMode::YCbCr420), "ycbcr420");
}

// --- Successive approximation ---

TEST(SuccessiveApprox, ScriptValidation)
{
    std::string why;
    EXPECT_TRUE(scanScriptValid(ProgressiveConfig::defaultScans(), &why))
        << why;
    EXPECT_TRUE(scanScriptValid(ProgressiveConfig::successiveScans(),
                                &why))
        << why;

    // Refinement before any first pass.
    EXPECT_FALSE(scanScriptValid({{0, 63, 0, true}}, &why));
    EXPECT_NE(why.find("unsent"), std::string::npos);

    // al skipping a plane (2 -> 0).
    EXPECT_FALSE(scanScriptValid(
        {{0, 63, 2, false}, {0, 63, 0, true}}, &why));
    EXPECT_NE(why.find("does not follow"), std::string::npos);

    // Never refined down to al == 0.
    EXPECT_FALSE(scanScriptValid({{0, 63, 1, false}}, &why));
    EXPECT_NE(why.find("not refined"), std::string::npos);

    // Duplicate first pass.
    EXPECT_FALSE(scanScriptValid(
        {{0, 63, 0, false}, {5, 9, 0, false}}, &why));
    EXPECT_NE(why.find("two first passes"), std::string::npos);

    // Out-of-range band / al.
    EXPECT_FALSE(scanScriptValid({{0, 64, 0, false}}, &why));
    EXPECT_FALSE(scanScriptValid({{0, 63, 14, false}}, &why));
}

TEST(SuccessiveApprox, FullDecodeMatchesSpectralScript)
{
    // Once every bit-plane has been delivered the reconstructed
    // coefficients are exact, so the decode must be sample-identical
    // to the plain spectral-selection script at the same quality.
    const Image src = testImage(56, 72, 5, 17);
    ProgressiveConfig cfg;
    const Image ref = decodeProgressive(encodeProgressive(src, cfg));
    cfg.scans = ProgressiveConfig::successiveScans();
    const Image sa = decodeProgressive(encodeProgressive(src, cfg));
    ASSERT_EQ(sa.numel(), ref.numel());
    for (size_t i = 0; i < sa.numel(); ++i)
        ASSERT_FLOAT_EQ(sa.data()[i], ref.data()[i]);
}

TEST(SuccessiveApprox, QualityImprovesWithScans)
{
    const Image src = testImage(64, 64, 7, 23);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    const EncodedImage enc = encodeProgressive(src, cfg);
    double prev = -1.0;
    for (int k = 1; k <= enc.numScans(); ++k) {
        const double s = ssim(src, decodeProgressive(enc, k));
        EXPECT_GE(s, prev - 0.02)
            << "SSIM regressed at scan " << k;
        prev = s;
    }
    EXPECT_GT(prev, 0.9);
}

TEST(SuccessiveApprox, EarlyFullCoverageIsCheap)
{
    // After 3 SA scans every coefficient has been touched; that
    // prefix must be much smaller than the full spectral encoding.
    const Image src = testImage(96, 96, 4, 31);
    ProgressiveConfig cfg;
    const size_t full = encodeProgressive(src, cfg).totalBytes();
    cfg.scans = ProgressiveConfig::successiveScans();
    const EncodedImage sa = encodeProgressive(src, cfg);
    EXPECT_LT(sa.bytesForScans(3), full);
    // And the total SA stream should not balloon (refinement bits are
    // cheap).
    EXPECT_LT(sa.totalBytes(), full * 3 / 2);
}

TEST(SuccessiveApprox, WorksUnderHuffmanEntropy)
{
    const Image src = testImage(48, 48, 9, 41);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image dec = decodeProgressive(enc);

    ProgressiveConfig plain;
    plain.scans = ProgressiveConfig::successiveScans();
    const Image ref = decodeProgressive(encodeProgressive(src, plain));
    for (size_t i = 0; i < dec.numel(); ++i)
        ASSERT_FLOAT_EQ(dec.data()[i], ref.data()[i]);
    // Huffman should also shrink the SA stream.
    EXPECT_LT(enc.totalBytes(),
              encodeProgressive(src, plain).totalBytes());
}

TEST(SuccessiveApprox, CombinesWithChromaSubsampling)
{
    const Image src = naturalizeChroma(testImage(64, 64, 6, 53));
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.color = ColorMode::YCbCr420;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image dec = decodeProgressive(enc);
    EXPECT_GT(ssim(src, dec), 0.78);
    // Prefix decodes must remain available at every depth.
    for (int k = 0; k <= enc.numScans(); ++k) {
        const Image partial = decodeProgressive(enc, k);
        EXPECT_EQ(partial.height(), 64);
    }
}

/**
 * Property sweep: every (color, entropy, script) combination must
 * round-trip with sane quality and strictly positive per-scan sizes.
 */
struct CodecModeCase
{
    ColorMode color;
    EntropyCoder entropy;
    bool successive;
};

class CodecModeSweep : public ::testing::TestWithParam<CodecModeCase>
{};

TEST_P(CodecModeSweep, RoundTripAndAccounting)
{
    const CodecModeCase c = GetParam();
    const Image src = naturalizeChroma(testImage(72, 56, 3, 61));
    ProgressiveConfig cfg;
    cfg.color = c.color;
    cfg.entropy = c.entropy;
    if (c.successive)
        cfg.scans = ProgressiveConfig::successiveScans();
    const EncodedImage enc = encodeProgressive(src, cfg);
    EXPECT_EQ(enc.bytesForScans(0), 0u);
    for (int k = 1; k <= enc.numScans(); ++k)
        EXPECT_GT(enc.bytesForScans(k), enc.bytesForScans(k - 1));
    const Image dec = decodeProgressive(enc);
    EXPECT_GT(psnr(src, dec), 24.0);
    EXPECT_GT(ssim(src, dec), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CodecModeSweep,
    ::testing::Values(
        CodecModeCase{ColorMode::Planar, EntropyCoder::RunLength, false},
        CodecModeCase{ColorMode::Planar, EntropyCoder::RunLength, true},
        CodecModeCase{ColorMode::Planar, EntropyCoder::Huffman, true},
        CodecModeCase{ColorMode::YCbCr, EntropyCoder::RunLength, false},
        CodecModeCase{ColorMode::YCbCr, EntropyCoder::Huffman, false},
        CodecModeCase{ColorMode::YCbCr, EntropyCoder::Huffman, true},
        CodecModeCase{ColorMode::YCbCr420, EntropyCoder::RunLength,
                      false},
        CodecModeCase{ColorMode::YCbCr420, EntropyCoder::RunLength,
                      true},
        CodecModeCase{ColorMode::YCbCr420, EntropyCoder::Huffman,
                      true}),
    [](const ::testing::TestParamInfo<CodecModeCase> &info) {
        const CodecModeCase &c = info.param;
        return std::string(colorModeName(c.color)) + "_" +
               entropyCoderName(c.entropy) +
               (c.successive ? "_sa" : "_spectral");
    });

} // namespace
} // namespace tamres
