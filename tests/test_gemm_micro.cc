/**
 * @file
 * Edge-tail and dispatch tests for the GEMM micro-kernels.
 *
 * Every supported (mr, nr) micro-kernel — scalar template and the
 * runtime-dispatched SIMD variants — is exercised through the blocked
 * GEMM (via a 1x1 pointwise convolution, which lowers to exactly one
 * GEMM per call) at M/N/K deliberately not divisible by mr/nr/kc, and
 * checked three ways:
 *
 *  1. element-exact against an in-test reference loop nest that
 *     mirrors the documented accumulation order (k ascending within
 *     each kc block, one add into C per block) — for the scalar
 *     dispatch level, where both sides use the same unfused (or
 *     platform-contracted) multiply-add;
 *  2. element-exact across cache blockings (mc/nc sweeps at a fixed
 *     micro-kernel and kc): a packing or edge-tile bug shows up as a
 *     bitwise difference;
 *  3. within tolerance of the reference at every available dispatch
 *     level (the FMA paths round differently but must agree closely).
 *
 * Also verifies prepacked-weight execution is bit-identical to the
 * on-the-fly packing path for both im2col and winograd, and that the
 * forced-scalar override actually changes the dispatch.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/conv_kernels.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace tamres {
namespace {

std::vector<float>
randomVec(size_t n, uint64_t seed, float scale = 1.0f)
{
    std::vector<float> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-scale, scale));
    return v;
}

/** Levels available in this process (deduplicated). */
std::vector<SimdLevel>
levels()
{
    std::vector<SimdLevel> out{SimdLevel::Scalar};
    if (simdDetected() != SimdLevel::Scalar)
        out.push_back(simdDetected());
    return out;
}

/** All (mr, nr) pairs the validity predicate accepts. */
std::vector<std::pair<int, int>>
supportedMicroShapes()
{
    const ConvProblem p{.n = 1, .ic = 4, .ih = 8, .iw = 8, .oc = 4,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    std::vector<std::pair<int, int>> out;
    for (int mr : {1, 2, 4, 6, 8}) {
        for (int nr : {4, 8, 16}) {
            ConvConfig cfg;
            cfg.algo = ConvAlgo::Im2col;
            cfg.mr = mr;
            cfg.nr = nr;
            if (convConfigValid(p, cfg))
                out.emplace_back(mr, nr);
        }
    }
    return out;
}

/**
 * GEMM through the public conv API: a 1x1/stride-1/no-pad conv is a
 * plain C[M x N] = A[M x K] * B[K x N] with no im2col copy, so the
 * blocked GEMM (packing, tails, micro dispatch) is what runs.
 */
void
gemmViaConv(int M, int N, int K, const float *a, const float *b,
            float *c, const ConvConfig &cfg)
{
    // N must factor as ih*iw; use ih=1, iw=N.
    const ConvProblem p{.n = 1, .ic = K, .ih = 1, .iw = N, .oc = M,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    ASSERT_TRUE(convConfigValid(p, cfg)) << cfg.toString();
    convForward(p, b, a, nullptr, c, cfg);
}

/**
 * Reference loop nest with the documented blocked accumulation order:
 * within a kc block k ascends with one multiply-add per step; each
 * block contributes one add into C.
 */
void
referenceGemm(int M, int N, int K, int kc, const float *a,
              const float *b, float *c)
{
    for (int i = 0; i < M; ++i) {
        for (int j = 0; j < N; ++j) {
            float total = 0.0f;
            for (int pc = 0; pc < K; pc += kc) {
                const int kb = std::min(kc, K - pc);
                float partial = 0.0f;
                for (int k = 0; k < kb; ++k)
                    partial += a[static_cast<int64_t>(i) * K + pc + k] *
                               b[static_cast<int64_t>(pc + k) * N + j];
                total += partial;
            }
            c[static_cast<int64_t>(i) * N + j] = total;
        }
    }
}

// Awkward extents: not divisible by any mr (1,2,4,6,8), nr (4,8,16),
// or the kc used below (16), forcing row, column, and k tails.
constexpr int kM = 13;
constexpr int kN = 23;
constexpr int kK = 37;
constexpr int kKc = 16;

ConvConfig
microConfig(int mr, int nr)
{
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Im2col;
    cfg.mr = mr;
    cfg.nr = nr;
    cfg.mc = 8;  // not divisible by mr=6 -> ragged A panels
    cfg.kc = kKc;
    cfg.nc = 20; // not divisible by nr=8/16 -> ragged B panels
    cfg.threads = 1;
    return cfg;
}

TEST(GemmMicro, ScalarDispatchElementExactVsReferenceNest)
{
    const auto a = randomVec(static_cast<size_t>(kM) * kK, 1, 0.5f);
    const auto b = randomVec(static_cast<size_t>(kK) * kN, 2);
    std::vector<float> ref(static_cast<size_t>(kM) * kN);
    referenceGemm(kM, kN, kK, kKc, a.data(), b.data(), ref.data());

    SimdLevelGuard guard(SimdLevel::Scalar);
    for (const auto &[mr, nr] : supportedMicroShapes()) {
        std::vector<float> c(static_cast<size_t>(kM) * kN);
        gemmViaConv(kM, kN, kK, a.data(), b.data(), c.data(),
                    microConfig(mr, nr));
        EXPECT_EQ(0, std::memcmp(c.data(), ref.data(),
                                 c.size() * sizeof(float)))
            << "scalar micro " << mr << "x" << nr
            << " not element-exact vs the reference nest";
    }
}

TEST(GemmMicro, EveryLevelCloseToReference)
{
    const auto a = randomVec(static_cast<size_t>(kM) * kK, 3, 0.5f);
    const auto b = randomVec(static_cast<size_t>(kK) * kN, 4);
    std::vector<float> ref(static_cast<size_t>(kM) * kN);
    referenceGemm(kM, kN, kK, kKc, a.data(), b.data(), ref.data());

    for (SimdLevel lvl : levels()) {
        SimdLevelGuard guard(lvl);
        for (const auto &[mr, nr] : supportedMicroShapes()) {
            std::vector<float> c(static_cast<size_t>(kM) * kN);
            gemmViaConv(kM, kN, kK, a.data(), b.data(), c.data(),
                        microConfig(mr, nr));
            float err = 0.0f;
            for (size_t i = 0; i < c.size(); ++i)
                err = std::max(err, std::fabs(c[i] - ref[i]));
            EXPECT_LT(err, 1e-4f)
                << simdLevelName(lvl) << " micro " << mr << "x" << nr;
        }
    }
}

TEST(GemmMicro, CacheBlockingSweepBitIdenticalPerKernel)
{
    // At a fixed micro-kernel, kc, and dispatch level, every mc/nc
    // blocking must produce bitwise-identical results: per element the
    // arithmetic sequence is the same, so any difference is a packing
    // or edge-tile indexing bug.
    const auto a = randomVec(static_cast<size_t>(kM) * kK, 5, 0.5f);
    const auto b = randomVec(static_cast<size_t>(kK) * kN, 6);
    for (SimdLevel lvl : levels()) {
        SimdLevelGuard guard(lvl);
        for (const auto &[mr, nr] : supportedMicroShapes()) {
            std::vector<float> base;
            for (const auto &[mc, nc] :
                 {std::pair{8, 20}, {64, 512}, {13, 23}, {5, 7}}) {
                ConvConfig cfg = microConfig(mr, nr);
                cfg.mc = mc;
                cfg.nc = nc;
                std::vector<float> c(static_cast<size_t>(kM) * kN);
                gemmViaConv(kM, kN, kK, a.data(), b.data(), c.data(),
                            cfg);
                if (base.empty()) {
                    base = c;
                    continue;
                }
                EXPECT_EQ(0, std::memcmp(c.data(), base.data(),
                                         c.size() * sizeof(float)))
                    << simdLevelName(lvl) << " micro " << mr << "x"
                    << nr << " mc=" << mc << " nc=" << nc;
            }
        }
    }
}

TEST(GemmMicro, SimdBeatsOrMatchesNothingButStaysDeterministic)
{
    // Two runs at the same level must agree bitwise (determinism), and
    // forcing scalar must actually change the dispatch on SIMD hosts:
    // with FMA vs unfused multiply-add the 37-term reductions are
    // overwhelmingly unlikely to collide on random data.
    const auto a = randomVec(static_cast<size_t>(kM) * kK, 7, 0.5f);
    const auto b = randomVec(static_cast<size_t>(kK) * kN, 8);
    const ConvConfig cfg = microConfig(4, 8);

    std::vector<float> c1(static_cast<size_t>(kM) * kN);
    std::vector<float> c2(c1.size());
    gemmViaConv(kM, kN, kK, a.data(), b.data(), c1.data(), cfg);
    gemmViaConv(kM, kN, kK, a.data(), b.data(), c2.data(), cfg);
    EXPECT_EQ(0,
              std::memcmp(c1.data(), c2.data(),
                          c1.size() * sizeof(float)));

    if (simdDetected() == SimdLevel::Scalar)
        GTEST_SKIP() << "no SIMD level on this host";
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
    // Built with FMA codegen enabled (e.g. -DTAMRES_NATIVE=ON): the
    // compiler may contract the scalar micro-kernel's multiply-adds
    // into the same fused sequence the SIMD kernel uses, making the
    // two paths legitimately bit-identical — the NE check below would
    // then report a false dispatch failure.
    GTEST_SKIP() << "scalar path may be FMA-contracted in this build";
#endif
    std::vector<float> scalar_c(c1.size());
    {
        SimdLevelGuard guard(SimdLevel::Scalar);
        gemmViaConv(kM, kN, kK, a.data(), b.data(), scalar_c.data(),
                    cfg);
    }
    std::vector<float> simd_c(c1.size());
    {
        SimdLevelGuard guard(simdDetected());
        gemmViaConv(kM, kN, kK, a.data(), b.data(), simd_c.data(),
                    cfg);
    }
    EXPECT_NE(0, std::memcmp(scalar_c.data(), simd_c.data(),
                             simd_c.size() * sizeof(float)))
        << "forced-scalar dispatch produced the SIMD path's bits — "
           "the override is not reaching microDispatch";
}

TEST(GemmMicro, PrepackedConvBitIdenticalToOnTheFly)
{
    // im2col (grouped to cover per-group packs) and winograd, both at
    // awkward spatial extents; the prepacked path must match the
    // per-call packing path bit for bit at every level.
    const ConvProblem im2col_p{.n = 1, .ic = 6, .ih = 9, .iw = 11,
                               .oc = 10, .kh = 3, .kw = 3, .stride = 1,
                               .pad = 1, .groups = 2};
    const ConvProblem wino_p{.n = 1, .ic = 8, .ih = 13, .iw = 9,
                             .oc = 6, .kh = 3, .kw = 3, .stride = 1,
                             .pad = 1, .groups = 1};
    for (SimdLevel lvl : levels()) {
        SimdLevelGuard guard(lvl);
        for (const ConvProblem &p : {im2col_p, wino_p}) {
            ConvConfig cfg = microConfig(6, 8);
            cfg.algo = p.groups == 1 ? ConvAlgo::Winograd
                                     : ConvAlgo::Im2col;
            ASSERT_TRUE(convConfigValid(p, cfg));
            const auto in = randomVec(
                static_cast<size_t>(p.n) * p.ic * p.ih * p.iw, 11);
            const auto w = randomVec(static_cast<size_t>(p.oc) *
                                         (p.ic / p.groups) * p.kh *
                                         p.kw,
                                     12, 0.5f);
            const auto bias = randomVec(p.oc, 13);
            const size_t out_n = static_cast<size_t>(p.n) * p.oc *
                                 p.oh() * p.ow();
            std::vector<float> plain(out_n), packed_out(out_n);
            convForward(p, in.data(), w.data(), bias.data(),
                        plain.data(), cfg);

            PackedConvWeights packed;
            packConvWeights(p, cfg, w.data(), packed);
            ASSERT_TRUE(packed.valid);
            convForwardPrepacked(p, in.data(), packed, bias.data(),
                                 packed_out.data());
            EXPECT_EQ(0, std::memcmp(plain.data(), packed_out.data(),
                                     out_n * sizeof(float)))
                << simdLevelName(lvl) << " "
                << convAlgoName(cfg.algo);
        }
    }
}

TEST(GemmMicro, PackCountMovesOnlyOnPack)
{
    const ConvProblem p{.n = 1, .ic = 5, .ih = 1, .iw = 17, .oc = 7,
                        .kh = 1, .kw = 1, .stride = 1, .pad = 0};
    ConvConfig cfg = microConfig(4, 8);
    const auto in = randomVec(static_cast<size_t>(p.ic) * p.iw, 21);
    const auto w = randomVec(static_cast<size_t>(p.oc) * p.ic, 22);
    std::vector<float> out(static_cast<size_t>(p.oc) * p.iw);

    const uint64_t before = convWeightPackCount();
    convForward(p, in.data(), w.data(), nullptr, out.data(), cfg);
    EXPECT_GT(convWeightPackCount(), before)
        << "on-the-fly GEMM must count its A packs";

    PackedConvWeights packed;
    packConvWeights(p, cfg, w.data(), packed);
    ASSERT_TRUE(packed.valid);
    const uint64_t steady = convWeightPackCount();
    convForwardPrepacked(p, in.data(), packed, nullptr, out.data());
    convForwardPrepacked(p, in.data(), packed, nullptr, out.data());
    EXPECT_EQ(convWeightPackCount(), steady)
        << "prepacked execution must not pack weights";
}

TEST(GemmMicro, EnvOverrideNameRoundTrip)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Neon), "neon");
    // setSimdLevel clamps to the detection.
    const SimdLevel prev = simdLevel();
    EXPECT_EQ(setSimdLevel(SimdLevel::Scalar), SimdLevel::Scalar);
    EXPECT_EQ(setSimdLevel(simdDetected()), simdDetected());
    setSimdLevel(prev);
}

} // namespace
} // namespace tamres
