/**
 * @file
 * Tests for the execution-plan runtime: planned execution must be
 * bit-identical to the naive executor across resolutions, thread
 * counts, and graph-rewriting passes; the plan cache must invalidate
 * on every structural mutation and stay bounded under resolution
 * churn; and the steady-state runInto() hot path must perform zero
 * heap allocations (asserted with a counting global allocator).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "nn/builders.hh"
#include "nn/graph.hh"
#include "nn/kernel_selector.hh"
#include "nn/ops.hh"
#include "nn/passes.hh"
#include "tensor/tensor_ops.hh"
#include "tests/threads_env.hh"
#include "util/rng.hh"

// --- Counting global allocator ---------------------------------------
//
// Replacing operator new binary-wide lets the zero-allocation test
// observe every heap allocation the hot path makes, including those
// from worker threads and the standard library.

namespace {

std::atomic<uint64_t> g_alloc_count{0};

void *
countedAlloc(std::size_t n)
{
    ++g_alloc_count;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_alloc_count;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) /
                                         static_cast<std::size_t>(al) *
                                         static_cast<std::size_t>(al)))
        return p;
    throw std::bad_alloc();
}
void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace tamres {
namespace {

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<size_t>(a.numel())) ==
               0;
}

Tensor
randomInput(int res, uint64_t seed)
{
    Tensor in({1, 3, res, res});
    Rng rng(seed);
    fillUniform(in, rng, 0.0f, 1.0f);
    return in;
}

/** Multiplies its input by a constant; distinguishable per instance. */
class ScaleOp : public Op
{
  public:
    ScaleOp(std::string name, float k) : Op(std::move(name)), k_(k) {}
    std::string type() const override { return "Scale"; }
    Shape
    outputShape(const std::vector<Shape> &inputs) const override
    {
        return inputs[0];
    }
    void
    forward(const std::vector<const Tensor *> &inputs,
            Tensor &out) override
    {
        const Tensor &in = *inputs[0];
        for (int64_t i = 0; i < in.numel(); ++i)
            out[i] = in[i] * k_;
    }

  private:
    float k_;
};

// --- Planned vs naive bit-identity -----------------------------------

TEST(GraphPlan, MatchesNaiveAcrossResolutionsAndThreads)
{
    auto g = buildResNet18(8, 5);
    for (const int res : {64, 96}) {
        const Tensor in = randomInput(res, res);
        Tensor reference;
        for (const int threads : {1, 2, 8}) {
            ThreadsEnv env(threads);
            const Tensor planned = g->run(in);
            const Tensor naive = g->runNaive(in);
            EXPECT_TRUE(bitIdentical(planned, naive))
                << res << "px, " << threads << " threads";
            if (reference.empty())
                reference = planned;
            else
                EXPECT_TRUE(bitIdentical(planned, reference))
                    << res << "px, " << threads
                    << " threads vs 1 thread";
        }
    }
}

TEST(GraphPlan, MatchesNaiveOnMobileNet)
{
    auto g = buildMobileNetV2(8, 9);
    const Tensor in = randomInput(64, 7);
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)));
}

TEST(GraphPlan, MatchesNaiveAfterRewritePasses)
{
    auto g = buildResNet18(8, 5);
    const Tensor in = randomInput(64, 3);
    ASSERT_GT(foldBatchNorms(*g), 0);
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)))
        << "after foldBatchNorms";
    ASSERT_GT(fuseConvRelu(*g), 0);
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)))
        << "after fuseConvRelu";
}

TEST(GraphPlan, MatchesNaiveUnderTunedMode)
{
    // Mode flips bump the selector generation; the cached plan must
    // re-resolve its conv configs rather than replay stale ones.
    auto g = buildResNet18(8, 5);
    const Tensor in = randomInput(64, 4);
    KernelSelector::instance().setMode(KernelMode::Library);
    const Tensor lib_planned = g->run(in);
    ASSERT_TRUE(bitIdentical(lib_planned, g->runNaive(in)));
    KernelSelector::instance().setMode(KernelMode::Naive);
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)));
    KernelSelector::instance().setMode(KernelMode::Library);
}

TEST(GraphPlan, ResidualGraphWithSharedInputs)
{
    // conv feeding both a ReLU and an Add exercises multi-consumer
    // liveness: the conv's buffer must stay live until the Add reads
    // it, even though the ReLU consumed it earlier.
    Graph g;
    auto conv = std::make_unique<Conv2d>("c", 3, 3, 3, 1, 1);
    Rng rng(7);
    conv->initKaiming(rng);
    const auto c = g.add(std::move(conv), {Graph::kInput});
    const auto r = g.add(std::make_unique<ReLU>("r"), {c});
    const auto a = g.add(std::make_unique<Add>("a"), {c, r});
    g.setOutput(a);

    Tensor in({1, 3, 16, 16});
    fillUniform(in, rng, -1.0f, 1.0f);
    EXPECT_TRUE(bitIdentical(g.run(in), g.runNaive(in)));
}

// --- Plan cache behaviour --------------------------------------------

TEST(GraphPlan, CacheKeyedByShapeAndBounded)
{
    Graph g;
    g.add(std::make_unique<ScaleOp>("s", 2.0f), {Graph::kInput});
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    for (int n = 1; n <= 12; ++n) {
        Tensor in({1, n}, std::vector<float>(n, 1.0f));
        const Tensor out = g.run(in);
        EXPECT_EQ(out[0], 2.0f);
    }
    EXPECT_LE(g.cachedPlanCount(), 8u);
    // Re-running a cached shape must not grow the cache.
    const size_t plans = g.cachedPlanCount();
    Tensor in({1, 12}, std::vector<float>(12, 1.0f));
    g.run(in);
    EXPECT_EQ(g.cachedPlanCount(), plans);
}

TEST(GraphPlan, InvalidatedByReplaceOp)
{
    Graph g;
    const auto id =
        g.add(std::make_unique<ScaleOp>("s", 2.0f), {Graph::kInput});
    Tensor in({1, 4}, std::vector<float>{1, 2, 3, 4});
    EXPECT_EQ(g.run(in)[3], 8.0f);
    EXPECT_EQ(g.cachedPlanCount(), 1u);
    // Swapping the op frees the old one: a stale plan would call
    // through a dangling pointer (ASan-visible) or return 2x.
    g.replaceOp(id, std::make_unique<ScaleOp>("s", 3.0f));
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    EXPECT_EQ(g.run(in)[3], 12.0f);
}

TEST(GraphPlan, InvalidatedByAddSetOutputAndRewire)
{
    Graph g;
    const auto a =
        g.add(std::make_unique<ScaleOp>("a", 2.0f), {Graph::kInput});
    Tensor in({1, 2}, std::vector<float>{1, 1});
    EXPECT_EQ(g.run(in)[0], 2.0f);

    const auto b = g.add(std::make_unique<ScaleOp>("b", 5.0f), {a});
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    EXPECT_EQ(g.run(in)[0], 10.0f);

    g.setOutput(a);
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    EXPECT_EQ(g.run(in)[0], 2.0f);

    g.setOutput(b);
    g.rewire(a, Graph::kInput); // b now reads the input directly
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    EXPECT_EQ(g.run(in)[0], 5.0f);
}

TEST(GraphPlan, RunReturnsOwningStorage)
{
    // run() results must survive later runs — regression guard against
    // handing out views of the reusable arena.
    auto g = buildResNet18(8, 5);
    const Tensor in1 = randomInput(64, 11);
    const Tensor in2 = randomInput(64, 12);
    const Tensor out1 = g->run(in1);
    const Tensor out1_copy = out1.clone();
    const Tensor out2 = g->run(in2);
    EXPECT_NE(out1.data(), out2.data());
    EXPECT_TRUE(bitIdentical(out1, out1_copy));
}

TEST(GraphPlan, RunIntoReusesCallerStorage)
{
    auto g = buildResNet18(8, 5);
    const Tensor in = randomInput(64, 13);
    Tensor out;
    g->runInto(in, out);
    const float *storage = out.data();
    g->runInto(in, out);
    EXPECT_EQ(out.data(), storage);
    EXPECT_TRUE(bitIdentical(out, g->runNaive(in)));
}

TEST(GraphPlan, ObserverSeesEveryLiveOp)
{
    auto g = buildResNet18(8, 5);
    const Tensor in = randomInput(64, 14);
    int planned_calls = 0;
    g->setObserver([&](const Op &, const std::vector<const Tensor *> &) {
        ++planned_calls;
    });
    g->run(in);
    int naive_calls = 0;
    g->setObserver([&](const Op &, const std::vector<const Tensor *> &) {
        ++naive_calls;
    });
    g->runNaive(in);
    g->setObserver(nullptr);
    EXPECT_EQ(planned_calls, naive_calls);
    EXPECT_EQ(planned_calls,
              static_cast<int>(g->liveNodes().size()) - 1);
}

// --- Zero-allocation steady state ------------------------------------

TEST(GraphPlanAlloc, SteadyStateRunIntoIsAllocationFree)
{
    ThreadsEnv env(1); // deterministic serial execution
    auto g = buildResNet18(8, 5);
    foldBatchNorms(*g);
    fuseConvRelu(*g);
    const Tensor in = randomInput(64, 15);
    Tensor out;
    g->runInto(in, out); // compiles the plan, allocates the output
    g->runInto(in, out); // warms the kernels' grow-only scratch

    const uint64_t before = g_alloc_count.load();
    for (int i = 0; i < 3; ++i)
        g->runInto(in, out);
    const uint64_t after = g_alloc_count.load();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations in 3 steady-state runs";
}

TEST(GraphPlanAlloc, SteadyStateAllocationFreePerResolution)
{
    // Dynamic-resolution serving: after each resolution's plan is warm,
    // alternating between them must stay allocation-free.
    ThreadsEnv env(1);
    auto g = buildResNet18(8, 5);
    const Tensor in64 = randomInput(64, 16);
    const Tensor in96 = randomInput(96, 17);
    Tensor out64, out96;
    for (int i = 0; i < 2; ++i) {
        g->runInto(in64, out64);
        g->runInto(in96, out96);
    }
    const uint64_t before = g_alloc_count.load();
    g->runInto(in64, out64);
    g->runInto(in96, out96);
    g->runInto(in64, out64);
    const uint64_t after = g_alloc_count.load();
    EXPECT_EQ(after - before, 0u);
}

// --- Prepacked weights -----------------------------------------------

TEST(GraphPlanPack, SteadyStateRunIntoDoesNoWeightPacking)
{
    ThreadsEnv env(1);
    auto g = buildResNet18(8, 5);
    foldBatchNorms(*g);
    fuseConvRelu(*g);
    const Tensor in = randomInput(64, 18);
    Tensor out;
    const uint64_t t0 = convWeightPackCount();
    g->runInto(in, out); // compiles the plan: packs every conv once
    EXPECT_GT(convWeightPackCount(), t0)
        << "plan compilation should prepack conv weights";

    const uint64_t steady = convWeightPackCount();
    for (int i = 0; i < 3; ++i)
        g->runInto(in, out);
    EXPECT_EQ(convWeightPackCount(), steady)
        << "steady-state planned runs must not pack weights";

    // The naive executor (per-request packing) keeps paying it — the
    // contrast the plan removes.
    g->runNaive(in);
    EXPECT_GT(convWeightPackCount(), steady);
}

TEST(GraphPlanPack, SelectorGenerationBumpRepacksAndStaysCorrect)
{
    // Registering a tuned config with different GEMM blocking bumps
    // the selector generation: the cached plan must re-resolve the
    // config AND re-pack the weights; replaying the old panels under
    // the new blocking would be wrong (or crash).
    auto g = buildResNet18(8, 5);
    const Tensor in = randomInput(64, 19);
    KernelSelector::instance().setMode(KernelMode::Library);
    ASSERT_TRUE(bitIdentical(g->run(in), g->runNaive(in)));

    // Find one dense conv problem the graph actually runs.
    bool registered = false;
    g->visitShapes({1, 3, 64, 64},
                   [&](Op &op, const std::vector<Shape> &ins) {
                       auto *conv = dynamic_cast<Conv2d *>(&op);
                       if (!conv || registered ||
                           conv->groups() != 1)
                           return;
                       const ConvProblem p = conv->problemFor(ins[0]);
                       ConvConfig tuned;
                       tuned.algo = ConvAlgo::Im2col;
                       tuned.mc = 32;
                       tuned.kc = 48;
                       tuned.nc = 160;
                       tuned.mr = 6;
                       tuned.nr = 8;
                       if (!convConfigValid(p, tuned))
                           return;
                       KernelSelector::instance().registerTuned(p,
                                                                tuned);
                       registered = true;
                   });
    ASSERT_TRUE(registered);
    KernelSelector::instance().setMode(KernelMode::Tuned);
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)))
        << "cached plan replayed stale packed weights after a "
           "selector generation bump";
    KernelSelector::instance().setMode(KernelMode::Library);
    KernelSelector::instance().clearTuned();
    EXPECT_TRUE(bitIdentical(g->run(in), g->runNaive(in)));
}

TEST(GraphPlanPack, ReplaceOpDropsThePackWithThePlan)
{
    // Swapping a conv for one with fresh weights must invalidate the
    // plan (and with it the packed panels); a stale pack would keep
    // producing the old conv's outputs.
    Graph g;
    Rng rng(29);
    auto conv = std::make_unique<Conv2d>("c", 3, 4, 3, 1, 1);
    conv->initKaiming(rng);
    const auto id = g.add(std::move(conv), {Graph::kInput});
    g.setOutput(id);

    Tensor in({1, 3, 12, 12});
    fillUniform(in, rng, -1.0f, 1.0f);
    const Tensor before = g.run(in).clone();
    ASSERT_EQ(g.cachedPlanCount(), 1u);

    auto replacement = std::make_unique<Conv2d>("c2", 3, 4, 3, 1, 1);
    replacement->initKaiming(rng);
    g.replaceOp(id, std::move(replacement));
    EXPECT_EQ(g.cachedPlanCount(), 0u);
    const Tensor after = g.run(in);
    EXPECT_FALSE(bitIdentical(before, after))
        << "output unchanged after replacing the conv — stale plan "
           "or stale packed weights";
    EXPECT_TRUE(bitIdentical(after, g.runNaive(in)));
}

TEST(GraphPlanAlloc, ArenaReusesBuffersAcrossLifetimes)
{
    // The liveness arena must host all intermediates in a fraction of
    // what one-tensor-per-node execution touches.
    auto g = buildResNet18(8, 5);
    const Shape in_shape{1, 3, 64, 64};
    int64_t naive_total = 0;
    g->visitShapes(in_shape, [&](Op &op,
                                 const std::vector<Shape> &ins) {
        naive_total += shapeNumel(op.outputShape(ins));
    });
    const int64_t arena = g->planArenaNumel(in_shape);
    EXPECT_GT(arena, 0);
    EXPECT_LT(arena * 4, naive_total)
        << "arena " << arena << " floats vs naive " << naive_total;
    EXPECT_EQ(g->cachedPlanCount(), 1u);
}

} // namespace
} // namespace tamres
