/**
 * @file
 * Tests for the canonical Huffman coder and its integration as the
 * progressive codec's entropy layer: code validity (prefix-free,
 * Kraft-tight, length-limited), roundtrips, serialization, optimality
 * against the fixed 8-bit layer, and identical decoded pixels under
 * both entropy coders.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "codec/huffman.hh"
#include "codec/progressive.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

std::vector<uint64_t>
geometricFrequencies(int n, double ratio, uint64_t base = 1000000)
{
    std::vector<uint64_t> freq(256, 0);
    double f = static_cast<double>(base);
    for (int i = 0; i < n; ++i) {
        freq[i] = std::max<uint64_t>(1, static_cast<uint64_t>(f));
        f *= ratio;
    }
    return freq;
}

/** Kraft sum over all coded symbols. */
double
kraftSum(const HuffmanTable &t)
{
    double sum = 0.0;
    for (int s = 0; s < 256; ++s)
        if (t.hasCode(static_cast<uint8_t>(s)))
            sum += std::ldexp(1.0, -t.codeLength(
                static_cast<uint8_t>(s)));
    return sum;
}

TEST(Huffman, TwoSymbolAlphabetGetsOneBitCodes)
{
    std::vector<uint64_t> freq(256, 0);
    freq[10] = 900;
    freq[200] = 100;
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    EXPECT_EQ(t.numSymbols(), 2);
    EXPECT_EQ(t.codeLength(10), 1);
    EXPECT_EQ(t.codeLength(200), 1);
}

TEST(Huffman, SingleSymbolStillDecodable)
{
    std::vector<uint64_t> freq(256, 0);
    freq[42] = 7;
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    EXPECT_EQ(t.codeLength(42), 1);
    BitWriter bw;
    for (int i = 0; i < 5; ++i)
        t.encode(bw, 42);
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(t.decode(br), 42);
}

TEST(Huffman, KraftEqualityHolds)
{
    // A full (non-degenerate) Huffman code satisfies Kraft with
    // equality.
    for (double ratio : {0.9, 0.6, 0.3}) {
        const HuffmanTable t =
            HuffmanTable::fromFrequencies(geometricFrequencies(40,
                                                               ratio));
        EXPECT_NEAR(kraftSum(t), 1.0, 1e-12) << "ratio " << ratio;
    }
}

TEST(Huffman, RespectsLengthLimit)
{
    // Fibonacci-like frequencies force maximally skewed trees; the
    // rebalancer must keep every code within 16 bits.
    std::vector<uint64_t> freq(256, 0);
    uint64_t a = 1, b = 1;
    for (int i = 0; i < 40; ++i) {
        freq[i] = a;
        const uint64_t next = a + b;
        a = b;
        b = next;
    }
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    EXPECT_NEAR(kraftSum(t), 1.0, 1e-12);
    for (int s = 0; s < 40; ++s) {
        EXPECT_GE(t.codeLength(static_cast<uint8_t>(s)), 1);
        EXPECT_LE(t.codeLength(static_cast<uint8_t>(s)),
                  kMaxHuffmanBits);
    }
}

TEST(Huffman, MoreFrequentSymbolsGetShorterCodes)
{
    const auto freq = geometricFrequencies(30, 0.7);
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    for (int i = 1; i < 30; ++i)
        EXPECT_LE(t.codeLength(static_cast<uint8_t>(i - 1)),
                  t.codeLength(static_cast<uint8_t>(i)));
}

TEST(Huffman, CostWithinEntropyPlusOne)
{
    const auto freq = geometricFrequencies(64, 0.85);
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    uint64_t total = 0;
    for (uint64_t f : freq)
        total += f;
    double entropy_bits = 0.0;
    for (uint64_t f : freq) {
        if (f == 0)
            continue;
        const double p = static_cast<double>(f) / total;
        entropy_bits -= static_cast<double>(f) * std::log2(p);
    }
    const double cost = static_cast<double>(t.costBits(freq));
    EXPECT_GE(cost + 1e-6, entropy_bits);
    EXPECT_LE(cost, entropy_bits + static_cast<double>(total));
}

TEST(Huffman, RandomMessageRoundTrip)
{
    Rng rng(77);
    const auto freq = geometricFrequencies(48, 0.8);
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    std::vector<uint8_t> msg;
    for (int i = 0; i < 4000; ++i)
        msg.push_back(static_cast<uint8_t>(rng.uniformInt(48)));
    BitWriter bw;
    for (uint8_t s : msg)
        t.encode(bw, s);
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    for (uint8_t s : msg)
        ASSERT_EQ(t.decode(br), s);
}

TEST(Huffman, SerializeRoundTripPreservesCode)
{
    const auto freq = geometricFrequencies(25, 0.65);
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    BitWriter bw;
    t.serialize(bw);
    const auto bytes = bw.bytes();
    BitReader br(bytes.data(), bytes.size());
    const HuffmanTable back = HuffmanTable::deserialize(br);
    EXPECT_EQ(back.numSymbols(), t.numSymbols());
    for (int s = 0; s < 256; ++s)
        EXPECT_EQ(back.codeLength(static_cast<uint8_t>(s)),
                  t.codeLength(static_cast<uint8_t>(s)));
}

TEST(HuffmanDeath, EmptyAlphabetRejected)
{
    std::vector<uint64_t> freq(256, 0);
    EXPECT_DEATH(HuffmanTable::fromFrequencies(freq), "at least one");
}

TEST(HuffmanDeath, EncodingUncodedSymbolRejected)
{
    std::vector<uint64_t> freq(256, 0);
    freq[1] = 1;
    freq[2] = 1;
    const HuffmanTable t = HuffmanTable::fromFrequencies(freq);
    BitWriter bw;
    EXPECT_DEATH(t.encode(bw, 99), "no code");
}

// --- Integration with the progressive codec ---

class EntropyCoderTest : public ::testing::TestWithParam<EntropyCoder>
{};

TEST_P(EntropyCoderTest, DecodedPixelsIdenticalAcrossCoders)
{
    SyntheticImageSpec spec;
    spec.height = 72;
    spec.width = 88;
    spec.texture_detail = 0.6;
    const Image src = generateSyntheticImage(spec);

    ProgressiveConfig base;
    base.entropy = EntropyCoder::RunLength;
    ProgressiveConfig other;
    other.entropy = GetParam();

    const EncodedImage e1 = encodeProgressive(src, base);
    const EncodedImage e2 = encodeProgressive(src, other);
    ASSERT_EQ(e1.numScans(), e2.numScans());
    // Entropy coding is lossless: every scan prefix decodes to the
    // same pixels no matter the coder.
    for (int k = 0; k <= e1.numScans(); ++k) {
        const Image d1 = decodeProgressive(e1, k);
        const Image d2 = decodeProgressive(e2, k);
        ASSERT_EQ(d1.numel(), d2.numel());
        for (size_t i = 0; i < d1.numel(); ++i)
            ASSERT_EQ(d1.data()[i], d2.data()[i])
                << "scan prefix " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Coders, EntropyCoderTest,
    ::testing::Values(EntropyCoder::RunLength, EntropyCoder::Huffman),
    [](const ::testing::TestParamInfo<EntropyCoder> &info) {
        return entropyCoderName(info.param);
    });

TEST(ProgressiveHuffman, CompressesBetterThanRunLength)
{
    SyntheticImageSpec spec;
    spec.height = 160;
    spec.width = 200;
    spec.texture_detail = 0.5;
    const Image src = generateSyntheticImage(spec);

    ProgressiveConfig rl;
    rl.entropy = EntropyCoder::RunLength;
    ProgressiveConfig hf;
    hf.entropy = EntropyCoder::Huffman;
    const size_t bytes_rl = encodeProgressive(src, rl).totalBytes();
    const size_t bytes_hf = encodeProgressive(src, hf).totalBytes();
    EXPECT_LT(bytes_hf, bytes_rl);
    // The win should be material, not epsilon.
    EXPECT_LT(static_cast<double>(bytes_hf),
              0.95 * static_cast<double>(bytes_rl));
}

TEST(ProgressiveHuffman, ScanPrefixMonotoneQuality)
{
    SyntheticImageSpec spec;
    spec.height = 96;
    spec.width = 96;
    const Image src = generateSyntheticImage(spec);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image full = decodeProgressive(enc, enc.numScans());
    double prev = -1.0;
    for (int k = 1; k <= enc.numScans(); ++k) {
        const double q = ssim(decodeProgressive(enc, k), full);
        EXPECT_GT(q, prev);
        prev = q;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(ProgressiveHuffman, TablesAreSmallRelativeToPayload)
{
    // The per-scan DHT overhead must stay negligible for real-size
    // images, or prefix reads would be penalized.
    SyntheticImageSpec spec;
    spec.height = 224;
    spec.width = 224;
    const Image src = generateSyntheticImage(spec);
    ProgressiveConfig hf;
    hf.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, hf);
    for (int s = 0; s < enc.numScans(); ++s) {
        const size_t scan_bytes =
            enc.scan_offsets[s + 1] - enc.scan_offsets[s];
        // 16 length counts + <= 256 symbols bounds the table at 272
        // bytes; payloads are tens of KBs.
        EXPECT_GT(scan_bytes, 272u) << "scan " << s;
    }
}

} // namespace
} // namespace tamres
