/**
 * @file
 * Unit tests for the util module: Rng, Timer, TablePrinter, ThreadPool,
 * env helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

#include "util/env.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

namespace tamres {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(static_cast<int64_t>(-2), 5);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u); // all values hit
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(9);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, LogisticSymmetric)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.logistic();
    EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(Timer, MeasuresElapsed)
{
    Timer t;
    volatile double x = 0.0;
    for (int i = 0; i < 2000000; ++i)
        x += i;
    EXPECT_GT(t.seconds(), 0.0);
    EXPECT_GE(t.millis(), t.seconds() * 1e3); // monotone between calls
}

TEST(Timer, MedianRunSeconds)
{
    int calls = 0;
    const double m = medianRunSeconds([&] { ++calls; }, 3);
    EXPECT_EQ(calls, 4); // 1 warmup + 3 timed
    EXPECT_GE(m, 0.0);
}

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t("demo");
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(TablePrinter, NumFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(ThreadPool, SerialFallback)
{
    ThreadPool pool(1);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(100, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangeFewerThanThreads)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](int64_t b, int64_t e) {
        count += static_cast<int>(e - b);
    });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&](int64_t, int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(50, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                sum += 1;
        });
        EXPECT_EQ(sum.load(), 50);
    }
}

TEST(Env, IntDefaultAndParse)
{
    unsetenv("TAMRES_TEST_INT");
    EXPECT_EQ(envInt("TAMRES_TEST_INT", 5), 5);
    setenv("TAMRES_TEST_INT", "42", 1);
    EXPECT_EQ(envInt("TAMRES_TEST_INT", 5), 42);
    unsetenv("TAMRES_TEST_INT");
}

TEST(Env, DoubleAndString)
{
    setenv("TAMRES_TEST_D", "2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("TAMRES_TEST_D", 1.0), 2.5);
    unsetenv("TAMRES_TEST_D");
    EXPECT_DOUBLE_EQ(envDouble("TAMRES_TEST_D", 1.0), 1.0);
    EXPECT_EQ(envString("TAMRES_TEST_S", "dflt"), "dflt");
}

} // namespace
} // namespace tamres
