/**
 * @file
 * Unit tests for the util module: Rng, Timer, TablePrinter, ThreadPool,
 * env helpers, CancelToken, Watchdog.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "util/cancel.hh"
#include "util/clock.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"
#include "util/watchdog.hh"

namespace tamres {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(static_cast<int64_t>(-2), 5);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u); // all values hit
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(9);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, LogisticSymmetric)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.logistic();
    EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(Timer, MeasuresElapsed)
{
    Timer t;
    volatile double x = 0.0;
    for (int i = 0; i < 2000000; ++i)
        x += i;
    EXPECT_GT(t.seconds(), 0.0);
    EXPECT_GE(t.millis(), t.seconds() * 1e3); // monotone between calls
}

TEST(Timer, MedianRunSeconds)
{
    int calls = 0;
    const double m = medianRunSeconds([&] { ++calls; }, 3);
    EXPECT_EQ(calls, 4); // 1 warmup + 3 timed
    EXPECT_GE(m, 0.0);
}

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t("demo");
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(TablePrinter, NumFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(ThreadPool, SerialFallback)
{
    ThreadPool pool(1);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(100, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangeFewerThanThreads)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](int64_t b, int64_t e) {
        count += static_cast<int>(e - b);
    });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&](int64_t, int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(50, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                sum += 1;
        });
        EXPECT_EQ(sum.load(), 50);
    }
}

TEST(Env, IntDefaultAndParse)
{
    unsetenv("TAMRES_TEST_INT");
    EXPECT_EQ(envInt("TAMRES_TEST_INT", 5), 5);
    setenv("TAMRES_TEST_INT", "42", 1);
    EXPECT_EQ(envInt("TAMRES_TEST_INT", 5), 42);
    unsetenv("TAMRES_TEST_INT");
}

TEST(Env, DoubleAndString)
{
    setenv("TAMRES_TEST_D", "2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("TAMRES_TEST_D", 1.0), 2.5);
    unsetenv("TAMRES_TEST_D");
    EXPECT_DOUBLE_EQ(envDouble("TAMRES_TEST_D", 1.0), 1.0);
    EXPECT_EQ(envString("TAMRES_TEST_S", "dflt"), "dflt");
}

TEST(CancelToken, DefaultIsUnfired)
{
    CancelToken tok;
    EXPECT_FALSE(tok.fired());
    EXPECT_FALSE(tok.cancelled());
    EXPECT_EQ(tok.reason(), CancelReason::None);
    EXPECT_NO_THROW(tok.throwIfFired());
}

TEST(CancelToken, FirstReasonWins)
{
    CancelToken tok;
    tok.cancel(CancelReason::Client);
    tok.cancel(CancelReason::Watchdog);
    EXPECT_TRUE(tok.cancelled());
    EXPECT_EQ(tok.reason(), CancelReason::Client);
}

TEST(CancelToken, DeadlineFiresLazilyOnManualClock)
{
    ManualClock clk;
    CancelToken tok;
    tok.armDeadline(clk, clk.now() + 1.0);
    EXPECT_FALSE(tok.fired());
    clk.advance(0.5);
    EXPECT_FALSE(tok.fired());
    clk.advance(0.6);
    EXPECT_TRUE(tok.fired());
    EXPECT_EQ(tok.reason(), CancelReason::Deadline);
    // Lazy expiry never set the explicit flag.
    EXPECT_FALSE(tok.cancelled());
}

TEST(CancelToken, ExplicitReasonWinsOverExpiredDeadline)
{
    ManualClock clk;
    CancelToken tok;
    tok.armDeadline(clk, clk.now() + 1.0);
    tok.cancel(CancelReason::Client);
    clk.advance(2.0); // deadline also past now
    EXPECT_EQ(tok.reason(), CancelReason::Client);
}

TEST(CancelToken, ThrowMappingByReason)
{
    // Client/Deadline end the REQUEST: ErrorKind::Cancelled, never
    // retried. Watchdog/Abandoned end the OPERATION: a fail-fast
    // Transient that drops into the retry/degrade ladder and counts
    // as a breaker failure.
    for (CancelReason r :
         {CancelReason::Client, CancelReason::Deadline}) {
        CancelToken tok;
        tok.cancel(r);
        try {
            tok.throwIfFired();
            FAIL() << "token fired but did not throw";
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
            EXPECT_FALSE(e.failFast());
        }
    }
    for (CancelReason r :
         {CancelReason::Watchdog, CancelReason::Abandoned}) {
        CancelToken tok;
        tok.cancel(r);
        try {
            tok.throwIfFired();
            FAIL() << "token fired but did not throw";
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Transient);
            EXPECT_TRUE(e.failFast());
        }
    }
}

TEST(CancelToken, ResetDisarmsForResubmission)
{
    ManualClock clk;
    CancelToken tok;
    tok.armDeadline(clk, clk.now() + 0.1);
    tok.cancel(CancelReason::Client);
    clk.advance(1.0);
    tok.reset();
    EXPECT_FALSE(tok.fired());
    EXPECT_EQ(tok.reason(), CancelReason::None)
        << "reset must drop both the flag and the armed deadline";
}

TEST(CancelToken, ConcurrentCancelKeepsExactlyOneReason)
{
    CancelToken tok;
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i)
        threads.emplace_back([&tok, i] {
            tok.cancel(i % 2 == 0 ? CancelReason::Client
                                  : CancelReason::Watchdog);
        });
    for (auto &t : threads)
        t.join();
    const CancelReason r = tok.reason();
    EXPECT_TRUE(r == CancelReason::Client ||
                r == CancelReason::Watchdog);
    EXPECT_EQ(tok.reason(), r) << "reason must be stable once set";
}

TEST(Watchdog, FlagsOnlySilentBusyWorkers)
{
    ManualClock clk;
    Watchdog::Config cfg;
    cfg.liveness_budget_s = 1.0;
    cfg.clock = &clk;
    cfg.supervise = false; // tests drive poll() by hand
    std::vector<WatchdogReport> reports;
    Watchdog wd(cfg, [&](const WatchdogReport &r) {
        reports.push_back(r);
    });

    const int a = wd.registerWorker();
    const int b = wd.registerWorker();
    wd.beat(a, "fetch", 41);
    wd.beat(b, "decode", 42);
    wd.idle(b); // b finished: an empty queue is not a liveness failure

    clk.advance(0.5);
    EXPECT_EQ(wd.poll(), 0) << "within budget: no flag";

    clk.advance(0.6); // a silent 1.1s now, past the 1.0s budget
    EXPECT_EQ(wd.poll(), 1);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].worker, a);
    EXPECT_STREQ(reports[0].phase, "fetch");
    EXPECT_EQ(reports[0].request_id, 41u);
    EXPECT_GE(reports[0].silent_s, 1.0);

    // Once per silent episode: the same silence never re-flags.
    clk.advance(5.0);
    EXPECT_EQ(wd.poll(), 0);
    EXPECT_EQ(wd.flags(), 1u);

    // A beat re-arms the flag; fresh silence flags again.
    wd.beat(a, "fetch", 43);
    clk.advance(1.5);
    EXPECT_EQ(wd.poll(), 1);
    EXPECT_EQ(wd.flags(), 2u);
    EXPECT_EQ(reports[1].request_id, 43u);
}

TEST(Watchdog, IdleAndFreshlyBeatenWorkersNeverFlag)
{
    ManualClock clk;
    Watchdog::Config cfg;
    cfg.liveness_budget_s = 0.1;
    cfg.clock = &clk;
    cfg.supervise = false;
    Watchdog wd(cfg, [](const WatchdogReport &) {
        FAIL() << "no worker should ever be flagged here";
    });
    const int w = wd.registerWorker();
    for (int i = 0; i < 20; ++i) {
        wd.beat(w, "loop", 1);
        clk.advance(0.05); // always beats within half the budget
        EXPECT_EQ(wd.poll(), 0);
    }
    wd.idle(w);
    clk.advance(100.0);
    EXPECT_EQ(wd.poll(), 0) << "idle workers are never flagged";
    EXPECT_EQ(wd.flags(), 0u);
}

TEST(Watchdog, CallbackMayReenterRegistryWithoutDeadlock)
{
    ManualClock clk;
    Watchdog::Config cfg;
    cfg.liveness_budget_s = 0.1;
    cfg.clock = &clk;
    cfg.supervise = false;
    Watchdog *self = nullptr;
    int reentered = 0;
    Watchdog wd(cfg, [&](const WatchdogReport &r) {
        // The callback contract: no watchdog lock is held, so it may
        // call back into beat()/idle() (the engine's flag handler
        // takes its own locks and cancels request tokens).
        self->beat(r.worker, "recovered", 7);
        ++reentered;
    });
    self = &wd;
    const int w = wd.registerWorker();
    wd.beat(w, "stuck", 6);
    clk.advance(1.0);
    EXPECT_EQ(wd.poll(), 1);
    EXPECT_EQ(reentered, 1);
    // The re-entrant beat re-armed the worker at the advanced time.
    clk.advance(0.05);
    EXPECT_EQ(wd.poll(), 0);
}

TEST(Watchdog, SupervisorThreadFlagsWithoutManualPolls)
{
    // Wall-clock smoke test for the supervised mode: the background
    // thread must flag a silent busy worker on its own. Generous
    // bounds — cadence is wall-clock by design (see watchdog.hh).
    Watchdog::Config cfg;
    cfg.liveness_budget_s = 0.02;
    cfg.poll_interval_s = 0.005;
    std::atomic<int> flagged{0};
    Watchdog wd(cfg, [&](const WatchdogReport &) { ++flagged; });
    const int w = wd.registerWorker();
    wd.beat(w, "wedged", 9);
    for (int i = 0; i < 400 && flagged.load() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(flagged.load(), 1)
        << "supervisor thread never flagged a 2s-silent worker";
    wd.stop();
    EXPECT_GE(wd.flags(), 1u);
}

} // namespace
} // namespace tamres
