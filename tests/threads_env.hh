/**
 * @file
 * Scoped TAMRES_THREADS override shared by the tests that exercise
 * thread-count invariance (the pool reads the variable per call, so a
 * setenv takes effect on the next parallel region).
 */

#ifndef TAMRES_TESTS_THREADS_ENV_HH
#define TAMRES_TESTS_THREADS_ENV_HH

#include <cstdlib>
#include <string>

namespace tamres {

/** Sets TAMRES_THREADS for the enclosing scope, unsetting on exit. */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(int n)
    {
        setenv("TAMRES_THREADS", std::to_string(n).c_str(), 1);
    }
    ~ThreadsEnv() { unsetenv("TAMRES_THREADS"); }

    ThreadsEnv(const ThreadsEnv &) = delete;
    ThreadsEnv &operator=(const ThreadsEnv &) = delete;
};

} // namespace tamres

#endif // TAMRES_TESTS_THREADS_ENV_HH
