/**
 * @file
 * Tests for the core module: quality tables, the Section-V calibration
 * procedure, the scale model, and the pipeline evaluators.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"

namespace tamres {
namespace {

/** A small, cheap dataset profile for core tests. */
DatasetSpec
tinySpec()
{
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 160;
    spec.mean_width = 180;
    spec.size_jitter = 0.1;
    return spec;
}

class CoreFixture : public ::testing::Test
{
  protected:
    CoreFixture()
        : ds(tinySpec(), 64, 42),
          model(BackboneArch::ResNet18, ds.spec(), 1),
          table(ds, 0, 24, {112, 168, 224})
    {}

    SyntheticDataset ds;
    BackboneAccuracyModel model;
    QualityTable table;
};

TEST_F(CoreFixture, QualityTableShapes)
{
    EXPECT_EQ(table.numImages(), 24);
    EXPECT_EQ(table.resolutions().size(), 3u);
    EXPECT_EQ(table.numScans(), 5);
}

TEST_F(CoreFixture, ReadFractionMonotone)
{
    for (int i = 0; i < table.numImages(); ++i) {
        const ImageQuality &q = table.entry(i);
        EXPECT_DOUBLE_EQ(q.read_fraction[0], 0.0);
        EXPECT_DOUBLE_EQ(q.read_fraction[q.num_scans], 1.0);
        for (int k = 1; k <= q.num_scans; ++k)
            EXPECT_GT(q.read_fraction[k], q.read_fraction[k - 1]);
    }
}

TEST_F(CoreFixture, SsimImprovesWithScans)
{
    for (int i = 0; i < table.numImages(); ++i) {
        for (int r = 0; r < 3; ++r) {
            for (int k = 1; k <= table.numScans(); ++k) {
                EXPECT_GE(table.entry(i).ssimAt(k, r, 3),
                          table.entry(i).ssimAt(k - 1, r, 3) - 1e-6);
            }
            EXPECT_NEAR(table.entry(i).ssimAt(table.numScans(), r, 3),
                        1.0, 1e-9);
        }
    }
}

TEST_F(CoreFixture, LowerResolutionNeedsFewerScansForSameSsim)
{
    // Downsampling hides missing high-frequency scans: at 112 the
    // same scan prefix scores higher SSIM than at 224 (the mechanism
    // behind the paper's Section V trend).
    double mean112 = 0.0, mean224 = 0.0;
    for (int i = 0; i < table.numImages(); ++i) {
        mean112 += table.entry(i).ssimAt(2, 0, 3);
        mean224 += table.entry(i).ssimAt(2, 2, 3);
    }
    EXPECT_GT(mean112, mean224);
}

TEST_F(CoreFixture, ScansForThreshold)
{
    const int all = table.numScans();
    for (int i = 0; i < 5; ++i) {
        // Impossible threshold -> everything.
        EXPECT_EQ(table.scansForThreshold(i, 0, 1.1), all);
        // Trivial threshold -> nothing.
        EXPECT_EQ(table.scansForThreshold(i, 0, -1.0), 0);
        // Monotone in threshold.
        EXPECT_LE(table.scansForThreshold(i, 0, 0.95),
                  table.scansForThreshold(i, 0, 0.99));
    }
}

TEST_F(CoreFixture, CalibrationRespectsAccuracyBudget)
{
    CalibrationOptions opts;
    opts.max_accuracy_loss = 0.01; // generous on a small sample
    const StoragePolicy policy = calibrate(table, ds, model, opts);
    ASSERT_EQ(policy.thresholds.size(), 3u);
    for (int r = 0; r < 3; ++r) {
        EXPECT_GE(policy.thresholds[r], opts.ssim_lo);
        EXPECT_LE(policy.thresholds[r], opts.ssim_hi);
        const PolicyEval eval = evaluateThreshold(
            table, ds, model, r, policy.thresholds[r], opts.crop_area);
        EXPECT_LE(eval.accuracy_full - eval.accuracy_policy,
                  opts.max_accuracy_loss + 1e-9);
    }
}

TEST_F(CoreFixture, LooserBudgetNeverReadsMore)
{
    CalibrationOptions strict;
    strict.max_accuracy_loss = 0.0005;
    CalibrationOptions loose;
    loose.max_accuracy_loss = 0.05;
    const StoragePolicy p_strict = calibrate(table, ds, model, strict);
    const StoragePolicy p_loose = calibrate(table, ds, model, loose);
    for (int r = 0; r < 3; ++r) {
        const double read_strict =
            evaluateThreshold(table, ds, model, r,
                              p_strict.thresholds[r], 0.75)
                .read_fraction;
        const double read_loose =
            evaluateThreshold(table, ds, model, r,
                              p_loose.thresholds[r], 0.75)
                .read_fraction;
        EXPECT_LE(read_loose, read_strict + 1e-9);
    }
}

TEST_F(CoreFixture, PopulationEvalSharpensAccuracyResolution)
{
    // With an expanded record population, the evaluator can resolve
    // accuracy losses finer than 1/n_table, and read fractions match
    // the table's (bytes come from the measured images either way).
    SyntheticDataset pop_ds(tinySpec(), 4000, 777);
    const EvalPopulation pop{&pop_ds, pop_ds.size()};
    const PolicyEval small =
        evaluateThreshold(table, ds, model, 0, 0.96, 0.75);
    const PolicyEval big =
        evaluateThreshold(table, ds, model, 0, 0.96, 0.75, pop);
    EXPECT_NEAR(big.read_fraction, small.read_fraction, 0.02);
    // Population accuracy is a valid probability and close to the
    // small-sample estimate.
    EXPECT_GT(big.accuracy_policy, 0.0);
    EXPECT_LT(big.accuracy_policy, 1.0);
    EXPECT_NEAR(big.accuracy_policy, small.accuracy_policy, 0.25);
}

TEST_F(CoreFixture, PopulationCalibrationRespectsBudget)
{
    SyntheticDataset pop_ds(tinySpec(), 4000, 778);
    const EvalPopulation pop{&pop_ds, pop_ds.size()};
    CalibrationOptions opts;
    opts.max_accuracy_loss = 0.002;
    const StoragePolicy policy =
        calibrate(table, ds, model, opts, pop);
    for (int r = 0; r < 3; ++r) {
        const PolicyEval eval =
            evaluateThreshold(table, ds, model, r,
                              policy.thresholds[r], 0.75, pop);
        EXPECT_LE(eval.accuracy_full - eval.accuracy_policy,
                  opts.max_accuracy_loss + 1e-9);
    }
}

TEST_F(CoreFixture, EvaluateThresholdSavesBytesAtLowThreshold)
{
    const PolicyEval eval =
        evaluateThreshold(table, ds, model, 0, 0.94, 0.75);
    EXPECT_LT(eval.read_fraction, 1.0);
    EXPECT_GT(eval.read_fraction, 0.0);
    EXPECT_GT(eval.savings(), 0.0);
}

TEST(ScaleFeatures, DimensionAndDeterminism)
{
    SyntheticDataset ds(tinySpec(), 2, 9);
    const Image img = ds.renderAt(0, 128);
    const auto f1 = extractScaleFeatures(img);
    const auto f2 = extractScaleFeatures(img);
    EXPECT_EQ(static_cast<int>(f1.size()), scaleFeatureDim());
    EXPECT_EQ(f1, f2);
}

TEST(ScaleFeatures, ExtentTracksObjectScale)
{
    // Bigger rendered objects must produce larger extent features.
    SyntheticImageSpec spec{.height = 128, .width = 128, .class_id = 0,
                            .seed = 4, .texture_detail = 0.3};
    spec.object_scale = 0.25;
    const auto f_small =
        extractScaleFeatures(generateSyntheticImage(spec));
    spec.object_scale = 0.95;
    const auto f_big =
        extractScaleFeatures(generateSyntheticImage(spec));
    // Feature 5 is the 90th-percentile extent.
    EXPECT_GT(f_big[5], f_small[5]);
}

TEST(ScaleModel, TrainsAndPredictsShape)
{
    SyntheticDataset ds(tinySpec(), 80, 21);
    ScaleModelOptions opts;
    opts.epochs = 10;
    ScaleModel scale({112, 224, 448}, opts);
    const double loss = scale.train(ds, 0, 64, BackboneArch::ResNet18,
                                    {0.25, 0.75}, 128);
    EXPECT_LT(loss, 1.0); // BCE below chance-ish after training
    const Image preview = ds.renderAt(70, 128);
    const Tensor logits = scale.predictLogits(preview);
    EXPECT_EQ(logits.shape(), (Shape{1, 3}));
    const int idx = scale.chooseResolutionIndex(preview);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
    EXPECT_EQ(scale.chooseResolution(preview),
              scale.resolutions()[idx]);
}

TEST(ScaleModel, LearnsScaleSignal)
{
    // Train on a dataset, then check the selector prefers lower
    // resolutions for tighter crops (bigger apparent objects) on
    // average — the core competence the dynamic pipeline needs.
    SyntheticDataset ds(tinySpec(), 160, 33);
    ScaleModelOptions opts;
    opts.epochs = 25;
    ScaleModel scale({112, 224, 448}, opts);
    scale.train(ds, 0, 128, BackboneArch::ResNet18,
                {0.25, 0.56, 0.75, 1.0}, 128);

    double mean_small_crop = 0.0, mean_full = 0.0;
    const int n_eval = 24;
    for (int i = 128; i < 128 + n_eval; ++i) {
        const Image full = ds.renderAt(i, 128);
        const Image tight = centerCropFraction(full, 0.25);
        mean_small_crop += scale.chooseResolution(tight);
        mean_full += scale.chooseResolution(full);
    }
    EXPECT_LE(mean_small_crop / n_eval, mean_full / n_eval + 1e-9);
}

TEST(Pipeline, BackboneGflopsAnchors)
{
    EXPECT_NEAR(backboneGflops(BackboneArch::ResNet18, 224), 1.8, 0.1);
    EXPECT_NEAR(backboneGflops(BackboneArch::ResNet50, 224), 4.1, 0.2);
    EXPECT_NEAR(scaleModelGflops(), 0.08, 0.02);
}

TEST(Pipeline, EvalStaticMatchesDirectCount)
{
    SyntheticDataset ds(tinySpec(), 100, 5);
    BackboneAccuracyModel m(BackboneArch::ResNet18, ds.spec(), 1);
    const PipelineResult r = evalStatic(ds, 0, 100, m, 224, 0.75);
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += m.correct(ds.record(i), 0.75, 224, 1.0);
    EXPECT_DOUBLE_EQ(r.accuracy, correct / 100.0);
    EXPECT_NEAR(r.mean_gflops,
                backboneGflops(BackboneArch::ResNet18, 224), 1e-12);
}

TEST(Pipeline, EvalDynamicProducesHistogram)
{
    SyntheticDataset ds(tinySpec(), 60, 13);
    BackboneAccuracyModel m(BackboneArch::ResNet18, ds.spec(), 1);
    ScaleModelOptions opts;
    opts.epochs = 8;
    ScaleModel scale({112, 224, 448}, opts);
    scale.train(ds, 0, 40, BackboneArch::ResNet18, {0.75}, 96);
    std::vector<int> hist;
    const PipelineResult r =
        evalDynamic(ds, 40, 60, m, scale, 0.75, 96, &hist);
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_EQ(hist[0] + hist[1] + hist[2], 20);
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
    // Cost must include the scale model overhead.
    EXPECT_GT(r.mean_gflops,
              backboneGflops(BackboneArch::ResNet18, 112));
}

TEST(Pipeline, DynamicPipelineProcessesStoredImage)
{
    SyntheticDataset ds(tinySpec(), 6, 3);
    ObjectStore store;
    ds.ingest(store, 0, 6);

    ScaleModelOptions opts;
    opts.epochs = 5;
    ScaleModel scale({112, 224}, opts);
    scale.train(ds, 0, 6, BackboneArch::ResNet18, {0.75}, 96);

    DynamicPipeline::Config cfg;
    cfg.resolutions = {112, 224};
    cfg.policy.resolutions = {112, 224};
    cfg.policy.thresholds = {0.97, 0.97};
    cfg.crop_area = 0.75;
    DynamicPipeline pipe(store, scale, cfg);

    const auto d = pipe.process(ds.record(0).id);
    EXPECT_TRUE(d.resolution == 112 || d.resolution == 224);
    EXPECT_GE(d.scans_read, cfg.preview_scans);
    EXPECT_GT(d.bytes_read, 0u);
    EXPECT_EQ(d.input.height(), d.resolution);
    EXPECT_EQ(d.input.width(), d.resolution);
    EXPECT_EQ(store.stats().bytes_read, d.bytes_read);
    EXPECT_LE(d.bytes_read,
              store.peek(ds.record(0).id).totalBytes());
}

TEST(Pipeline, SetCropAreaValidated)
{
    SyntheticDataset ds(tinySpec(), 2, 3);
    ObjectStore store;
    ds.ingest(store, 0, 2);
    ScaleModelOptions opts;
    ScaleModel scale({112, 224}, opts);
    DynamicPipeline::Config cfg;
    cfg.resolutions = {112, 224};
    cfg.policy.resolutions = {112, 224};
    cfg.policy.thresholds = {0.97, 0.97};
    DynamicPipeline pipe(store, scale, cfg);
    pipe.setCropArea(0.5);
    EXPECT_DEATH(pipe.setCropArea(0.0), "crop area");
}

TEST(Pipeline, PaperResolutionGrid)
{
    const auto &res = paperResolutions();
    ASSERT_EQ(res.size(), 7u);
    EXPECT_EQ(res.front(), 112);
    EXPECT_EQ(res.back(), 448);
}

} // namespace
} // namespace tamres
