/**
 * @file
 * Tests for batched execution plans and the ServingEngine: batch-N
 * planned execution must be bit-identical per item to N batch-1 runs
 * (across architectures, SIMD levels and thread counts); prepacked
 * weights must be shared across executors and batch sizes; the
 * engine's steady-state batch path must perform zero weight packing
 * and zero heap allocation (counting global allocator, as in
 * test_graph_plan); and the engine must shed at admission, expire
 * past deadlines, survive plan invalidation while serving, and shut
 * down cleanly with requests in flight — including when its workers
 * submit conv-parallel work to the shared thread pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "nn/builders.hh"
#include "nn/conv_kernels.hh"
#include "nn/graph.hh"
#include "nn/kernel_selector.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "tensor/tensor_ops.hh"
#include "tests/threads_env.hh"
#include "util/rng.hh"
#include "util/simd.hh"

// --- Counting global allocator (see test_graph_plan.cc) --------------

namespace {

std::atomic<uint64_t> g_alloc_count{0};

void *
countedAlloc(std::size_t n)
{
    ++g_alloc_count;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_alloc_count;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) /
                                         static_cast<std::size_t>(al) *
                                         static_cast<std::size_t>(al)))
        return p;
    throw std::bad_alloc();
}
void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace tamres {
namespace {

bool
bitIdentical(const float *a, const float *b, int64_t numel)
{
    return std::memcmp(a, b, sizeof(float) * numel) == 0;
}

Tensor
randomInput(int res, uint64_t seed, int batch = 1)
{
    Tensor in({batch, 3, res, res});
    Rng rng(seed);
    fillUniform(in, rng, 0.0f, 1.0f);
    return in;
}

/** Copy item @p i of a batched [n, ...] tensor into a [1, ...] one. */
Tensor
itemOf(const Tensor &batched, int i)
{
    Shape s = batched.shape();
    const int64_t per = batched.numel() / s[0];
    s[0] = 1;
    Tensor out(s);
    std::copy_n(batched.data() + i * per, per, out.data());
    return out;
}

// --- Batched plans: per-item bit-identity ----------------------------

TEST(BatchedPlan, BitIdenticalPerItemAcrossArchLevelsAndThreads)
{
    struct ArchCase
    {
        const char *name;
        int res;
        std::unique_ptr<Graph> graph;
    };
    std::vector<ArchCase> arches;
    arches.push_back({"resnet18", 48, buildResNet18(8, 5)});
    arches.push_back({"mobilenetv2", 64, buildMobileNetV2(8, 9)});

    for (auto &arch : arches) {
        Graph &g = *arch.graph;
        const int res = arch.res;
        const Tensor batched = randomInput(res, 21, 4);
        for (const SimdLevel level :
             {SimdLevel::Scalar, simdDetected()}) {
            SimdLevelGuard guard(level);
            // Per-item references at batch 1, serial.
            std::vector<Tensor> refs;
            {
                ThreadsEnv env(1);
                for (int i = 0; i < 4; ++i)
                    refs.push_back(g.run(itemOf(batched, i)));
            }
            for (const int threads : {1, 4}) {
                ThreadsEnv env(threads);
                const Tensor out = g.run(batched);
                ASSERT_EQ(out.dim(0), 4);
                const int64_t per = out.numel() / 4;
                for (int i = 0; i < 4; ++i) {
                    EXPECT_TRUE(bitIdentical(out.data() + i * per,
                                             refs[i].data(), per))
                        << arch.name << " item " << i << " at "
                        << simdLevelName(level) << ", " << threads
                        << " threads";
                }
            }
        }
    }
}

TEST(BatchedPlan, GroupedConvBatchMatchesReference)
{
    // The merged-column GEMM handles grouped convolutions per group;
    // check odd batch/spatial shapes directly against the reference
    // kernel, unpacked and prepacked.
    ConvProblem p;
    p.n = 3;
    p.ic = 8;
    p.ih = 11;
    p.iw = 13;
    p.oc = 12;
    p.kh = 3;
    p.kw = 3;
    p.stride = 2;
    p.pad = 1;
    p.groups = 2;

    ConvConfig cfg;
    cfg.algo = ConvAlgo::Im2col;
    cfg.mc = 8;
    cfg.kc = 7;
    cfg.nc = 16;
    cfg.mr = 2;
    cfg.nr = 4;
    ASSERT_TRUE(convConfigValid(p, cfg));

    Rng rng(33);
    const int64_t in_n = static_cast<int64_t>(p.n) * p.ic * p.ih * p.iw;
    const int64_t w_n =
        static_cast<int64_t>(p.oc) * (p.ic / p.groups) * p.kh * p.kw;
    const int64_t out_n =
        static_cast<int64_t>(p.n) * p.oc * p.oh() * p.ow();
    std::vector<float> in(in_n), w(w_n), bias(p.oc);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : bias)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));

    std::vector<float> ref(out_n), got(out_n), pre(out_n);
    convReference(p, in.data(), w.data(), bias.data(), ref.data());
    convForward(p, in.data(), w.data(), bias.data(), got.data(), cfg);
    for (int64_t i = 0; i < out_n; ++i)
        ASSERT_NEAR(ref[i], got[i], 1e-4f) << "at " << i;

    PackedConvWeights packed;
    packConvWeights(p, cfg, w.data(), packed);
    ASSERT_TRUE(packed.valid);
    convForwardPrepacked(p, in.data(), packed, bias.data(), pre.data());
    EXPECT_TRUE(bitIdentical(got.data(), pre.data(), out_n))
        << "prepacked batched conv diverged from on-the-fly path";
}

// --- Shared prepacked weights ----------------------------------------

TEST(SharedPacks, SecondExecutorAndBatchPlansReusePacks)
{
    auto g = buildResNet18(8, 5);
    const Tensor in1 = randomInput(48, 31);
    const Tensor in4 = randomInput(48, 32, 4);

    Graph::Executor ex1(*g);
    Tensor out;
    ex1.runInto(in1, out);
    const uint64_t after_first = convWeightPackCount();

    // A second executor compiling the same shape must share every
    // pack instead of rebuilding them.
    Graph::Executor ex2(*g);
    Tensor out2;
    ex2.runInto(in1, out2);
    EXPECT_EQ(convWeightPackCount(), after_first)
        << "second executor repacked shared weights";
    EXPECT_TRUE(
        bitIdentical(out.data(), out2.data(), out.numel()));

    // Batched plans reuse the batch-1 packs (packs are weight-side
    // only, so they are batch-invariant).
    Tensor out4;
    ex1.runInto(in4, out4);
    EXPECT_EQ(convWeightPackCount(), after_first)
        << "batch-4 plan repacked batch-invariant weights";
}

// --- Concurrent executors --------------------------------------------

TEST(ExecutorConcurrency, ParallelExecutorsMatchSerial)
{
    ThreadsEnv env(2); // conv kernels fork into the shared pool too
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    const Tensor in = randomInput(48, 41);
    const Tensor expect = g->run(in);

    constexpr int kThreads = 4;
    constexpr int kReps = 8;
    std::vector<int> mismatches(kThreads, 0);
    {
        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&, t] {
                Graph::Executor ex(*g);
                Tensor out;
                for (int r = 0; r < kReps; ++r) {
                    ex.runInto(in, out);
                    if (!bitIdentical(out.data(), expect.data(),
                                      expect.numel()))
                        ++mismatches[t];
                }
            });
        }
        for (auto &t : ts)
            t.join();
    }
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0) << "executor thread " << t;
}

// --- ServingEngine behaviour -----------------------------------------

EngineConfig
smallEngineConfig(int workers, int max_batch)
{
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.max_batch = max_batch;
    cfg.max_delay_us = 500;
    cfg.queue_capacity = 32;
    return cfg;
}

TEST(ServingEngine, ServesBitIdenticalToDirectExecution)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    const int res = 48;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expected;
    for (int i = 0; i < 6; ++i) {
        inputs.push_back(randomInput(res, 100 + i));
        expected.push_back(g->run(inputs.back()));
    }

    ServingEngine engine(*g, smallEngineConfig(2, 4));
    std::vector<InferenceRequest> reqs(6);
    for (int i = 0; i < 6; ++i) {
        reqs[i].input = inputs[i];
        ASSERT_TRUE(engine.submit(reqs[i]));
    }
    for (int i = 0; i < 6; ++i) {
        engine.wait(reqs[i]);
        ASSERT_EQ(reqs[i].stateNow(), RequestState::Done);
        EXPECT_TRUE(bitIdentical(reqs[i].output.data(),
                                 expected[i].data(),
                                 expected[i].numel()))
            << "request " << i << " served in batch " << reqs[i].batch;
        EXPECT_GE(reqs[i].batch, 1);
        EXPECT_GT(reqs[i].latency_s, 0.0);
    }
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.served, 6u);
    EXPECT_GE(st.batches, 2u); // 6 requests cannot fit one batch of 4
}

TEST(ServingEngine, QueueSaturationShedsAtAdmission)
{
    auto g = buildResNet18(8, 5);
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(1, 2);
    cfg.queue_capacity = 4;
    cfg.max_delay_us = 0;
    ServingEngine engine(*g, cfg);

    // Burst far past capacity from one thread: the engine can drain
    // at most a few while we submit, so some must be shed.
    constexpr int kBurst = 64;
    std::vector<InferenceRequest> reqs(kBurst);
    const Tensor in = randomInput(res, 55);
    int admitted = 0, shed = 0;
    for (auto &r : reqs) {
        r.input = in;
        if (engine.submit(r))
            ++admitted;
        else
            ++shed;
    }
    EXPECT_GT(shed, 0) << "burst of " << kBurst
                       << " into a 4-deep queue shed nothing";
    for (auto &r : reqs)
        engine.wait(r);
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.served, static_cast<uint64_t>(admitted));
    EXPECT_EQ(st.shed_admission, static_cast<uint64_t>(shed));
    for (auto &r : reqs) {
        const RequestState s = r.stateNow();
        EXPECT_TRUE(s == RequestState::Done || s == RequestState::Shed);
    }
}

TEST(ServingEngine, ExpiredRequestsAreDroppedNotServed)
{
    auto g = buildResNet18(8, 5);
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(1, 1);
    cfg.max_delay_us = 0;
    ServingEngine engine(*g, cfg);

    // Head-of-line request keeps the single worker busy; the one
    // behind it carries a deadline that expires while waiting.
    InferenceRequest head, doomed;
    head.input = randomInput(res, 60);
    doomed.input = randomInput(res, 61);
    doomed.deadline_s = 1e-4;
    ASSERT_TRUE(engine.submit(head));
    ASSERT_TRUE(engine.submit(doomed));
    engine.wait(head);
    engine.wait(doomed);
    EXPECT_EQ(head.stateNow(), RequestState::Done);
    EXPECT_EQ(doomed.stateNow(), RequestState::Expired);
    EXPECT_EQ(engine.stats().expired, 1u);
}

TEST(ServingEngine, ShedPolicyDropsResolutionUnderLoad)
{
    auto g = buildResNet18(8, 5);
    const int res = 64;
    const int shed_res = 32;

    EngineConfig cfg = smallEngineConfig(1, 2);
    cfg.max_delay_us = 0;
    cfg.resolution_policy = makeShedPolicy(0, shed_res, 2);
    cfg.warm_shapes = {{1, 3, res, res}, {2, 3, res, res},
                       {1, 3, shed_res, shed_res},
                       {2, 3, shed_res, shed_res}};
    ServingEngine engine(*g, cfg);

    constexpr int kBurst = 12;
    std::vector<InferenceRequest> reqs(kBurst);
    const Tensor in = randomInput(res, 70);
    for (auto &r : reqs) {
        r.input = in;
        ASSERT_TRUE(engine.submit(r));
    }
    int shed_served = 0, native_served = 0;
    for (auto &r : reqs) {
        engine.wait(r);
        ASSERT_EQ(r.stateNow(), RequestState::Done);
        if (r.resolution == shed_res)
            ++shed_served;
        else if (r.resolution == res)
            ++native_served;
    }
    // A 12-deep burst into an idle single worker must trip the
    // depth-2 shed rule for the tail of the queue.
    EXPECT_GT(shed_served, 0) << "queue depth never tripped the policy";
    // Classifier output shape is resolution-independent, so shed
    // requests still carry a full-sized result.
    for (auto &r : reqs)
        EXPECT_EQ(r.output.numel(), 8);
}

TEST(ServingEngine, CleanShutdownWithInFlightRequests)
{
    auto g = buildResNet18(8, 5);
    const int res = 48;
    ServingEngine engine(*g, smallEngineConfig(2, 4));

    std::vector<InferenceRequest> reqs(10);
    int admitted = 0;
    for (auto &r : reqs) {
        r.input = randomInput(res, 80);
        if (engine.submit(r))
            ++admitted;
    }
    engine.stop(); // must serve everything already admitted
    int done = 0;
    for (auto &r : reqs) {
        const RequestState s = r.stateNow();
        EXPECT_NE(s, RequestState::Queued)
            << "request left dangling by stop()";
        if (s == RequestState::Done)
            ++done;
    }
    EXPECT_EQ(done, admitted);
    // Submitting after stop is a shed, not a hang.
    InferenceRequest late;
    late.input = randomInput(res, 81);
    EXPECT_FALSE(engine.submit(late));
    EXPECT_EQ(late.stateNow(), RequestState::Shed);
}

TEST(ServingEngine, PlanInvalidationWhileServingStaysCorrect)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    const int res = 48;
    const Tensor in = randomInput(res, 90);
    const Tensor expect = g->run(in);

    ServingEngine engine(*g, smallEngineConfig(2, 2));
    for (int round = 0; round < 3; ++round) {
        std::vector<InferenceRequest> reqs(4);
        for (auto &r : reqs) {
            r.input = in;
            ASSERT_TRUE(engine.submit(r));
        }
        for (auto &r : reqs) {
            engine.wait(r);
            ASSERT_EQ(r.stateNow(), RequestState::Done);
            EXPECT_TRUE(bitIdentical(r.output.data(), expect.data(),
                                     expect.numel()))
                << "round " << round;
        }
        // Invalidation between batches is legal while serving: the
        // workers drop their plans and recompile (sharing fresh
        // packs) on the next batch.
        g->invalidatePlans();
    }
    // Structural mutation requires quiescence: drain, mutate, resume.
    engine.drain();
    ASSERT_GT(foldBatchNorms(*g) + 1, 0); // no-op pass; graph stable
    g->invalidatePlans();
    InferenceRequest r;
    r.input = in;
    ASSERT_TRUE(engine.submit(r));
    engine.wait(r);
    EXPECT_TRUE(
        bitIdentical(r.output.data(), expect.data(), expect.numel()));
}

TEST(ServingEngine, WorkersSubmittingParallelConvsDoNotDeadlock)
{
    // Engine workers calling conv kernels that fork into the shared
    // ThreadPool must fall back serially (pool busy / reentrant)
    // instead of deadlocking. TAMRES_THREADS=4 forces the kernels to
    // request parallelism; 4 workers contend for the one pool.
    ThreadsEnv env(4);
    auto g = buildResNet18(8, 5);
    const int res = 48;
    const Tensor in = randomInput(res, 95);
    const Tensor expect = g->run(in);

    ServingEngine engine(*g, smallEngineConfig(4, 2));
    std::vector<InferenceRequest> reqs(16);
    for (auto &r : reqs) {
        r.input = in;
        ASSERT_TRUE(engine.submit(r));
    }
    for (auto &r : reqs) {
        engine.wait(r);
        ASSERT_EQ(r.stateNow(), RequestState::Done);
        EXPECT_TRUE(bitIdentical(r.output.data(), expect.data(),
                                 expect.numel()));
    }
}

// --- Batch-size histogram and latency percentile counters ------------

TEST(ServingEngineStats, BatchHistogramAccountsEveryServedRequest)
{
    auto g = buildResNet18(8, 5);
    const int res = 48;
    EngineConfig cfg = smallEngineConfig(1, 4);
    ServingEngine engine(*g, cfg);

    constexpr int kReqs = 10;
    std::vector<InferenceRequest> reqs(kReqs);
    for (auto &r : reqs) {
        r.input = randomInput(res, 71);
        ASSERT_TRUE(engine.submit(r));
    }
    for (auto &r : reqs)
        engine.wait(r);

    const EngineStats st = engine.stats();
    ASSERT_EQ(st.batch_hist.size(),
              static_cast<size_t>(cfg.max_batch) + 1);
    EXPECT_EQ(st.batch_hist[0], 0u)
        << "no batch of size zero can be formed";
    uint64_t batches = 0, served = 0;
    for (size_t b = 1; b < st.batch_hist.size(); ++b) {
        batches += st.batch_hist[b];
        served += st.batch_hist[b] * b;
    }
    // The histogram is a complete decomposition of the counters: the
    // mass sums to the batch count, the weighted mass to the served
    // count, and the mean follows.
    EXPECT_EQ(batches, st.batches);
    EXPECT_EQ(served, st.served);
    EXPECT_EQ(served, static_cast<uint64_t>(kReqs));
    EXPECT_DOUBLE_EQ(st.mean_batch,
                     static_cast<double>(served) / batches);
}

TEST(ServingEngineStats, MaxBatchOnePinsHistogramToSizeOne)
{
    auto g = buildResNet18(8, 5);
    EngineConfig cfg = smallEngineConfig(1, 1);
    cfg.max_delay_us = 0;
    ServingEngine engine(*g, cfg);

    std::vector<InferenceRequest> reqs(5);
    for (auto &r : reqs) {
        r.input = randomInput(48, 72);
        ASSERT_TRUE(engine.submit(r));
    }
    for (auto &r : reqs)
        engine.wait(r);
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.batch_hist[1], 5u);
    EXPECT_EQ(st.batches, 5u);
    EXPECT_DOUBLE_EQ(st.mean_batch, 1.0);
}

TEST(ServingEngineStats, LatencyPercentilesBoundTheSample)
{
    auto g = buildResNet18(8, 5);
    ServingEngine engine(*g, smallEngineConfig(2, 2));

    constexpr int kReqs = 12;
    std::vector<InferenceRequest> reqs(kReqs);
    double max_latency = 0.0;
    for (auto &r : reqs) {
        r.input = randomInput(48, 73);
        ASSERT_TRUE(engine.submit(r));
    }
    for (auto &r : reqs) {
        engine.wait(r);
        max_latency = std::max(max_latency, r.latency_s);
    }
    // Distributional, not wall-clock: percentiles are positive,
    // ordered, and bounded by the slowest request the clients saw.
    const EngineStats st = engine.stats();
    EXPECT_GT(st.p50_latency_s, 0.0);
    EXPECT_LE(st.p50_latency_s, st.p99_latency_s);
    EXPECT_LE(st.p99_latency_s, max_latency + 1e-9);
}

// --- Zero-allocation, zero-packing steady state ----------------------

TEST(ServingEngineSteadyState, BatchPathIsAllocAndPackFree)
{
    ThreadsEnv env(1);
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(1, 4);
    cfg.max_delay_us = 100000; // let all four requests join one batch
    cfg.warm_shapes = {{1, 3, res, res}, {2, 3, res, res},
                       {3, 3, res, res}, {4, 3, res, res}};
    ServingEngine engine(*g, cfg);

    std::vector<InferenceRequest> reqs(4);
    for (auto &r : reqs)
        r.input = randomInput(res, 96);

    auto serveRound = [&] {
        for (auto &r : reqs)
            ASSERT_TRUE(engine.submit(r));
        for (auto &r : reqs) {
            engine.wait(r);
            ASSERT_EQ(r.stateNow(), RequestState::Done);
        }
    };

    // Warm every batch size the formation race can produce (1..4) and
    // the request objects' output tensors.
    for (int i = 0; i < 3; ++i)
        serveRound();

    const uint64_t packs = convWeightPackCount();
    const uint64_t allocs = g_alloc_count.load();
    for (int i = 0; i < 3; ++i)
        serveRound();
    EXPECT_EQ(convWeightPackCount(), packs)
        << "steady-state engine batches packed weights";
    EXPECT_EQ(g_alloc_count.load(), allocs)
        << (g_alloc_count.load() - allocs)
        << " heap allocations in 3 steady-state engine rounds";
}

// --- Int8 precision tier ---------------------------------------------

/** The fp32 graph's calibrated int8 twin (same seed). */
std::unique_ptr<Graph>
quantTwin(uint64_t seed = 5)
{
    auto q = buildResNet18(8, seed);
    quantizeGraph(*q); // optimizeForInference + quantizeConvs
    return q;
}

TEST(QuantizedPlan, BatchBitIdenticalPerItemAcrossLevelsAndThreads)
{
    // Dynamic per-IMAGE activation scales: batch-N through the
    // planned quantized graph must be bitwise equal to N separate
    // batch-1 runs, at every dispatch level and thread count.
    auto q = quantTwin();
    const int res = 48;
    const Tensor batched = randomInput(res, 21, 4);
    for (const SimdLevel level : {SimdLevel::Scalar, simdDetected()}) {
        SimdLevelGuard guard(level);
        std::vector<Tensor> refs;
        {
            ThreadsEnv env(1);
            for (int i = 0; i < 4; ++i)
                refs.push_back(q->run(itemOf(batched, i)));
        }
        for (const int threads : {1, 4}) {
            ThreadsEnv env(threads);
            const Tensor out = q->run(batched);
            ASSERT_EQ(out.dim(0), 4);
            const int64_t per = out.numel() / 4;
            for (int i = 0; i < 4; ++i) {
                EXPECT_TRUE(bitIdentical(out.data() + i * per,
                                         refs[i].data(), per))
                    << "int8 item " << i << " at "
                    << simdLevelName(level) << ", " << threads
                    << " threads";
            }
        }
    }
}

TEST(TieredShedPolicy, ShedsPrecisionBeforeResolution)
{
    const EngineTierPolicy policy =
        makeTieredShedPolicy(224, /*int8_depth=*/4, /*shed_depth=*/8,
                             /*shed_resolution=*/112);
    const ServeTier calm = policy(2);
    EXPECT_FALSE(calm.int8);
    EXPECT_EQ(calm.resolution, 224);
    const ServeTier busy = policy(6); // precision sheds first
    EXPECT_TRUE(busy.int8);
    EXPECT_EQ(busy.resolution, 224);
    const ServeTier slammed = policy(12); // then resolution
    EXPECT_TRUE(slammed.int8);
    EXPECT_EQ(slammed.resolution, 112);
}

TEST(ServingEngineInt8, WantInt8ServesOnQuantizedGraphBitIdentical)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    auto q = quantTwin();
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(2, 4);
    cfg.quant_graph = q.get();
    ServingEngine engine(*g, cfg);

    // Mixed traffic: int8 and fp32 requests interleaved. Each must be
    // served on its own graph — bitwise equal to that graph's direct
    // execution — and stamped accordingly.
    Tensor fp32_expect, int8_expect;
    std::vector<InferenceRequest> reqs(8);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].input = randomInput(res, 96);
        reqs[i].want_int8 = (i % 2) == 1;
    }
    {
        ThreadsEnv env(1);
        fp32_expect = g->run(reqs[0].input);
        int8_expect = q->run(reqs[1].input);
    }
    for (auto &r : reqs)
        ASSERT_TRUE(engine.submit(r));
    for (auto &r : reqs) {
        engine.wait(r);
        ASSERT_EQ(r.stateNow(), RequestState::Done);
        EXPECT_EQ(r.served_int8, r.want_int8);
        const Tensor &expect = r.want_int8 ? int8_expect : fp32_expect;
        EXPECT_TRUE(bitIdentical(r.output.data(), expect.data(),
                                 expect.numel()))
            << (r.want_int8 ? "int8" : "fp32") << " request diverged "
            << "from direct execution";
    }
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.served, reqs.size());
    EXPECT_EQ(st.served_int8, reqs.size() / 2);
    EXPECT_GE(st.batches_int8, 1u);
}

TEST(ServingEngineInt8, TierPolicyShedsToInt8UnderDepth)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    auto q = quantTwin();
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(1, 4);
    cfg.quant_graph = q.get();
    // int8_depth = 0: any queue at all sheds precision. Requests do
    // NOT ask for int8 — the overload policy imposes it.
    cfg.tier_policy = makeTieredShedPolicy(0, 0, 1000, 0);
    ServingEngine engine(*g, cfg);

    Tensor expect;
    std::vector<InferenceRequest> reqs(6);
    for (auto &r : reqs)
        r.input = randomInput(res, 96);
    {
        ThreadsEnv env(1);
        expect = q->run(reqs[0].input);
    }
    for (auto &r : reqs)
        ASSERT_TRUE(engine.submit(r));
    for (auto &r : reqs) {
        engine.wait(r);
        ASSERT_EQ(r.stateNow(), RequestState::Done);
        EXPECT_TRUE(r.served_int8)
            << "tier policy with int8_depth=0 must shed precision";
        EXPECT_TRUE(bitIdentical(r.output.data(), expect.data(),
                                 expect.numel()));
    }
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.served_int8, reqs.size());
}

TEST(ServingEngineInt8, WithoutQuantGraphInt8DegradesToFp32)
{
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    const int res = 48;

    ServingEngine engine(*g, smallEngineConfig(1, 2));
    InferenceRequest r;
    r.input = randomInput(res, 96);
    r.want_int8 = true;
    Tensor expect;
    {
        ThreadsEnv env(1);
        expect = g->run(r.input);
    }
    ASSERT_TRUE(engine.submit(r));
    engine.wait(r);
    ASSERT_EQ(r.stateNow(), RequestState::Done);
    EXPECT_FALSE(r.served_int8);
    EXPECT_TRUE(
        bitIdentical(r.output.data(), expect.data(), expect.numel()));
    EXPECT_EQ(engine.stats().served_int8, 0u);
}

TEST(ServingEngineSteadyState, QuantizedBatchPathIsAllocAndPackFree)
{
    ThreadsEnv env(1);
    auto g = buildResNet18(8, 5);
    optimizeForInference(*g);
    auto q = quantTwin();
    const int res = 48;

    EngineConfig cfg = smallEngineConfig(1, 4);
    cfg.quant_graph = q.get();
    cfg.max_delay_us = 100000; // let all four requests join one batch
    cfg.warm_shapes = {{1, 3, res, res}, {2, 3, res, res},
                       {3, 3, res, res}, {4, 3, res, res}};
    ServingEngine engine(*g, cfg);

    std::vector<InferenceRequest> reqs(4);
    for (auto &r : reqs) {
        r.input = randomInput(res, 96);
        r.want_int8 = true;
    }

    auto serveRound = [&] {
        for (auto &r : reqs)
            ASSERT_TRUE(engine.submit(r));
        for (auto &r : reqs) {
            engine.wait(r);
            ASSERT_EQ(r.stateNow(), RequestState::Done);
            ASSERT_TRUE(r.served_int8);
        }
    };

    // Warm every batch size the formation race can produce (1..4) and
    // the request objects' output tensors.
    for (int i = 0; i < 3; ++i)
        serveRound();

    const uint64_t packs = convWeightPackCount();
    const uint64_t allocs = g_alloc_count.load();
    for (int i = 0; i < 3; ++i)
        serveRound();
    EXPECT_EQ(convWeightPackCount(), packs)
        << "steady-state quantized engine batches packed weights";
    EXPECT_EQ(g_alloc_count.load(), allocs)
        << (g_alloc_count.load() - allocs)
        << " heap allocations in 3 steady-state quantized rounds";
}

} // namespace
} // namespace tamres
