/**
 * @file
 * Property and failure-injection tests for the progressive codec:
 * randomized encode/decode roundtrips across qualities, scan scripts,
 * sizes and entropy coders; scan-script validation; and corruption /
 * truncation behaviour (a decoder handed garbage must fail loudly,
 * never read out of bounds or return silently wrong sizes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "codec/progressive.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "tests/threads_env.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
randomImage(int h, int w, uint64_t seed)
{
    Image img(h, w, 3);
    Rng rng(seed);
    // Smooth-ish random content: random low-frequency base plus noise,
    // more codec-realistic than white noise.
    const float base = static_cast<float>(rng.uniform());
    for (size_t i = 0; i < img.numel(); ++i)
        img.data()[i] = std::clamp(
            base + static_cast<float>(rng.uniform(-0.35, 0.35)), 0.0f,
            1.0f);
    return img;
}

using FuzzParam = std::tuple<int, int, int, EntropyCoder>;

class CodecFuzz : public ::testing::TestWithParam<FuzzParam>
{};

TEST_P(CodecFuzz, FullRoundTripIsHighQualityAndPrefixesMonotone)
{
    const auto [h, w, quality, coder] = GetParam();
    const Image src = randomImage(h, w, h * 131 + w);
    ProgressiveConfig cfg;
    cfg.quality = quality;
    cfg.entropy = coder;
    const EncodedImage enc = encodeProgressive(src, cfg);

    ASSERT_EQ(enc.height, h);
    ASSERT_EQ(enc.width, w);
    ASSERT_EQ(enc.scan_offsets.size(),
              static_cast<size_t>(enc.numScans()) + 1);
    // Offsets are strictly increasing (every scan encodes at least
    // the EOB markers).
    for (int s = 0; s < enc.numScans(); ++s)
        EXPECT_LT(enc.scan_offsets[s], enc.scan_offsets[s + 1]);

    const Image full = decodeProgressive(enc);
    ASSERT_EQ(full.height(), h);
    ASSERT_EQ(full.width(), w);
    // Reconstruction quality scales with the quality setting.
    EXPECT_GT(psnr(src, full), quality >= 85 ? 30.0 : 22.0);

    double prev = -1.0;
    for (int k = 0; k <= enc.numScans(); ++k) {
        const double q = ssim(decodeProgressive(enc, k), full);
        EXPECT_GE(q, prev - 1e-9) << "scan " << k;
        prev = q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesQualitiesCoders, CodecFuzz,
    ::testing::Combine(
        // Heights/widths straddling the 8px block grid.
        ::testing::Values(8, 17, 64),
        ::testing::Values(9, 24, 57),
        ::testing::Values(50, 85, 95),
        ::testing::Values(EntropyCoder::RunLength,
                          EntropyCoder::Huffman)),
    [](const ::testing::TestParamInfo<FuzzParam> &info) {
        return std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param)) + "_q" +
               std::to_string(std::get<2>(info.param)) + "_" +
               entropyCoderName(std::get<3>(info.param));
    });

TEST(CodecScanScripts, CustomScriptsRoundTrip)
{
    const Image src = randomImage(40, 40, 5);
    // From single-scan (baseline-like) to per-coefficient-band heavy
    // scripts.
    const std::vector<std::vector<ScanBand>> scripts = {
        {{0, 63}},
        {{0, 0}, {1, 63}},
        {{0, 0}, {1, 1}, {2, 2}, {3, 9}, {10, 35}, {36, 63}},
    };
    for (const auto &scans : scripts) {
        ProgressiveConfig cfg;
        cfg.scans = scans;
        const EncodedImage enc = encodeProgressive(src, cfg);
        EXPECT_EQ(enc.numScans(), static_cast<int>(scans.size()));
        const Image full = decodeProgressive(enc);
        EXPECT_GT(psnr(src, full), 30.0);
    }
}

TEST(CodecScanScriptsDeath, RejectsGappedOverlappingOrShortScripts)
{
    const Image src = randomImage(16, 16, 6);
    ProgressiveConfig cfg;
    cfg.scans = {{0, 0}, {2, 63}}; // gap at 1
    EXPECT_DEATH(encodeProgressive(src, cfg), "never sent");
    cfg.scans = {{0, 5}, {4, 63}}; // overlap
    EXPECT_DEATH(encodeProgressive(src, cfg), "two first passes");
    cfg.scans = {{0, 40}}; // short
    EXPECT_DEATH(encodeProgressive(src, cfg), "never sent");
    cfg.scans = {}; // empty
    EXPECT_DEATH(encodeProgressive(src, cfg), "non-empty");
}

TEST(CodecQualityDeath, RejectsOutOfRangeQuality)
{
    const Image src = randomImage(16, 16, 7);
    ProgressiveConfig cfg;
    cfg.quality = 0;
    EXPECT_DEATH(encodeProgressive(src, cfg), "quality");
    cfg.quality = 101;
    EXPECT_DEATH(encodeProgressive(src, cfg), "quality");
}

TEST(CodecCorruption, TruncatedStreamThrowsTruncated)
{
    const Image src = randomImage(32, 32, 8);
    for (const EntropyCoder coder :
         {EntropyCoder::RunLength, EntropyCoder::Huffman}) {
        ProgressiveConfig cfg;
        cfg.entropy = coder;
        EncodedImage enc = encodeProgressive(src, cfg);
        // Chop the final scan's payload but keep offsets claiming it
        // is complete: the decoder must hit its truncation guard, not
        // read out of the buffer.
        EncodedImage truncated = enc;
        truncated.bytes.resize(enc.bytes.size() / 2);
        try {
            decodeProgressive(truncated, truncated.numScans());
            FAIL() << entropyCoderName(coder);
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Truncated)
                << entropyCoderName(coder);
        }
    }
}

TEST(CodecCorruption, FlipsBeyondReadPrefixAreHarmless)
{
    // Bit flips strictly after the read prefix must not affect the
    // prefix decode at all — scan independence is what makes partial
    // reads safe against tail corruption (e.g. a ranged GET that
    // never fetches the damaged bytes).
    const Image src = randomImage(24, 24, 9);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image clean = decodeProgressive(enc, 1);
    Rng rng(10);
    for (int trial = 0; trial < 24; ++trial) {
        EncodedImage mutated = enc;
        const size_t span =
            mutated.bytes.size() - mutated.scan_offsets[1];
        const size_t byte =
            mutated.scan_offsets[1] +
            rng.uniformInt(static_cast<uint64_t>(span));
        mutated.bytes[byte] ^=
            static_cast<uint8_t>(1u << rng.uniformInt(8));
        const Image out = decodeProgressive(mutated, 1);
        ASSERT_EQ(out.numel(), clean.numel());
        for (size_t i = 0; i < clean.numel(); ++i)
            ASSERT_EQ(out.data()[i], clean.data()[i]);
    }
}

TEST(CodecCorruption, PrefixDecodeUnaffectedByLaterScanCorruption)
{
    // Reading k scans must not touch bytes beyond scan k: corrupt
    // everything after scan 2 and verify the 2-scan decode is
    // bit-identical.
    const Image src = randomImage(48, 40, 11);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image clean = decodeProgressive(enc, 2);

    EncodedImage vandalized = enc;
    for (size_t i = enc.scan_offsets[2]; i < enc.bytes.size(); ++i)
        vandalized.bytes[i] = 0xAA;
    const Image after = decodeProgressive(vandalized, 2);
    ASSERT_EQ(clean.numel(), after.numel());
    for (size_t i = 0; i < clean.numel(); ++i)
        ASSERT_EQ(clean.data()[i], after.data()[i]);
}

TEST(CodecCorruption, SaStreamTruncationThrowsTruncated)
{
    // The successive-approximation decoder must hit the same
    // truncation guard as the spectral path, not wander off the
    // buffer mid-refinement.
    const Image src = randomImage(32, 32, 14);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.entropy = EntropyCoder::Huffman;
    EncodedImage enc = encodeProgressive(src, cfg);
    enc.bytes.resize(enc.bytes.size() / 2);
    try {
        decodeProgressive(enc, enc.numScans());
        FAIL() << "expected Error{Truncated}";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Truncated);
    }
}

TEST(CodecCorruption, SaPrefixImmuneToRefinementCorruption)
{
    // Vandalizing the refinement scans must not perturb a decode
    // that stops before them.
    const Image src = randomImage(40, 32, 15);
    ProgressiveConfig cfg;
    cfg.scans = ProgressiveConfig::successiveScans();
    cfg.color = ColorMode::YCbCr420;
    const EncodedImage enc = encodeProgressive(src, cfg);
    const Image clean = decodeProgressive(enc, 3);

    EncodedImage vandalized = enc;
    for (size_t i = enc.scan_offsets[3]; i < enc.bytes.size(); ++i)
        vandalized.bytes[i] ^= 0x5C;
    const Image after = decodeProgressive(vandalized, 3);
    ASSERT_EQ(clean.numel(), after.numel());
    for (size_t i = 0; i < clean.numel(); ++i)
        ASSERT_EQ(clean.data()[i], after.data()[i]);
}

TEST(CodecScanScripts, RandomValidSaScriptsRoundTrip)
{
    // Generate random (band partition x per-band al ladder) scripts,
    // validate them, and require exact agreement with the default
    // script's full decode.
    Rng rng(77);
    const Image src = randomImage(24, 24, 16);
    const Image want = decodeProgressive(encodeProgressive(src));
    for (int trial = 0; trial < 12; ++trial) {
        // Random partition of [0, 63] into 2-5 bands.
        std::vector<int> cuts{0};
        const int nbands =
            2 + static_cast<int>(rng.uniformInt(uint64_t{4}));
        while (static_cast<int>(cuts.size()) < nbands) {
            const int c =
                1 + static_cast<int>(rng.uniformInt(uint64_t{63}));
            if (std::find(cuts.begin(), cuts.end(), c) == cuts.end())
                cuts.push_back(c);
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.push_back(64);
        // First passes at a random al per band, then refinements
        // down to 0.
        std::vector<ScanBand> scans;
        std::vector<std::pair<int, int>> pending; // (band idx, al)
        for (size_t b = 0; b + 1 < cuts.size(); ++b) {
            const int al =
                static_cast<int>(rng.uniformInt(uint64_t{3}));
            scans.push_back(
                {cuts[b], cuts[b + 1] - 1, al, false});
            if (al > 0)
                pending.emplace_back(static_cast<int>(b), al);
        }
        while (!pending.empty()) {
            const size_t pick = static_cast<size_t>(
                rng.uniformInt(static_cast<uint64_t>(pending.size())));
            auto &[b, al] = pending[pick];
            --al;
            scans.push_back({cuts[b], cuts[b + 1] - 1, al, true});
            if (al == 0)
                pending.erase(pending.begin() +
                              static_cast<long>(pick));
        }
        std::string why;
        ASSERT_TRUE(scanScriptValid(scans, &why)) << why;

        ProgressiveConfig cfg;
        cfg.scans = scans;
        const Image got =
            decodeProgressive(encodeProgressive(src, cfg));
        for (size_t i = 0; i < got.numel(); ++i)
            ASSERT_FLOAT_EQ(got.data()[i], want.data()[i])
                << "trial " << trial;
    }
}

TEST(CodecEmptyImageDeath, Rejected)
{
    Image empty;
    EXPECT_DEATH(encodeProgressive(empty), "empty");
}

// --- Restart-marker boundary fuzzing ---------------------------------

TEST(CodecRestartFuzz, RandomIntervalsRoundTripBitExact)
{
    // Sweep restart intervals across the degenerate boundaries — one
    // block per range, prime strides that straddle plane edges, and
    // intervals larger than any plane (one range per plane) — at odd
    // image sizes, both entropy coders, and several thread counts.
    // Every combination must produce the legacy payload bytes and a
    // decode identical to the serial (stripped side table) path.
    Rng rng(99);
    const int intervals[] = {1, 3, 7, 17, 64, 100000};
    for (int trial = 0; trial < 6; ++trial) {
        const int h = 9 + static_cast<int>(rng.uniformInt(uint64_t{56}));
        const int w = 9 + static_cast<int>(rng.uniformInt(uint64_t{56}));
        const Image src = randomImage(h, w, 1000 + trial);
        const EntropyCoder coder = trial % 2 == 0
                                       ? EntropyCoder::Huffman
                                       : EntropyCoder::RunLength;
        ProgressiveConfig legacy;
        legacy.entropy = coder;
        legacy.restart_interval = 0;
        const EncodedImage base = encodeProgressive(src, legacy);
        const Image want = decodeProgressive(base);

        ProgressiveConfig cfg = legacy;
        cfg.restart_interval = intervals[trial % 6];
        const EncodedImage enc = encodeProgressive(src, cfg);
        ASSERT_EQ(enc.bytes, base.bytes) << "trial " << trial;

        for (const int threads : {1, 2, 8}) {
            ThreadsEnv env(threads);
            const Image got = decodeProgressive(enc);
            ASSERT_EQ(got.numel(), want.numel());
            for (size_t i = 0; i < got.numel(); ++i)
                ASSERT_EQ(got.data()[i], want.data()[i])
                    << "trial " << trial << ", interval "
                    << cfg.restart_interval << ", " << threads
                    << " threads";
        }
    }
}

TEST(CodecRestartFuzz, PrefixDecodeIgnoresVandalizedLaterRanges)
{
    // Flipping bytes strictly after the read prefix must stay harmless
    // when the decoder fans ranges out in parallel.
    const Image src = randomImage(40, 33, 17);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    cfg.restart_interval = 4;
    const EncodedImage enc = encodeProgressive(src, cfg);
    ThreadsEnv env(8);
    const Image clean = decodeProgressive(enc, 2);
    EncodedImage vandalized = enc;
    for (size_t i = enc.scan_offsets[2]; i < enc.bytes.size(); ++i)
        vandalized.bytes[i] ^= 0x77;
    const Image after = decodeProgressive(vandalized, 2);
    ASSERT_EQ(clean.numel(), after.numel());
    for (size_t i = 0; i < clean.numel(); ++i)
        ASSERT_EQ(clean.data()[i], after.data()[i]);
}

TEST(CodecResumeFuzz, RandomSuspendSchedulesMatchOneShotEverywhere)
{
    // Resumable-decode property fuzz: random images, random entropy
    // coder, restart-interval and legacy (v1) streams, spectral and
    // successive-approximation scripts, random suspend schedules and
    // several thread counts — after every suspend point the decoder's
    // pixels must be bit-identical to a one-shot decode of the same
    // prefix.
    Rng rng(2024);
    for (int trial = 0; trial < 8; ++trial) {
        const int h = 9 + static_cast<int>(rng.uniformInt(uint64_t{40}));
        const int w = 9 + static_cast<int>(rng.uniformInt(uint64_t{40}));
        const Image src = randomImage(h, w, 5000 + trial);
        ProgressiveConfig cfg;
        cfg.entropy = trial % 2 == 0 ? EntropyCoder::Huffman
                                     : EntropyCoder::RunLength;
        cfg.restart_interval =
            trial % 3 == 0 ? 0 : 1 + static_cast<int>(rng.uniformInt(
                                         uint64_t{32}));
        if (trial % 4 == 3)
            cfg.scans = ProgressiveConfig::successiveScans();
        const EncodedImage enc = encodeProgressive(src, cfg);

        // One-shot references per prefix, serial.
        std::vector<Image> want;
        {
            ThreadsEnv env(1);
            for (int k = 0; k <= enc.numScans(); ++k)
                want.push_back(decodeProgressive(enc, k));
        }

        for (const int threads : {1, 2, 8}) {
            ThreadsEnv env(threads);
            ProgressiveDecoder dec(enc);
            int at = 0;
            while (at < enc.numScans()) {
                at = std::min<int>(
                    enc.numScans(),
                    at + 1 +
                        static_cast<int>(rng.uniformInt(uint64_t{2})));
                dec.advanceTo(at);
                const Image got = dec.image();
                ASSERT_EQ(got.numel(), want[at].numel());
                ASSERT_EQ(std::memcmp(got.data(), want[at].data(),
                                      sizeof(float) * got.numel()),
                          0)
                    << "trial " << trial << ", prefix " << at << ", "
                    << threads << " threads, interval "
                    << cfg.restart_interval;
            }
        }
    }
}

TEST(CodecRestartFuzzError, MalformedSideTablesThrowCorrupt)
{
    const Image src = randomImage(32, 32, 18);
    ProgressiveConfig cfg;
    cfg.restart_interval = 4;
    const EncodedImage enc = encodeProgressive(src, cfg);
    ASSERT_TRUE(enc.hasRestartMarkers());

    const auto expectCorrupt = [](const EncodedImage &img,
                                  const char *what) {
        try {
            decodeProgressive(img);
            FAIL() << what;
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Corrupt) << what;
        }
    };

    // Offset count disagreeing with the partition.
    EncodedImage bad_count = enc;
    bad_count.restart_bits[0].pop_back();
    expectCorrupt(bad_count, "offset count");

    // Missing a whole scan of offsets.
    EncodedImage bad_scans = enc;
    bad_scans.restart_bits.pop_back();
    expectCorrupt(bad_scans, "missing scan of offsets");

    // Interval mutated after encode: the partition no longer matches
    // the recorded offsets.
    EncodedImage bad_interval = enc;
    bad_interval.restart_interval = 3;
    expectCorrupt(bad_interval, "mutated interval");
}

// --- Fault-injection corpora (checksummed and checksum-free) ---------

TEST(CodecCorruption, BitFlipCorpusCaughtByChecksumBeforeDecode)
{
    // Any single-bit flip in a scan payload must be rejected by the
    // per-scan checksum BEFORE that scan decodes, leaving the decoder
    // resumable: re-binding clean bytes afterward yields the full
    // decode bit-exactly.
    const Image src = randomImage(40, 33, 21);
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(src, cfg);
    ASSERT_EQ(enc.scan_crcs.size(),
              static_cast<size_t>(enc.numScans()));
    const Image want = decodeProgressive(enc);

    Rng rng(22);
    for (int trial = 0; trial < 24; ++trial) {
        EncodedImage mutated = enc;
        const size_t byte =
            rng.uniformInt(static_cast<uint64_t>(enc.bytes.size()));
        mutated.bytes[byte] ^=
            static_cast<uint8_t>(1u << rng.uniformInt(8));
        // Which scan did we damage?
        int damaged = 0;
        while (enc.scan_offsets[damaged + 1] <= byte)
            ++damaged;

        ProgressiveDecoder dec(mutated);
        try {
            dec.advanceTo(mutated.numScans());
            FAIL() << "trial " << trial;
        } catch (const Error &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Corrupt) << "trial " << trial;
        }
        // State is clean at the boundary before the damaged scan.
        EXPECT_EQ(dec.scansDecoded(), damaged) << "trial " << trial;
        // Repair the byte and resume: bit-identical full decode.
        mutated.bytes[byte] = enc.bytes[byte];
        dec.advanceTo(mutated.numScans());
        const Image got = dec.image();
        ASSERT_EQ(got.numel(), want.numel());
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              sizeof(float) * got.numel()),
                  0)
            << "trial " << trial;
    }
}

TEST(CodecCorruption, ChecksumFreeBitFlipsNeverCrash)
{
    // v1 streams carry no checksums: a damaged scan may decode to
    // wrong pixels or throw a typed Error — but must never crash,
    // read out of bounds (ASan/UBSan enforce this in the sanitizer
    // leg), or leave the decoder unusable for a clean retry.
    const Image src = randomImage(32, 40, 23);
    for (const EntropyCoder coder :
         {EntropyCoder::RunLength, EntropyCoder::Huffman}) {
        ProgressiveConfig cfg;
        cfg.entropy = coder;
        EncodedImage enc = encodeProgressive(src, cfg);
        enc.scan_crcs.clear(); // pre-checksum stream
        Rng rng(24);
        for (int trial = 0; trial < 48; ++trial) {
            EncodedImage mutated = enc;
            const size_t byte = rng.uniformInt(
                static_cast<uint64_t>(enc.bytes.size()));
            mutated.bytes[byte] ^=
                static_cast<uint8_t>(1u << rng.uniformInt(8));
            try {
                const Image out = decodeProgressive(mutated);
                EXPECT_EQ(out.height(), src.height());
                EXPECT_EQ(out.width(), src.width());
            } catch (const Error &) {
                // Typed rejection is an acceptable outcome.
            }
        }
    }
}

TEST(CodecCorruption, TruncationCorpusPrefixSafeTailTyped)
{
    // Every truncation point: the covered prefix decodes bit-exactly,
    // and advancing past the physical end throws Error{Truncated}.
    const Image src = randomImage(24, 24, 25);
    const EncodedImage enc = encodeProgressive(src);
    Rng rng(26);
    for (int trial = 0; trial < 16; ++trial) {
        EncodedImage cut = enc;
        cut.bytes.resize(
            rng.uniformInt(static_cast<uint64_t>(enc.bytes.size())));
        ProgressiveDecoder dec(cut);
        const int covered = dec.scansCoveredBy(cut.bytes.size());
        EXPECT_EQ(dec.advanceWithBytes(cut.bytes.size()), covered);
        if (covered < cut.numScans()) {
            try {
                dec.advanceTo(covered + 1);
                FAIL() << "trial " << trial;
            } catch (const Error &e) {
                EXPECT_EQ(e.kind(), ErrorKind::Truncated)
                    << "trial " << trial;
            }
        }
        const Image got = dec.image();
        const Image want = decodeProgressive(enc, covered);
        ASSERT_EQ(got.numel(), want.numel());
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              sizeof(float) * got.numel()),
                  0)
            << "trial " << trial << " covered " << covered;
    }
}

} // namespace
} // namespace tamres
