/**
 * @file
 * Unit tests for the image module: resize, crop, metrics, synthetic
 * generation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "image/image.hh"
#include "image/metrics.hh"
#include "image/synthetic.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
noiseImage(int h, int w, uint64_t seed)
{
    Image img(h, w, 3);
    Rng rng(seed);
    for (int c = 0; c < 3; ++c)
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                img.at(c, y, x) = static_cast<float>(rng.uniform());
    return img;
}

TEST(Image, Basics)
{
    Image img(4, 6, 3);
    EXPECT_EQ(img.height(), 4);
    EXPECT_EQ(img.width(), 6);
    EXPECT_EQ(img.numel(), 4u * 6 * 3);
    img.at(2, 3, 5) = 0.5f;
    EXPECT_EQ(img.plane(2)[3 * 6 + 5], 0.5f);
}

TEST(Image, Clamp01)
{
    Image img(1, 2, 1);
    img.at(0, 0, 0) = -0.5f;
    img.at(0, 0, 1) = 1.5f;
    img.clamp01();
    EXPECT_EQ(img.at(0, 0, 0), 0.0f);
    EXPECT_EQ(img.at(0, 0, 1), 1.0f);
}

TEST(Resize, IdentityPreserves)
{
    const Image src = noiseImage(16, 16, 1);
    const Image out = resize(src, 16, 16);
    for (size_t i = 0; i < src.numel(); ++i)
        EXPECT_FLOAT_EQ(src.data()[i], out.data()[i]);
}

TEST(Resize, ConstantImageStaysConstant)
{
    Image src(10, 14, 3);
    for (size_t i = 0; i < src.numel(); ++i)
        src.data()[i] = 0.42f;
    for (const Image &out :
         {resizeBilinear(src, 7, 5), resizeArea(src, 3, 4)}) {
        for (size_t i = 0; i < out.numel(); ++i)
            EXPECT_NEAR(out.data()[i], 0.42f, 1e-5f);
    }
}

TEST(Resize, MeanPreservedByArea)
{
    const Image src = noiseImage(64, 64, 3);
    const Image out = resizeArea(src, 16, 16);
    EXPECT_NEAR(out.mean(), src.mean(), 0.01);
}

TEST(Resize, UpscaleDimensions)
{
    const Image src = noiseImage(8, 12, 2);
    const Image out = resizeBilinear(src, 16, 20);
    EXPECT_EQ(out.height(), 16);
    EXPECT_EQ(out.width(), 20);
    EXPECT_EQ(out.channels(), src.channels());
}

TEST(Resize, AutoPicksAreaForBigShrink)
{
    // resize() must not alias badly on a 4x shrink; area averaging
    // keeps the mean stable.
    const Image src = noiseImage(128, 128, 1);
    const Image out = resize(src, 32, 32);
    EXPECT_NEAR(out.mean(), src.mean(), 0.01);
}

TEST(Crop, ExtractsRectangle)
{
    Image src(6, 6, 1);
    src.at(0, 2, 3) = 1.0f;
    const Image out = crop(src, 2, 3, 2, 2);
    EXPECT_EQ(out.at(0, 0, 0), 1.0f);
    EXPECT_EQ(out.height(), 2);
}

TEST(CropDeath, OutOfBounds)
{
    Image src(4, 4, 1);
    EXPECT_DEATH(crop(src, 2, 2, 3, 3), "out of bounds");
}

TEST(CenterCrop, FullFractionIsIdentity)
{
    const Image src = noiseImage(10, 12, 3);
    const Image out = centerCropFraction(src, 1.0);
    EXPECT_EQ(out.height(), 10);
    EXPECT_EQ(out.width(), 12);
}

TEST(CenterCrop, AreaMatches)
{
    const Image src = noiseImage(100, 100, 1);
    const Image out = centerCropFraction(src, 0.25);
    // sqrt(0.25) = 0.5 per side.
    EXPECT_EQ(out.height(), 50);
    EXPECT_EQ(out.width(), 50);
}

TEST(Metrics, PsnrIdentityInfinite)
{
    const Image a = noiseImage(24, 24, 3);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Metrics, PsnrKnownValue)
{
    Image a(8, 8, 1);
    Image b(8, 8, 1);
    for (size_t i = 0; i < b.numel(); ++i)
        b.data()[i] = 0.1f; // MSE = 0.01 -> PSNR = 20 dB
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-4);
}

TEST(Metrics, SsimIdentityIsOne)
{
    const Image a = noiseImage(32, 32, 3);
    EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, SsimSymmetric)
{
    const Image a = noiseImage(32, 32, 3);
    Image b = a;
    b = noiseImage(32, 32, 4);
    EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-9);
}

TEST(Metrics, SsimDropsWithNoise)
{
    const SyntheticImageSpec spec{.height = 64, .width = 64,
                                  .class_id = 1, .seed = 3};
    const Image a = generateSyntheticImage(spec);
    Rng rng(17);
    Image mild = a;
    mild = Image(64, 64, 3);
    Image heavy(64, 64, 3);
    for (size_t i = 0; i < a.numel(); ++i) {
        mild.data()[i] = std::clamp(
            a.data()[i] + 0.02f * static_cast<float>(rng.normal()), 0.0f,
            1.0f);
        heavy.data()[i] = std::clamp(
            a.data()[i] + 0.15f * static_cast<float>(rng.normal()), 0.0f,
            1.0f);
    }
    const double s_mild = ssim(a, mild);
    const double s_heavy = ssim(a, heavy);
    EXPECT_LT(s_heavy, s_mild);
    EXPECT_LT(s_mild, 1.0);
    EXPECT_GT(s_mild, 0.8);
}

TEST(Metrics, SsimInvariantVsPsnrToMeanShift)
{
    // SSIM's luminance term tolerates small uniform shifts better than
    // PSNR does — a classic structural-similarity property.
    const Image a = noiseImage(32, 32, 1);
    Image shifted(32, 32, 3);
    for (size_t i = 0; i < a.numel(); ++i)
        shifted.data()[i] = std::clamp(a.data()[i] + 0.05f, 0.0f, 1.0f);
    EXPECT_GT(ssim(a, shifted), 0.9);
    EXPECT_LT(psnr(a, shifted), 30.0);
}

TEST(Synthetic, Deterministic)
{
    const SyntheticImageSpec spec{.height = 48, .width = 64,
                                  .class_id = 2, .seed = 9};
    const Image a = generateSyntheticImage(spec);
    const Image b = generateSyntheticImage(spec);
    for (size_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Synthetic, SeedChangesPixels)
{
    SyntheticImageSpec spec{.height = 48, .width = 48, .class_id = 2,
                            .seed = 9};
    const Image a = generateSyntheticImage(spec);
    spec.seed = 10;
    const Image b = generateSyntheticImage(spec);
    double diff = 0.0;
    for (size_t i = 0; i < a.numel(); ++i)
        diff += std::fabs(a.data()[i] - b.data()[i]);
    EXPECT_GT(diff / a.numel(), 0.01);
}

TEST(Synthetic, ClassesDiffer)
{
    SyntheticImageSpec spec{.height = 64, .width = 64, .class_id = 0,
                            .seed = 5};
    const Image a = generateSyntheticImage(spec);
    spec.class_id = 1;
    const Image b = generateSyntheticImage(spec);
    EXPECT_LT(ssim(a, b), 0.99);
}

TEST(Synthetic, ObjectScaleChangesContent)
{
    SyntheticImageSpec spec{.height = 96, .width = 96, .class_id = 0,
                            .seed = 5, .texture_detail = 0.3};
    spec.object_scale = 0.2;
    const Image small = generateSyntheticImage(spec);
    spec.object_scale = 0.9;
    const Image big = generateSyntheticImage(spec);
    // A bigger object must change more pixels relative to the same
    // background.
    EXPECT_LT(ssim(small, big), 0.9);
}

TEST(Synthetic, ValuesInRange)
{
    const SyntheticImageSpec spec{.height = 40, .width = 52,
                                  .class_id = 7, .num_classes = 8,
                                  .seed = 77};
    const Image img = generateSyntheticImage(spec);
    for (size_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img.data()[i], 0.0f);
        EXPECT_LE(img.data()[i], 1.0f);
    }
}

TEST(SyntheticDeath, BadClass)
{
    SyntheticImageSpec spec;
    spec.class_id = 99;
    spec.num_classes = 4;
    EXPECT_DEATH(generateSyntheticImage(spec), "class id");
}

/** Parameterized sweep: every archetype renders at several scales. */
class SyntheticSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(SyntheticSweep, RendersInRange)
{
    const auto [cls, obj_scale] = GetParam();
    SyntheticImageSpec spec{.height = 40, .width = 40, .class_id = cls,
                            .num_classes = 8, .seed = 3};
    spec.object_scale = obj_scale;
    const Image img = generateSyntheticImage(spec);
    EXPECT_EQ(img.height(), 40);
    for (size_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img.data()[i], 0.0f);
        EXPECT_LE(img.data()[i], 1.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchetypes, SyntheticSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(0.2, 0.6, 1.1)));

} // namespace
} // namespace tamres
