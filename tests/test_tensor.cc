/**
 * @file
 * Unit tests for the tensor module.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"
#include "tensor/tensor_ops.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndValueCtor)
{
    Tensor t({4}, 2.5f);
    EXPECT_EQ(t.min(), 2.5f);
    EXPECT_EQ(t.max(), 2.5f);
    t.fill(-1.0f);
    EXPECT_DOUBLE_EQ(t.sum(), -4.0);
}

TEST(Tensor, FromVector)
{
    Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
    EXPECT_EQ(t[0], 1.0f);
    EXPECT_EQ(t[3], 4.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 10.0);
}

TEST(Tensor, At4d)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(t[t.numel() - 1], 9.0f);
    t.at(0, 0, 0, 0) = 1.0f;
    EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, DimNegativeIndex)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-3), 2);
}

TEST(Tensor, CopyIsView)
{
    Tensor a({3}, 1.0f);
    Tensor b = a;
    b[0] = 7.0f;
    EXPECT_EQ(a[0], 7.0f); // shared storage
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a({3}, 1.0f);
    Tensor b = a.clone();
    b[0] = 7.0f;
    EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor a({2, 6});
    Tensor b = a.reshaped({3, 4});
    b[5] = 2.0f;
    EXPECT_EQ(a[5], 2.0f);
    EXPECT_EQ(b.dim(0), 3);
}

TEST(TensorDeath, ReshapeBadCount)
{
    Tensor a({2, 3});
    EXPECT_DEATH(a.reshaped({7}), "reshape");
}

TEST(TensorDeath, OutOfBoundsAt)
{
    Tensor t({1, 1, 2, 2});
    EXPECT_DEATH(t.at(0, 0, 2, 0), "out of bounds");
}

TEST(ShapeUtils, NumelAndString)
{
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24);
    EXPECT_EQ(shapeNumel({}), 1);
    EXPECT_EQ(shapeToString({1, 2}), "[1, 2]");
}

TEST(TensorOps, AddInto)
{
    Tensor a({3}, std::vector<float>{1, 2, 3});
    Tensor b({3}, std::vector<float>{4, 5, 6});
    Tensor out({3});
    addInto(a, b, out);
    EXPECT_EQ(out[0], 5.0f);
    EXPECT_EQ(out[2], 9.0f);
}

TEST(TensorOps, Axpy)
{
    Tensor a({2}, std::vector<float>{1, 1});
    Tensor b({2}, std::vector<float>{2, 4});
    axpy(0.5f, b, a);
    EXPECT_EQ(a[0], 2.0f);
    EXPECT_EQ(a[1], 3.0f);
}

TEST(TensorOps, Scale)
{
    Tensor a({2}, std::vector<float>{2, -4});
    scale(a, -0.5f);
    EXPECT_EQ(a[0], -1.0f);
    EXPECT_EQ(a[1], 2.0f);
}

TEST(TensorOps, Relu)
{
    Tensor a({4}, std::vector<float>{-1, 0, 2, -3});
    Tensor out({4});
    reluInto(a, out);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[2], 2.0f);
    EXPECT_EQ(out[3], 0.0f);
}

TEST(TensorOps, ArgmaxRows)
{
    Tensor t({2, 3}, std::vector<float>{1, 5, 2, 7, 0, 3});
    const auto idx = argmaxRows(t);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

TEST(TensorOps, MaxAbsDiff)
{
    Tensor a({3}, std::vector<float>{1, 2, 3});
    Tensor b({3}, std::vector<float>{1, 2.5f, 2});
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 1.0f);
}

TEST(TensorOps, KaimingVariance)
{
    Rng rng(21);
    Tensor w({256, 128});
    fillKaiming(w, rng, 128);
    double sum_sq = 0.0;
    for (int64_t i = 0; i < w.numel(); ++i)
        sum_sq += static_cast<double>(w[i]) * w[i];
    // Variance should be ~2/fan_in.
    EXPECT_NEAR(sum_sq / w.numel(), 2.0 / 128, 0.002);
}

TEST(TensorOps, FillUniformRange)
{
    Rng rng(22);
    Tensor t({1000});
    fillUniform(t, rng, -2.0f, 3.0f);
    EXPECT_GE(t.min(), -2.0f);
    EXPECT_LT(t.max(), 3.0f);
}

} // namespace
} // namespace tamres
