/**
 * @file
 * Tests for the two-stage pipelined serving simulation (Section
 * VII-c): pipeline semantics (stage ordering, FIFO), overhead hiding
 * relative to the sequential single-server model, and the cloud cost
 * model's accounting identities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/serving.hh"
#include "storage/cost.hh"

namespace tamres {
namespace {

StagedPolicy
constantStaged(double scale_s, double backbone_s, int res = 224)
{
    return [=](int, int) {
        return StagedService{res, scale_s, backbone_s};
    };
}

TEST(PipelinedServing, RequestInvariantsHold)
{
    ServingConfig cfg;
    cfg.arrival_rate_hz = 20.0;
    cfg.num_requests = 500;
    const auto reqs =
        simulateServingPipelined(cfg, constantStaged(0.01, 0.03));
    ASSERT_EQ(reqs.size(), 500u);
    double prev_arrival = -1.0, prev_finish = -1.0;
    for (const auto &r : reqs) {
        EXPECT_GE(r.start_s, r.arrival_s);
        // Latency is at least the sum of both stages.
        EXPECT_GE(r.finish_s - r.start_s, 0.04 - 1e-12);
        // Arrivals and (FIFO) finishes are monotone.
        EXPECT_GT(r.arrival_s, prev_arrival);
        EXPECT_GT(r.finish_s, prev_finish);
        prev_arrival = r.arrival_s;
        prev_finish = r.finish_s;
    }
}

TEST(PipelinedServing, SaturatedThroughputSetByMaxStage)
{
    // Overload the pipeline: service completions must pace at
    // max(scale_s, backbone_s), not the sum — the scale model is
    // hidden behind the backbone.
    ServingConfig cfg;
    cfg.arrival_rate_hz = 1000.0; // far beyond capacity
    cfg.num_requests = 400;
    const double scale_s = 0.010, backbone_s = 0.030;
    const auto reqs =
        simulateServingPipelined(cfg, constantStaged(scale_s,
                                                     backbone_s));
    // Steady-state inter-finish gap (skip warmup).
    const double gap =
        (reqs.back().finish_s - reqs[100].finish_s) /
        static_cast<double>(reqs.size() - 101);
    EXPECT_NEAR(gap, backbone_s, 1e-3);
}

TEST(PipelinedServing, HidesScaleOverheadVsSequential)
{
    // The Section VII-c claim: pipelining the scale model with the
    // backbone removes its latency cost under load. At an arrival
    // rate between 1/(s+b) and 1/b, the sequential server diverges
    // while the pipeline stays stable.
    const double scale_s = 0.010, backbone_s = 0.030;
    ServingConfig cfg;
    cfg.arrival_rate_hz = 28.0; // 1/0.04 = 25 < 28 < 1/0.03 = 33.3
    cfg.num_requests = 3000;

    const auto seq = simulateServing(cfg, [&](int, int) {
        return std::make_pair(224, scale_s + backbone_s);
    });
    const auto pipe =
        simulateServingPipelined(cfg, constantStaged(scale_s,
                                                     backbone_s));
    const auto s_seq = ServingStats::fromRequests(seq);
    const auto s_pipe = ServingStats::fromRequests(pipe);
    // Sequential is past saturation: queueing grows with the run.
    EXPECT_GT(s_seq.p99_latency_s, 10 * s_pipe.p99_latency_s);
    EXPECT_LT(s_pipe.mean_latency_s, 0.5);
}

TEST(PipelinedServing, ZeroScaleStageMatchesSequentialServer)
{
    // With no stage-1 time the pipeline degenerates to the M/D/1
    // model; both simulators must agree request by request.
    ServingConfig cfg;
    cfg.arrival_rate_hz = 15.0;
    cfg.num_requests = 800;
    const double svc = 0.04;
    const auto seq = simulateServing(
        cfg, [&](int, int) { return std::make_pair(112, svc); });
    const auto pipe =
        simulateServingPipelined(cfg, constantStaged(0.0, svc, 112));
    ASSERT_EQ(seq.size(), pipe.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_NEAR(seq[i].arrival_s, pipe[i].arrival_s, 1e-12);
        EXPECT_NEAR(seq[i].finish_s, pipe[i].finish_s, 1e-9);
    }
}

TEST(PipelinedServing, QueueAwarePolicySeesDepth)
{
    ServingConfig cfg;
    cfg.arrival_rate_hz = 100.0;
    cfg.num_requests = 300;
    int max_depth = 0;
    simulateServingPipelined(cfg, [&](int, int depth) {
        max_depth = std::max(max_depth, depth);
        return StagedService{224, 0.005, 0.02};
    });
    // Overloaded: the policy must observe deep queues.
    EXPECT_GT(max_depth, 10);
}

// --- Cloud cost model ---

TEST(CloudCost, FullReadBillMatchesHandComputation)
{
    Workload w;
    w.corpus_images = 1000;
    w.mean_image_bytes = 1024.0 * 1024.0; // 1 MiB
    w.reads_per_month = 10000;
    w.mean_read_fraction = 1.0;
    CloudPricing p;
    p.storage_gb_month = 0.02;
    p.egress_gb = 0.10;
    p.request_per_10k = 0.004;

    const MonthlyCost c = monthlyCost(w, p);
    // 1000 MiB at rest = 1000/1024 GiB.
    EXPECT_NEAR(c.storage_usd, 1000.0 / 1024.0 * 0.02, 1e-9);
    // 10000 MiB egressed.
    EXPECT_NEAR(c.egress_usd, 10000.0 / 1024.0 * 0.10, 1e-9);
    EXPECT_NEAR(c.request_usd, 0.004, 1e-12);
    EXPECT_NEAR(c.total(),
                c.storage_usd + c.egress_usd + c.request_usd, 1e-12);
}

TEST(CloudCost, ReadSavingsCutEgressLinearly)
{
    Workload w;
    const MonthlyCost full = monthlyCost(w);
    w.mean_read_fraction = 0.7; // the paper's ~30% savings
    const MonthlyCost calibrated = monthlyCost(w);
    EXPECT_NEAR(calibrated.egress_usd, 0.7 * full.egress_usd, 1e-6);
    // Storage at rest is unchanged (no pre-cropped copies, Table III
    // note).
    EXPECT_NEAR(calibrated.storage_usd, full.storage_usd, 1e-9);
    EXPECT_LT(calibrated.total(), full.total());
}

TEST(CloudCost, IncrementalFetchesChargeRequests)
{
    Workload w;
    w.extra_requests_per_read = 0.4; // 40% of reads fetch twice
    const MonthlyCost c = monthlyCost(w);
    Workload base = w;
    base.extra_requests_per_read = 0.0;
    EXPECT_NEAR(c.request_usd, 1.4 * monthlyCost(base).request_usd,
                1e-9);
}

TEST(CloudCostDeath, RejectsBadFraction)
{
    Workload w;
    w.mean_read_fraction = 1.5;
    EXPECT_DEATH(monthlyCost(w), "fraction");
}

} // namespace
} // namespace tamres
