/**
 * @file
 * Tests for the no-reference quality metrics: blockiness responds to
 * the codec's 8x8 grid, sharpness tracks high-frequency energy, and
 * the combined blind score is monotone in scan count — the property
 * the Section VIII-c storage-policy extension rests on.
 */

#include <gtest/gtest.h>

#include "codec/progressive.hh"
#include "image/filters.hh"
#include "image/metrics.hh"
#include "image/noref.hh"
#include "image/synthetic.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

Image
textured(int h, int w, uint64_t seed, double detail = 0.6)
{
    SyntheticImageSpec spec;
    spec.height = h;
    spec.width = w;
    spec.seed = seed;
    spec.texture_detail = detail;
    return generateSyntheticImage(spec);
}

TEST(Blockiness, NaturalImageNearOne)
{
    const double b = blockiness(textured(96, 96, 1));
    EXPECT_GT(b, 0.6);
    EXPECT_LT(b, 1.6);
}

TEST(Blockiness, TruncatedDecodeRaisesIt)
{
    const Image src = textured(96, 96, 2);
    const EncodedImage enc = encodeProgressive(src);
    const Image coarse = decodeProgressive(enc, 1);
    const Image full = decodeProgressive(enc, enc.numScans());
    EXPECT_GT(blockiness(coarse), blockiness(full));
}

TEST(Blockiness, SyntheticBlockGridIsDetected)
{
    // Paint each 8x8 block with a constant drawn per block: all
    // discontinuities live exactly on the grid.
    Image img(64, 64, 1);
    Rng rng(9);
    for (int by = 0; by < 8; ++by)
        for (int bx = 0; bx < 8; ++bx) {
            const float v = static_cast<float>(rng.uniform());
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    img.at(0, by * 8 + y, bx * 8 + x) = v;
        }
    EXPECT_GT(blockiness(img), 10.0);
}

TEST(BlockinessDeath, TooSmall)
{
    const Image tiny(8, 8, 1);
    EXPECT_DEATH(blockiness(tiny), "two 8x8 blocks");
}

TEST(Sharpness, BlurReducesIt)
{
    const Image src = textured(80, 80, 3, 0.8);
    const double s0 = sharpness(src);
    const double s1 = sharpness(gaussianBlur(src, 1.0));
    const double s2 = sharpness(gaussianBlur(src, 2.5));
    EXPECT_GT(s0, s1);
    EXPECT_GT(s1, s2);
}

TEST(Sharpness, FlatImageIsZero)
{
    Image flat(32, 32, 3);
    for (size_t i = 0; i < flat.numel(); ++i)
        flat.data()[i] = 0.3f;
    EXPECT_NEAR(sharpness(flat), 0.0, 1e-12);
}

TEST(NorefQuality, FullDecodeScoresHigherThanPrefixes)
{
    const Image src = textured(112, 112, 4, 0.7);
    const EncodedImage enc = encodeProgressive(src);
    const Image full = decodeProgressive(enc, enc.numScans());
    const double ref_sharp = sharpness(full);
    ASSERT_GT(ref_sharp, 0.0);

    double prev = -1.0;
    for (int k = 1; k <= enc.numScans(); ++k) {
        const Image partial = decodeProgressive(enc, k);
        const double q = norefQuality(partial, ref_sharp);
        EXPECT_GE(q, prev - 0.02)
            << "blind score regressed at scan " << k;
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
        prev = q;
    }
    // The full decode must land near the top of the scale.
    EXPECT_GT(prev, 0.85);
}

TEST(NorefQuality, CorrelatesWithSsimAcrossScanPrefixes)
{
    // Kendall-style concordance between the blind score and true SSIM
    // over scan prefixes of several images: orderings must agree for
    // a large majority of pairs.
    int concordant = 0, discordant = 0;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        const Image src = textured(96, 96, seed, 0.65);
        const EncodedImage enc = encodeProgressive(src);
        const Image full = decodeProgressive(enc, enc.numScans());
        const double ref_sharp = sharpness(full);
        std::vector<double> blind, truth;
        for (int k = 1; k <= enc.numScans(); ++k) {
            const Image partial = decodeProgressive(enc, k);
            blind.push_back(norefQuality(partial, ref_sharp));
            truth.push_back(ssim(partial, full));
        }
        for (size_t i = 0; i < blind.size(); ++i)
            for (size_t j = i + 1; j < blind.size(); ++j) {
                const double db = blind[j] - blind[i];
                const double dt = truth[j] - truth[i];
                if (db * dt > 0)
                    ++concordant;
                else if (db * dt < 0)
                    ++discordant;
            }
    }
    EXPECT_GT(concordant, 4 * std::max(discordant, 1));
}

TEST(NorefQualityDeath, NonPositiveReference)
{
    const Image img = textured(64, 64, 5);
    EXPECT_DEATH(norefQuality(img, 0.0), "positive");
}

} // namespace
} // namespace tamres
