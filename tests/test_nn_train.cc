/**
 * @file
 * Tests for the training stack: numerical gradient checks for every
 * trainable layer and loss, plus end-to-end convergence on toy tasks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/train.hh"
#include "tensor/tensor_ops.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

/**
 * Central-difference check of dLoss/dInput against a layer's
 * backward(), using loss = sum(output * probe) for a fixed random
 * probe (so dLoss/dOutput = probe).
 */
void
checkInputGradient(TrainLayer &layer, const Shape &in_shape,
                   double tol = 2e-2)
{
    Rng rng(123);
    Tensor in(in_shape);
    fillUniform(in, rng, -1.0f, 1.0f);

    Tensor out = layer.forward(in);
    Tensor probe(out.shape());
    fillUniform(probe, rng, -1.0f, 1.0f);

    const Tensor analytic = layer.backward(probe);

    auto loss_at = [&](Tensor &x) {
        const Tensor o = layer.forward(x);
        double acc = 0.0;
        for (int64_t i = 0; i < o.numel(); ++i)
            acc += static_cast<double>(o[i]) * probe[i];
        return acc;
    };

    const float eps = 1e-3f;
    // Spot-check a handful of coordinates (full check is O(n^2)).
    for (int64_t i = 0; i < std::min<int64_t>(in.numel(), 24); ++i) {
        const int64_t idx = (i * 7919) % in.numel();
        const float orig = in[idx];
        in[idx] = orig + eps;
        const double up = loss_at(in);
        in[idx] = orig - eps;
        const double down = loss_at(in);
        in[idx] = orig;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[idx], numeric,
                    tol * std::max(1.0, std::fabs(numeric)))
            << "coordinate " << idx;
    }
}

TEST(GradCheck, ReLU)
{
    TrainReLU layer;
    checkInputGradient(layer, {2, 3, 4, 4});
}

TEST(GradCheck, GlobalAvgPool)
{
    TrainGlobalAvgPool layer;
    checkInputGradient(layer, {2, 3, 5, 5});
}

TEST(GradCheck, Linear)
{
    Rng rng(7);
    TrainLinear layer(6, 4, rng);
    checkInputGradient(layer, {3, 6});
}

TEST(GradCheck, Conv2d)
{
    Rng rng(9);
    TrainConv2d layer(2, 3, 3, 1, 1, rng);
    checkInputGradient(layer, {1, 2, 6, 6});
}

TEST(GradCheck, Conv2dStrided)
{
    Rng rng(11);
    TrainConv2d layer(2, 4, 3, 2, 1, rng);
    checkInputGradient(layer, {1, 2, 7, 7});
}

TEST(GradCheck, BceLossGradient)
{
    Rng rng(13);
    Tensor logits({2, 4});
    fillUniform(logits, rng, -2.0f, 2.0f);
    Tensor targets({2, 4});
    for (int64_t i = 0; i < targets.numel(); ++i)
        targets[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;

    Tensor grad;
    bceWithLogitsLoss(logits, targets, grad);

    const float eps = 1e-3f;
    for (int64_t i = 0; i < logits.numel(); ++i) {
        Tensor g;
        logits[i] += eps;
        const double up = bceWithLogitsLoss(logits, targets, g);
        logits[i] -= 2 * eps;
        const double down = bceWithLogitsLoss(logits, targets, g);
        logits[i] += eps;
        EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 1e-3);
    }
}

TEST(GradCheck, CrossEntropyGradient)
{
    Rng rng(17);
    Tensor logits({3, 5});
    fillUniform(logits, rng, -2.0f, 2.0f);
    const std::vector<int> labels = {0, 3, 4};

    Tensor grad;
    softmaxCrossEntropyLoss(logits, labels, grad);

    const float eps = 1e-3f;
    for (int64_t i = 0; i < logits.numel(); ++i) {
        Tensor g;
        logits[i] += eps;
        const double up = softmaxCrossEntropyLoss(logits, labels, g);
        logits[i] -= 2 * eps;
        const double down = softmaxCrossEntropyLoss(logits, labels, g);
        logits[i] += eps;
        EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 1e-3);
    }
}

TEST(Losses, BceKnownValues)
{
    Tensor logits({1, 1}, std::vector<float>{0.0f});
    Tensor targets({1, 1}, std::vector<float>{1.0f});
    Tensor grad;
    // -log(sigmoid(0)) = log 2.
    EXPECT_NEAR(bceWithLogitsLoss(logits, targets, grad),
                std::log(2.0), 1e-6);
    EXPECT_NEAR(grad[0], -0.5, 1e-6); // (p - t) / n = 0.5 - 1
}

TEST(Losses, CrossEntropyPerfectPrediction)
{
    Tensor logits({1, 3}, std::vector<float>{20.0f, -20.0f, -20.0f});
    Tensor grad;
    EXPECT_NEAR(softmaxCrossEntropyLoss(logits, {0}, grad), 0.0, 1e-6);
}

TEST(Losses, SigmoidValues)
{
    Tensor logits({3}, std::vector<float>{0.0f, 100.0f, -100.0f});
    const Tensor p = sigmoid(logits);
    EXPECT_NEAR(p[0], 0.5f, 1e-6f);
    EXPECT_NEAR(p[1], 1.0f, 1e-6f);
    EXPECT_NEAR(p[2], 0.0f, 1e-6f);
}

TEST(Training, LinearRegressionConverges)
{
    // Learn y = sign(w*x) with a linear layer + BCE.
    Rng rng(19);
    SequentialNet net;
    net.add(std::make_unique<TrainLinear>(4, 1, rng));
    const std::vector<float> true_w = {1.0f, -2.0f, 0.5f, 3.0f};

    SgdOptions sgd{.lr = 0.2f, .momentum = 0.9f, .weight_decay = 0.0f};
    double last_loss = 1e9;
    for (int step = 0; step < 300; ++step) {
        Tensor x({8, 4});
        fillUniform(x, rng, -1.0f, 1.0f);
        Tensor t({8, 1});
        for (int b = 0; b < 8; ++b) {
            float dot = 0.0f;
            for (int i = 0; i < 4; ++i)
                dot += true_w[i] * x[b * 4 + i];
            t[b] = dot > 0 ? 1.0f : 0.0f;
        }
        Tensor logits = net.forward(x);
        Tensor grad;
        last_loss = bceWithLogitsLoss(logits, t, grad);
        net.backward(grad);
        net.step(sgd);
    }
    EXPECT_LT(last_loss, 0.25);
}

TEST(Training, TinyCnnLearnsBrightVsDark)
{
    // Classify bright vs. dark images with a conv net — exercises the
    // full conv backward path end to end.
    Rng rng(23);
    SequentialNet net;
    net.add(std::make_unique<TrainConv2d>(1, 4, 3, 2, 1, rng));
    net.add(std::make_unique<TrainReLU>());
    net.add(std::make_unique<TrainGlobalAvgPool>());
    net.add(std::make_unique<TrainLinear>(4, 2, rng));

    SgdOptions sgd{.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
    auto make_batch = [&](Tensor &x, std::vector<int> &labels) {
        x = Tensor({6, 1, 8, 8});
        labels.resize(6);
        for (int b = 0; b < 6; ++b) {
            const bool bright = rng.bernoulli(0.5);
            labels[b] = bright ? 1 : 0;
            for (int i = 0; i < 64; ++i) {
                x[b * 64 + i] = static_cast<float>(
                    rng.uniform(0.0, 0.4) + (bright ? 0.6 : 0.0));
            }
        }
    };

    for (int step = 0; step < 150; ++step) {
        Tensor x;
        std::vector<int> labels;
        make_batch(x, labels);
        Tensor logits = net.forward(x);
        Tensor grad;
        softmaxCrossEntropyLoss(logits, labels, grad);
        net.backward(grad);
        net.step(sgd);
    }

    // Evaluate.
    int correct = 0, total = 0;
    for (int rep = 0; rep < 10; ++rep) {
        Tensor x;
        std::vector<int> labels;
        make_batch(x, labels);
        const Tensor logits = net.forward(x);
        const auto pred = argmaxRows(logits);
        for (size_t i = 0; i < labels.size(); ++i) {
            correct += pred[i] == labels[i];
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Training, WeightDecayShrinksWeights)
{
    Rng rng(29);
    SequentialNet net;
    auto lin = std::make_unique<TrainLinear>(2, 1, rng);
    net.add(std::move(lin));
    // Pure decay: zero gradient batches.
    SgdOptions sgd{.lr = 0.5f, .momentum = 0.0f, .weight_decay = 0.5f};
    Tensor x({1, 2}, std::vector<float>{0.0f, 0.0f});
    Tensor t({1, 1}, std::vector<float>{0.5f});
    Tensor before = net.forward(x); // bias only
    for (int i = 0; i < 5; ++i) {
        Tensor logits = net.forward(x);
        Tensor grad;
        bceWithLogitsLoss(logits, t, grad);
        // zero the grad so only decay acts on weights
        grad.fill(0.0f);
        net.backward(grad);
        net.step(sgd);
    }
    SUCCEED(); // decay path executed without corruption
}

TEST(Training, ParamCounts)
{
    Rng rng(31);
    SequentialNet net;
    net.add(std::make_unique<TrainConv2d>(3, 8, 3, 2, 1, rng));
    net.add(std::make_unique<TrainReLU>());
    net.add(std::make_unique<TrainLinear>(8, 4, rng));
    // conv: 8*3*3*3 + 8 = 224; linear: 8*4 + 4 = 36.
    EXPECT_EQ(net.numParams(), 224 + 36);
    EXPECT_EQ(net.numLayers(), 3u);
}

} // namespace
} // namespace tamres
