/**
 * @file
 * Property tests for the convolution kernels: every optimized
 * implementation (direct tiled, im2col + blocked GEMM across blocking
 * parameters) must agree with the reference loop nest over a sweep of
 * problem shapes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/conv_kernels.hh"
#include "nn/kernel_selector.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

struct KernelCase
{
    ConvProblem problem;
    ConvConfig config;
    const char *tag;
};

void
PrintTo(const KernelCase &c, std::ostream *os)
{
    *os << c.problem.key() << " / " << c.tag;
}

std::vector<float>
randomVec(size_t n, uint64_t seed, float scale = 1.0f)
{
    std::vector<float> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-scale, scale));
    return v;
}

class ConvAgainstReference : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(ConvAgainstReference, MatchesReference)
{
    const ConvProblem &p = GetParam().problem;
    const ConvConfig &cfg = GetParam().config;
    ASSERT_TRUE(convConfigValid(p, cfg))
        << cfg.toString() << " invalid for " << p.key();

    const auto in = randomVec(
        static_cast<size_t>(p.n) * p.ic * p.ih * p.iw, 1);
    const auto w = randomVec(static_cast<size_t>(p.oc) *
                             (p.ic / p.groups) * p.kh * p.kw, 2, 0.5f);
    const auto bias = randomVec(p.oc, 3);
    const size_t out_n =
        static_cast<size_t>(p.n) * p.oc * p.oh() * p.ow();
    std::vector<float> expect(out_n), got(out_n);

    convReference(p, in.data(), w.data(), bias.data(), expect.data());
    convForward(p, in.data(), w.data(), bias.data(), got.data(), cfg);

    float max_err = 0.0f;
    for (size_t i = 0; i < out_n; ++i)
        max_err = std::max(max_err, std::fabs(expect[i] - got[i]));
    EXPECT_LT(max_err, 2e-3f)
        << p.key() << " with " << cfg.toString();
}

std::vector<KernelCase>
kernelCases()
{
    std::vector<KernelCase> cases;
    // Shapes exercising: stride-2 stems, 1x1 projections, 3x3 interior
    // layers at several resolutions (even/odd widths force remainder
    // handling), depthwise, grouped, and degenerate sizes.
    const std::vector<ConvProblem> problems = {
        {.n = 1, .ic = 3, .ih = 33, .iw = 29, .oc = 8, .kh = 7, .kw = 7,
         .stride = 2, .pad = 3},
        {.n = 2, .ic = 8, .ih = 14, .iw = 14, .oc = 16, .kh = 3, .kw = 3,
         .stride = 1, .pad = 1},
        {.n = 1, .ic = 16, .ih = 15, .iw = 17, .oc = 8, .kh = 3, .kw = 3,
         .stride = 2, .pad = 1},
        {.n = 1, .ic = 12, .ih = 10, .iw = 10, .oc = 24, .kh = 1,
         .kw = 1, .stride = 1, .pad = 0},
        {.n = 1, .ic = 8, .ih = 9, .iw = 9, .oc = 8, .kh = 3, .kw = 3,
         .stride = 1, .pad = 1, .groups = 8}, // depthwise
        {.n = 1, .ic = 8, .ih = 12, .iw = 12, .oc = 12, .kh = 3, .kw = 3,
         .stride = 1, .pad = 1, .groups = 4}, // grouped
        {.n = 1, .ic = 4, .ih = 8, .iw = 8, .oc = 4, .kh = 5, .kw = 5,
         .stride = 1, .pad = 0}, // valid padding
        {.n = 1, .ic = 1, .ih = 1, .iw = 1, .oc = 1, .kh = 1, .kw = 1,
         .stride = 1, .pad = 0}, // degenerate
        {.n = 1, .ic = 6, .ih = 20, .iw = 7, .oc = 10, .kh = 3, .kw = 3,
         .stride = 2, .pad = 1}, // narrow, odd
    };
    const std::vector<std::pair<ConvConfig, const char *>> configs = {
        {{.algo = ConvAlgo::Direct, .oc_tile = 1, .ow_tile = 1},
         "direct-1x1"},
        {{.algo = ConvAlgo::Direct, .oc_tile = 4, .ow_tile = 8},
         "direct-4x8"},
        {{.algo = ConvAlgo::Direct, .oc_tile = 8, .ow_tile = 28},
         "direct-8x28"},
        {{.algo = ConvAlgo::Im2col, .mc = 8, .kc = 16, .nc = 32, .mr = 2,
          .nr = 4},
         "im2col-tiny"},
        {{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 128, .nc = 512,
          .mr = 4, .nr = 8},
         "im2col-default"},
        {{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 288, .nc = 3136,
          .mr = 4, .nr = 16},
         "im2col-library"},
        {{.algo = ConvAlgo::Im2col, .mc = 128, .kc = 512, .nc = 4096,
          .mr = 8, .nr = 16},
         "im2col-big"},
        {{.algo = ConvAlgo::Im2col, .mc = 16, .kc = 64, .nc = 256,
          .mr = 6, .nr = 8},
         "im2col-6x8"},
        // Regression: cache blocks NOT divisible by the micro-kernel
        // (panel padding exceeds mc/nc) once caused a heap overflow.
        {{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 48, .nc = 50,
          .mr = 6, .nr = 8},
         "im2col-ragged-panels"},
    };
    for (const auto &p : problems) {
        for (const auto &[cfg, tag] : configs)
            cases.push_back(KernelCase{p, cfg, tag});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvAgainstReference,
                         ::testing::ValuesIn(kernelCases()));

TEST(ConvProblem, OutputGeometry)
{
    const ConvProblem p{.n = 1, .ic = 3, .ih = 224, .iw = 224, .oc = 64,
                        .kh = 7, .kw = 7, .stride = 2, .pad = 3};
    EXPECT_EQ(p.oh(), 112);
    EXPECT_EQ(p.ow(), 112);
}

TEST(ConvProblem, MacsFormula)
{
    const ConvProblem p{.n = 2, .ic = 4, .ih = 8, .iw = 8, .oc = 6,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    // 2 * 6 * 8 * 8 * 4 * 9
    EXPECT_EQ(p.macs(), 2LL * 6 * 8 * 8 * 4 * 9);
}

TEST(ConvProblem, GroupsReduceMacs)
{
    ConvProblem p{.n = 1, .ic = 8, .ih = 8, .iw = 8, .oc = 8, .kh = 3,
                  .kw = 3, .stride = 1, .pad = 1};
    const int64_t dense = p.macs();
    p.groups = 8;
    EXPECT_EQ(p.macs() * 8, dense);
}

TEST(ConvProblem, KeyIsStable)
{
    const ConvProblem p{.n = 1, .ic = 64, .ih = 56, .iw = 56, .oc = 64,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    EXPECT_EQ(p.key(), "1x64x56x56_oc64_k3x3_s1_p1_g1");
}

TEST(ConvConfig, ValidityRules)
{
    const ConvProblem p{.n = 1, .ic = 4, .ih = 8, .iw = 8, .oc = 4,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    EXPECT_TRUE(convConfigValid(
        p, {.algo = ConvAlgo::Direct, .oc_tile = 8, .ow_tile = 32}));
    EXPECT_FALSE(convConfigValid(
        p, {.algo = ConvAlgo::Direct, .oc_tile = 9, .ow_tile = 8}));
    EXPECT_FALSE(convConfigValid(
        p, {.algo = ConvAlgo::Im2col, .mr = 3, .nr = 8})); // no 3-row uK
    EXPECT_TRUE(convConfigValid(
        p, {.algo = ConvAlgo::Im2col, .mr = 6, .nr = 16}));
}

TEST(ConvNullBias, TreatedAsZero)
{
    const ConvProblem p{.n = 1, .ic = 2, .ih = 6, .iw = 6, .oc = 3,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    const auto in = randomVec(
        static_cast<size_t>(p.n) * p.ic * p.ih * p.iw, 4);
    const auto w = randomVec(
        static_cast<size_t>(p.oc) * p.ic * p.kh * p.kw, 5);
    const std::vector<float> zero_bias(p.oc, 0.0f);
    std::vector<float> with_zero(p.oc * 36), with_null(p.oc * 36);
    convReference(p, in.data(), w.data(), zero_bias.data(),
                  with_zero.data());
    convReference(p, in.data(), w.data(), nullptr, with_null.data());
    for (size_t i = 0; i < with_zero.size(); ++i)
        EXPECT_EQ(with_zero[i], with_null[i]);
}

TEST(KernelSelector, ModesResolve)
{
    KernelSelector &sel = KernelSelector::instance();
    const ConvProblem p{.n = 1, .ic = 64, .ih = 56, .iw = 56, .oc = 64,
                        .kh = 3, .kw = 3, .stride = 1, .pad = 1};
    sel.setMode(KernelMode::Naive);
    EXPECT_EQ(sel.select(p).algo, ConvAlgo::Reference);
    sel.setMode(KernelMode::Library);
    EXPECT_EQ(sel.select(p).algo, ConvAlgo::Im2col);
    sel.setMode(KernelMode::Tuned);
    // No registration yet: falls back to the library config.
    EXPECT_EQ(sel.select(p), KernelSelector::libraryConfig(p));
    const ConvConfig tuned{.algo = ConvAlgo::Direct, .oc_tile = 2,
                           .ow_tile = 7};
    sel.registerTuned(p, tuned);
    EXPECT_TRUE(sel.hasTuned(p));
    EXPECT_EQ(sel.select(p), tuned);
    sel.clearTuned();
    sel.setMode(KernelMode::Library);
}

TEST(KernelSelector, GroupedLibraryUsesDirect)
{
    const ConvProblem dw{.n = 1, .ic = 32, .ih = 28, .iw = 28, .oc = 32,
                         .kh = 3, .kw = 3, .stride = 1, .pad = 1,
                         .groups = 32};
    EXPECT_EQ(KernelSelector::libraryConfig(dw).algo, ConvAlgo::Direct);
}

} // namespace
} // namespace tamres
