/**
 * @file
 * Tests for the Section VII-b extension: calibrating the scale
 * model's own preview reads. Verifies the calibration contract
 * (agreement target met, monotone in the target), and the headline
 * consequence — dynamic read savings are no longer bounded by the
 * backbone's 112 policy.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"

namespace tamres {
namespace {

DatasetSpec
smallSpec()
{
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 170;
    spec.mean_width = 190;
    spec.size_jitter = 0.15;
    return spec;
}

/** Shared expensive fixture: dataset, table, trained scale model. */
class PreviewCalibration : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ds_ = new SyntheticDataset(smallSpec(), 260, 91);
        model_ = new BackboneAccuracyModel(BackboneArch::ResNet18,
                                           ds_->spec(), 1);
        table_ = new QualityTable(*ds_, 220, 252, {112, 224, 336});

        ScaleModelOptions opts;
        opts.epochs = 25;
        scale_ = new ScaleModel({112, 224, 336}, opts);
        scale_->train(*ds_, 0, 220, BackboneArch::ResNet18,
                      {0.25, 0.75, 1.0}, 128);

        CalibrationOptions copts;
        copts.max_accuracy_loss = 0.02; // small-sample scaled
        policy_ = new StoragePolicy(
            calibrate(*table_, *ds_, *model_, copts));
    }

    static void
    TearDownTestSuite()
    {
        delete policy_;
        delete scale_;
        delete table_;
        delete model_;
        delete ds_;
    }

    static SyntheticDataset *ds_;
    static BackboneAccuracyModel *model_;
    static QualityTable *table_;
    static ScaleModel *scale_;
    static StoragePolicy *policy_;
};

SyntheticDataset *PreviewCalibration::ds_ = nullptr;
BackboneAccuracyModel *PreviewCalibration::model_ = nullptr;
QualityTable *PreviewCalibration::table_ = nullptr;
ScaleModel *PreviewCalibration::scale_ = nullptr;
StoragePolicy *PreviewCalibration::policy_ = nullptr;

TEST_F(PreviewCalibration, MeetsAgreementTargetWithinScanRange)
{
    const PreviewPolicy pp =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.9);
    EXPECT_GE(pp.scans, 1);
    EXPECT_LE(pp.scans, table_->numScans());
    // The returned agreement is only recorded when found below the
    // maximum depth; at full depth agreement is 1 by definition.
    if (pp.scans < table_->numScans())
        EXPECT_GE(pp.agreement, 0.9);
}

TEST_F(PreviewCalibration, FullDepthAlwaysSatisfiesTarget)
{
    const PreviewPolicy strict =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 1.0);
    EXPECT_LE(strict.scans, table_->numScans());
}

TEST_F(PreviewCalibration, LooserTargetNeverNeedsMoreScans)
{
    const PreviewPolicy strict =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.99);
    const PreviewPolicy loose =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.70);
    EXPECT_LE(loose.scans, strict.scans);
}

TEST_F(PreviewCalibration, ObjectScaleIsLowFrequency)
{
    // The design premise: scale decisions should stabilize well
    // before full fidelity — a coarse preview suffices.
    const PreviewPolicy pp =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.85);
    EXPECT_LT(pp.scans, table_->numScans());
}

TEST_F(PreviewCalibration, CalibratedPreviewReducesDynamicReads)
{
    // Headline: with the preview read depth calibrated separately,
    // the dynamic pipeline reads no more — and typically less — than
    // under the backbone-112-policy lower bound (Section VII-b).
    const PreviewPolicy pp =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.9);
    const StorageRow bound = evalDynamicStorage(
        *table_, *ds_, *model_, *scale_, *policy_, 0.75);
    const StorageRow broken = evalDynamicStorage(
        *table_, *ds_, *model_, *scale_, *policy_, 0.75, {}, pp.scans);
    EXPECT_LE(broken.read_fraction, bound.read_fraction + 1e-9);
    // Accuracy under the calibrated preview stays in family.
    EXPECT_GT(broken.accuracy_calibrated,
              bound.accuracy_calibrated - 0.05);
}

TEST_F(PreviewCalibration, ExplicitPreviewDepthIsHonored)
{
    // Note: byte totals are NOT monotone in preview depth in general —
    // a coarser preview can steer the scale model to a resolution
    // whose policy demands more scans. The enforceable contract is at
    // the boundary: a full-depth preview forces full reads, and any
    // depth keeps the read fraction within (0, 1].
    const StorageRow full = evalDynamicStorage(
        *table_, *ds_, *model_, *scale_, *policy_, 0.75, {},
        table_->numScans());
    EXPECT_NEAR(full.read_fraction, 1.0, 1e-9);

    const StorageRow one = evalDynamicStorage(
        *table_, *ds_, *model_, *scale_, *policy_, 0.75, {}, 1);
    EXPECT_GT(one.read_fraction, 0.0);
    EXPECT_LE(one.read_fraction, 1.0 + 1e-9);
}

TEST_F(PreviewCalibration, AgreementCurveConsistentWithCalibration)
{
    const std::vector<double> curve =
        previewAgreementByDepth(*table_, *ds_, *scale_, 0.75);
    ASSERT_EQ(static_cast<int>(curve.size()), table_->numScans());
    // Full depth agrees with itself by definition.
    EXPECT_NEAR(curve.back(), 1.0, 1e-12);
    for (const double a : curve) {
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
    }
    // calibratePreviewScans must return the first depth at/above the
    // target, with that depth's agreement.
    const double target = 0.9;
    const PreviewPolicy pp =
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, target);
    for (int k = 1; k < pp.scans; ++k)
        EXPECT_LT(curve[k - 1], target);
    EXPECT_GE(curve[pp.scans - 1], target);
}

TEST_F(PreviewCalibration, AgreementTargetValidated)
{
    EXPECT_DEATH(
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 0.0),
        "agreement");
    EXPECT_DEATH(
        calibratePreviewScans(*table_, *ds_, *scale_, 0.75, 1.5),
        "agreement");
}

} // namespace
} // namespace tamres
