/**
 * @file
 * Tests for ops, the graph executor, and the network builders —
 * including the FLOPs anchors the paper's Table I depends on
 * (ResNet-18 at 224 is ~1.8 GFLOPs under the MAC convention).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/builders.hh"
#include "nn/graph.hh"
#include "nn/kernel_selector.hh"
#include "nn/ops.hh"
#include "tensor/tensor_ops.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

TEST(Ops, ReluShapeAndValues)
{
    ReLU op("r");
    EXPECT_EQ(op.outputShape({{1, 2, 3, 4}}), (Shape{1, 2, 3, 4}));
    Tensor in({1, 4}, std::vector<float>{-1, 0, 1, 2});
    Tensor out({1, 4});
    op.forward({&in}, out);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[3], 2.0f);
}

TEST(Ops, MaxPoolKnownValues)
{
    MaxPool2d op("p", 2, 2, 0);
    Tensor in({1, 1, 2, 4},
              std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
    const Shape os = op.outputShape({in.shape()});
    EXPECT_EQ(os, (Shape{1, 1, 1, 2}));
    Tensor out(os);
    op.forward({&in}, out);
    EXPECT_EQ(out[0], 6.0f);
    EXPECT_EQ(out[1], 8.0f);
}

TEST(Ops, MaxPoolWithPadding)
{
    MaxPool2d op("p", 3, 2, 1);
    // ResNet stem geometry: 112 -> 56.
    EXPECT_EQ(op.outputShape({{1, 64, 112, 112}}),
              (Shape{1, 64, 56, 56}));
}

TEST(Ops, GlobalAvgPool)
{
    GlobalAvgPool op("g");
    Tensor in({1, 2, 2, 2},
              std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
    Tensor out({1, 2});
    op.forward({&in}, out);
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(Ops, LinearMatchesManual)
{
    Rng rng(1);
    Linear op("fc", 3, 2);
    op.initKaiming(rng);
    Tensor in({1, 3}, std::vector<float>{1, -1, 2});
    Tensor out({1, 2});
    op.forward({&in}, out);
    // Weights accessed via params(): [0] = weight [2,3], [1] = bias.
    auto params = op.params();
    const Tensor &w = *params[0];
    for (int o = 0; o < 2; ++o) {
        float acc = (*params[1])[o];
        for (int i = 0; i < 3; ++i)
            acc += w[o * 3 + i] * in[i];
        EXPECT_NEAR(out[o], acc, 1e-6f);
    }
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Softmax op("s");
    Tensor in({2, 3}, std::vector<float>{1, 2, 3, -5, 0, 5});
    Tensor out({2, 3});
    op.forward({&in}, out);
    for (int r = 0; r < 2; ++r) {
        double sum = 0.0;
        for (int c = 0; c < 3; ++c) {
            sum += out[r * 3 + c];
            EXPECT_GT(out[r * 3 + c], 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-6);
    }
}

TEST(Ops, BatchNormIdentityWithUnitStats)
{
    BatchNorm2d op("bn", 2);
    Tensor in({1, 2, 2, 2});
    Rng rng(2);
    fillUniform(in, rng, -1.0f, 1.0f);
    Tensor out({1, 2, 2, 2});
    op.forward({&in}, out);
    // gamma=1, beta=0, mean=0, var=1 -> identity up to eps scaling.
    EXPECT_LT(maxAbsDiff(in, out), 1e-4f);
}

TEST(Ops, AddRequiresMatchingShapes)
{
    Add op("a");
    EXPECT_DEATH(op.outputShape({{1, 2}, {1, 3}}), "mismatched");
}

TEST(Ops, ConvOutputShape)
{
    Conv2d op("c", 3, 64, 7, 2, 3);
    EXPECT_EQ(op.outputShape({{1, 3, 224, 224}}),
              (Shape{1, 64, 112, 112}));
}

TEST(Graph, LinearChainExecutes)
{
    Graph g;
    auto relu = std::make_unique<ReLU>("r");
    g.add(std::move(relu), {Graph::kInput});
    Tensor in({1, 3}, std::vector<float>{-1, 0, 2});
    const Tensor out = g.run(in);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[2], 2.0f);
}

TEST(Graph, DiamondResidual)
{
    // input -> relu -> add(input) : residual join of two paths.
    Graph g;
    const auto r = g.add(std::make_unique<ReLU>("r"), {Graph::kInput});
    g.add(std::make_unique<Add>("a"), {r, Graph::kInput});
    Tensor in({1, 2}, std::vector<float>{-3, 2});
    const Tensor out = g.run(in);
    EXPECT_EQ(out[0], -3.0f); // relu(-3)=0 plus -3
    EXPECT_EQ(out[1], 4.0f);  // relu(2)=2 plus 2
}

TEST(GraphDeath, ForwardReferenceRejected)
{
    Graph g;
    EXPECT_DEATH(g.add(std::make_unique<ReLU>("r"), {5}), "undefined");
}

TEST(Builders, ResNet18FlopsMatchTableI)
{
    auto g = buildResNet18();
    // Paper Table I, MAC convention (GFLOPs): 224 -> 1.8, 448 -> 7.3.
    EXPECT_NEAR(g->flops({1, 3, 224, 224}) / 1e9, 1.8, 0.1);
    EXPECT_NEAR(g->flops({1, 3, 112, 112}) / 1e9, 0.5, 0.1);
    EXPECT_NEAR(g->flops({1, 3, 448, 448}) / 1e9, 7.3, 0.3);
}

TEST(Builders, ResNet18FlopsScaleQuadratically)
{
    auto g = buildResNet18();
    const double f224 =
        static_cast<double>(g->flops({1, 3, 224, 224}));
    const double f448 =
        static_cast<double>(g->flops({1, 3, 448, 448}));
    EXPECT_NEAR(f448 / f224, 4.0, 0.2);
}

TEST(Builders, ResNet50FlopsMatchPaper)
{
    auto g = buildResNet50();
    // Paper Section VII: ResNet-50 is 4.1 GFLOPs at 224.
    EXPECT_NEAR(g->flops({1, 3, 224, 224}) / 1e9, 4.1, 0.2);
}

TEST(Builders, MobileNetV2FlopsMatchPaper)
{
    auto g = buildMobileNetV2();
    // Paper Section VII: the scale model costs 0.08 GFLOPs at 112.
    EXPECT_NEAR(g->flops({1, 3, 112, 112}) / 1e9, 0.08, 0.02);
}

TEST(Builders, ParameterCounts)
{
    // Standard parameter counts (BN stats counted as params here, so
    // allow slack above the canonical 11.7M / 25.6M / 3.5M).
    EXPECT_NEAR(buildResNet18()->numParams() / 1e6, 11.7, 0.4);
    EXPECT_NEAR(buildResNet50()->numParams() / 1e6, 25.6, 0.8);
    EXPECT_NEAR(buildMobileNetV2()->numParams() / 1e6, 3.5, 0.4);
}

TEST(Builders, OutputShapeIsClassCount)
{
    auto g = buildResNet18(10);
    EXPECT_EQ(g->outputShape({1, 3, 224, 224}), (Shape{1, 10}));
    EXPECT_EQ(g->outputShape({2, 3, 168, 168}), (Shape{2, 10}));
}

TEST(Builders, ResolutionAgnosticExecution)
{
    // The same graph instance must run at every paper resolution
    // (Section IV-b: no per-resolution backbones). Tiny net for speed.
    auto g = buildTinyCnn(5, 8);
    for (int r : {40, 56, 112}) {
        Tensor in({1, 3, r, r});
        Rng rng(r);
        fillUniform(in, rng, 0.0f, 1.0f);
        const Tensor out = g->run(in);
        EXPECT_EQ(out.shape(), (Shape{1, 5}));
        for (int64_t i = 0; i < out.numel(); ++i)
            EXPECT_TRUE(std::isfinite(out[i]));
    }
}

TEST(Builders, ResNet18RunsAllKernelModes)
{
    KernelSelector &sel = KernelSelector::instance();
    auto g = buildResNet18(4, /*seed=*/3);
    Tensor in({1, 3, 64, 64});
    Rng rng(5);
    fillUniform(in, rng, 0.0f, 1.0f);

    sel.setMode(KernelMode::Library);
    const Tensor lib = g->run(in);
    sel.setMode(KernelMode::Naive);
    const Tensor naive = g->run(in);
    sel.setMode(KernelMode::Library);

    // Different kernels, same math.
    EXPECT_LT(maxAbsDiff(lib, naive), 1e-2f);
}

TEST(Graph, ProfileCoversAllOps)
{
    auto g = buildTinyCnn(3, 4);
    Tensor in({1, 3, 32, 32});
    const auto prof = g->profile(in);
    EXPECT_EQ(prof.size(), g->numOps());
    int64_t flop_sum = 0;
    for (const auto &p : prof)
        flop_sum += p.flops;
    EXPECT_EQ(flop_sum, g->flops(in.shape()));
}

TEST(Graph, VisitShapesEnumeratesConvs)
{
    auto g = buildResNet18();
    int convs = 0;
    g->visitShapes({1, 3, 224, 224},
                   [&](Op &op, const std::vector<Shape> &ins) {
                       if (op.type() == "Conv2d") {
                           ++convs;
                           EXPECT_EQ(ins.size(), 1u);
                       }
                   });
    // ResNet-18: stem + 16 block convs + 3 downsample projections.
    EXPECT_EQ(convs, 20);
}

TEST(Graph, BatchedRunMatchesPerItemRuns)
{
    // The serving studies run batch > 1 through the same graph; a
    // batched forward must be the per-item forwards stacked, for
    // every kernel family a ResNet exercises.
    auto g = buildResNet18(10, /*seed=*/5);
    Rng rng(71);
    constexpr int kBatch = 3;
    Tensor batch({kBatch, 3, 48, 48});
    fillUniform(batch, rng, 0.0f, 1.0f);

    const Tensor got = g->run(batch);
    ASSERT_EQ(got.shape(), (Shape{kBatch, 10}));

    const size_t plane =
        static_cast<size_t>(batch.numel()) / kBatch;
    for (int b = 0; b < kBatch; ++b) {
        Tensor one({1, 3, 48, 48});
        std::copy_n(batch.data() + b * plane, plane, one.data());
        const Tensor want = g->run(one);
        for (int64_t j = 0; j < want.numel(); ++j) {
            EXPECT_NEAR(got.data()[b * want.numel() + j],
                        want.data()[j], 1e-4f)
                << "batch member " << b << " logit " << j;
        }
    }
}

TEST(Graph, ReplaceOpPreservesWiring)
{
    auto g = buildTinyCnn(4, 4, /*seed=*/3);
    Rng rng(73);
    Tensor in({1, 3, 32, 32});
    fillUniform(in, rng, 0.0f, 1.0f);
    const Shape out_shape = g->run(in).shape();

    // Swap the first conv for an identically-shaped fresh one; the
    // graph must still execute with the same topology.
    for (Graph::NodeId id = 1; id < g->numNodes(); ++id) {
        auto *conv = dynamic_cast<Conv2d *>(g->opAt(id));
        if (conv == nullptr)
            continue;
        auto repl = std::make_unique<Conv2d>(
            conv->name() + ".repl", conv->inChannels(),
            conv->outChannels(), conv->kernel(), conv->stride(),
            conv->pad(), conv->groups(), conv->hasBias());
        repl->initKaiming(rng);
        g->replaceOp(id, std::move(repl));
        break;
    }
    EXPECT_EQ(g->run(in).shape(), out_shape);
}

TEST(Graph, ObserverSeesEveryLiveOp)
{
    auto g = buildTinyCnn(4, 4, /*seed=*/9);
    Tensor in({1, 3, 32, 32});
    int seen = 0;
    g->setObserver([&](const Op &,
                       const std::vector<const Tensor *> &ins) {
        ++seen;
        for (const Tensor *t : ins)
            EXPECT_GT(t->numel(), 0);
    });
    g->run(in);
    const int live = static_cast<int>(g->liveNodes().size()) - 1;
    EXPECT_EQ(seen, live);
    // Clearing the observer stops the callbacks.
    g->setObserver(nullptr);
    g->run(in);
    EXPECT_EQ(seen, live);
}

} // namespace
} // namespace tamres
