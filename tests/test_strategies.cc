/**
 * @file
 * Tests for the tuning search strategies (mutation/crossover
 * primitives, annealing, genetic), the analytic cost model, and
 * transfer-tuning seed extraction from the config cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "tuning/cost_model.hh"
#include "tuning/strategies.hh"
#include "nn/builders.hh"
#include "tuning/tuner.hh"
#include "util/rng.hh"

namespace tamres {
namespace {

const ConvProblem kDense{1, 16, 28, 28, 16, 3, 3, 1, 1, 1};
const ConvProblem kDepthwise{1, 16, 28, 28, 16, 3, 3, 1, 1, 16};
const ConvProblem kPointwise{1, 32, 14, 14, 64, 1, 1, 1, 0, 1};

TEST(RandomConfig, AlwaysValidAndCoversFamilies)
{
    Rng rng(1);
    std::map<ConvAlgo, int> seen;
    for (int i = 0; i < 200; ++i) {
        const ConvConfig c = randomConvConfig(kDense, rng);
        ASSERT_TRUE(convConfigValid(kDense, c)) << c.toString();
        ++seen[c.algo];
    }
    // Dense 3x3/stride-1 is eligible for direct, im2col and winograd;
    // a uniform draw must hit all three.
    EXPECT_GT(seen[ConvAlgo::Direct], 0);
    EXPECT_GT(seen[ConvAlgo::Im2col], 0);
    EXPECT_GT(seen[ConvAlgo::Winograd], 0);
    EXPECT_EQ(seen[ConvAlgo::Depthwise], 0);
}

TEST(RandomConfig, DepthwiseProblemDrawsDepthwiseFamily)
{
    Rng rng(2);
    std::map<ConvAlgo, int> seen;
    for (int i = 0; i < 100; ++i)
        ++seen[randomConvConfig(kDepthwise, rng).algo];
    EXPECT_GT(seen[ConvAlgo::Depthwise], 0);
    EXPECT_GT(seen[ConvAlgo::Direct], 0);
    EXPECT_EQ(seen[ConvAlgo::Im2col], 0);
    EXPECT_EQ(seen[ConvAlgo::Winograd], 0);
}

TEST(RandomConfig, PointwiseProblemNeverDrawsWinograd)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_NE(randomConvConfig(kPointwise, rng).algo,
                  ConvAlgo::Winograd);
}

TEST(MutateConfig, StaysValidAndUsuallyLocal)
{
    Rng rng(4);
    ConvConfig cfg = randomConvConfig(kDense, rng);
    int family_jumps = 0;
    for (int i = 0; i < 300; ++i) {
        const ConvConfig next = mutateConvConfig(kDense, cfg, rng);
        ASSERT_TRUE(convConfigValid(kDense, next)) << next.toString();
        if (next.algo != cfg.algo)
            ++family_jumps;
        cfg = next;
    }
    // Family jumps are the exploration escape hatch: present but rare.
    EXPECT_GT(family_jumps, 0);
    EXPECT_LT(family_jumps, 150);
}

TEST(MutateConfig, ProducesDifferentConfigsOverTime)
{
    Rng rng(5);
    const ConvConfig base = randomConvConfig(kDense, rng);
    int changed = 0;
    for (int i = 0; i < 50; ++i) {
        if (!(mutateConvConfig(kDense, base, rng) == base))
            ++changed;
    }
    EXPECT_GT(changed, 25);
}

TEST(CrossoverConfig, ChildIsValidAndInheritsKnobs)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        const ConvConfig a = randomConvConfig(kDense, rng);
        const ConvConfig b = randomConvConfig(kDense, rng);
        const ConvConfig child = crossoverConvConfig(kDense, a, b, rng);
        ASSERT_TRUE(convConfigValid(kDense, child));
        EXPECT_TRUE(child.algo == a.algo || child.algo == b.algo);
    }
}

/**
 * Synthetic fitness landscape so strategy tests need no wall-clock
 * measurement: a deterministic "runtime" per config with a unique
 * basin (im2col, mc=64, kc=128, nc=512, mr=4, nr=8 is the optimum).
 */
double
syntheticFitness(const ConvConfig &c)
{
    double s = 1.0;
    if (c.algo != ConvAlgo::Im2col)
        s += 0.5;
    s += 0.01 * std::abs(c.mc - 64);
    s += 0.004 * std::abs(c.kc - 128);
    s += 0.0005 * std::abs(c.nc - 512);
    s += 0.05 * std::abs(c.mr - 4);
    s += 0.05 * std::abs(c.nr - 8);
    return s;
}

TEST(AnnealSearch, ImprovesOnSeedsUnderSyntheticLandscape)
{
    std::vector<ConvConfig> seeds;
    ConvConfig bad;
    bad.algo = ConvAlgo::Direct;
    bad.oc_tile = 1;
    bad.ow_tile = 4;
    seeds.push_back(bad);

    StrategyBudget budget;
    budget.measurements = 120;
    budget.seed = 17;
    int calls = 0;
    const StrategyResult r = annealSearch(
        kDense, seeds,
        [&](const ConvConfig &c) {
            ++calls;
            return syntheticFitness(c);
        },
        budget);
    EXPECT_EQ(calls, r.measured);
    EXPECT_LE(r.measured, budget.measurements);
    EXPECT_LT(r.best_seconds, syntheticFitness(bad));
    // The basin should be found: im2col family at least.
    EXPECT_EQ(r.best.algo, ConvAlgo::Im2col);
}

TEST(GeneticSearch, ImprovesOnSeedsUnderSyntheticLandscape)
{
    std::vector<ConvConfig> seeds;
    ConvConfig bad;
    bad.algo = ConvAlgo::Direct;
    bad.oc_tile = 1;
    bad.ow_tile = 4;
    seeds.push_back(bad);

    StrategyBudget budget;
    budget.measurements = 120;
    budget.seed = 23;
    const StrategyResult r = geneticSearch(
        kDense, seeds,
        [](const ConvConfig &c) { return syntheticFitness(c); },
        budget);
    EXPECT_LE(r.measured, budget.measurements);
    EXPECT_LT(r.best_seconds, syntheticFitness(bad));
    EXPECT_EQ(r.best.algo, ConvAlgo::Im2col);
}

// Local helper giving the budget test a deterministic seed config.
ConvConfig
KernelSelector_defaultSeed()
{
    ConvConfig c;
    c.algo = ConvAlgo::Im2col;
    return c;
}

TEST(StrategyBudgets, MeasurementCountRespected)
{
    for (int budget_n : {1, 3, 10}) {
        StrategyBudget budget;
        budget.measurements = budget_n;
        int calls = 0;
        annealSearch(
            kDense, {KernelSelector_defaultSeed()},
            [&](const ConvConfig &) {
                ++calls;
                return 1.0;
            },
            budget);
        EXPECT_LE(calls, budget_n);
    }
}

TEST(TuneNetworkGrid, TunesEveryResolutionWithTransferSeeds)
{
    const std::string path = "/tmp/tamres_test_grid_cache.txt";
    std::remove(path.c_str());
    {
        ConfigCache cache(path);
        AutoTuner tuner(&cache);
        auto g = buildResNet18(4, 3);
        TuneOptions opts;
        opts.trials = 3;
        opts.reps = 1;
        opts.time_budget_s = 60.0;
        // Two tiny resolutions keep the measurement cost trivial.
        tuner.tuneNetworkGrid(*g, {32, 48}, opts);
        // Every conv problem at both resolutions must now be cached.
        for (const int r : {32, 48}) {
            for (const ConvProblem &p : AutoTuner::convProblems(
                     *g, {1, 3, r, r})) {
                ConvConfig cfg;
                EXPECT_TRUE(cache.lookup(p, cfg)) << p.key();
            }
        }
    }
    std::remove(path.c_str());
}

TEST(TuneNetworkGridDeath, RequiresCache)
{
    AutoTuner tuner; // no cache
    auto g = buildResNet18(4, 3);
    TuneOptions opts;
    EXPECT_DEATH(tuner.tuneNetworkGrid(*g, {32}, opts), "cache");
}

// --- Cost model ---

TEST(CostModel, PredictionsPositiveAndFinite)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        const ConvConfig c = randomConvConfig(kDense, rng);
        const double s = predictConvSeconds(kDense, c);
        EXPECT_GT(s, 0.0) << c.toString();
        EXPECT_LT(s, 1e3) << c.toString();
    }
}

TEST(CostModel, ReferenceAlgoPredictedSlowest)
{
    ConvConfig ref;
    ref.algo = ConvAlgo::Reference;
    ConvConfig im2col;
    im2col.algo = ConvAlgo::Im2col;
    EXPECT_GT(predictConvSeconds(kDense, ref),
              predictConvSeconds(kDense, im2col));
}

TEST(CostModel, BiggerProblemPredictedSlower)
{
    ConvConfig c;
    c.algo = ConvAlgo::Im2col;
    ConvProblem small = kDense;
    ConvProblem big = kDense;
    big.ih = big.iw = 112;
    EXPECT_GT(predictConvSeconds(big, c), predictConvSeconds(small, c));
}

TEST(CostModel, PoorMicroKernelPredictedSlower)
{
    ConvProblem p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1};
    ConvConfig good;
    good.algo = ConvAlgo::Im2col;
    good.mr = 4;
    good.nr = 16;
    ConvConfig poor = good;
    poor.mr = 2;
    poor.nr = 4;
    EXPECT_GT(predictConvSeconds(p, poor), predictConvSeconds(p, good));
}

TEST(CostModel, OversizedCacheBlocksPenalized)
{
    ConvProblem p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1};
    ConvConfig fits;
    fits.algo = ConvAlgo::Im2col;
    fits.mc = 64;
    fits.kc = 128;
    ConvConfig spills = fits;
    spills.mc = 128;
    spills.kc = 512; // A block = 256 KiB > typical L2 share
    MachineModel mm;
    mm.l2_bytes = 128 * 1024;
    EXPECT_GT(predictConvSeconds(p, spills, mm),
              predictConvSeconds(p, fits, mm));
}

TEST(CostModel, RankOrdersInvalidLast)
{
    std::vector<ConvConfig> configs(3);
    configs[0].algo = ConvAlgo::Im2col;
    configs[1].algo = ConvAlgo::Winograd; // invalid for pointwise
    configs[2].algo = ConvAlgo::Direct;
    const std::vector<int> order =
        rankByPredictedCost(kPointwise, configs);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.back(), 1);
}

TEST(CostModel, RankingCorrelatesWithMeasurementOnSmallShape)
{
    // Structural sanity: the model's top pick from a diverse set must
    // measure within a small factor of the measured best. (Loose: the
    // model is a pre-ranker, not an oracle.)
    const ConvProblem p{1, 32, 28, 28, 32, 3, 3, 1, 1, 1};
    Rng rng(9);
    std::vector<ConvConfig> configs;
    for (int i = 0; i < 10; ++i)
        configs.push_back(randomConvConfig(p, rng));
    const std::vector<int> order = rankByPredictedCost(p, configs);

    double best_measured = 1e30, top_pick_measured = 0.0;
    for (size_t i = 0; i < configs.size(); ++i) {
        const double t = measureConv(p, configs[i], 2).seconds;
        best_measured = std::min(best_measured, t);
        if (static_cast<int>(i) == order[0])
            top_pick_measured = t;
    }
    EXPECT_LT(top_pick_measured, 6.0 * best_measured);
}

// --- Transfer seeds ---

TEST(TransferSeeds, SiblingsMatchLayerAcrossResolutions)
{
    const std::string path = "/tmp/tamres_test_cache_siblings.txt";
    std::remove(path.c_str());
    ConfigCache cache(path);

    const ConvProblem at224{1, 64, 56, 56, 64, 3, 3, 1, 1, 1};
    const ConvProblem at280{1, 64, 70, 70, 64, 3, 3, 1, 1, 1};
    const ConvProblem other_layer{1, 128, 56, 56, 128, 3, 3, 1, 1, 1};

    ConvConfig cfg;
    cfg.algo = ConvAlgo::Im2col;
    cfg.nc = 1024;
    cache.store(at224, cfg, 5.0);
    cache.store(other_layer, cfg, 5.0);

    const auto seeds = cache.siblings(at280);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0].nc, 1024);

    // The problem itself is not its own sibling.
    EXPECT_TRUE(cache.siblings(at224).empty());
    std::remove(path.c_str());
}

TEST(TransferSeeds, PersistAcrossReload)
{
    const std::string path = "/tmp/tamres_test_cache_reload.txt";
    std::remove(path.c_str());
    {
        ConfigCache cache(path);
        ConvConfig cfg;
        cfg.algo = ConvAlgo::Winograd;
        cfg.wino_tile_block = 512;
        cache.store(ConvProblem{1, 64, 56, 56, 64, 3, 3, 1, 1, 1}, cfg,
                    7.5);
    }
    ConfigCache reloaded(path);
    const ConvProblem sibling{1, 64, 84, 84, 64, 3, 3, 1, 1, 1};
    const auto seeds = reloaded.siblings(sibling);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0].algo, ConvAlgo::Winograd);
    EXPECT_EQ(seeds[0].wino_tile_block, 512);
    std::remove(path.c_str());
}

TEST(CacheFormat, WinogradRoundTripsThroughFile)
{
    const std::string path = "/tmp/tamres_test_cache_wino.txt";
    std::remove(path.c_str());
    const ConvProblem p{1, 16, 28, 28, 16, 3, 3, 1, 1, 1};
    ConvConfig cfg;
    cfg.algo = ConvAlgo::Winograd;
    cfg.wino_tile_block = 128;
    cfg.mr = 8;
    cfg.nr = 16;
    {
        ConfigCache cache(path);
        cache.store(p, cfg, 3.25);
    }
    ConfigCache reloaded(path);
    ConvConfig back;
    double gf = 0.0;
    ASSERT_TRUE(reloaded.lookup(p, back, &gf));
    EXPECT_TRUE(back == cfg);
    EXPECT_NEAR(gf, 3.25, 1e-6);
    std::remove(path.c_str());
}

} // namespace
} // namespace tamres
