/**
 * @file
 * Integration tests: the full dynamic-resolution flow — dataset ->
 * progressive store -> calibration -> scale model -> dynamic pipeline —
 * exercised end to end at reduced scale, checking the paper's headline
 * claims qualitatively (dynamic near the static apex, positive read
 * savings at bounded accuracy loss).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hh"

namespace tamres {
namespace {

DatasetSpec
smallSpec()
{
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 170;
    spec.mean_width = 190;
    spec.size_jitter = 0.15;
    return spec;
}

TEST(Integration, CalibratedPolicySavesBytesWithoutAccuracyCollapse)
{
    SyntheticDataset ds(smallSpec(), 48, 77);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    QualityTable table(ds, 0, 48, {112, 224});

    CalibrationOptions opts;
    opts.max_accuracy_loss = 0.011; // scaled to the small sample
    const StoragePolicy policy = calibrate(table, ds, model, opts);

    double total_read = 0.0;
    for (int r = 0; r < 2; ++r) {
        const StorageRow row =
            evalStaticStorage(table, ds, model, r, policy, 0.75);
        EXPECT_GE(row.accuracy_calibrated,
                  row.accuracy_default - opts.max_accuracy_loss - 1e-9);
        total_read += row.read_fraction;
    }
    // Some savings must materialize across the two resolutions.
    EXPECT_LT(total_read / 2, 1.0);
}

TEST(Integration, DynamicNearStaticApex)
{
    // Train the scale model, then verify the dynamic pipeline's
    // accuracy is close to the best static resolution while not
    // costing more FLOPs than the most expensive static point —
    // the Figure 8/9 property.
    SyntheticDataset ds(smallSpec(), 360, 55);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);

    ScaleModelOptions opts;
    opts.epochs = 30;
    const std::vector<int> grid = {112, 168, 224, 280, 336};
    ScaleModel scale(grid, opts);
    scale.train(ds, 0, 280, BackboneArch::ResNet18,
                {0.25, 0.56, 0.75, 1.0}, 128);

    for (const double crop : {0.25, 0.75}) {
        double best_static = 0.0;
        for (int r : grid) {
            best_static = std::max(
                best_static,
                evalStatic(ds, 280, 360, model, r, crop).accuracy);
        }
        const PipelineResult dyn =
            evalDynamic(ds, 280, 360, model, scale, crop, 128);
        // Within a few points of the apex on this small sample.
        EXPECT_GT(dyn.accuracy, best_static - 0.10)
            << "crop " << crop;
        EXPECT_LT(dyn.mean_gflops,
                  backboneGflops(BackboneArch::ResNet18, 336) +
                      scaleModelGflops() + 1e-9);
    }
}

TEST(Integration, EndToEndStoreToDecision)
{
    SyntheticDataset ds(smallSpec(), 20, 99);
    ObjectStore store;
    ds.ingest(store, 0, 20);
    EXPECT_EQ(store.size(), 20u);

    // Calibrate on the first half.
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    QualityTable table(ds, 0, 10, {112, 224});
    CalibrationOptions copts;
    copts.max_accuracy_loss = 0.02;
    const StoragePolicy policy = calibrate(table, ds, model, copts);

    ScaleModelOptions sopts;
    sopts.epochs = 10;
    ScaleModel scale({112, 224}, sopts);
    scale.train(ds, 0, 10, BackboneArch::ResNet18, {0.75}, 96);

    DynamicPipeline::Config cfg;
    cfg.resolutions = {112, 224};
    cfg.policy = policy;
    cfg.crop_area = 0.75;
    DynamicPipeline pipe(store, scale, cfg);

    store.resetStats();
    uint64_t bytes = 0;
    for (int i = 10; i < 20; ++i) {
        const auto d = pipe.process(ds.record(i).id);
        bytes += d.bytes_read;
        EXPECT_GT(d.resolution, 0);
    }
    EXPECT_EQ(store.stats().bytes_read, bytes);
    // The pipeline must not read everything for every image.
    EXPECT_LT(store.stats().relativeReadSize(), 1.0 + 1e-9);
}

TEST(Integration, CodecModesComposeWithPipeline)
{
    // Ingest the same dataset under the default codec and under the
    // compact configuration (successive approximation + YCbCr 4:2:0 +
    // Huffman); both stores must drive the full calibrate -> scale
    // model -> dynamic pipeline flow, and the compact store must move
    // strictly fewer absolute bytes for the same requests.
    SyntheticDataset ds(smallSpec(), 20, 123);

    ProgressiveConfig compact;
    compact.quality = ds.spec().encode_quality;
    compact.scans = ProgressiveConfig::successiveScans();
    compact.color = ColorMode::YCbCr420;
    compact.entropy = EntropyCoder::Huffman;

    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    ScaleModelOptions sopts;
    sopts.epochs = 10;
    ScaleModel scale({112, 224}, sopts);
    scale.train(ds, 0, 10, BackboneArch::ResNet18, {0.75}, 96);

    uint64_t bytes[2] = {0, 0};
    for (const bool use_compact : {false, true}) {
        ObjectStore store;
        if (use_compact)
            ds.ingest(store, 0, 20, compact);
        else
            ds.ingest(store, 0, 20);

        CalibrationOptions copts;
        copts.max_accuracy_loss = 0.02;
        const StoragePolicy policy =
            use_compact
                ? calibrate(QualityTable(ds, 0, 10, {112, 224},
                                         compact),
                            ds, model, copts)
                : calibrate(QualityTable(ds, 0, 10, {112, 224}), ds,
                            model, copts);

        DynamicPipeline::Config cfg;
        cfg.resolutions = {112, 224};
        cfg.policy = policy;
        cfg.crop_area = 0.75;
        DynamicPipeline pipe(store, scale, cfg);
        for (int i = 10; i < 20; ++i) {
            const auto d = pipe.process(ds.record(i).id);
            EXPECT_GT(d.resolution, 0);
            EXPECT_GT(d.bytes_read, 0u);
            bytes[use_compact] += d.bytes_read;
        }
    }
    EXPECT_LT(bytes[1], bytes[0])
        << "compact codec config should move fewer bytes end to end";
}

TEST(Integration, DynamicStorageRowBoundedBy112Reads)
{
    // Paper Section VII-b: dynamic read savings are bounded by the
    // bytes the 112 preview needs — the preview is always fetched.
    SyntheticDataset ds(smallSpec(), 30, 31);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    QualityTable table(ds, 0, 30, {112, 224});
    CalibrationOptions copts;
    copts.max_accuracy_loss = 0.02;
    const StoragePolicy policy = calibrate(table, ds, model, copts);

    ScaleModelOptions sopts;
    sopts.epochs = 8;
    ScaleModel scale({112, 224}, sopts);
    scale.train(ds, 0, 30, BackboneArch::ResNet18, {0.75}, 96);

    const StorageRow dyn = evalDynamicStorage(table, ds, model, scale,
                                              policy, 0.75);

    // Mean 112-policy read fraction lower-bounds the dynamic reads.
    double read112 = 0.0;
    for (int i = 0; i < table.numImages(); ++i) {
        const int k =
            table.scansForThreshold(i, 0, policy.thresholdFor(0));
        read112 += table.entry(i).read_fraction[k];
    }
    read112 /= table.numImages();
    EXPECT_GE(dyn.read_fraction, read112 - 1e-9);
    EXPECT_LE(dyn.read_fraction, 1.0 + 1e-9);
}

} // namespace
} // namespace tamres
