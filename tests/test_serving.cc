/**
 * @file
 * Tests for graph passes (batch-norm folding), cost-aware resolution
 * selection, and the discrete-event serving simulator.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/serving.hh"
#include "nn/ops.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "tensor/tensor_ops.hh"

namespace tamres {
namespace {

TEST(FoldBatchNorms, PreservesResNetOutputs)
{
    auto g = buildResNet18(8, /*seed=*/5);
    Tensor in({1, 3, 64, 64});
    Rng rng(3);
    fillUniform(in, rng, 0.0f, 1.0f);
    const Tensor before = g->run(in);

    const int folded = foldBatchNorms(*g);
    // ResNet-18: stem + 16 block + 3 downsample batch norms.
    EXPECT_EQ(folded, 20);

    const Tensor after = g->run(in);
    EXPECT_LT(maxAbsDiff(before, after), 2e-3f);
}

TEST(FoldBatchNorms, PreservesMobileNetOutputs)
{
    auto g = buildMobileNetV2(8, /*seed=*/9);
    Tensor in({1, 3, 64, 64});
    Rng rng(4);
    fillUniform(in, rng, 0.0f, 1.0f);
    const Tensor before = g->run(in);
    EXPECT_GT(foldBatchNorms(*g), 30);
    const Tensor after = g->run(in);
    // 52 folded layers deep: fp32 accumulation drift is larger than
    // for ResNet-18.
    EXPECT_LT(maxAbsDiff(before, after), 2e-2f);
}

TEST(FoldBatchNorms, FoldingSpeedsUpOrMatches)
{
    // Folding removes a full feature-map traversal per conv; live-node
    // execution must shrink.
    auto g = buildResNet18(8, 5);
    const size_t live_before = g->liveNodes().size();
    foldBatchNorms(*g);
    const size_t live_after = g->liveNodes().size();
    EXPECT_EQ(live_before - live_after, 20u);
}

TEST(OptimizeForInference, ReachesFixpointWithOneInvalidation)
{
    auto g = buildResNet18(8, /*seed=*/5);
    Tensor in({1, 3, 64, 64});
    Rng rng(7);
    fillUniform(in, rng, 0.0f, 1.0f);
    const Tensor before = g->run(in);

    // Running the plan once above compiled it; the unified entry
    // point must bump the plan version EXACTLY once no matter how
    // many rewires its passes perform.
    const uint64_t v0 = g->planVersion();
    const OptimizeStats s1 = optimizeForInference(*g);
    EXPECT_EQ(s1.bn_folded, 20);
    EXPECT_GT(s1.relu_fused, 0);
    EXPECT_GE(s1.rounds, 1);
    EXPECT_EQ(g->planVersion(), v0 + 1)
        << "optimizeForInference must invalidate plans exactly once";

    const Tensor after = g->run(in);
    EXPECT_LT(maxAbsDiff(before, after), 2e-3f);

    // Pass idempotence: a second run rewrites nothing, converges in
    // one round, and still costs exactly one (harmless) bump.
    const OptimizeStats s2 = optimizeForInference(*g);
    EXPECT_EQ(s2.total(), 0);
    EXPECT_EQ(s2.rounds, 1);
    EXPECT_EQ(g->planVersion(), v0 + 2);
    const Tensor again = g->run(in);
    EXPECT_EQ(maxAbsDiff(after, again), 0.0f)
        << "idempotent rerun changed the graph";
}

TEST(QuantizeConvs, BumpsPlanVersionExactlyOnceAndIsIdempotent)
{
    auto g = buildResNet18(8, /*seed=*/5);
    Tensor in({1, 3, 64, 64});
    Rng rng(7);
    fillUniform(in, rng, 0.0f, 1.0f);
    optimizeForInference(*g);
    g->run(in); // compile a plan so the bump is observable

    // The rewrite loop runs under one PlanInvalidationDefer: however
    // many convs it replaces, the plan version moves exactly once.
    const uint64_t v0 = g->planVersion();
    const int rewritten = quantizeConvs(*g);
    EXPECT_GT(rewritten, 0);
    EXPECT_EQ(g->planVersion(), v0 + 1)
        << "quantizeConvs must invalidate plans exactly once";

    // Idempotence: nothing left to rewrite, and a no-op call must
    // not bump plan versions at all (no spurious replans while
    // executors serve).
    const int again = quantizeConvs(*g);
    EXPECT_EQ(again, 0);
    EXPECT_EQ(g->planVersion(), v0 + 1)
        << "a no-op quantizeConvs call must not invalidate plans";

    // quantizeGraph composes the passes: each bumps at most once.
    auto h = buildResNet18(8, /*seed=*/5);
    h->run(in);
    const uint64_t hv0 = h->planVersion();
    const int hq = quantizeGraph(*h);
    EXPECT_EQ(hq, rewritten);
    EXPECT_EQ(h->planVersion(), hv0 + 2)
        << "quantizeGraph = optimizeForInference (one bump) + "
           "quantizeConvs (one bump)";
    EXPECT_EQ(quantizeGraph(*h), 0);
    EXPECT_EQ(h->planVersion(), hv0 + 3)
        << "idempotent rerun: optimizeForInference's harmless bump "
           "only, no quantizeConvs bump";
}

TEST(OptimizeForInference, MatchesManualPassPipeline)
{
    // The unified entry point must produce the same graph (bitwise
    // outputs) as the historical foldBatchNorms + fuseConvRelu
    // sequence on an identically seeded twin.
    auto a = buildMobileNetV2(8, /*seed=*/9);
    auto b = buildMobileNetV2(8, /*seed=*/9);
    const OptimizeStats s = optimizeForInference(*a);
    EXPECT_EQ(s.bn_folded, foldBatchNorms(*b));
    EXPECT_EQ(s.relu_fused, fuseConvRelu(*b));

    Tensor in({1, 3, 64, 64});
    Rng rng(5);
    fillUniform(in, rng, 0.0f, 1.0f);
    const Tensor out_a = a->run(in);
    const Tensor out_b = b->run(in);
    EXPECT_EQ(maxAbsDiff(out_a, out_b), 0.0f);
}

TEST(FoldBatchNorms, IdempotentSecondPass)
{
    auto g = buildResNet18(8, 5);
    EXPECT_EQ(foldBatchNorms(*g), 20);
    EXPECT_EQ(foldBatchNorms(*g), 0);
}

TEST(FuseConvRelu, PreservesResNetOutputs)
{
    auto g = buildResNet18(8, /*seed=*/5);
    Tensor in({1, 3, 64, 64});
    Rng rng(3);
    fillUniform(in, rng, 0.0f, 1.0f);
    foldBatchNorms(*g);
    const Tensor before = g->run(in);

    const int fused = fuseConvRelu(*g);
    // Every block's first conv + the stem fuse; second-in-block convs
    // feed the residual Add pre-activation, so their ReLU follows the
    // Add and must not fuse.
    EXPECT_GT(fused, 8);

    const Tensor after = g->run(in);
    EXPECT_LT(maxAbsDiff(before, after), 1e-5f);
}

TEST(FuseConvRelu, PreservesMobileNetOutputs)
{
    auto g = buildMobileNetV2(8, /*seed=*/9);
    Tensor in({1, 3, 64, 64});
    Rng rng(4);
    fillUniform(in, rng, 0.0f, 1.0f);
    foldBatchNorms(*g);
    const Tensor before = g->run(in);
    EXPECT_GT(fuseConvRelu(*g), 20);
    const Tensor after = g->run(in);
    EXPECT_LT(maxAbsDiff(before, after), 1e-5f);
}

TEST(FuseConvRelu, ShrinksLiveGraphAndIsIdempotent)
{
    auto g = buildResNet18(8, 5);
    foldBatchNorms(*g);
    const size_t live_before = g->liveNodes().size();
    const int fused = fuseConvRelu(*g);
    EXPECT_EQ(live_before - g->liveNodes().size(),
              static_cast<size_t>(fused));
    EXPECT_EQ(fuseConvRelu(*g), 0);
}

TEST(FuseConvRelu, SharedConvOutputNotFused)
{
    // conv feeds both a ReLU and an Add (residual-style): fusing
    // would corrupt the Add's input, so the pass must skip it.
    Graph g;
    auto conv = std::make_unique<Conv2d>("c", 3, 3, 3, 1, 1);
    Rng rng(7);
    conv->initKaiming(rng);
    const auto c = g.add(std::move(conv), {Graph::kInput});
    const auto r = g.add(std::make_unique<ReLU>("r"), {c});
    const auto a = g.add(std::make_unique<Add>("a"), {c, r});
    g.setOutput(a);

    Tensor in({1, 3, 16, 16});
    fillUniform(in, rng, -1.0f, 1.0f);
    const Tensor before = g.run(in);
    EXPECT_EQ(fuseConvRelu(g), 0);
    const Tensor after = g.run(in);
    EXPECT_LT(maxAbsDiff(before, after), 1e-7f);
}

TEST(GraphRewire, DeadNodesSkipped)
{
    Graph g;
    const auto r1 = g.add(std::make_unique<ReLU>("r1"), {Graph::kInput});
    const auto r2 = g.add(std::make_unique<ReLU>("r2"), {r1});
    g.setOutput(r2);
    g.rewire(r1, Graph::kInput); // r1 becomes dead
    EXPECT_EQ(g.liveNodes().size(), 2u); // input + r2
    Tensor in({1, 2}, std::vector<float>{-1, 3});
    const Tensor out = g.run(in);
    EXPECT_EQ(out[1], 3.0f);
}

TEST(CostAware, LambdaZeroMatchesPlainArgmax)
{
    SyntheticDataset ds(imagenetLike(), 40, 3);
    ScaleModelOptions opts;
    opts.epochs = 8;
    ScaleModel scale({112, 224, 448}, opts);
    scale.train(ds, 0, 30, BackboneArch::ResNet18, {0.75}, 96);
    const std::vector<double> costs = {0.5, 1.8, 7.3};
    for (int i = 30; i < 40; ++i) {
        const Image preview = ds.renderAt(i, 96);
        EXPECT_EQ(scale.chooseResolutionIndexCostAware(preview, 0.0,
                                                       costs),
                  scale.chooseResolutionIndex(preview));
    }
}

TEST(CostAware, LargeLambdaPicksCheapest)
{
    SyntheticDataset ds(imagenetLike(), 20, 3);
    ScaleModelOptions opts;
    opts.epochs = 4;
    ScaleModel scale({112, 224, 448}, opts);
    scale.train(ds, 0, 16, BackboneArch::ResNet18, {0.75}, 96);
    const std::vector<double> costs = {0.5, 1.8, 7.3};
    for (int i = 16; i < 20; ++i) {
        const Image preview = ds.renderAt(i, 96);
        EXPECT_EQ(scale.chooseResolutionIndexCostAware(preview, 100.0,
                                                       costs),
                  0);
    }
}

TEST(Serving, DeterministicForSeed)
{
    ServingConfig cfg{.arrival_rate_hz = 10, .num_requests = 100,
                      .seed = 5};
    auto policy = [](int, int) { return std::make_pair(224, 0.05); };
    const auto a = simulateServing(cfg, policy);
    const auto b = simulateServing(cfg, policy);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].finish_s, b[i].finish_s);
}

TEST(Serving, FifoInvariants)
{
    ServingConfig cfg{.arrival_rate_hz = 20, .num_requests = 200,
                      .seed = 9};
    auto policy = [](int, int) { return std::make_pair(224, 0.03); };
    const auto reqs = simulateServing(cfg, policy);
    double prev_finish = 0.0;
    double prev_arrival = 0.0;
    for (const auto &r : reqs) {
        EXPECT_GE(r.arrival_s, prev_arrival);   // arrivals ordered
        EXPECT_GE(r.start_s, r.arrival_s);      // no time travel
        EXPECT_GE(r.start_s, prev_finish);      // single server
        EXPECT_GT(r.finish_s, r.start_s);
        prev_finish = r.finish_s;
        prev_arrival = r.arrival_s;
    }
}

TEST(Serving, StatsSaneUnderLightLoad)
{
    // Service much faster than arrivals: no queueing.
    ServingConfig cfg{.arrival_rate_hz = 1, .num_requests = 300,
                      .seed = 2};
    auto policy = [](int, int) { return std::make_pair(112, 0.001); };
    const auto stats =
        ServingStats::fromRequests(simulateServing(cfg, policy));
    EXPECT_NEAR(stats.mean_latency_s, 0.001, 1e-4);
    EXPECT_LT(stats.mean_queueing_s, 1e-4);
    EXPECT_LT(stats.utilization, 0.05);
}

TEST(Serving, OverloadGrowsQueueing)
{
    // Service slower than arrivals: queueing must dominate latency.
    ServingConfig cfg{.arrival_rate_hz = 20, .num_requests = 300,
                      .seed = 2};
    auto policy = [](int, int) { return std::make_pair(448, 0.1); };
    const auto stats =
        ServingStats::fromRequests(simulateServing(cfg, policy));
    EXPECT_GT(stats.mean_queueing_s, 1.0);
    EXPECT_GT(stats.utilization, 0.95);
}

TEST(Serving, LoadSheddingBoundsLatency)
{
    // The Section VIII-a mechanism: a load-aware dynamic policy drops
    // to a cheap resolution when the queue builds, bounding p99 vs. a
    // static policy at the expensive resolution.
    ServingConfig cfg{.arrival_rate_hz = 15, .num_requests = 500,
                      .seed = 7};
    auto static_policy = [](int, int) {
        return std::make_pair(336, 0.08);
    };
    auto shedding_policy = [](int, int depth) {
        return depth > 3 ? std::make_pair(112, 0.012)
                         : std::make_pair(336, 0.08);
    };
    const auto s_static =
        ServingStats::fromRequests(simulateServing(cfg, static_policy));
    const auto s_shed = ServingStats::fromRequests(
        simulateServing(cfg, shedding_policy));
    EXPECT_LT(s_shed.p99_latency_s, s_static.p99_latency_s * 0.5);
}

TEST(ServingDeath, BadConfig)
{
    ServingConfig cfg{.arrival_rate_hz = 0, .num_requests = 1};
    EXPECT_DEATH(simulateServing(
                     cfg, [](int, int) { return std::make_pair(1, 0.0); }),
                 "positive");
}

} // namespace
} // namespace tamres
