/**
 * @file
 * Goodput and tail latency under the overload control plane — the
 * chaos harness for PR 7's breaker + hedged-read + brownout stack,
 * emitted as machine-readable BENCH_overload.json (fields documented
 * in bench/bench_common.hh) and gated by tools/bench_gate.py, which
 * gates the per-leg p99 lower-is-better.
 *
 * A decision-only staged engine serves the same closed-loop request
 * mix through a FaultyObjectStore under four legs, two comparisons:
 *
 *   tail_base    latency-tail-only injection, retries only — the
 *                fetch-bound tail baseline;
 *   tail_hedge   same injection + hedged stage-1/4 reads — the
 *                backup fetch redraws the latency fault, so the
 *                hedge should cut the fetch-bound p99;
 *   retry_only   the HEAVY mix (transients + truncation + corruption
 *                + tails, well past the retry budget) with only the
 *                PR 6 defenses: bounded retries with backoff;
 *   full         the same heavy mix with the whole control plane:
 *                BreakerObjectStore (fail-fast instead of hopeless
 *                backoff), hedged reads, and the brownout controller
 *                shedding scan depth / resolution under pressure
 *                (max_tier = 2: the bench measures quality shedding,
 *                not admission rejection, so every request is
 *                served).
 *
 * Headline ratios (both higher-is-better, CI-gated):
 *   overload_goodput_gain   full goodput / retry_only goodput —
 *                           the ISSUE acceptance target is >= 2;
 *   hedge_p99_gain          tail_base p99 / tail_hedge p99 — > 1
 *                           means hedging cut the fetch-bound tail.
 *
 * Every leg hard-checks terminal conservation (admitted == done +
 * degraded + failed + expired + shed + rejected) — the bench doubles
 * as an end-to-end liveness check for the control plane.
 *
 * Budget knobs: TAMRES_ENGINE_REQS (closed-loop requests per leg).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "storage/breaker.hh"
#include "storage/fault_injection.hh"

using namespace tamres;

namespace {

struct Leg
{
    const char *name;
    FaultPolicy policy;
    bool hedge = false;
    bool breaker = false;
    bool brownout = false;
};

struct LegResult
{
    uint64_t done = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    double goodput_rps = 0.0;
    double p99_ms = 0.0;
    StagedStats stats;
    ReadStats store_stats;
};

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(
        v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
    return v[idx];
}

} // namespace

int
main()
{
    bench::banner("overload_control",
                  "staged-pipeline goodput and tail latency under "
                  "the breaker + hedge + brownout control plane");
    const int requests = bench::engineRequests();

    // --- Stored objects + trained scale model ----------------------
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 224;
    spec.mean_width = 224;
    SyntheticDataset ds(spec, 48, 7);
    ScaleModelOptions sopts;
    sopts.epochs = 6;
    ScaleModel scale({112, 168, 224}, sopts);
    scale.train(ds, 0, 32, BackboneArch::ResNet18, {0.75}, 96);

    constexpr int kObjects = 6;
    ObjectStore store;
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    for (int i = 0; i < kObjects; ++i)
        store.put(static_cast<uint64_t>(i),
                  encodeProgressive(ds.renderAt(i, 256), ccfg));
    const int num_scans = store.peek(0).numScans();

    // --- Injection legs (fixed seed: schedules replay exactly) -----
    FaultPolicy tail_mix; // fetch-bound latency tail, nothing else
    tail_mix.seed = 0x0EED;
    tail_mix.latency_tail_p = 0.35;
    tail_mix.latency_tail_scale_s = 0.02;
    tail_mix.latency_max_s = 0.08;

    FaultPolicy heavy_mix; // well past the retry budget's comfort
    heavy_mix.seed = 0x0EED;
    heavy_mix.transient_p = 0.5;
    heavy_mix.truncate_p = 0.15;
    heavy_mix.corrupt_p = 0.15;
    heavy_mix.latency_tail_p = 0.35;
    heavy_mix.latency_tail_scale_s = 0.02;
    heavy_mix.latency_max_s = 0.08;

    std::vector<Leg> legs(4);
    legs[0] = {"tail_base", tail_mix, false, false, false};
    legs[1] = {"tail_hedge", tail_mix, true, false, false};
    legs[2] = {"retry_only", heavy_mix, false, false, false};
    legs[3] = {"full", heavy_mix, true, true, true};

    auto run_leg = [&](const Leg &leg) {
        FaultyObjectStore faulty(store, leg.policy);
        // The breaker must ride along without firing on this mix: a
        // 50% transient rate is still survivable by retry, and
        // tripping would convert retryable requests into fast
        // failures. It trips only past 80% — a store that is
        // effectively down (examples/brownout_serving drives that
        // regime; here the breaker's cost must be zero).
        BreakerConfig bcfg;
        bcfg.window_s = 0.5;
        bcfg.min_samples = 32;
        bcfg.failure_threshold = 0.8;
        bcfg.cooldown_s = 0.05;
        BreakerObjectStore breaker(faulty, bcfg);
        ObjectStore &tier =
            leg.breaker ? static_cast<ObjectStore &>(breaker)
                        : static_cast<ObjectStore &>(faulty);

        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 2;
        cfg.decode_batch = 2;
        cfg.queue_capacity = std::max(64, requests + kObjects);
        cfg.scan_depth = [&](uint64_t, int r_idx) {
            return std::min(num_scans, 2 + r_idx);
        };
        // PR 6 retry defaults: bounded attempts, exponential backoff.
        if (leg.hedge) {
            cfg.overload.hedge.enable = true;
            cfg.overload.hedge.min_delay_s = 1e-3;
            // The injected tail's floor is 20 ms: any fetch still in
            // flight at 4 ms drew a delay, so hedge early.
            cfg.overload.hedge.max_delay_s = 4e-3;
            cfg.overload.hedge.max_per_request = 2;
            cfg.overload.hedge.inflight_budget = 8;
            // Injected delays sleep for tens of ms while holding a
            // pool slot; the default pool (decode_workers + 2) would
            // queue fresh fetches behind sleeping losers.
            cfg.overload.hedge.pool_threads = 12;
        }
        if (leg.brownout) {
            cfg.overload.brownout.enable = true;
            cfg.overload.brownout.window_s = 0.5;
            cfg.overload.brownout.min_samples = 6;
            cfg.overload.brownout.high_pressure = 0.15;
            // Recovery threshold well under the shed steady-state's
            // residual bad fraction (~2% retry give-ups), so the tier
            // holds for the whole storm instead of flapping.
            cfg.overload.brownout.low_pressure = 0.005;
            cfg.overload.brownout.min_dwell_s = 0.12;
            // Engage fast, recover only on sustained health: the
            // 0.5 s window cannot accumulate 64 samples at this
            // service rate, so the tier holds for the whole storm
            // instead of flapping on lucky streaks.
            cfg.overload.brownout.recovery_samples = 64;
            cfg.overload.brownout.recovery_dwell_s = 0.6;
            // Shed to a single-scan, single-fetch request: with
            // scan_cap == preview_cap the resume fetch disappears,
            // halving the request's exposure to transient and tail
            // draws — the biggest quality/latency lever this mix has.
            cfg.overload.brownout.preview_cap = 1;
            cfg.overload.brownout.scan_cap = 1;
            cfg.overload.brownout.max_tier = 2; // serve everything
        }
        StagedServingEngine engine(tier, scale, nullptr, cfg);

        std::vector<StagedRequest> reqs(
            static_cast<size_t>(requests));
        Timer t;
        for (int i = 0; i < requests; ++i) {
            reqs[i].id = static_cast<uint64_t>(i % kObjects);
            engine.submit(reqs[i]);
        }
        for (auto &r : reqs)
            engine.wait(r);
        const double elapsed = t.seconds();

        LegResult res;
        std::vector<double> served_lat;
        for (auto &r : reqs) {
            switch (r.stateNow()) {
            case StagedState::Done:
                ++res.done;
                served_lat.push_back(r.latency_s);
                break;
            case StagedState::Degraded:
                ++res.degraded;
                served_lat.push_back(r.latency_s);
                break;
            case StagedState::Failed:
                ++res.failed;
                break;
            default:
                std::fprintf(stderr,
                             "FAIL: leg %s request ended in state %d "
                             "(no deadline was set)\n",
                             leg.name,
                             static_cast<int>(r.stateNow()));
                std::exit(1);
            }
        }
        res.goodput_rps =
            elapsed > 0
                ? static_cast<double>(res.done + res.degraded) /
                      elapsed
                : 0.0;
        res.p99_ms = percentile(served_lat, 0.99) * 1e3;
        res.stats = engine.stats();
        res.store_stats = tier.stats();

        // Terminal conservation is a hard invariant of the control
        // plane — check it on every leg, not just in unit tests.
        const StagedStats &s = res.stats;
        if (s.admitted != s.done + s.degraded + s.failed + s.expired +
                              s.shed_admission + s.rejected) {
            std::fprintf(
                stderr,
                "FAIL: leg %s breaks terminal conservation "
                "(admitted %llu != %llu)\n",
                leg.name, static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(
                    s.done + s.degraded + s.failed + s.expired +
                    s.shed_admission + s.rejected));
            std::exit(1);
        }
        return res;
    };

    std::vector<LegResult> results;
    for (const Leg &leg : legs) {
        const LegResult r = run_leg(leg);
        std::printf(
            "%-10s goodput %.2f req/s  done %llu  degraded %llu  "
            "failed %llu  p99 %.2f ms  hedges %llu/%llu  trips %llu  "
            "tier %d (drops %llu)\n",
            leg.name, r.goodput_rps,
            static_cast<unsigned long long>(r.done),
            static_cast<unsigned long long>(r.degraded),
            static_cast<unsigned long long>(r.failed), r.p99_ms,
            static_cast<unsigned long long>(r.stats.hedge_wins),
            static_cast<unsigned long long>(r.stats.hedges_issued),
            static_cast<unsigned long long>(
                r.store_stats.breaker_trips),
            r.stats.brownout_tier,
            static_cast<unsigned long long>(r.stats.tier_drops));
        results.push_back(r);
    }

    const double hedge_p99_gain =
        results[1].p99_ms > 0 ? results[0].p99_ms / results[1].p99_ms
                              : 0.0;
    const double goodput_gain =
        results[2].goodput_rps > 0
            ? results[3].goodput_rps / results[2].goodput_rps
            : 0.0;
    std::printf("hedge p99 gain (tail_base/tail_hedge): %.3f\n",
                hedge_p99_gain);
    std::printf("overload goodput gain (full/retry_only): %.3f\n",
                goodput_gain);

    FILE *f = std::fopen("BENCH_overload.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_overload.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"requests\": %d,\n  \"legs\": [\n",
                 requests);
    for (size_t i = 0; i < results.size(); ++i) {
        const Leg &leg = legs[i];
        const LegResult &r = results[i];
        const double n = static_cast<double>(requests);
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"hedge\": %s, \"breaker\": %s, "
            "\"brownout\": %s,\n"
            "     \"goodput_rps\": %.4f, \"done_fraction\": %.4f, "
            "\"degraded_fraction\": %.4f, \"failed_fraction\": %.4f, "
            "\"p99_ms\": %.4f,\n"
            "     \"retries\": %llu, \"retry_giveups\": %llu, "
            "\"hedges_issued\": %llu, \"hedge_wins\": %llu, "
            "\"breaker_trips\": %llu, \"breaker_fast_fails\": %llu, "
            "\"tier_drops\": %llu, \"tier_recoveries\": %llu, "
            "\"brownout_capped\": %llu}%s\n",
            leg.name, leg.hedge ? "true" : "false",
            leg.breaker ? "true" : "false",
            leg.brownout ? "true" : "false", r.goodput_rps, r.done / n,
            r.degraded / n, r.failed / n, r.p99_ms,
            static_cast<unsigned long long>(r.stats.retries),
            static_cast<unsigned long long>(r.stats.retry_giveups),
            static_cast<unsigned long long>(r.stats.hedges_issued),
            static_cast<unsigned long long>(r.stats.hedge_wins),
            static_cast<unsigned long long>(
                r.store_stats.breaker_trips),
            static_cast<unsigned long long>(
                r.store_stats.breaker_fast_fails),
            static_cast<unsigned long long>(r.stats.tier_drops),
            static_cast<unsigned long long>(r.stats.tier_recoveries),
            static_cast<unsigned long long>(r.stats.brownout_capped),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"hedge_p99_gain\": %.4f,\n"
                 "  \"overload_goodput_gain\": %.4f\n}\n",
                 hedge_p99_gain, goodput_gain);
    std::fclose(f);
    std::printf("\nwrote BENCH_overload.json\n");
    return 0;
}
