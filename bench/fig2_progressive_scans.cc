/**
 * @file
 * Reproduces paper Figure 2: a progressively encoded image rendered
 * from increasing scan prefixes, reporting cumulative bytes read and
 * the measured quality (PSNR / SSIM vs. the full decode) per scan.
 */

#include "bench/bench_common.hh"
#include "image/metrics.hh"

using namespace tamres;

int
main()
{
    bench::banner("fig2_progressive_scans",
                  "Figure 2 (progressive scans: cumulative bytes and "
                  "refinement)");

    // One cars-like stored image (the paper's example is a large
    // photo; cars-like images are the larger profile).
    SyntheticDataset ds(carsLike(), 1, 7);
    const Image src = ds.render(0);
    std::printf("source image: %dx%d\n", src.width(), src.height());

    const EncodedImage enc = encodeProgressive(
        src, {.quality = ds.spec().encode_quality});
    const Image full = decodeProgressive(enc);  // lossy ceiling

    TablePrinter table("Figure 2 — per-scan refinement");
    table.setHeader({"scan", "band(zigzag)", "cum.bytes", "frac",
                     "PSNR(dB)", "SSIM"});
    for (int k = 1; k <= enc.numScans(); ++k) {
        const Image dec = decodeProgressive(enc, k);
        const auto &band = enc.scans[k - 1];
        table.addRow({std::to_string(k),
                      std::to_string(band.lo) + "-" +
                          std::to_string(band.hi),
                      std::to_string(enc.bytesForScans(k)),
                      TablePrinter::num(
                          static_cast<double>(enc.bytesForScans(k)) /
                              enc.totalBytes(), 3),
                      TablePrinter::num(psnr(src, dec), 1),
                      TablePrinter::num(ssim(src, dec), 4)});
    }
    table.print();
    std::printf("\ntotal encoded size: %zu bytes; each scan adds "
                "higher-frequency coefficients (cf. paper's 9429.."
                "85259-byte example)\n",
                enc.totalBytes());
    return 0;
}
