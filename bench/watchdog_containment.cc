/**
 * @file
 * Goodput and liveness under WEDGED reads — the chaos harness for the
 * request-lifecycle supervision stack (timed fetches + serving
 * watchdog), emitted as machine-readable BENCH_watchdog.json (fields
 * documented in bench/bench_common.hh) and gated by
 * tools/bench_gate.py (goodput/gain up, p99/stall down).
 *
 * A decision-only staged engine serves the same closed-loop request
 * mix through a FaultyObjectStore whose hang_p wedges a fraction of
 * reads INDEFINITELY (not a tail — the read never returns), under
 * four legs:
 *
 *   clean            supervision on, no faults — the goodput
 *                    baseline;
 *   hang_timed       hangs + the timed-fetch bound (stage_timeout_s):
 *                    wedged reads are abandoned at the stage budget
 *                    and the ladder degrades or recovers — the
 *                    acceptance leg (goodput within 2x of clean);
 *   hang_watchdog    hangs + the watchdog ONLY (no stage timeout):
 *                    the supervisor flags the silent worker at the
 *                    liveness budget and fail-fasts the stuck
 *                    request — slower than the timed bound, but the
 *                    fleet stays live;
 *   hang_unsup       hangs, supervision OFF — the collapse control.
 *                    Workers wedge permanently, so this leg is
 *                    measured over a fixed observation window and
 *                    the wedge is released afterwards (the injector's
 *                    releaseHangs()) purely so teardown can complete.
 *
 * Headline ratio (higher-is-better, CI-gated):
 *   containment_goodput_gain   hang_timed goodput / hang_unsup
 *                              served-rate — supervision holds
 *                              goodput where the control collapses.
 *
 * Every leg hard-checks the EXTENDED terminal conservation identity
 * (admitted == done + degraded + failed + expired + shed + rejected
 * + cancelled) and that drain()/stop() return promptly — the bench
 * doubles as an end-to-end liveness check for the supervision stack.
 *
 * Budget knobs: TAMRES_ENGINE_REQS (closed-loop requests per leg).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "storage/fault_injection.hh"

using namespace tamres;

namespace {

struct Leg
{
    const char *name;
    double hang_p = 0.0;
    bool timed = false;    //!< stage_timeout_s bound on reads
    bool watchdog = false; //!< supervisor thread + liveness budget
};

struct LegResult
{
    uint64_t done = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    double goodput_rps = 0.0;     //!< served-good per second
    double p99_ms = 0.0;          //!< latency p99 over served
    double stalled_fraction = 0.0; //!< not terminal at window close
    double drain_s = 0.0;          //!< drain() + stop() wall time
    StagedStats stats;
    uint64_t faults_hung = 0;
};

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(
        v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
    return v[idx];
}

} // namespace

int
main()
{
    bench::banner("watchdog_containment",
                  "serving goodput and liveness under wedged reads: "
                  "timed-fetch abandonment + watchdog supervision");
    const int requests = bench::engineRequests();
    // The collapse control is measured over this fixed window; the
    // supervised legs must finish their whole mix well inside it.
    constexpr double kWindowS = 6.0;

    // --- Stored objects + trained scale model ----------------------
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 224;
    spec.mean_width = 224;
    SyntheticDataset ds(spec, 48, 7);
    ScaleModelOptions sopts;
    sopts.epochs = 6;
    ScaleModel scale({112, 168, 224}, sopts);
    scale.train(ds, 0, 32, BackboneArch::ResNet18, {0.75}, 96);

    constexpr int kObjects = 6;
    ObjectStore store;
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    for (int i = 0; i < kObjects; ++i)
        store.put(static_cast<uint64_t>(i),
                  encodeProgressive(ds.renderAt(i, 256), ccfg));
    const int num_scans = store.peek(0).numScans();

    std::vector<Leg> legs(4);
    legs[0] = {"clean", 0.0, true, true};
    legs[1] = {"hang_timed", 0.08, true, true};
    legs[2] = {"hang_watchdog", 0.08, false, true};
    legs[3] = {"hang_unsup", 0.08, false, false};

    auto run_leg = [&](const Leg &leg) {
        FaultPolicy policy;
        policy.seed = 0x5AFE;
        policy.hang_p = leg.hang_p;
        FaultyObjectStore faulty(store, policy);

        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 2;
        cfg.decode_batch = 2;
        cfg.queue_capacity = std::max(64, requests + kObjects);
        cfg.scan_depth = [&](uint64_t, int r_idx) {
            return std::min(num_scans, 2 + r_idx);
        };
        // Tight next to the ~5 ms service time: each wedged read
        // costs at most one stage budget of one worker's capacity,
        // which is what keeps the hang leg within 2x of clean.
        if (leg.timed)
            cfg.retry.stage_timeout_s = 0.02;
        if (leg.watchdog) {
            cfg.overload.watchdog.enable = true;
            // Generous next to the 50 ms timed bound so the watchdog
            // is the SECOND line of defense on hang_timed and the
            // only one on hang_watchdog.
            cfg.overload.watchdog.liveness_budget_s = 0.25;
            cfg.overload.watchdog.poll_interval_s = 0.01;
        }
        LegResult res;
        {
            StagedServingEngine engine(faulty, scale, nullptr, cfg);

            std::vector<StagedRequest> reqs(
                static_cast<size_t>(requests));
            Timer t;
            for (int i = 0; i < requests; ++i) {
                reqs[i].id = static_cast<uint64_t>(i % kObjects);
                engine.submit(reqs[i]);
            }
            // Poll instead of wait(): an unsupervised leg with wedged
            // workers would block wait() forever. The window is the
            // measurement for the collapse control and a generous
            // ceiling for the supervised legs.
            auto terminal = [](const StagedRequest &r) {
                const StagedState s = r.stateNow();
                return s != StagedState::Idle &&
                       s != StagedState::Queued &&
                       s != StagedState::Submitted;
            };
            size_t done_n = 0;
            double elapsed = 0.0;
            while (elapsed < kWindowS) {
                done_n = 0;
                for (const auto &r : reqs)
                    done_n += terminal(r) ? 1 : 0;
                if (done_n == reqs.size())
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                elapsed = t.seconds();
            }
            const double measured =
                done_n == reqs.size() ? t.seconds() : kWindowS;
            res.stalled_fraction =
                static_cast<double>(reqs.size() - done_n) /
                static_cast<double>(reqs.size());

            // Release the wedge so the unsupervised leg can tear
            // down; the supervised legs have nothing left to release.
            faulty.releaseHangs();
            for (auto &r : reqs)
                engine.wait(r);

            std::vector<double> served_lat;
            for (auto &r : reqs) {
                switch (r.stateNow()) {
                case StagedState::Done:
                    ++res.done;
                    served_lat.push_back(r.latency_s);
                    break;
                case StagedState::Degraded:
                    ++res.degraded;
                    served_lat.push_back(r.latency_s);
                    break;
                case StagedState::Failed:
                    ++res.failed;
                    break;
                default:
                    std::fprintf(
                        stderr,
                        "FAIL: leg %s request ended in state %d "
                        "(no deadline or cancel was issued)\n",
                        leg.name, static_cast<int>(r.stateNow()));
                    std::exit(1);
                }
            }
            // Goodput counts only what was served INSIDE the window
            // (everything, for a supervised leg that finished early).
            const uint64_t served_in_window =
                done_n == reqs.size()
                    ? res.done + res.degraded
                    : static_cast<uint64_t>(done_n);
            res.goodput_rps =
                measured > 0
                    ? static_cast<double>(served_in_window) / measured
                    : 0.0;
            res.p99_ms = percentile(served_lat, 0.99) * 1e3;

            Timer td;
            engine.drain();
            engine.stop();
            res.drain_s = td.seconds();
            res.stats = engine.stats();
            res.faults_hung = faulty.stats().faults_hung;
        }

        // The extended terminal conservation identity is a hard
        // invariant of the supervision stack — every admitted request
        // ends in exactly one terminal even when its reads wedge.
        const StagedStats &s = res.stats;
        if (s.admitted != s.done + s.degraded + s.failed + s.expired +
                              s.shed_admission + s.rejected +
                              s.cancelled) {
            std::fprintf(
                stderr,
                "FAIL: leg %s breaks terminal conservation "
                "(admitted %llu != %llu)\n",
                leg.name, static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(
                    s.done + s.degraded + s.failed + s.expired +
                    s.shed_admission + s.rejected + s.cancelled));
            std::exit(1);
        }
        if (res.drain_s > 5.0) {
            std::fprintf(stderr,
                         "FAIL: leg %s drain()/stop() took %.2fs — "
                         "teardown is not live under wedged reads\n",
                         leg.name, res.drain_s);
            std::exit(1);
        }
        return res;
    };

    std::vector<LegResult> results;
    for (const Leg &leg : legs) {
        const LegResult r = run_leg(leg);
        std::printf(
            "%-14s goodput %.2f req/s  done %llu  degraded %llu  "
            "failed %llu  p99 %.2f ms  stalled %.0f%%  hung %llu  "
            "abandoned %llu  wd flags %llu  drain %.3fs\n",
            leg.name, r.goodput_rps,
            static_cast<unsigned long long>(r.done),
            static_cast<unsigned long long>(r.degraded),
            static_cast<unsigned long long>(r.failed), r.p99_ms,
            r.stalled_fraction * 100.0,
            static_cast<unsigned long long>(r.faults_hung),
            static_cast<unsigned long long>(r.stats.reads_abandoned),
            static_cast<unsigned long long>(r.stats.watchdog_flags),
            r.drain_s);
        results.push_back(r);
    }

    // hang_unsup goodput measures served-within-window over the fixed
    // window — the collapse number the gain divides by.
    const double unsup_rate = results[3].goodput_rps;
    const double containment_gain =
        unsup_rate > 0 ? results[1].goodput_rps / unsup_rate : 0.0;
    std::printf(
        "containment goodput gain (hang_timed/hang_unsup): %.3f\n",
        containment_gain);

    // --- Acceptance hard-checks (the gate catches drift; these catch
    // outright failure of the containment story) -------------------
    if (results[1].goodput_rps < 0.5 * results[0].goodput_rps) {
        std::fprintf(stderr,
                     "FAIL: hang_timed goodput %.2f fell below half "
                     "of clean %.2f — hangs are not contained\n",
                     results[1].goodput_rps, results[0].goodput_rps);
        return 1;
    }
    if (containment_gain <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: containment gain %.3f <= 1 — supervision "
                     "did not beat the unsupervised collapse\n",
                     containment_gain);
        return 1;
    }
    if (results[3].stalled_fraction == 0.0 &&
        results[3].faults_hung > 0) {
        std::fprintf(stderr,
                     "FAIL: the unsupervised leg did not stall — the "
                     "collapse control is not exercising the wedge\n");
        return 1;
    }
    if (results[1].stalled_fraction > 0.0 ||
        results[2].stalled_fraction > 0.0) {
        std::fprintf(stderr,
                     "FAIL: a supervised leg left requests unfinished "
                     "inside the %.1fs window\n",
                     kWindowS);
        return 1;
    }

    FILE *f = std::fopen("BENCH_watchdog.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_watchdog.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"requests\": %d,\n  \"window_s\": %.1f,\n"
                 "  \"legs\": [\n",
                 requests, kWindowS);
    for (size_t i = 0; i < results.size(); ++i) {
        const Leg &leg = legs[i];
        const LegResult &r = results[i];
        const double n = static_cast<double>(requests);
        // The collapse control's served rate deliberately avoids the
        // gated key patterns: its near-zero value is the POINT, and
        // gating it would reward further collapse.
        const bool supervised = leg.timed || leg.watchdog;
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"hang_p\": %.2f, "
            "\"timed\": %s, \"watchdog\": %s,\n"
            "     \"%s\": %.4f, \"done_fraction\": %.4f, "
            "\"degraded_fraction\": %.4f, \"failed_fraction\": %.4f,"
            "\n     \"%s\": %.4f, \"stalled_fraction\": %.4f, "
            "\"drain_s\": %.4f,\n"
            "     \"reads_abandoned\": %llu, \"watchdog_flags\": %llu,"
            " \"retry_giveups\": %llu, \"faults_hung\": %llu}%s\n",
            leg.name, leg.hang_p, leg.timed ? "true" : "false",
            leg.watchdog ? "true" : "false",
            supervised ? "goodput_rps" : "served_per_window_s",
            r.goodput_rps, r.done / n, r.degraded / n, r.failed / n,
            supervised ? "p99_ms" : "served_window_p99",
            r.p99_ms, r.stalled_fraction, r.drain_s,
            static_cast<unsigned long long>(r.stats.reads_abandoned),
            static_cast<unsigned long long>(r.stats.watchdog_flags),
            static_cast<unsigned long long>(r.stats.retry_giveups),
            static_cast<unsigned long long>(r.faults_hung),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"containment_goodput_gain\": %.4f\n}\n",
                 containment_gain);
    std::fclose(f);
    std::printf("\nwrote BENCH_watchdog.json\n");
    return 0;
}
