/**
 * @file
 * Serial-vs-threaded speedup of the serving hot path, emitted as
 * machine-readable BENCH_kernels.json so successive PRs can track the
 * performance trajectory.
 *
 * Measures:
 *  - each conv algorithm (im2col, winograd, direct, depthwise) at a
 *    ResNet/MobileNet-family shape, 1 thread vs the process default
 *    (TAMRES_THREADS), in GFLOP/s;
 *  - the 8x8 forward DCT, AAN butterfly vs the seed's naive
 *    64-multiply-per-pass transform (blocks/s) — the single-thread
 *    codec win;
 *  - progressive encode/decode throughput (Mpixel/s) at 1 thread vs
 *    the default, with a bit-identity check between the two encodes.
 *
 * Budget knobs: TAMRES_LATENCY_REPS (timed reps per point) and
 * TAMRES_THREADS (threaded-variant worker count).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codec/dct.hh"
#include "codec/progressive.hh"
#include "image/synthetic.hh"
#include "nn/conv_kernels.hh"
#include "util/env.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

using namespace tamres;

namespace {

int
reps()
{
    return static_cast<int>(envInt("TAMRES_LATENCY_REPS", 3));
}

/** The seed's naive DCT, kept as the single-thread baseline. */
void
naiveForwardDct8x8(const float *in, float *out)
{
    static float basis[8][8];
    static bool init = false;
    if (!init) {
        for (int k = 0; k < 8; ++k) {
            const double ck = k == 0 ? std::sqrt(1.0 / 8.0)
                                     : std::sqrt(2.0 / 8.0);
            for (int n = 0; n < 8; ++n) {
                basis[k][n] = static_cast<float>(
                    ck * std::cos((2 * n + 1) * k * M_PI / 16.0));
            }
        }
        init = true;
    }
    float tmp[64];
    for (int y = 0; y < 8; ++y) {
        for (int k = 0; k < 8; ++k) {
            float acc = 0.0f;
            for (int x = 0; x < 8; ++x)
                acc += in[y * 8 + x] * basis[k][x];
            tmp[y * 8 + k] = acc;
        }
    }
    for (int k = 0; k < 8; ++k) {
        for (int x = 0; x < 8; ++x) {
            float acc = 0.0f;
            for (int y = 0; y < 8; ++y)
                acc += tmp[y * 8 + x] * basis[k][y];
            out[k * 8 + x] = acc;
        }
    }
}

struct ConvPoint
{
    std::string name;
    double serial_gflops = 0.0;
    double threaded_gflops = 0.0;

    double speedup() const { return threaded_gflops / serial_gflops; }
};

ConvPoint
measureConvPoint(const char *name, const ConvProblem &p, ConvConfig cfg,
                 int threads)
{
    std::vector<float> in(static_cast<size_t>(p.n) * p.ic * p.ih * p.iw);
    std::vector<float> w(static_cast<size_t>(p.oc) * (p.ic / p.groups) *
                         p.kh * p.kw);
    std::vector<float> bias(p.oc);
    std::vector<float> out(static_cast<size_t>(p.n) * p.oc * p.oh() *
                           p.ow());
    Rng rng(11);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));

    const double gf = static_cast<double>(p.macs()) / 1e9;
    ConvPoint point;
    point.name = name;

    cfg.threads = 1;
    point.serial_gflops =
        gf / medianRunSeconds(
                 [&] {
                     convForward(p, in.data(), w.data(), bias.data(),
                                 out.data(), cfg);
                 },
                 reps());
    std::vector<float> serial_out = out;

    cfg.threads = threads;
    point.threaded_gflops =
        gf / medianRunSeconds(
                 [&] {
                     convForward(p, in.data(), w.data(), bias.data(),
                                 out.data(), cfg);
                 },
                 reps());
    if (std::memcmp(serial_out.data(), out.data(),
                    out.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL: %s not bit-identical at %d threads\n", name,
                     threads);
        std::exit(1);
    }

    std::printf("%-16s %8.3f GF/s serial  %8.3f GF/s x%d threads  "
                "(%.2fx, bit-identical)\n",
                name, point.serial_gflops, point.threaded_gflops,
                threads, point.speedup());
    return point;
}

struct MicroPoint
{
    std::string name;
    double scalar_gflops = 0.0;
    double simd_gflops = 0.0;

    double speedup() const { return simd_gflops / scalar_gflops; }
};

/**
 * GF/s of one (mr x nr) micro-kernel at the scalar and detected SIMD
 * dispatch levels, through a serial pointwise GEMM shaped like the
 * 224-family hot layer (M=64, K=576, N=3136).
 */
MicroPoint
measureMicroPoint(int mr, int nr)
{
    const ConvProblem p{.n = 1, .ic = 576, .ih = 1, .iw = 3136,
                        .oc = 64, .kh = 1, .kw = 1, .stride = 1,
                        .pad = 0};
    ConvConfig cfg{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 288,
                   .nc = 3136, .mr = mr, .nr = nr, .threads = 1};
    std::vector<float> in(static_cast<size_t>(p.ic) * p.iw);
    std::vector<float> w(static_cast<size_t>(p.oc) * p.ic);
    std::vector<float> out(static_cast<size_t>(p.oc) * p.iw);
    Rng rng(17);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));

    const double gf = static_cast<double>(p.macs()) / 1e9;
    MicroPoint point;
    point.name = std::to_string(mr) + "x" + std::to_string(nr);
    auto run = [&] {
        convForward(p, in.data(), w.data(), nullptr, out.data(), cfg);
    };
    {
        SimdLevelGuard guard(SimdLevel::Scalar);
        point.scalar_gflops = gf / medianRunSeconds(run, reps());
    }
    {
        SimdLevelGuard guard(simdDetected());
        point.simd_gflops = gf / medianRunSeconds(run, reps());
    }
    std::printf("micro %-6s %8.3f GF/s scalar  %8.3f GF/s %s  (%.2fx)\n",
                point.name.c_str(), point.scalar_gflops,
                point.simd_gflops, simdLevelName(simdDetected()),
                point.speedup());
    return point;
}

} // namespace

int
main()
{
    const int threads = ThreadPool::defaultParallelism();
    std::printf("parallel_speedup: %d worker threads "
                "(TAMRES_THREADS to override); simd: %s detected, "
                "%s active (TAMRES_SIMD to override)\n\n",
                threads, simdLevelName(simdDetected()),
                simdLevelName(simdLevel()));

    // --- Conv kernels ---------------------------------------------
    const ConvProblem shape224{.n = 1, .ic = 64, .ih = 56, .iw = 56,
                               .oc = 64, .kh = 3, .kw = 3, .stride = 1,
                               .pad = 1};
    const ConvProblem shape_dw{.n = 1, .ic = 96, .ih = 28, .iw = 28,
                               .oc = 96, .kh = 3, .kw = 3, .stride = 1,
                               .pad = 1, .groups = 96};

    std::vector<ConvPoint> convs;
    convs.push_back(measureConvPoint(
        "im2col_224", shape224,
        ConvConfig{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 288,
                   .nc = 3136, .mr = 4, .nr = 16},
        threads));
    convs.push_back(measureConvPoint(
        "winograd_224", shape224,
        ConvConfig{.algo = ConvAlgo::Winograd}, threads));
    convs.push_back(measureConvPoint(
        "direct_224", shape224,
        ConvConfig{.algo = ConvAlgo::Direct, .oc_tile = 4,
                   .ow_tile = 14},
        threads));
    convs.push_back(measureConvPoint(
        "depthwise_112", shape_dw,
        ConvConfig{.algo = ConvAlgo::Depthwise, .ow_tile = 14},
        threads));

    // --- Micro-kernels: scalar vs SIMD dispatch -------------------
    std::vector<MicroPoint> micros;
    for (const auto &[mr, nr] :
         {std::pair{4, 8}, {6, 8}, {8, 8}, {4, 16}, {6, 16}})
        micros.push_back(measureMicroPoint(mr, nr));

    // --- Weight packing: per-request vs plan-prepacked ------------
    // The serving-path 224 conv with the library blocking, serial, as
    // reqs/s; the prepacked variant skips the per-request A packing
    // exactly the way a warm execution plan does.
    double pack_rps = 0.0, prepack_rps = 0.0;
    {
        const ConvProblem p = shape224;
        ConvConfig cfg{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 288,
                       .nc = 3136, .mr = 4, .nr = 16, .threads = 1};
        std::vector<float> in(static_cast<size_t>(p.ic) * p.ih * p.iw);
        std::vector<float> w(static_cast<size_t>(p.oc) * p.ic * p.kh *
                             p.kw);
        std::vector<float> out(static_cast<size_t>(p.oc) * p.oh() *
                               p.ow());
        Rng rng(23);
        for (auto &v : in)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (auto &v : w)
            v = static_cast<float>(rng.uniform(-0.5, 0.5));
        PackedConvWeights packed;
        packConvWeights(p, cfg, w.data(), packed);
        pack_rps = 1.0 / medianRunSeconds(
                             [&] {
                                 convForward(p, in.data(), w.data(),
                                             nullptr, out.data(), cfg);
                             },
                             reps());
        prepack_rps = 1.0 / medianRunSeconds(
                                [&] {
                                    convForwardPrepacked(
                                        p, in.data(), packed, nullptr,
                                        out.data());
                                },
                                reps());
        std::printf("\nprepack conv224: %8.1f req/s packing each call, "
                    "%8.1f req/s prepacked  (%.2fx)\n",
                    pack_rps, prepack_rps, prepack_rps / pack_rps);
    }

    // --- DCT: AAN vs the seed's naive transform -------------------
    const int nblocks = 20000;
    std::vector<float> blocks(static_cast<size_t>(nblocks) * 64);
    Rng rng(3);
    for (auto &v : blocks)
        v = static_cast<float>(rng.uniform(-128.0, 127.0));
    std::vector<float> freq(64);

    const double naive_s = medianRunSeconds(
        [&] {
            for (int b = 0; b < nblocks; ++b)
                naiveForwardDct8x8(blocks.data() + b * 64, freq.data());
        },
        reps());
    const double aan_s = medianRunSeconds(
        [&] {
            for (int b = 0; b < nblocks; ++b)
                forwardDct8x8Scaled(blocks.data() + b * 64, freq.data());
        },
        reps());
    const double naive_bps = nblocks / naive_s;
    const double aan_bps = nblocks / aan_s;
    std::printf("\ndct8x8: naive %.2f Mblk/s, AAN %.2f Mblk/s "
                "(%.2fx single-thread)\n",
                naive_bps / 1e6, aan_bps / 1e6, aan_bps / naive_bps);

    // --- Codec encode/decode --------------------------------------
    const Image img = generateSyntheticImage(
        {.height = 256, .width = 256, .class_id = 2, .seed = 13});
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    const double mpix = 256.0 * 256.0 / 1e6;

    setenv("TAMRES_THREADS", "1", 1);
    EncodedImage enc_serial;
    const double enc1_s = medianRunSeconds(
        [&] { enc_serial = encodeProgressive(img, ccfg); }, reps());
    const double dec1_s = medianRunSeconds(
        [&] {
            const Image dec = decodeProgressive(enc_serial);
            (void)dec;
        },
        reps());

    setenv("TAMRES_THREADS", std::to_string(threads).c_str(), 1);
    EncodedImage enc_threaded;
    const double encN_s = medianRunSeconds(
        [&] { enc_threaded = encodeProgressive(img, ccfg); }, reps());
    const double decN_s = medianRunSeconds(
        [&] {
            const Image dec = decodeProgressive(enc_threaded);
            (void)dec;
        },
        reps());
    unsetenv("TAMRES_THREADS");

    const bool codec_identical =
        enc_serial.bytes == enc_threaded.bytes;
    if (!codec_identical) {
        std::fprintf(stderr,
                     "FAIL: encode not bit-identical at %d threads\n",
                     threads);
        return 1;
    }
    std::printf("codec encode: %.2f Mpix/s serial, %.2f Mpix/s x%d "
                "(%.2fx, bit-identical)\n",
                mpix / enc1_s, mpix / encN_s, threads, enc1_s / encN_s);
    std::printf("codec decode: %.2f Mpix/s serial, %.2f Mpix/s x%d "
                "(%.2fx)\n",
                mpix / dec1_s, mpix / decN_s, threads, dec1_s / decN_s);

    // --- JSON trajectory ------------------------------------------
    FILE *f = std::fopen("BENCH_kernels.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"threads\": %d,\n  \"kernels\": [\n",
                 threads);
    for (size_t i = 0; i < convs.size(); ++i) {
        const ConvPoint &c = convs[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"serial_gflops\": %.4f, "
                     "\"threaded_gflops\": %.4f, \"speedup\": %.3f}%s\n",
                     c.name.c_str(), c.serial_gflops, c.threaded_gflops,
                     c.speedup(), i + 1 < convs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"simd\": \"%s\",\n  \"micro\": [\n",
                 simdLevelName(simdDetected()));
    for (size_t i = 0; i < micros.size(); ++i) {
        const MicroPoint &m = micros[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"scalar_gflops\": %.4f, "
                     "\"simd_gflops\": %.4f, \"speedup\": %.3f}%s\n",
                     m.name.c_str(), m.scalar_gflops, m.simd_gflops,
                     m.speedup(), i + 1 < micros.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"prepack\": {\"conv224_pack_req_s\": %.2f, "
                 "\"conv224_prepacked_req_s\": %.2f, "
                 "\"speedup\": %.3f},\n",
                 pack_rps, prepack_rps, prepack_rps / pack_rps);
    std::fprintf(f,
                 "  \"dct8x8\": {\"naive_blocks_per_s\": %.0f, "
                 "\"aan_blocks_per_s\": %.0f, \"speedup\": %.3f},\n",
                 naive_bps, aan_bps, aan_bps / naive_bps);
    std::fprintf(
        f,
        "  \"codec\": {\"encode_serial_mpix_s\": %.4f, "
        "\"encode_threaded_mpix_s\": %.4f, \"encode_speedup\": %.3f, "
        "\"decode_serial_mpix_s\": %.4f, \"decode_threaded_mpix_s\": "
        "%.4f, \"bit_identical\": %s}\n",
        mpix / enc1_s, mpix / encN_s, enc1_s / encN_s, mpix / dec1_s,
        mpix / decN_s, codec_identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_kernels.json\n");
    return 0;
}
