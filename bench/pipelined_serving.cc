/**
 * @file
 * Section VII-c experiment: hiding the scale model's runtime by
 * pipelining it with backbone inference. The paper measures the scale
 * model at ~30% of a tuned ResNet-50@224 pass and argues the overhead
 * can be hidden by overlapping the next request's scale inference
 * with the current request's backbone inference; this bench runs the
 * sequential and pipelined endpoint models side by side across
 * arrival rates and reports where each saturates.
 */

#include "bench/bench_common.hh"
#include "core/serving.hh"

using namespace tamres;

int
main()
{
    bench::banner("pipelined_serving",
                  "Section VII-c (scale-model overhead hidden by "
                  "pipelining)");

    // Analytic service model at a fixed host throughput, as in
    // serving_load: the paper's ratio — scale model ~30% of the
    // backbone pass.
    const double host_gflops = 8.0;
    const double backbone_s =
        backboneGflops(BackboneArch::ResNet50, 224) / host_gflops;
    const double scale_s = 0.3 * backbone_s;

    const double seq_cap = 1.0 / (backbone_s + scale_s);
    const double pipe_cap = 1.0 / backbone_s;

    TablePrinter out("sequential vs pipelined two-model endpoint");
    out.setHeader({"arrival(hz)", "model", "mean lat(ms)",
                   "p99 lat(ms)", "util"});
    for (const double frac : {0.5, 0.85, 1.05, 1.25}) {
        // Rates set relative to the sequential capacity so the
        // crossover region (between the two capacities) is sampled.
        const double rate = frac * seq_cap;
        ServingConfig cfg;
        cfg.arrival_rate_hz = rate;
        cfg.num_requests = 4000;
        cfg.seed = 13;

        const auto seq = simulateServing(cfg, [&](int, int) {
            return std::make_pair(224, scale_s + backbone_s);
        });
        const auto pipe = simulateServingPipelined(cfg, [&](int, int) {
            return StagedService{224, scale_s, backbone_s};
        });
        for (const auto &[name, reqs] :
             {std::make_pair("sequential", &seq),
              std::make_pair("pipelined", &pipe)}) {
            const auto stats = ServingStats::fromRequests(*reqs);
            // A request's start-to-finish span includes in-pipeline
            // waiting, so the generic utilization over-counts for the
            // tandem model; report the bottleneck (backbone) stage's
            // utilization instead.
            const bool pipelined = reqs == &pipe;
            const double util =
                pipelined ? cfg.num_requests * backbone_s /
                                reqs->back().finish_s
                          : stats.utilization;
            out.addRow({TablePrinter::num(rate, 2), name,
                        TablePrinter::num(stats.mean_latency_s * 1e3,
                                          1),
                        TablePrinter::num(stats.p99_latency_s * 1e3,
                                          1),
                        TablePrinter::num(util, 2)});
        }
    }
    out.print();
    std::printf(
        "\ncapacities: sequential %.2f req/s, pipelined %.2f req/s "
        "(+%.0f%%).\nexpected shape: below the sequential capacity "
        "the two models differ only by the per-request scale latency; "
        "between the two capacities the sequential endpoint's queue "
        "diverges while the pipelined endpoint stays bounded — the "
        "scale model's throughput cost is fully hidden, leaving only "
        "its (pipelinable) latency (Section VII-c).\n",
        seq_cap, pipe_cap, (pipe_cap / seq_cap - 1.0) * 100);
    return 0;
}
