/**
 * @file
 * Section VII-c experiment, measured: hiding the scale model's
 * runtime by pipelining it with backbone inference. Stage service
 * times are MEASURED on the real engine (the scale model is proxied
 * by the backbone at 112 — its measured cost lands in the paper's
 * ~25-35% band of the 224 pass), then the two stages run as two
 * ServingEngines: a single closed-loop client serializes them (the
 * sequential endpoint), many clients overlap them (the pipelined
 * endpoint — stage 1 of request i+1 runs while stage 2 of request i
 * is in flight, given the cores to do so). The original analytic
 * tandem-queue model is kept as a cross-check, fed with the measured
 * stage times.
 */

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/engine.hh"
#include "core/serving.hh"
#include "nn/passes.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kBackboneRes = 224;
constexpr int kScaleRes = 112; //!< scale-model proxy resolution

/** Closed loop through both stages with @p clients in flight. */
double
twoStageRps(ServingEngine &scale_engine, ServingEngine &bb_engine,
            const Tensor &scale_in, const Tensor &bb_in, int clients,
            int total)
{
    Timer t;
    std::atomic<int> remaining{total};
    std::atomic<int> completed{0};
    std::vector<std::thread> cts;
    for (int c = 0; c < clients; ++c) {
        cts.emplace_back([&] {
            InferenceRequest s1, s2;
            s1.input = scale_in.clone();
            s2.input = bb_in.clone();
            while (remaining.fetch_sub(1) > 0) {
                if (scale_engine.submit(s1))
                    scale_engine.wait(s1);
                if (bb_engine.submit(s2))
                    bb_engine.wait(s2);
                completed.fetch_add(1);
            }
        });
    }
    for (auto &th : cts)
        th.join();
    return completed.load() / t.seconds();
}

} // namespace

int
main()
{
    bench::banner("pipelined_serving",
                  "Section VII-c measured: scale-model overhead "
                  "hidden by pipelining");
    const int hw = ThreadPool::defaultParallelism();
    const int total = bench::engineRequests();

    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*net);
    bench::ensureTuned(*net, kBackboneRes);
    bench::ensureTuned(*net, kScaleRes);
    KernelSelector::instance().setMode(KernelMode::Tuned);

    Rng rng(311);
    Tensor bb_in({1, 3, kBackboneRes, kBackboneRes});
    Tensor scale_in({1, 3, kScaleRes, kScaleRes});
    fillUniform(bb_in, rng, 0.0f, 1.0f);
    fillUniform(scale_in, rng, 0.0f, 1.0f);

    // Measured stage times (batch-1, planned).
    Tensor out;
    net->runInto(bb_in, out);
    const double backbone_s = medianRunSeconds(
        [&] { net->runInto(bb_in, out); }, bench::latencyReps());
    Tensor sout;
    net->runInto(scale_in, sout);
    const double scale_s = medianRunSeconds(
        [&] { net->runInto(scale_in, sout); }, bench::latencyReps());
    std::printf("measured stages: backbone %.1f ms, scale proxy %.1f "
                "ms (%.0f%% of backbone)\n",
                backbone_s * 1e3, scale_s * 1e3,
                100.0 * scale_s / backbone_s);

    // ---- Measured: sequential vs pipelined two-stage endpoint -----
    setenv("TAMRES_THREADS", "1", 1);
    auto makeEngine = [&](int res) {
        EngineConfig cfg;
        cfg.workers = std::max(1, hw / 2);
        cfg.max_batch = 2;
        cfg.max_delay_us = 1000;
        cfg.warm_shapes = {{1, 3, res, res}, {2, 3, res, res}};
        return std::make_unique<ServingEngine>(*net, cfg);
    };
    double seq_rps, pipe_rps;
    {
        auto se = makeEngine(kScaleRes);
        auto be = makeEngine(kBackboneRes);
        seq_rps = twoStageRps(*se, *be, scale_in, bb_in, 1, total / 2);
        pipe_rps = twoStageRps(*se, *be, scale_in, bb_in, 4, total);
    }
    unsetenv("TAMRES_THREADS");
    std::printf("measured endpoint: sequential (1 client) %.2f req/s, "
                "pipelined (4 clients) %.2f req/s (%.2fx)\n",
                seq_rps, pipe_rps, pipe_rps / seq_rps);

    // ---- Analytic tandem cross-check with measured stage times ----
    const double seq_cap = 1.0 / (backbone_s + scale_s);
    const double pipe_cap = 1.0 / backbone_s;

    TablePrinter sim("analytic tandem cross-check (measured stage "
                     "times)");
    sim.setHeader({"arrival(hz)", "model", "mean lat(ms)",
                   "p99 lat(ms)", "util"});
    for (const double frac : {0.5, 0.85, 1.05, 1.25}) {
        const double rate = frac * seq_cap;
        ServingConfig cfg;
        cfg.arrival_rate_hz = rate;
        cfg.num_requests = 4000;
        cfg.seed = 13;

        const auto seq = simulateServing(cfg, [&](int, int) {
            return std::make_pair(kBackboneRes, scale_s + backbone_s);
        });
        const auto pipe = simulateServingPipelined(cfg, [&](int, int) {
            return StagedService{kBackboneRes, scale_s, backbone_s};
        });
        for (const auto &[name, reqs] :
             {std::make_pair("sequential", &seq),
              std::make_pair("pipelined", &pipe)}) {
            const auto stats = ServingStats::fromRequests(*reqs);
            // A request's start-to-finish span includes in-pipeline
            // waiting, so the generic utilization over-counts for the
            // tandem model; report the bottleneck (backbone) stage's
            // utilization instead.
            const bool pipelined = reqs == &pipe;
            const double util =
                pipelined ? cfg.num_requests * backbone_s /
                                reqs->back().finish_s
                          : stats.utilization;
            sim.addRow({TablePrinter::num(rate, 2), name,
                        TablePrinter::num(stats.mean_latency_s * 1e3,
                                          1),
                        TablePrinter::num(stats.p99_latency_s * 1e3,
                                          1),
                        TablePrinter::num(util, 2)});
        }
    }
    sim.print();
    std::printf(
        "\ncapacities (measured stage times): sequential %.2f req/s, "
        "pipelined %.2f req/s (+%.0f%%).\nexpected shape: on a "
        "multi-core host the measured pipelined endpoint approaches "
        "the analytic tandem bound (scale cost hidden behind the "
        "backbone); on a single core both endpoints are bound by "
        "scale+backbone and the measured ratio stays ~1 — the "
        "overlap needs hardware to overlap ONTO (Section VII-c).\n",
        seq_cap, pipe_cap, (pipe_cap / seq_cap - 1.0) * 100);
    return 0;
}
