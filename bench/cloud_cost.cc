/**
 * @file
 * Cloud bill projection (Sections I and VIII-b): prices a
 * representative inference workload under full reads, the calibrated
 * static policy, and the dynamic pipeline, using *measured* read
 * fractions from the storage calibration machinery. This is the
 * monetary consequence of Tables III/IV.
 */

#include "bench/bench_common.hh"
#include "core/calibration.hh"
#include "core/pipeline.hh"
#include "storage/cost.hh"

using namespace tamres;

int
main()
{
    bench::banner("cloud_cost",
                  "Sections I/VIII-b (storage & egress billing)");

    const int n_cal = bench::calImages();
    const int n_train = bench::trainImages();

    TablePrinter out("projected monthly bill: 1M-image corpus, 10M "
                     "reads/month (USD)");
    out.setHeader({"dataset", "policy", "read frac", "storage$",
                   "egress$", "requests$", "total$", "vs full"});

    for (const bool cars : {false, true}) {
        SyntheticDataset ds(cars ? carsLike() : imagenetLike(),
                            n_train + n_cal, 41);
        const BackboneAccuracyModel model(BackboneArch::ResNet50,
                                          ds.spec(), 1);
        QualityTable table(ds, n_train, n_train + n_cal,
                           paperResolutions());

        ScaleModelOptions sopts;
        ScaleModel scale(paperResolutions(), sopts);
        scale.train(ds, 0, n_train, BackboneArch::ResNet50,
                    {0.56, 0.75, 1.0}, 224);

        CalibrationOptions copts;
        copts.max_accuracy_loss = 0.02;
        const StoragePolicy policy = calibrate(table, ds, model,
                                               copts);

        // Measured mean encoded size over the calibration slice.
        double mean_bytes = 0.0;
        {
            ProgressiveConfig cfg;
            cfg.quality = ds.spec().encode_quality;
            for (int i = n_train; i < n_train + n_cal; ++i)
                mean_bytes += static_cast<double>(
                    encodeProgressive(ds.render(i), cfg).totalBytes());
            mean_bytes /= n_cal;
        }

        // Static-280 calibrated row and the dynamic row.
        int idx280 = 0;
        const auto &grid = table.resolutions();
        for (size_t r = 0; r < grid.size(); ++r)
            if (grid[r] == 280)
                idx280 = static_cast<int>(r);
        SyntheticDataset pop_ds(ds.spec(), bench::evalImages() / 2,
                                4242);
        const EvalPopulation pop{&pop_ds, pop_ds.size()};
        const StorageRow static280 = evalStaticStorage(
            table, ds, model, idx280, policy, 0.75, pop);
        const StorageRow dynamic = evalDynamicStorage(
            table, ds, model, scale, policy, 0.75, pop);

        struct Row
        {
            const char *name;
            double frac;
            double extra_requests;
        };
        const Row rows[] = {
            {"full reads", 1.0, 0.0},
            {"calibrated static-280", static280.read_fraction, 0.0},
            // The dynamic pipeline's second (incremental) fetch is an
            // extra ranged GET on roughly the fraction of requests
            // whose chosen resolution needs more than the preview.
            {"dynamic", dynamic.read_fraction, 0.5},
        };
        double full_total = 0.0;
        for (const Row &r : rows) {
            Workload w;
            w.corpus_images = 1000000;
            w.mean_image_bytes = mean_bytes;
            w.reads_per_month = 10000000;
            w.mean_read_fraction = r.frac;
            w.extra_requests_per_read = r.extra_requests;
            const MonthlyCost c = monthlyCost(w);
            if (r.frac == 1.0)
                full_total = c.total();
            out.addRow({cars ? "Cars-like" : "ImageNet-like", r.name,
                        TablePrinter::num(r.frac, 3),
                        TablePrinter::num(c.storage_usd, 0),
                        TablePrinter::num(c.egress_usd, 0),
                        TablePrinter::num(c.request_usd, 0),
                        TablePrinter::num(c.total(), 0),
                        TablePrinter::num(c.total() / full_total * 100,
                                          1) + "%"});
        }
    }
    out.print();
    std::printf(
        "\nexpected shape: egress dominates the bill at this read "
        "volume, so the 20-30%% (ImageNet) and 40-50%% (Cars) "
        "measured read reductions translate almost 1:1 into total "
        "savings; the dynamic pipeline's extra ranged GETs cost "
        "cents against thousands saved (Section VIII-b).\n");
    return 0;
}
