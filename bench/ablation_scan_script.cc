/**
 * @file
 * Ablation: progressive scan script and color treatment. The paper's
 * storage experiments (Fig. 6, Tables III/IV) read scan prefixes of a
 * spectral-selection stream; real progressive JPEG additionally offers
 * successive approximation (bit-plane refinement) and 4:2:0 chroma
 * subsampling. This harness quantifies what those buy on the
 * bytes-vs-SSIM axis every storage experiment shares: bytes to reach
 * the SSIM thresholds the Section V calibrator searches over
 * ([0.94, 1.0]), per scan prefix, for each (script, color) pairing.
 */

#include <array>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "image/color.hh"
#include "image/metrics.hh"
#include "sim/dataset.hh"

using namespace tamres;

namespace {

struct ModeSpec
{
    const char *name;
    bool successive;
    ColorMode color;
};

constexpr std::array<ModeSpec, 4> kModes = {{
    {"spectral/planar", false, ColorMode::Planar},
    {"successive/planar", true, ColorMode::Planar},
    {"spectral/420", false, ColorMode::YCbCr420},
    {"successive/420", true, ColorMode::YCbCr420},
}};

/** SSIM thresholds of interest (the calibrator's search interval). */
constexpr std::array<double, 3> kThresholds = {0.94, 0.96, 0.98};

} // namespace

int
main()
{
    bench::banner("ablation_scan_script",
                  "scan script (spectral vs successive approximation) "
                  "x color mode (planar vs 4:2:0)");

    const int n = std::max(4, bench::calImages() / 4);

    for (const bool cars : {false, true}) {
        SyntheticDataset ds(cars ? carsLike() : imagenetLike(), n, 71);

        TablePrinter tab(std::string(cars ? "Cars-like" : "ImageNet-like") +
                         ": mean bytes to reach SSIM threshold "
                         "(vs full decode; Huffman entropy)");
        tab.setHeader({"mode", "total B", "B@.94", "B@.96", "B@.98",
                       "scans"});

        for (const ModeSpec &mode : kModes) {
            double total = 0.0;
            std::array<double, kThresholds.size()> at_bytes{};
            int num_scans = 0;
            for (int i = 0; i < n; ++i) {
                // Restore natural chroma statistics (the generator
                // textures channels independently; photos do not).
                const Image img = desaturateChroma(ds.render(i), 0.35f);
                ProgressiveConfig cfg;
                cfg.quality = ds.spec().encode_quality;
                cfg.entropy = EntropyCoder::Huffman;
                cfg.color = mode.color;
                if (mode.successive)
                    cfg.scans = ProgressiveConfig::successiveScans();
                const EncodedImage enc = encodeProgressive(img, cfg);
                num_scans = enc.numScans();
                total += static_cast<double>(enc.totalBytes());
                const Image full = decodeProgressive(enc);
                // First prefix whose SSIM (vs the full decode) clears
                // each threshold; charged the full stream if none.
                std::array<bool, kThresholds.size()> hit{};
                for (int k = 1; k <= enc.numScans(); ++k) {
                    const double s = ssim(decodeProgressive(enc, k),
                                          full);
                    for (size_t t = 0; t < kThresholds.size(); ++t) {
                        if (!hit[t] && s >= kThresholds[t]) {
                            hit[t] = true;
                            at_bytes[t] += static_cast<double>(
                                enc.bytesForScans(k));
                        }
                    }
                }
                for (size_t t = 0; t < kThresholds.size(); ++t) {
                    if (!hit[t])
                        at_bytes[t] += static_cast<double>(
                            enc.totalBytes());
                }
            }
            tab.addRow({mode.name, TablePrinter::num(total / n, 0),
                        TablePrinter::num(at_bytes[0] / n, 0),
                        TablePrinter::num(at_bytes[1] / n, 0),
                        TablePrinter::num(at_bytes[2] / n, 0),
                        std::to_string(num_scans)});
        }
        tab.print();
    }

    std::printf(
        "\nexpected shape: successive approximation reaches mid SSIM "
        "thresholds with fewer bytes than pure spectral selection "
        "(full spatial coverage arrives in the cheap coarse scans), "
        "at a modest total-size overhead; 4:2:0 shrinks every column "
        "by roughly a third on natural-chroma content. Both effects "
        "compose with the Section V calibration, lowering the "
        "read-fraction floor of Tables III/IV.\n");
    return 0;
}
