/**
 * @file
 * Reproduces paper Table III: ImageNet read-bandwidth savings —
 * accuracy reading all data vs. reading per the SSIM-calibrated
 * policy, per resolution and for the dynamic pipeline, across crops.
 */

#include "bench/table_savings_common.hh"

int
main()
{
    tamres::bench::banner(
        "table3_imagenet_savings",
        "Table III (ImageNet read bandwidth savings)");
    tamres::bench::runSavingsTable(tamres::imagenetLike(), "Table III");
    std::printf("paper: per-resolution savings 2-28%%; dynamic saves "
                "~7-11%% with <=0.1%% accuracy drop; savings are "
                "crop-independent (no pre-cropped copies stored).\n");
    return 0;
}
