/**
 * @file
 * Goodput under injected storage faults — the chaos harness for the
 * staged serving pipeline's fault tolerance, emitted as
 * machine-readable BENCH_faults.json (fields documented in
 * bench/bench_common.hh) and gated by tools/bench_gate.py.
 *
 * A decision-only staged engine (the fetch / decode / decide path is
 * where the storage tier can hurt; backbone inference is orthogonal)
 * serves the same closed-loop request mix through a FaultyObjectStore
 * under three legs:
 *
 *   clean       no injection — the goodput baseline;
 *   acceptance  the ISSUE acceptance mix: 1% transient failures,
 *               0.5% truncated deliveries, a 2% heavy-tail latency
 *               draw — the fleet-realistic operating point;
 *   heavy       5% transient + 3% truncation + 3% corruption + 5%
 *               tail — well past the retry budget's comfort zone, so
 *               degradation and structured failures become visible.
 *
 * Every fault draw is a pure function of the fixed seed, so a leg's
 * fault schedule replays identically across runs and hosts; only the
 * wall-clock numbers are host-dependent. The harness hard-fails if
 * any request ends in a non-terminal or unexpected state, or if the
 * clean leg sees any fault or non-Done terminal — the bench doubles
 * as an end-to-end liveness check under chaos.
 *
 * Budget knobs: TAMRES_ENGINE_REQS (closed-loop requests per leg).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "storage/fault_injection.hh"

using namespace tamres;

namespace {

struct Leg
{
    const char *name;
    FaultPolicy policy;
};

struct LegResult
{
    uint64_t done = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    double goodput_rps = 0.0;
    double p99_ms = 0.0;
    StagedStats stats;
    ReadStats store_stats;
};

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(
        v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
    return v[idx];
}

} // namespace

int
main()
{
    bench::banner("fault_tolerance",
                  "staged-pipeline goodput under injected storage "
                  "faults: retries, degradation, containment");
    const int requests = bench::engineRequests();

    // --- Stored objects + trained scale model ----------------------
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 224;
    spec.mean_width = 224;
    SyntheticDataset ds(spec, 48, 7);
    ScaleModelOptions sopts;
    sopts.epochs = 6;
    ScaleModel scale({112, 168, 224}, sopts);
    scale.train(ds, 0, 32, BackboneArch::ResNet18, {0.75}, 96);

    constexpr int kObjects = 6;
    ObjectStore store;
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    for (int i = 0; i < kObjects; ++i)
        store.put(static_cast<uint64_t>(i),
                  encodeProgressive(ds.renderAt(i, 256), ccfg));
    const int num_scans = store.peek(0).numScans();

    // --- Injection legs (fixed seed: schedules replay exactly) -----
    std::vector<Leg> legs(3);
    legs[0].name = "clean";
    legs[1].name = "acceptance";
    legs[1].policy.seed = 0xFA5EED;
    legs[1].policy.transient_p = 0.01;
    legs[1].policy.truncate_p = 0.005;
    legs[1].policy.latency_tail_p = 0.02;
    legs[1].policy.latency_tail_scale_s = 2e-4;
    legs[1].policy.latency_max_s = 2e-3;
    legs[2].name = "heavy";
    legs[2].policy.seed = 0xFA5EED;
    legs[2].policy.transient_p = 0.05;
    legs[2].policy.truncate_p = 0.03;
    legs[2].policy.corrupt_p = 0.03;
    legs[2].policy.latency_tail_p = 0.05;
    legs[2].policy.latency_tail_scale_s = 5e-4;
    legs[2].policy.latency_max_s = 5e-3;

    auto run_leg = [&](const Leg &leg) {
        FaultyObjectStore faulty(store, leg.policy);
        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 2;
        cfg.decode_batch = 2;
        cfg.queue_capacity = std::max(64, requests + kObjects);
        cfg.scan_depth = [&](uint64_t, int r_idx) {
            return std::min(num_scans, 2 + r_idx);
        };
        cfg.retry.backoff_base_s = 0.5e-3;
        cfg.retry.backoff_max_s = 5e-3;
        StagedServingEngine engine(faulty, scale, nullptr, cfg);

        std::vector<StagedRequest> reqs(
            static_cast<size_t>(requests));
        Timer t;
        for (int i = 0; i < requests; ++i) {
            reqs[i].id = static_cast<uint64_t>(i % kObjects);
            engine.submit(reqs[i]);
        }
        for (auto &r : reqs)
            engine.wait(r);
        const double elapsed = t.seconds();

        LegResult res;
        std::vector<double> served_lat;
        for (auto &r : reqs) {
            switch (r.stateNow()) {
            case StagedState::Done:
                ++res.done;
                served_lat.push_back(r.latency_s);
                break;
            case StagedState::Degraded:
                ++res.degraded;
                served_lat.push_back(r.latency_s);
                break;
            case StagedState::Failed:
                ++res.failed;
                break;
            default:
                std::fprintf(stderr,
                             "FAIL: leg %s request ended in state %d "
                             "(no deadline was set)\n",
                             leg.name,
                             static_cast<int>(r.stateNow()));
                std::exit(1);
            }
        }
        res.goodput_rps =
            elapsed > 0
                ? static_cast<double>(res.done + res.degraded) /
                      elapsed
                : 0.0;
        res.p99_ms = percentile(served_lat, 0.99) * 1e3;
        res.stats = engine.stats();
        res.store_stats = faulty.stats();
        return res;
    };

    std::vector<LegResult> results;
    for (const Leg &leg : legs) {
        const LegResult r = run_leg(leg);
        std::printf("%-10s goodput %.2f req/s  done %llu  degraded "
                    "%llu  failed %llu  p99 %.2f ms  retries %llu  "
                    "faults %llu  giveups %llu\n",
                    leg.name, r.goodput_rps,
                    static_cast<unsigned long long>(r.done),
                    static_cast<unsigned long long>(r.degraded),
                    static_cast<unsigned long long>(r.failed), r.p99_ms,
                    static_cast<unsigned long long>(r.stats.retries),
                    static_cast<unsigned long long>(
                        r.stats.fetch_faults),
                    static_cast<unsigned long long>(
                        r.stats.retry_giveups));
        results.push_back(r);
    }

    // The clean leg is the liveness reference: zero injection must
    // mean zero faults observed and every request served intact.
    if (results[0].done != static_cast<uint64_t>(requests) ||
        results[0].stats.fetch_faults != 0) {
        std::fprintf(stderr,
                     "FAIL: clean leg saw faults or losses (done "
                     "%llu/%d, faults %llu)\n",
                     static_cast<unsigned long long>(results[0].done),
                     requests,
                     static_cast<unsigned long long>(
                         results[0].stats.fetch_faults));
        return 1;
    }
    // The acceptance mix is survivable by construction: the retry
    // budget must keep goodput losses to failures, not hangs.
    if (results[1].done + results[1].degraded + results[1].failed !=
        static_cast<uint64_t>(requests)) {
        std::fprintf(stderr, "FAIL: acceptance leg lost requests\n");
        return 1;
    }

    const double retention =
        results[0].goodput_rps > 0
            ? results[1].goodput_rps / results[0].goodput_rps
            : 0.0;
    std::printf("acceptance-mix goodput retention: %.3f of clean\n",
                retention);

    FILE *f = std::fopen("BENCH_faults.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_faults.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"requests\": %d,\n  \"legs\": [\n",
                 requests);
    for (size_t i = 0; i < results.size(); ++i) {
        const Leg &leg = legs[i];
        const LegResult &r = results[i];
        const double n = static_cast<double>(requests);
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"transient_p\": %.4f, "
            "\"truncate_p\": %.4f, \"corrupt_p\": %.4f, "
            "\"latency_tail_p\": %.4f,\n"
            "     \"goodput_rps\": %.4f, \"done_fraction\": %.4f, "
            "\"degraded_fraction\": %.4f, \"failed_fraction\": %.4f, "
            "\"p99_ms\": %.4f,\n"
            "     \"retries\": %llu, \"fetch_faults\": %llu, "
            "\"retry_giveups\": %llu, \"faults_transient\": %llu, "
            "\"faults_truncated\": %llu, \"faults_corrupted\": %llu, "
            "\"faults_delayed\": %llu}%s\n",
            leg.name, leg.policy.transient_p, leg.policy.truncate_p,
            leg.policy.corrupt_p, leg.policy.latency_tail_p,
            r.goodput_rps, r.done / n, r.degraded / n, r.failed / n,
            r.p99_ms,
            static_cast<unsigned long long>(r.stats.retries),
            static_cast<unsigned long long>(r.stats.fetch_faults),
            static_cast<unsigned long long>(r.stats.retry_giveups),
            static_cast<unsigned long long>(
                r.store_stats.faults_transient),
            static_cast<unsigned long long>(
                r.store_stats.faults_truncated),
            static_cast<unsigned long long>(
                r.store_stats.faults_corrupted),
            static_cast<unsigned long long>(
                r.store_stats.faults_delayed),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"acceptance_goodput_retention_gain\": "
                 "%.4f\n}\n",
                 retention);
    std::fclose(f);
    std::printf("\nwrote BENCH_faults.json\n");
    return 0;
}
