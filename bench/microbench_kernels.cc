/**
 * @file
 * Google-benchmark microbenchmarks for the convolution kernel
 * implementations: reference vs. direct-tiled vs. im2col+GEMM, and
 * library-blocking vs. shape-matched blocking on 224- and 280-family
 * shapes — the kernel-level mechanism behind Figure 7.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "codec/progressive.hh"
#include "image/synthetic.hh"
#include "nn/conv_kernels.hh"
#include "nn/kernel_selector.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace tamres {
namespace {

struct Buffers
{
    std::vector<float> in, w, bias, out;

    explicit Buffers(const ConvProblem &p)
        : in(static_cast<size_t>(p.n) * p.ic * p.ih * p.iw),
          w(static_cast<size_t>(p.oc) * (p.ic / p.groups) * p.kh * p.kw),
          bias(p.oc),
          out(static_cast<size_t>(p.n) * p.oc * p.oh() * p.ow())
    {
        Rng rng(1);
        for (auto &v : in)
            v = static_cast<float>(rng.uniform(-1, 1));
        for (auto &v : w)
            v = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
};

/** ResNet stage-2 3x3 conv at a 224 input. */
const ConvProblem kShape224{.n = 1, .ic = 64, .ih = 56, .iw = 56,
                            .oc = 64, .kh = 3, .kw = 3, .stride = 1,
                            .pad = 1};
/** Same layer at a 280 input (the off-library resolution). */
const ConvProblem kShape280{.n = 1, .ic = 64, .ih = 70, .iw = 70,
                            .oc = 64, .kh = 3, .kw = 3, .stride = 1,
                            .pad = 1};
/** MobileNet depthwise at 112. */
const ConvProblem kShapeDw{.n = 1, .ic = 96, .ih = 28, .iw = 28,
                           .oc = 96, .kh = 3, .kw = 3, .stride = 1,
                           .pad = 1, .groups = 96};

void
runConv(benchmark::State &state, const ConvProblem &p,
        const ConvConfig &cfg)
{
    Buffers buf(p);
    for (auto _ : state) {
        convForward(p, buf.in.data(), buf.w.data(), buf.bias.data(),
                    buf.out.data(), cfg);
        benchmark::DoNotOptimize(buf.out.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(p.macs()) * state.iterations() / 1e9,
        benchmark::Counter::kIsRate);
}

void
BM_Conv224_Reference(benchmark::State &state)
{
    runConv(state, kShape224, ConvConfig{.algo = ConvAlgo::Reference});
}

void
BM_Conv224_Direct(benchmark::State &state)
{
    runConv(state, kShape224,
            ConvConfig{.algo = ConvAlgo::Direct, .oc_tile = 4,
                       .ow_tile = 14});
}

void
BM_Conv224_Im2colLibrary(benchmark::State &state)
{
    runConv(state, kShape224, KernelSelector::libraryConfig(kShape224));
}

void
BM_Conv280_Im2colLibrary(benchmark::State &state)
{
    // Library blocking (fixed for 224) applied at the 280 shape.
    runConv(state, kShape280, KernelSelector::libraryConfig(kShape280));
}

void
BM_Conv280_Im2colMatched(benchmark::State &state)
{
    // Blocking matched to the 280-family GEMM geometry (N = 4900).
    runConv(state, kShape280,
            ConvConfig{.algo = ConvAlgo::Im2col, .mc = 64, .kc = 288,
                       .nc = 2450, .mr = 4, .nr = 8});
}

void
BM_ConvDepthwise_Direct(benchmark::State &state)
{
    runConv(state, kShapeDw,
            ConvConfig{.algo = ConvAlgo::Direct, .oc_tile = 1,
                       .ow_tile = 14});
}

// --- Threaded variants (threads = process default) ---

void
BM_Conv224_Im2colThreaded(benchmark::State &state)
{
    ConvConfig cfg = KernelSelector::libraryConfig(kShape224);
    cfg.threads = ThreadPool::defaultParallelism();
    runConv(state, kShape224, cfg);
}

void
BM_Conv224_WinogradSerial(benchmark::State &state)
{
    runConv(state, kShape224,
            ConvConfig{.algo = ConvAlgo::Winograd, .threads = 1});
}

void
BM_Conv224_WinogradThreaded(benchmark::State &state)
{
    runConv(state, kShape224,
            ConvConfig{.algo = ConvAlgo::Winograd,
                       .threads = ThreadPool::defaultParallelism()});
}

void
BM_ConvDepthwise_Threaded(benchmark::State &state)
{
    runConv(state, kShapeDw,
            ConvConfig{.algo = ConvAlgo::Depthwise, .ow_tile = 14,
                       .threads = ThreadPool::defaultParallelism()});
}

// --- SIMD dispatch: scalar vs detected level on the same config ---

void
runConvAtLevel(benchmark::State &state, const ConvProblem &p,
               const ConvConfig &cfg, SimdLevel level)
{
    SimdLevelGuard guard(level);
    runConv(state, p, cfg);
}

void
BM_Conv224_Im2colScalarDispatch(benchmark::State &state)
{
    runConvAtLevel(state, kShape224,
                   KernelSelector::libraryConfig(kShape224),
                   SimdLevel::Scalar);
}

void
BM_Conv224_Im2colSimdDispatch(benchmark::State &state)
{
    runConvAtLevel(state, kShape224,
                   KernelSelector::libraryConfig(kShape224),
                   simdDetected());
}

void
BM_Conv224_Micro6x16Simd(benchmark::State &state)
{
    runConvAtLevel(state, kShape224,
                   ConvConfig{.algo = ConvAlgo::Im2col, .mc = 64,
                              .kc = 288, .nc = 3136, .mr = 6,
                              .nr = 16},
                   simdDetected());
}

void
BM_ConvDepthwise_SimdDispatch(benchmark::State &state)
{
    runConvAtLevel(state, kShapeDw,
                   ConvConfig{.algo = ConvAlgo::Depthwise,
                              .ow_tile = 14},
                   simdDetected());
}

// --- Prepacked weights: the plan's steady-state conv ---

void
BM_Conv224_Im2colPrepacked(benchmark::State &state)
{
    const ConvProblem &p = kShape224;
    const ConvConfig cfg = KernelSelector::libraryConfig(p);
    Buffers buf(p);
    PackedConvWeights packed;
    packConvWeights(p, cfg, buf.w.data(), packed);
    for (auto _ : state) {
        convForwardPrepacked(p, buf.in.data(), packed,
                             buf.bias.data(), buf.out.data());
        benchmark::DoNotOptimize(buf.out.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(p.macs()) * state.iterations() / 1e9,
        benchmark::Counter::kIsRate);
}

// --- Codec hot path (AAN DCT + batched entropy layer) ---

void
BM_CodecEncode(benchmark::State &state)
{
    const Image img = generateSyntheticImage(
        {.height = 256, .width = 256, .class_id = 1, .seed = 7});
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    for (auto _ : state) {
        const EncodedImage enc = encodeProgressive(img, cfg);
        benchmark::DoNotOptimize(enc.bytes.data());
    }
    state.counters["MpixPerS"] = benchmark::Counter(
        256.0 * 256.0 * state.iterations() / 1e6,
        benchmark::Counter::kIsRate);
}

void
BM_CodecDecode(benchmark::State &state)
{
    const Image img = generateSyntheticImage(
        {.height = 256, .width = 256, .class_id = 1, .seed = 7});
    ProgressiveConfig cfg;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(img, cfg);
    for (auto _ : state) {
        const Image dec = decodeProgressive(enc);
        benchmark::DoNotOptimize(dec.data());
    }
    state.counters["MpixPerS"] = benchmark::Counter(
        256.0 * 256.0 * state.iterations() / 1e6,
        benchmark::Counter::kIsRate);
}

BENCHMARK(BM_Conv224_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Direct)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Im2colLibrary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv280_Im2colLibrary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv280_Im2colMatched)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvDepthwise_Direct)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Im2colThreaded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_WinogradSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_WinogradThreaded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvDepthwise_Threaded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Im2colScalarDispatch)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Im2colSimdDispatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Micro6x16Simd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvDepthwise_SimdDispatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv224_Im2colPrepacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CodecEncode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CodecDecode)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace tamres

BENCHMARK_MAIN();
