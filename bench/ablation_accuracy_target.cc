/**
 * @file
 * Ablation A2 (DESIGN.md): strictness of the calibration accuracy
 * target vs. read savings (the paper fixes <= 0.05%; here the target
 * sweeps from strict to loose, trading accuracy for bytes).
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_accuracy_target",
                  "Ablation: calibration accuracy-loss target vs. "
                  "read savings");

    const int n = bench::calImages();
    SyntheticDataset ds(imagenetLike(), n, 42);
    const QualityTable table(ds, 0, n, {112, 224, 336, 448});
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    SyntheticDataset pop_ds(imagenetLike(), bench::evalImages() / 2,
                            4242);
    const EvalPopulation pop{&pop_ds, pop_ds.size()};

    TablePrinter out("accuracy-target ablation — ImageNet ResNet-18");
    out.setHeader({"target(%)", "res", "threshold", "acc.loss(%)",
                   "savings(%)"});
    for (const double target : {0.0005, 0.005, 0.02, 0.05}) {
        CalibrationOptions opts;
        opts.max_accuracy_loss = target;
        const StoragePolicy policy =
            calibrate(table, ds, model, opts, pop);
        for (size_t r = 0; r < policy.resolutions.size(); ++r) {
            const PolicyEval eval = evaluateThreshold(
                table, ds, model, static_cast<int>(r),
                policy.thresholds[r], 0.75, pop);
            out.addRow(
                {TablePrinter::num(target * 100, 2),
                 std::to_string(policy.resolutions[r]),
                 TablePrinter::num(policy.thresholds[r], 4),
                 TablePrinter::num(
                     (eval.accuracy_full - eval.accuracy_policy) * 100,
                     2),
                 TablePrinter::num(eval.savings() * 100, 1)});
        }
    }
    out.print();
    std::printf("\nexpected: looser targets lower the SSIM thresholds "
                "and increase savings monotonically; the paper's "
                "0.05%% is the most conservative row.\n");
    return 0;
}
