/**
 * @file
 * Shared helpers for the experiment harnesses: environment-tunable
 * budgets, network latency measurement under a kernel mode, and
 * network tuning with a persistent config cache.
 *
 * Budgets (override via environment):
 *   TAMRES_EVAL_IMAGES       pixel-free accuracy sample size
 *   TAMRES_EVAL_IMAGES_PIX   pixel-rendering eval sample size
 *   TAMRES_CAL_IMAGES        images per storage-calibration table
 *   TAMRES_TRAIN_IMAGES      scale-model training images
 *   TAMRES_TUNING_TRIALS     autotuner candidates per conv shape
 *   TAMRES_TUNING_BUDGET_S   autotuner wall-clock budget per shape
 *   TAMRES_LATENCY_REPS      timed repetitions per latency point
 *   TAMRES_ENGINE_REQS       requests per engine closed-loop point
 *   TAMRES_CACHE             tuning-cache path
 *
 * BENCH_engine.json (written by bench/batched_serving, gated by
 * tools/bench_gate.py against bench/baselines/):
 *   workers                  engine worker threads (host parallelism)
 *   requests                 closed-loop requests per measured point
 *   serial_rps               batch-1 runInto() closed-loop rate, the
 *                            baseline (median of samples interleaved
 *                            with the engine runs to cancel drift)
 *   batch_item_speedup.bN    per-item planned-execution speedup of a
 *                            batch-N runInto over batch-1 (merged-
 *                            column GEMM + shared prepack effect)
 *   engine[]                 one point per max_batch sweep entry:
 *     max_batch, rps         formed-batch cap and measured rate
 *     vs_serial              rps / serial_rps
 *     mean_batch             served / batches (formation efficiency)
 *     p50_ms, p99_ms         closed-loop request latency percentiles
 *   engine_batched_vs_serial best batched engine rate / serial_rps —
 *                            the headline "real engine beats serial
 *                            batch-1" ratio the CI gate watches
 *   sim_phi                  amortizable-cost fraction fitted from
 *                            the measured batch curve, fed back into
 *                            the analytic cross-check simulation
 *
 * BENCH_faults.json (written by bench/fault_tolerance, gated by
 * tools/bench_gate.py with a wider built-in margin — chaos legs
 * inject latency on purpose):
 *   requests                 closed-loop requests per injection leg
 *   legs[]                   one point per leg (clean / acceptance /
 *                            heavy), in that fixed order:
 *     name, *_p              leg name and its injection rates
 *     goodput_rps            (Done + Degraded) per wall-clock second
 *                            — the gated useful-work rate
 *     done_fraction          served at the intended scan depth
 *     degraded_fraction      served at a reduced depth after retry
 *                            exhaustion (graceful degradation)
 *     failed_fraction        structured per-request failures
 *     p99_ms                 latency p99 over served requests
 *     retries, fetch_faults, engine retry-path counters
 *     retry_giveups          (see StagedStats)
 *     faults_*               what the FaultyObjectStore actually
 *                            injected (delayed / transient /
 *                            truncated / corrupted)
 *   acceptance_goodput_retention_gain
 *                            acceptance-leg goodput / clean goodput —
 *                            the gated "faults cost latency, not
 *                            liveness" headline ratio
 *
 * BENCH_overload.json (written by bench/overload_control, gated by
 * tools/bench_gate.py; p99_ms fields gate lower-is-better via the
 * gate's per-file direction map):
 *   requests                 closed-loop requests per leg
 *   legs[]                   one point per leg, in this fixed order:
 *                            tail_base / tail_hedge (latency-tail
 *                            injection, hedging off/on) and
 *                            retry_only / full (heavy fault mix,
 *                            PR 6 retries only vs the whole breaker
 *                            + hedge + brownout control plane):
 *     name, hedge, breaker,  leg name and which defenses are on
 *     brownout
 *     goodput_rps            (Done + Degraded) per wall-clock second
 *     done_/degraded_/       terminal mix over the leg's requests
 *     failed_fraction
 *     p99_ms                 latency p99 over served requests —
 *                            lower-is-better gated
 *     retries, retry_giveups engine retry-path counters
 *     hedges_issued,         backup fetches launched / adopted over
 *     hedge_wins             their primary
 *     breaker_trips,         circuit-breaker transitions to Open and
 *     breaker_fast_fails     fetches it rejected while Open
 *     tier_drops,            brownout tier shifts and decisions the
 *     tier_recoveries,       active tier lowered
 *     brownout_capped
 *   hedge_p99_gain           tail_base p99 / tail_hedge p99 — the
 *                            gated "hedging cuts the fetch-bound
 *                            tail" headline ratio
 *   overload_goodput_gain    full goodput / retry_only goodput — the
 *                            gated "the control plane keeps goodput
 *                            under the heavy mix" headline ratio
 *                            (acceptance target: >= 2)
 *
 * BENCH_watchdog.json (written by bench/watchdog_containment, gated
 * by tools/bench_gate.py; p99_ms and stall* fields gate
 * lower-is-better via the gate's per-file direction map):
 *   requests                 closed-loop requests per leg
 *   window_s                 fixed observation window the collapse
 *                            control is measured over
 *   legs[]                   one point per leg, in this fixed order:
 *                            clean (supervised, no faults),
 *                            hang_timed (wedged reads + timed-fetch
 *                            bound), hang_watchdog (wedged reads +
 *                            watchdog only), hang_unsup (wedged
 *                            reads, supervision off — the collapse
 *                            control):
 *     name, hang_p, timed,   leg name, wedge probability, and which
 *     watchdog               supervision mechanisms are on
 *     goodput_rps            (Done + Degraded) per second inside the
 *                            window — gated up on supervised legs;
 *                            the collapse control emits
 *                            served_per_window_s instead, an
 *                            UNGATED key (its near-zero value is the
 *                            point; gating would reward collapse)
 *     done_/degraded_/       terminal mix over the leg's requests
 *     failed_fraction        (measured after the wedge is released)
 *     p99_ms                 latency p99 over served requests —
 *                            lower-is-better gated on supervised
 *                            legs (served_window_p99, ungated, on
 *                            the collapse control)
 *     stalled_fraction       requests not yet terminal when the
 *                            window closed — lower-is-better gated
 *                            (identically 0 on supervised legs, so
 *                            the gate skips them until one drifts)
 *     drain_s                drain() + stop() wall time — the bench
 *                            hard-fails if teardown is not prompt
 *     reads_abandoned,       supervision counters: timed-fetch
 *     watchdog_flags,        abandonments, watchdog firings, retry
 *     retry_giveups,         budget give-ups, and reads the injector
 *     faults_hung            actually wedged
 *   containment_goodput_gain hang_timed goodput / hang_unsup served
 *                            rate — the gated "supervision holds
 *                            goodput where the control collapses"
 *                            headline ratio
 *
 * BENCH_cache.json (written by bench/decode_cache, gated by
 * tools/bench_gate.py; bytes_read and p99_ms fields gate
 * lower-is-better via the gate's per-file direction map):
 *   requests                 Zipf draws served per leg (same fixed
 *                            sequence in every leg)
 *   objects                  hot-set size the Zipf draw ranges over
 *   zipf_alpha               popularity skew (1.0 = classic Zipf)
 *   entry_bytes              measured footprint of one full-depth
 *                            cache entry (preview + snapshot +
 *                            overhead) — capacities are multiples
 *   legs[]                   one point per leg, in ascending
 *                            capacity order: off / small / medium /
 *                            large:
 *     name, capacity_entries leg name and capacity in entry units
 *     bytes_read             store bytes the engine actually fetched
 *                            — lower-is-better gated; hits charge
 *                            zero, partial hits charge the delta
 *     p99_ms                 latency p99 over served requests —
 *                            lower-is-better gated (every physical
 *                            fetch pays an injected latency tail, so
 *                            this is the fetches-avoided dividend)
 *     goodput_rps            (Done + Degraded) per wall-clock second
 *     done_/degraded_        terminal mix over the leg's requests
 *     fraction
 *     cache_hits             stage-1 fetches skipped entirely
 *     cache_resumes          stage-4 deep fetches resumed partway
 *     cache_misses           stage-1 lookups that found nothing
 *     cache_bytes_saved      store bytes the cache made unnecessary
 *     evictions, entries     LRU evictions and resident entries
 *   cache_bytes_gain         off-leg bytes_read / large-leg
 *                            bytes_read — the gated ">= 2x bytes
 *                            cut on the Zipf mix" headline ratio
 *                            (named so the lower-is-better
 *                            "bytes_read" key pattern cannot claim
 *                            a higher-is-better ratio)
 *   cache_p99_gain           off-leg p99 / large-leg p99 — the gated
 *                            "hits skip the latency tail" headline
 *
 * BENCH_quant.json (written by bench/quantized_serving, gated by
 * tools/bench_gate.py; p99_ms fields gate lower-is-better via the
 * gate's per-file direction map):
 *   workers                  engine worker threads (host parallelism)
 *   requests                 closed-loop requests per leg
 *   max_batch                formed-batch cap both legs run under
 *   convs_quantized          Conv2d ops rewritten to QuantConv2d
 *   fp32_rps, int8_rps       closed-loop request rate of each leg on
 *                            the SAME engine (two graphs, two
 *                            executors per worker; the int8 leg
 *                            stamps want_int8 on every request) —
 *                            both higher-is-better gated
 *   fp32_p50_ms, fp32_p99_ms closed-loop latency percentiles of the
 *   int8_p50_ms, int8_p99_ms two legs — p99s lower-is-better gated
 *   int8_speedup             int8_rps / fp32_rps — the gated "the
 *                            quantized tier buys real headroom"
 *                            headline ratio (acceptance target: the
 *                            int8 leg serves strictly more than fp32)
 *   accuracy_rel_err         mean relative logit error of the int8
 *                            graph vs its fp32 sibling over a sample
 *                            batch — informational (ungated): the
 *                            accuracy cost of the precision tier
 */

#ifndef TAMRES_BENCH_BENCH_COMMON_HH
#define TAMRES_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>

#include "core/pipeline.hh"
#include "nn/kernel_selector.hh"
#include "tensor/tensor_ops.hh"
#include "tuning/tuner.hh"
#include "util/rng.hh"
#include "util/env.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace tamres {
namespace bench {

inline int evalImages() { return static_cast<int>(envInt("TAMRES_EVAL_IMAGES", 20000)); }
inline int evalImagesPix() { return static_cast<int>(envInt("TAMRES_EVAL_IMAGES_PIX", 400)); }
inline int calImages() { return static_cast<int>(envInt("TAMRES_CAL_IMAGES", 42)); }
inline int trainImages() { return static_cast<int>(envInt("TAMRES_TRAIN_IMAGES", 480)); }
inline int latencyReps() { return static_cast<int>(envInt("TAMRES_LATENCY_REPS", 2)); }
inline int engineRequests() { return static_cast<int>(envInt("TAMRES_ENGINE_REQS", 48)); }

inline std::string
cachePath()
{
    return envString("TAMRES_CACHE", "tamres_tuning_cache.txt");
}

inline TuneOptions
tuneOptions()
{
    TuneOptions opts;
    opts.trials = static_cast<int>(envInt("TAMRES_TUNING_TRIALS", 10));
    opts.reps = 2;
    opts.time_budget_s = envDouble("TAMRES_TUNING_BUDGET_S", 1.2);
    return opts;
}

/** The shared persistent tuning cache. */
inline ConfigCache &
tuningCache()
{
    static ConfigCache cache(cachePath());
    return cache;
}

/**
 * Tune every conv of @p graph at @p resolution (cache-backed) and
 * register the winners with the KernelSelector.
 */
inline void
ensureTuned(Graph &graph, int resolution)
{
    AutoTuner tuner(&tuningCache());
    tuner.tuneNetwork(graph, {1, 3, resolution, resolution},
                      tuneOptions());
}

/** Build a backbone graph for an arch. */
inline std::unique_ptr<Graph>
buildBackbone(BackboneArch arch, uint64_t seed = 1)
{
    return arch == BackboneArch::ResNet18 ? buildResNet18(1000, seed)
                                          : buildResNet50(1000, seed);
}

/**
 * Median wall-clock seconds of one batch-1 forward pass at
 * @p resolution under @p mode.
 */
inline double
networkLatency(Graph &graph, int resolution, KernelMode mode)
{
    KernelSelector::instance().setMode(mode);
    Tensor in({1, 3, resolution, resolution});
    Rng rng(resolution);
    fillUniform(in, rng, 0.0f, 1.0f);
    const double s = medianRunSeconds([&] { graph.run(in); },
                                      latencyReps());
    KernelSelector::instance().setMode(KernelMode::Library);
    return s;
}

/** Print a standard header naming the experiment and the host. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("================================================\n");
    std::printf("tamres experiment: %s\n", experiment);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("note: single-host CPU substitutes for the paper's "
                "4790K/2990WX testbeds (see EXPERIMENTS.md)\n");
    std::printf("================================================\n");
}

} // namespace bench
} // namespace tamres

#endif // TAMRES_BENCH_BENCH_COMMON_HH
