/**
 * @file
 * Ablation: entropy layer of the progressive codec. Compares the
 * fixed 8-bit (run, size) layer against per-scan canonical Huffman
 * coding on both dataset profiles: bytes per scan, total size, and
 * the effect on the read-fraction axis every storage experiment
 * shares. Also reports quality metrics per scan prefix (SSIM,
 * MS-SSIM, PSNR, blind score) to show the cheap metrics the paper
 * relies on order prefixes consistently (Section VIII-c).
 */

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "image/metrics.hh"
#include "image/noref.hh"
#include "sim/dataset.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_entropy_coder",
                  "codec entropy layer (run-length vs Huffman) + "
                  "quality-metric agreement (Section VIII-c)");

    const int n = std::max(4, bench::calImages() / 4);

    TablePrinter sizes("encoded bytes: run-length vs per-scan Huffman "
                       "(mean over images)");
    sizes.setHeader({"dataset", "runlength B", "huffman B", "ratio"});
    for (const bool cars : {false, true}) {
        SyntheticDataset ds(cars ? carsLike() : imagenetLike(), n, 61);
        double rl = 0.0, hf = 0.0;
        for (int i = 0; i < n; ++i) {
            const Image img = ds.render(i);
            ProgressiveConfig c1;
            c1.quality = ds.spec().encode_quality;
            ProgressiveConfig c2 = c1;
            c2.entropy = EntropyCoder::Huffman;
            rl += static_cast<double>(
                encodeProgressive(img, c1).totalBytes());
            hf += static_cast<double>(
                encodeProgressive(img, c2).totalBytes());
        }
        sizes.addRow({cars ? "Cars-like" : "ImageNet-like",
                      TablePrinter::num(rl / n, 0),
                      TablePrinter::num(hf / n, 0),
                      TablePrinter::num(hf / rl, 3)});
    }
    sizes.print();

    // Per-scan-prefix quality metrics on one representative image.
    SyntheticDataset ds(imagenetLike(), 1, 62);
    const Image img = ds.render(0);
    ProgressiveConfig cfg;
    cfg.quality = ds.spec().encode_quality;
    cfg.entropy = EntropyCoder::Huffman;
    const EncodedImage enc = encodeProgressive(img, cfg);
    const Image full = decodeProgressive(enc);
    const double sharp_ref = sharpness(full);

    TablePrinter quality("quality metrics per scan prefix (Huffman "
                         "stream)");
    quality.setHeader({"scans", "read frac", "SSIM", "MS-SSIM",
                       "PSNR(dB)", "blind"});
    for (int k = 1; k <= enc.numScans(); ++k) {
        const Image d = decodeProgressive(enc, k);
        quality.addRow(
            {std::to_string(k),
             TablePrinter::num(static_cast<double>(
                                   enc.bytesForScans(k)) /
                                   enc.totalBytes(), 3),
             TablePrinter::num(ssim(d, full), 4),
             TablePrinter::num(msSsim(d, full), 4),
             TablePrinter::num(psnr(d, full), 1),
             TablePrinter::num(norefQuality(d, sharp_ref), 3)});
    }
    quality.print();
    std::printf(
        "\nexpected shape: Huffman roughly halves every scan, "
        "uniformly tightening the bytes axis of Figs. 6 and "
        "Tables III/IV; all four quality metrics rise monotonically "
        "with scan count, so any of them can drive the Section V "
        "calibration — the blind (no-reference) score does so without "
        "needing the full decode (Section VIII-c).\n");
    return 0;
}
