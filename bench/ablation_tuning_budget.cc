/**
 * @file
 * Ablation A1 (DESIGN.md): autotuning search budget vs. achieved
 * throughput on the hot ResNet conv shapes at a non-library resolution
 * (280). Shows how quickly measurement-driven search closes the gap to
 * its best configuration.
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_tuning_budget",
                  "Ablation: tuner trials vs. achieved GFLOPs/s");

    // The hot shapes: ResNet's 3x3 stage convs at 280 input.
    const std::vector<ConvProblem> shapes = {
        {.n = 1, .ic = 64, .ih = 70, .iw = 70, .oc = 64, .kh = 3,
         .kw = 3, .stride = 1, .pad = 1},
        {.n = 1, .ic = 128, .ih = 35, .iw = 35, .oc = 128, .kh = 3,
         .kw = 3, .stride = 1, .pad = 1},
    };

    TablePrinter table("tuning budget ablation @280-family shapes");
    table.setHeader({"shape", "trials", "best GFLOPs/s",
                     "vs library"});
    for (const auto &p : shapes) {
        const MeasureResult lib =
            measureConv(p, KernelSelector::libraryConfig(p), 2);
        for (int trials : {2, 4, 8, 16, 32}) {
            AutoTuner tuner; // no cache: honest per-budget search
            TuneOptions opts;
            opts.trials = trials;
            opts.reps = 2;
            opts.time_budget_s = 1e9; // trials-bounded
            const MeasureResult best = tuner.tune(p, opts);
            table.addRow({p.key(), std::to_string(trials),
                          TablePrinter::num(best.gflops(p), 2),
                          TablePrinter::num(lib.seconds / best.seconds,
                                            2)});
        }
    }
    table.print();
    std::printf("\nexpected: throughput is non-decreasing in budget "
                "and saturates; the first few trials recover most of "
                "the gain (AutoTVM-style behaviour).\n");
    return 0;
}
