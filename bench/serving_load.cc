/**
 * @file
 * Section VIII-a serving experiment: a Poisson request stream served
 * by (a) a static-resolution endpoint and (b) a dynamic endpoint that
 * sheds load by shrinking the crop when the queue builds (the scale
 * model then selects cheaper resolutions automatically). Service
 * times are derived from the backbone FLOPs at each resolution under
 * a fixed host throughput, so this bench is deterministic and
 * CPU-independent; see table2_latency for measured wall-clock.
 */

#include "bench/bench_common.hh"
#include "core/serving.hh"

using namespace tamres;

int
main()
{
    bench::banner("serving_load",
                  "Section VIII-a (load shedding via dynamic "
                  "resolution)");

    // Analytic service model: seconds = GFLOPs / host_gflops.
    const double host_gflops = 8.0;
    auto service_at = [&](int res) {
        return (backboneGflops(BackboneArch::ResNet50, res) +
                scaleModelGflops()) / host_gflops;
    };

    // Under a normal crop the dynamic pipeline mostly picks 280; under
    // a shed (tight) crop it drops toward 168 (Figures 8/9 histograms).
    const int normal_res = 280;
    const int shed_res = 168;

    TablePrinter table("M/D/1 serving: static vs load-shedding dynamic");
    table.setHeader({"arrival(hz)", "policy", "mean lat(ms)",
                     "p99 lat(ms)", "util"});
    for (const double rate : {0.6, 0.9, 1.2, 1.8}) {
        ServingConfig cfg;
        cfg.arrival_rate_hz = rate;
        cfg.num_requests = 4000;
        cfg.seed = 11;

        auto static_policy = [&](int, int) {
            return std::make_pair(normal_res, service_at(normal_res));
        };
        auto dynamic_policy = [&](int, int depth) {
            const int res = depth > 2 ? shed_res : normal_res;
            return std::make_pair(res, service_at(res));
        };

        for (const auto &[name, policy] :
             {std::make_pair("static-280",
                             ServicePolicy(static_policy)),
              std::make_pair("dynamic-shed",
                             ServicePolicy(dynamic_policy))}) {
            const auto stats = ServingStats::fromRequests(
                simulateServing(cfg, policy));
            table.addRow({TablePrinter::num(rate, 1), name,
                          TablePrinter::num(stats.mean_latency_s * 1e3,
                                            1),
                          TablePrinter::num(stats.p99_latency_s * 1e3,
                                            1),
                          TablePrinter::num(stats.utilization, 2)});
        }
    }
    table.print();
    std::printf("\nexpected: near the static policy's saturation "
                "point the shedding policy bounds p99 by dropping to "
                "a cheaper resolution only while the queue is deep — "
                "no model swap, bounded accuracy impact (the crop "
                "shrink keeps object scales matched, Sec. VIII-a).\n");
    return 0;
}
