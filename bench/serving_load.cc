/**
 * @file
 * Section VIII-a serving experiment, measured: a Poisson request
 * stream is driven open-loop into the REAL ServingEngine, once with a
 * static policy and once with the dynamic load-shedding policy (queue
 * deep => serve at a shrunken crop, no model swap — the engine
 * downscales the batch and replays the cached low-resolution plan).
 * The analytic M/D/1 model the earlier revisions of this bench were
 * built on is kept below as a cross-check: its shape (static policy
 * saturates, shedding bounds p99) should match what the engine
 * measures.
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/engine.hh"
#include "core/serving.hh"
#include "nn/passes.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kNormalRes = 224;
constexpr int kShedRes = 112;

struct LoadPoint
{
    uint64_t served = 0;
    uint64_t shed = 0;     //!< admission sheds + pool-exhausted drops
    uint64_t at_shed_res = 0;
    double mean_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_batch = 1.0;
};

/** Harvest a finished request's stats before the object is reused. */
void
harvest(InferenceRequest &r, LoadPoint &pt, double &lat_sum)
{
    const RequestState s = r.stateNow();
    if (s == RequestState::Done) {
        lat_sum += r.latency_s;
        if (r.resolution == kShedRes)
            ++pt.at_shed_res;
    }
    r.state.store(static_cast<int>(RequestState::Idle));
}

/** Open-loop Poisson drive at @p rate_hz for @p total requests. */
LoadPoint
drive(ServingEngine &engine, const Tensor &item, double rate_hz,
      int total, uint64_t seed)
{
    Rng rng(seed);
    LoadPoint pt;
    double lat_sum = 0.0;
    std::vector<InferenceRequest> pool(32);
    for (auto &r : pool)
        r.input = item.clone();

    const auto epoch = std::chrono::steady_clock::now();
    double next_s = 0.0;
    uint64_t dropped = 0;
    for (int i = 0; i < total; ++i) {
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        next_s += -std::log(u) / rate_hz;
        std::this_thread::sleep_until(
            epoch + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(next_s)));
        InferenceRequest *free_req = nullptr;
        for (auto &r : pool) {
            if (r.stateNow() != RequestState::Queued) {
                harvest(r, pt, lat_sum);
                free_req = &r;
                break;
            }
        }
        if (!free_req) {
            ++dropped; // every slot in flight: the client sheds
            continue;
        }
        engine.submit(*free_req); // admission shed counted by engine
    }
    engine.drain();
    for (auto &r : pool)
        harvest(r, pt, lat_sum);

    const EngineStats st = engine.stats();
    pt.served = st.served;
    pt.shed = st.shed_admission + st.expired + dropped;
    pt.mean_latency_s = st.served ? lat_sum / st.served : 0.0;
    pt.p99_latency_s = st.p99_latency_s;
    pt.mean_batch = st.mean_batch;
    return pt;
}

} // namespace

int
main()
{
    bench::banner("serving_load",
                  "Section VIII-a measured: load shedding via dynamic "
                  "resolution on the real engine");
    const int hw = ThreadPool::defaultParallelism();
    const int total = bench::engineRequests();

    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*net);
    bench::ensureTuned(*net, kNormalRes);
    bench::ensureTuned(*net, kShedRes);
    KernelSelector::instance().setMode(KernelMode::Tuned);

    Tensor item({1, 3, kNormalRes, kNormalRes});
    Rng rng(211);
    fillUniform(item, rng, 0.0f, 1.0f);

    // Capacity anchor: serial batch-1 rate at the normal resolution.
    Tensor out;
    net->runInto(item, out);
    const double cap_hz =
        1.0 / medianRunSeconds([&] { net->runInto(item, out); },
                               bench::latencyReps());
    std::printf("capacity anchor: %.2f req/s at %d (batch-1 serial)\n",
                cap_hz, kNormalRes);

    TablePrinter table("measured engine under Poisson load: static vs "
                       "load-shedding dynamic resolution");
    table.setHeader({"load (x cap)", "policy", "mean lat(ms)",
                     "p99 lat(ms)", "shed@112 %", "dropped", "mean b"});
    for (const double load : {0.7, 1.1, 1.6}) {
        for (const bool shed : {false, true}) {
            setenv("TAMRES_THREADS", "1", 1);
            EngineConfig cfg;
            cfg.workers = hw;
            cfg.max_batch = 4;
            cfg.max_delay_us = 2000;
            cfg.queue_capacity = 16;
            if (shed)
                cfg.resolution_policy =
                    makeShedPolicy(0, kShedRes, 2);
            cfg.warm_shapes = {{1, 3, kNormalRes, kNormalRes},
                               {4, 3, kNormalRes, kNormalRes}};
            if (shed) {
                cfg.warm_shapes.push_back({1, 3, kShedRes, kShedRes});
                cfg.warm_shapes.push_back({4, 3, kShedRes, kShedRes});
            }
            LoadPoint pt;
            {
                ServingEngine engine(*net, cfg);
                pt = drive(engine, item, load * cap_hz, total,
                           17 + static_cast<uint64_t>(load * 10));
            }
            unsetenv("TAMRES_THREADS");
            table.addRow(
                {TablePrinter::num(load, 1),
                 shed ? "dynamic-shed" : "static-224",
                 TablePrinter::num(pt.mean_latency_s * 1e3, 0),
                 TablePrinter::num(pt.p99_latency_s * 1e3, 0),
                 TablePrinter::num(
                     pt.served ? 100.0 * pt.at_shed_res / pt.served
                               : 0.0,
                     0),
                 std::to_string(pt.shed),
                 TablePrinter::num(pt.mean_batch, 1)});
        }
    }
    table.print();

    // ---- Analytic cross-check (the original simulated bench) ------
    const double host_gflops = 8.0;
    auto service_at = [&](int res) {
        return (backboneGflops(BackboneArch::ResNet50, res) +
                scaleModelGflops()) / host_gflops;
    };
    const int normal_res = 280;
    const int shed_res = 168;

    TablePrinter sim("analytic cross-check: M/D/1, static vs "
                     "load-shedding dynamic (ResNet-50 service model)");
    sim.setHeader({"arrival(hz)", "policy", "mean lat(ms)",
                   "p99 lat(ms)", "util"});
    for (const double rate : {0.9, 1.2, 1.8}) {
        ServingConfig cfg;
        cfg.arrival_rate_hz = rate;
        cfg.num_requests = 4000;
        cfg.seed = 11;

        auto static_policy = [&](int, int) {
            return std::make_pair(normal_res, service_at(normal_res));
        };
        auto dynamic_policy = [&](int, int depth) {
            const int res = depth > 2 ? shed_res : normal_res;
            return std::make_pair(res, service_at(res));
        };

        for (const auto &[name, policy] :
             {std::make_pair("static-280",
                             ServicePolicy(static_policy)),
              std::make_pair("dynamic-shed",
                             ServicePolicy(dynamic_policy))}) {
            const auto stats = ServingStats::fromRequests(
                simulateServing(cfg, policy));
            sim.addRow({TablePrinter::num(rate, 1), name,
                        TablePrinter::num(stats.mean_latency_s * 1e3,
                                          1),
                        TablePrinter::num(stats.p99_latency_s * 1e3,
                                          1),
                        TablePrinter::num(stats.utilization, 2)});
        }
    }
    sim.print();
    std::printf(
        "\nexpected shape (measured AND simulated): past the static "
        "policy's capacity the queue-depth trigger moves traffic to "
        "the %d crop, bounding p99 while the static endpoint's tail "
        "diverges or drops requests — the paper's no-model-swap "
        "shedding knob, now measured on the real batched engine.\n",
        kShedRes);
    return 0;
}
