/**
 * @file
 * Ablation: transfer tuning across resolutions. Dynamic resolution
 * multiplies the number of shapes to tune by the size of the
 * resolution grid (Section VI calls per-shape tuning "impractical" to
 * do by hand); warm-starting each shape's search with the cached
 * winners of the same layer at other resolutions recovers most of the
 * tuned throughput with a small per-resolution budget.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "tuning/tuner.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_transfer_tuning",
                  "Section VI (amortizing tuning across the "
                  "resolution grid)");

    // The same ResNet block input at the paper's resolution ladder
    // (56px at 224 scales linearly with network input).
    const std::vector<int> extents = {28, 42, 56, 70, 84, 98, 112};
    auto problem_at = [](int e) {
        return ConvProblem{1, 64, e, e, 64, 3, 3, 1, 1, 1};
    };

    const int full_budget = std::max(6, static_cast<int>(
        envInt("TAMRES_TUNING_TRIALS", 12)));
    const int small_budget = std::max(3, full_budget / 4);

    // Donor: tune the 224-family shape (56px) at full budget.
    const std::string cache_path = "/tmp/tamres_transfer_cache.txt";
    std::remove(cache_path.c_str());
    ConfigCache cache(cache_path);
    {
        AutoTuner donor(&cache);
        TuneOptions o;
        o.trials = full_budget;
        o.reps = 2;
        o.time_budget_s = 1e9;
        donor.tune(problem_at(56), o);
    }

    TablePrinter out("cold small-budget vs. transfer-seeded "
                     "small-budget vs. full-budget (GFLOP/s)");
    out.setHeader({"extent", "cold@" + std::to_string(small_budget),
                   "transfer@" + std::to_string(small_budget),
                   "full@" + std::to_string(full_budget)});
    for (const int e : extents) {
        if (e == 56)
            continue; // the donor itself
        const ConvProblem p = problem_at(e);

        TuneOptions small;
        small.trials = small_budget;
        small.reps = 2;
        small.time_budget_s = 1e9;

        AutoTuner cold; // no cache
        const double cold_gf = cold.tune(p, small).gflops(p);

        TuneOptions transfer = small;
        transfer.transfer = true;
        AutoTuner warm(&cache);
        // Fresh lookup must miss (only the donor is cached), but the
        // siblings seed the candidate list.
        const double warm_gf = warm.tune(p, transfer).gflops(p);

        TuneOptions full = small;
        full.trials = full_budget;
        AutoTuner ref;
        const double full_gf = ref.tune(p, full).gflops(p);

        out.addRow({std::to_string(e), TablePrinter::num(cold_gf, 2),
                    TablePrinter::num(warm_gf, 2),
                    TablePrinter::num(full_gf, 2)});
    }
    out.print();
    std::remove(cache_path.c_str());
    std::printf(
        "\nexpected shape: blocking that wins at one spatial extent "
        "transfers to its neighbors, so the transfer-seeded quarter "
        "budget tracks the full-budget column more closely than the "
        "cold quarter budget — tuning the whole resolution grid costs "
        "little more than tuning one resolution.\n");
    return 0;
}
