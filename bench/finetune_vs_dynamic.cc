/**
 * @file
 * The paper's headline comparison (Sections I, VII-b, IX): dynamic
 * resolution as an alternative to fine-tuning for a known object
 * scale [31]. A backbone fine-tuned for the assumed (75% crop, best
 * resolution) operating point is evaluated across the full crop range
 * against (a) the vanilla static backbone and (b) the dynamic
 * two-model pipeline. Fine-tuning wins (narrowly) where its
 * assumption holds and collapses off-assumption; the dynamic pipeline
 * tracks the apex everywhere without knowing the crop in advance.
 */

#include "bench/bench_common.hh"
#include "core/finetune.hh"
#include "core/pipeline.hh"
#include "core/scale_model.hh"

using namespace tamres;

int
main()
{
    bench::banner("finetune_vs_dynamic",
                  "Sections I/VII-b/IX (dynamic resolution vs. "
                  "fine-tuning for a known scale [31])");

    // Static rows are pixel-free and use the large budget; the dynamic
    // pipeline renders a preview per image, so it uses the (smaller)
    // pixel budget, as in fig8/fig9.
    const int n_eval = bench::evalImages();
    const int n_eval_pix = bench::evalImagesPix();
    const int n_train = 3 * n_eval / 4;
    SyntheticDataset ds(imagenetLike(), n_eval + n_train, 21);
    const BackboneAccuracyModel vanilla(BackboneArch::ResNet18,
                                        ds.spec(), 1);

    // Fine-tuned baseline: assumes the canonical 75% crop and the
    // resolution that crop favors (280, Figure 8) — the advantage the
    // paper grants its baselines.
    const double assumed_crop = 0.75;
    const int assumed_res = 280;
    const BackboneAccuracyModel tuned =
        fineTunedBackbone(BackboneArch::ResNet18, ds, 1, 0, n_train,
                          assumed_crop, assumed_res);

    // Dynamic pipeline: scale model trained across crops.
    ScaleModelOptions sopts;
    ScaleModel scale(paperResolutions(), sopts);
    scale.train(ds, 0, std::min(n_train, bench::trainImages()),
                BackboneArch::ResNet18, {0.25, 0.56, 0.75, 1.0}, 224);

    TablePrinter table(
        "top-1 accuracy across test-time crops (ResNet-18, "
        "ImageNet-like)");
    table.setHeader({"crop", "static-224", "finetuned@75%/280",
                     "dynamic", "best-static", "best-res"});
    for (const double crop : {0.25, 0.56, 0.75, 1.0}) {
        const auto s224 =
            evalStatic(ds, n_train, n_train + n_eval, vanilla, 224,
                       crop);
        // The fine-tuned model runs at its assumed resolution.
        const auto ft = evalStatic(ds, n_train, n_train + n_eval,
                                   tuned, assumed_res, crop);
        const auto dyn =
            evalDynamic(ds, n_train, n_train + n_eval_pix, vanilla,
                        scale, crop, 224);
        double best = 0.0;
        int best_res = 0;
        for (const int r : paperResolutions()) {
            const double a =
                evalStatic(ds, n_train, n_train + n_eval, vanilla, r,
                           crop).accuracy;
            if (a > best) {
                best = a;
                best_res = r;
            }
        }
        table.addRow({TablePrinter::num(crop * 100, 0) + "%",
                      TablePrinter::num(s224.accuracy * 100, 1),
                      TablePrinter::num(ft.accuracy * 100, 1),
                      TablePrinter::num(dyn.accuracy * 100, 1),
                      TablePrinter::num(best * 100, 1),
                      std::to_string(best_res)});
    }
    table.print();
    std::printf(
        "\nexpected shape: at the assumed 75%% crop the fine-tuned "
        "model is at or above every alternative; as the test crop "
        "departs from the assumption its accuracy falls below the "
        "dynamic pipeline, which stays within ~1-2 points of the "
        "per-crop best static without knowing the crop — the paper's "
        "Section IX conclusion.\n");
    return 0;
}
