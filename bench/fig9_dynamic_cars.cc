/**
 * @file
 * Reproduces paper Figure 9: accuracy vs. FLOPs for static and
 * dynamic resolution with ResNet-18/50 on the Cars-like dataset
 * across 25/56/75/100% center crops.
 */

#include "bench/fig_dynamic_common.hh"

int
main()
{
    tamres::bench::banner(
        "fig9_dynamic_cars",
        "Figure 9 (a-h): static vs. dynamic resolution, Cars");
    tamres::bench::runDynamicFigure(tamres::carsLike(), "Fig.9");
    std::printf("expected shape (paper): the 25%% crop inverts the "
                "resolution ranking (448 below 112); dynamic tracks "
                "the apex across crops.\n");
    return 0;
}
