/**
 * @file
 * Shared driver for Tables III and IV: read-bandwidth savings under
 * SSIM-calibrated storage policies, per resolution and for the dynamic
 * pipeline, across center crops — all byte counts measured from the
 * progressive codec.
 */

#ifndef TAMRES_BENCH_TABLE_SAVINGS_COMMON_HH
#define TAMRES_BENCH_TABLE_SAVINGS_COMMON_HH

#include "bench/bench_common.hh"

namespace tamres {
namespace bench {

inline void
runSavingsTable(const DatasetSpec &spec, const char *table_name)
{
    const int n_cal = calImages();
    const int n_train = trainImages();
    SyntheticDataset ds(spec, std::max(n_cal, n_train), 42);
    const QualityTable table(ds, 0, n_cal, paperResolutions());
    const int num_res = static_cast<int>(paperResolutions().size());
    const std::vector<double> crops = {0.75, 0.56, 0.25};

    // Accuracy needs finer resolution than n_cal images give (the
    // paper calibrates on 10k images); reuse the measured byte/SSIM
    // tables across a large pixel-free population (see
    // core/calibration.hh).
    SyntheticDataset pop_ds(spec, evalImages() / 2, 4242);
    const EvalPopulation pop{&pop_ds, pop_ds.size()};

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        BackboneAccuracyModel model(arch, spec, 1);

        // Calibrate exactly per Section V (binary search on SSIM in
        // [0.94, 1.0], <= 0.05% loss). The tolerance is the paper's;
        // on our smaller calibration sample one image flip is ~2%, so
        // thresholds come out conservative — savings are a lower
        // bound.
        CalibrationOptions copts;
        copts.max_accuracy_loss =
            envDouble("TAMRES_ACC_LOSS_TARGET", 0.0005);
        const StoragePolicy policy =
            calibrate(table, ds, model, copts, pop);

        ScaleModelOptions sopts;
        sopts.epochs = static_cast<int>(envInt("TAMRES_SCALE_EPOCHS",
                                               30));
        ScaleModel scale(paperResolutions(), sopts);
        scale.train(ds, 0, n_train, arch, {0.25, 0.56, 0.75, 1.0},
                    static_cast<int>(envInt("TAMRES_PREVIEW_SIDE",
                                            192)));

        TablePrinter out(std::string(table_name) + " — " + spec.name +
                         " " + archName(arch) +
                         ": accuracy default vs calibrated + read "
                         "savings");
        out.setHeader({"Res", "crop", "Default", "Calibrated",
                       "ReadSavings%", "SSIM-thresh"});
        for (const double crop : crops) {
            for (int r = 0; r < num_res; ++r) {
                const StorageRow row = evalStaticStorage(
                    table, ds, model, r, policy, crop, pop);
                out.addRow(
                    {std::to_string(paperResolutions()[r]),
                     TablePrinter::num(crop * 100, 0) + "%",
                     TablePrinter::num(row.accuracy_default * 100, 1),
                     TablePrinter::num(row.accuracy_calibrated * 100, 1),
                     TablePrinter::num(row.savingsPercent(), 1),
                     TablePrinter::num(policy.thresholdFor(r), 4)});
            }
            const StorageRow dyn = evalDynamicStorage(
                table, ds, model, scale, policy, crop, pop);
            out.addRow({"dynamic",
                        TablePrinter::num(crop * 100, 0) + "%",
                        TablePrinter::num(dyn.accuracy_default * 100, 1),
                        TablePrinter::num(dyn.accuracy_calibrated * 100,
                                          1),
                        TablePrinter::num(dyn.savingsPercent(), 1),
                        "-"});
        }
        out.print();
        std::printf("\n");
    }
}

} // namespace bench
} // namespace tamres

#endif // TAMRES_BENCH_TABLE_SAVINGS_COMMON_HH
