/**
 * @file
 * Dynamic batching on the REAL serving engine (extends the Section
 * VIII-a load study from simulation to measurement). Stage 1 measures
 * batched planned inference latency — merged-column batch GEMMs
 * remove per-image micro-tile padding and re-stream weight panels
 * once per batch, so per-item cost falls with batch size even on one
 * core, and batched plans replay shared prepacked weights. Stage 2
 * drives the multi-worker ServingEngine closed-loop against a serial
 * batch-1 runInto() baseline and sweeps max_batch. Stage 3 feeds the
 * measured batch curve back into the analytic batched-queue
 * simulation as a cross-check. Emits BENCH_engine.json (fields
 * documented in bench/bench_common.hh).
 */

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/engine.hh"
#include "core/serving.hh"
#include "nn/passes.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kRes = 224;

/** Closed-loop engine throughput: @p clients in-flight requests. */
double
engineRps(ServingEngine &engine, const Tensor &item, int clients,
          int total)
{
    Timer t;
    std::vector<std::thread> cts;
    std::atomic<int> remaining{total};
    for (int c = 0; c < clients; ++c) {
        cts.emplace_back([&] {
            InferenceRequest r;
            r.input = item.clone();
            while (remaining.fetch_sub(1) > 0) {
                if (engine.submit(r))
                    engine.wait(r);
            }
        });
    }
    for (auto &th : cts)
        th.join();
    return engine.stats().served / t.seconds();
}

} // namespace

int
main()
{
    bench::banner("batched_serving",
                  "dynamic batching on the measured engine (Section "
                  "VIII-a extension)");

    const std::vector<int> batches = {1, 2, 4, 8};
    const int hw = ThreadPool::defaultParallelism();
    const int reqs = bench::engineRequests();

    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*net);
    bench::ensureTuned(*net, kRes);
    KernelSelector::instance().setMode(KernelMode::Tuned);

    Tensor item({1, 3, kRes, kRes});
    Rng rng(107);
    fillUniform(item, rng, 0.0f, 1.0f);

    // ---- Stage 1: measured planned batch-latency curve ------------
    std::vector<double> batch_lat(batches.size());
    TablePrinter meas("measured ResNet-18 @224 tuned, planned batched "
                      "execution");
    meas.setHeader({"batch", "total ms", "ms/item", "item speedup"});
    for (size_t bi = 0; bi < batches.size(); ++bi) {
        const int b = batches[bi];
        Tensor in({b, 3, kRes, kRes});
        for (int i = 0; i < b; ++i)
            std::memcpy(in.data() + i * item.numel(), item.data(),
                        sizeof(float) * item.numel());
        Tensor out;
        net->runInto(in, out); // compile + warm the batched plan
        batch_lat[bi] = medianRunSeconds(
            [&] { net->runInto(in, out); },
            std::max(3, bench::latencyReps()));
        meas.addRow({std::to_string(b),
                     TablePrinter::num(batch_lat[bi] * 1e3, 1),
                     TablePrinter::num(batch_lat[bi] * 1e3 / b, 1),
                     TablePrinter::num(
                         batch_lat[0] / (batch_lat[bi] / b), 2)});
    }
    meas.print();

    // ---- Stage 2: engine closed-loop vs serial baseline -----------
    //
    // Serial baseline: one thread, batch-1 runInto, intra-op
    // parallelism at the process default. Engine: hw workers with
    // serial convolutions (inter-request parallelism instead), batch
    // formation up to max_batch. The serial rate is sampled before,
    // between and after the engine runs (median) so slow host drift
    // does not masquerade as an engine win.
    auto serialRps = [&] {
        Tensor out;
        net->runInto(item, out);
        return 1.0 / medianRunSeconds([&] { net->runInto(item, out); },
                                      bench::latencyReps());
    };

    const std::vector<int> engine_batches = {1, 4, 8};
    const int sweep_reps = std::max(2, bench::latencyReps());
    std::vector<double> serial_samples;
    std::vector<std::vector<double>> engine_samples(
        engine_batches.size());
    std::vector<EngineStats> engine_stats(engine_batches.size());

    for (int rep = 0; rep < sweep_reps; ++rep) {
        serial_samples.push_back(serialRps());
        for (size_t ei = 0; ei < engine_batches.size(); ++ei) {
            const int mb = engine_batches[ei];
            setenv("TAMRES_THREADS", "1", 1); // workers own the cores
            EngineConfig cfg;
            cfg.workers = hw;
            cfg.max_batch = mb;
            cfg.max_delay_us = 0; // closed loop keeps the queue fed
            cfg.queue_capacity = 4 * mb * hw + 8;
            cfg.warm_shapes.push_back(Shape{mb, 3, kRes, kRes});
            cfg.warm_shapes.push_back(Shape{1, 3, kRes, kRes});
            {
                ServingEngine engine(*net, cfg);
                engine_samples[ei].push_back(engineRps(
                    engine, item,
                    2 * mb * hw > 16 ? 16 : 2 * mb * hw, reqs));
                engine_stats[ei] = engine.stats();
            }
            unsetenv("TAMRES_THREADS");
        }
    }
    auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double serial_rps = median(serial_samples);
    std::vector<double> engine_rps(engine_batches.size());
    for (size_t ei = 0; ei < engine_batches.size(); ++ei)
        engine_rps[ei] = median(engine_samples[ei]);

    TablePrinter eng("engine closed-loop vs serial batch-1 runInto "
                     "(median serial baseline)");
    eng.setHeader({"config", "req/s", "vs serial", "mean batch",
                   "p50 ms", "p99 ms"});
    eng.addRow({"serial runInto", TablePrinter::num(serial_rps, 2),
                "1.00", "1.0", "-", "-"});
    for (size_t ei = 0; ei < engine_batches.size(); ++ei) {
        const EngineStats &st = engine_stats[ei];
        eng.addRow({"engine b" + std::to_string(engine_batches[ei]) +
                        " x" + std::to_string(hw),
                    TablePrinter::num(engine_rps[ei], 2),
                    TablePrinter::num(engine_rps[ei] / serial_rps, 2),
                    TablePrinter::num(st.mean_batch, 2),
                    TablePrinter::num(st.p50_latency_s * 1e3, 0),
                    TablePrinter::num(st.p99_latency_s * 1e3, 0)});
    }
    eng.print();

    // ---- Stage 3: analytic cross-check ----------------------------
    //
    // Fit the amortizable fraction phi from the measured curve
    // (service(b) = base * ((1 - phi) * b + phi)) and replay the
    // batched-queue simulation with it: the simulated capacity gain
    // should bracket what the engine measured.
    const double t1 = batch_lat[0];
    const double t8 = batch_lat.back();
    const double phi = std::max(0.0, (8.0 - t8 / t1) / 7.0);
    TablePrinter sim("analytic cross-check: simulated p99 ms / mean "
                     "batch at measured phi=" +
                     TablePrinter::num(phi, 2));
    sim.setHeader({"load (x cap1)", "max_batch 1", "max_batch 8"});
    for (const double load : {0.9, 1.3}) {
        std::vector<std::string> row{TablePrinter::num(load, 1)};
        for (const int mb : {1, 8}) {
            BatchedConfig scfg;
            scfg.base.arrival_rate_hz = load / t1;
            scfg.base.num_requests = 4000;
            scfg.base.seed = 31;
            scfg.max_batch = mb;
            scfg.linger_s = 0.004;
            const auto sreqs = simulateServingBatched(
                scfg, [&](int, int batch, int) {
                    const double s =
                        t1 * ((1.0 - phi) * batch + phi);
                    return std::pair{kRes, s};
                });
            const ServingStats st = ServingStats::fromRequests(sreqs);
            row.push_back(TablePrinter::num(st.p99_latency_s * 1e3, 0) +
                          " / " +
                          TablePrinter::num(st.mean_batch, 1));
        }
        sim.addRow(row);
    }
    sim.print();

    // ---- BENCH_engine.json ----------------------------------------
    FILE *f = std::fopen("BENCH_engine.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_engine.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"workers\": %d,\n  \"requests\": %d,\n", hw,
                 reqs);
    std::fprintf(f, "  \"serial_rps\": %.4f,\n", serial_rps);
    std::fprintf(f, "  \"batch_item_speedup\": {");
    for (size_t bi = 0; bi < batches.size(); ++bi) {
        std::fprintf(f, "%s\"b%d\": %.4f", bi ? ", " : "", batches[bi],
                     batch_lat[0] / (batch_lat[bi] / batches[bi]));
    }
    std::fprintf(f, "},\n  \"engine\": [\n");
    for (size_t ei = 0; ei < engine_batches.size(); ++ei) {
        const EngineStats &st = engine_stats[ei];
        std::fprintf(f,
                     "    {\"max_batch\": %d, \"rps\": %.4f, "
                     "\"vs_serial\": %.4f, \"mean_batch\": %.3f, "
                     "\"p50_ms\": %.2f, \"p99_ms\": %.2f}%s\n",
                     engine_batches[ei], engine_rps[ei],
                     engine_rps[ei] / serial_rps, st.mean_batch,
                     st.p50_latency_s * 1e3, st.p99_latency_s * 1e3,
                     ei + 1 < engine_batches.size() ? "," : "");
    }
    double best_batched = 0.0;
    for (size_t ei = 0; ei < engine_batches.size(); ++ei) {
        if (engine_batches[ei] > 1)
            best_batched = std::max(best_batched, engine_rps[ei]);
    }
    std::fprintf(f, "  ],\n  \"engine_batched_vs_serial\": %.4f,\n",
                 best_batched / serial_rps);
    std::fprintf(f, "  \"sim_phi\": %.4f\n}\n", phi);
    std::fclose(f);
    std::printf("\nwrote BENCH_engine.json (engine batched vs serial: "
                "%.2fx at %d worker(s))\n",
                best_batched / serial_rps, hw);
    return 0;
}
