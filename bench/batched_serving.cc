/**
 * @file
 * Dynamic batching on the serving endpoint (extends the Section
 * VIII-a load study). Stage 1 measures real batched inference
 * latency on the engine — batch-b GEMMs amortize packing and weight
 * reuse, so per-item cost falls with b. Stage 2 feeds the measured
 * curve into the batched queueing simulation and sweeps offered load
 * against the maximum batch size, reporting the capacity gained and
 * the latency paid.
 */

#include <vector>

#include "bench/bench_common.hh"
#include "core/serving.hh"
#include "nn/passes.hh"

using namespace tamres;

int
main()
{
    bench::banner("batched_serving",
                  "dynamic batching vs offered load (Section VIII-a "
                  "extension)");

    constexpr int kRes = 224;
    const std::vector<int> batches = {1, 2, 4, 8};

    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    foldBatchNorms(*net);
    fuseConvRelu(*net);
    bench::ensureTuned(*net, kRes);
    KernelSelector::instance().setMode(KernelMode::Tuned);

    // Stage 1: measured batch latency (seconds per whole batch).
    std::vector<double> batch_lat(batches.size());
    TablePrinter meas("measured ResNet-18 @224 tuned batch latency");
    meas.setHeader({"batch", "total ms", "ms/item", "vs batch-1"});
    for (size_t bi = 0; bi < batches.size(); ++bi) {
        const int b = batches[bi];
        Tensor in({b, 3, kRes, kRes});
        Rng rng(100 + b);
        fillUniform(in, rng, 0.0f, 1.0f);
        batch_lat[bi] = medianRunSeconds(
            [&] { net->run(in); }, bench::latencyReps());
        meas.addRow({std::to_string(b),
                     TablePrinter::num(batch_lat[bi] * 1e3, 1),
                     TablePrinter::num(batch_lat[bi] * 1e3 / b, 1),
                     TablePrinter::num(batch_lat[bi] * 1e3 / b /
                                           (batch_lat[0] * 1e3), 2)});
    }
    meas.print();
    KernelSelector::instance().setMode(KernelMode::Library);

    // Stage 2: sweep offered load x amortizable-cost fraction in the
    // simulator. On this single-core host the measured curve is flat
    // (phi ~ 0): a saturated scalar engine has no per-request cost
    // that batching can share, so batch-b costs b times batch-1. A
    // GPU- or pool-backed endpoint (the deployment Section VIII-a has
    // in mind) amortizes kernel dispatch, weight streaming and
    // scale-model overhead across the batch; phi parameterizes that
    // fraction: service(b) = base * ((1 - phi) * b + phi).
    const double base_s = batch_lat[0];
    const double cap1 = 1.0 / base_s; //!< batch-1 capacity, Hz
    TablePrinter sim("simulated endpoint: p99 latency (ms) / mean "
                     "batch, max_batch 8, 4 ms linger");
    sim.setHeader({"load (x cap1)", "no batching", "phi=0 (host)",
                   "phi=0.3", "phi=0.6"});
    for (const double load : {0.6, 0.9, 1.3, 2.0}) {
        std::vector<std::string> row{TablePrinter::num(load, 1)};
        for (const double phi : {-1.0, 0.0, 0.3, 0.6}) {
            BatchedConfig cfg;
            cfg.base.arrival_rate_hz = load * cap1;
            cfg.base.num_requests = 4000;
            cfg.base.seed = 31;
            cfg.max_batch = phi < 0.0 ? 1 : 8;
            cfg.linger_s = 0.004;
            const double amortized = std::max(phi, 0.0);
            const auto reqs = simulateServingBatched(
                cfg, [&](int, int batch, int) {
                    const double s =
                        base_s * ((1.0 - amortized) * batch + amortized);
                    return std::pair{kRes, s};
                });
            const ServingStats st = ServingStats::fromRequests(reqs);
            row.push_back(TablePrinter::num(st.p99_latency_s * 1e3, 0) +
                          " / " + TablePrinter::num(st.mean_batch, 1));
        }
        sim.addRow(row);
    }
    sim.print();

    std::printf(
        "\nmeasured shape: per-item latency is FLAT in batch size on "
        "this host — a fully compute-bound single-core engine has "
        "nothing for batching to amortize, so the measured table is "
        "the phi~0 column. The simulation shows where the technique "
        "starts to pay: with 30-60%% of per-request cost amortizable "
        "(dispatch, weight streaming, the scale model of the "
        "two-model pipeline), batch-8 absorbs loads past the batch-1 "
        "capacity that overwhelm the unbatched server. Batching "
        "composes with the paper's dynamic-resolution shedding: "
        "resolution changes per-item cost, batching per-request "
        "overhead.\n");
    return 0;
}
