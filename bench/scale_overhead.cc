/**
 * @file
 * Reproduces paper Section VII-c: the runtime overhead of the scale
 * model — an untuned MobileNetV2 at 112x112 relative to tuned
 * ResNet-50 inference at 224x224 (the paper reports 9.7 ms vs. a 30%
 * worst-case slowdown on the 4790K).
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("scale_overhead",
                  "Section VII-c (scale model runtime overhead)");

    auto mbv2 = buildMobileNetV2();
    auto rn50 = bench::buildBackbone(BackboneArch::ResNet50);
    bench::ensureTuned(*rn50, 224);

    const double scale_ms =
        bench::networkLatency(*mbv2, 112, KernelMode::Library) * 1e3;
    const double rn50_tuned_ms =
        bench::networkLatency(*rn50, 224, KernelMode::Tuned) * 1e3;
    const double rn50_lib_ms =
        bench::networkLatency(*rn50, 224, KernelMode::Library) * 1e3;

    TablePrinter table("Scale model overhead, batch 1");
    table.setHeader({"model", "latency(ms)", "vs RN50-tuned(%)"});
    table.addRow({"MobileNetV2@112 (untuned)",
                  TablePrinter::num(scale_ms, 1),
                  TablePrinter::num(scale_ms / rn50_tuned_ms * 100, 0)});
    table.addRow({"ResNet-50@224 (tuned)",
                  TablePrinter::num(rn50_tuned_ms, 1), "100"});
    table.addRow({"ResNet-50@224 (library)",
                  TablePrinter::num(rn50_lib_ms, 1),
                  TablePrinter::num(rn50_lib_ms / rn50_tuned_ms * 100,
                                    0)});
    table.print();

    std::printf("\npaper: 9.7 ms scale model = 30%% of tuned RN50@224 "
                "(worst case; hideable by pipelining the next batch's "
                "scale inference with the current backbone run).\n");
    return 0;
}
