/**
 * @file
 * Shared driver for Figures 8 and 9: accuracy vs. FLOPs with static
 * and dynamic resolution across center-crop ratios, for ResNet-18 and
 * ResNet-50 on one dataset profile.
 */

#ifndef TAMRES_BENCH_FIG_DYNAMIC_COMMON_HH
#define TAMRES_BENCH_FIG_DYNAMIC_COMMON_HH

#include "bench/bench_common.hh"

namespace tamres {
namespace bench {

inline void
runDynamicFigure(const DatasetSpec &spec, const char *figure)
{
    const int n_train = trainImages();
    const int n_eval = evalImagesPix();
    const int n_eval_fast = evalImages(); // static rows need no pixels
    SyntheticDataset ds(spec, n_train + std::max(n_eval, n_eval_fast),
                        42);
    const std::vector<double> crops = {0.25, 0.56, 0.75, 1.0};

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        BackboneAccuracyModel model(arch, spec, 1);

        // Train the scale model with the Figure-5 sharding scheme and
        // crop augmentation (test crops are unknown at train time).
        ScaleModelOptions opts;
        opts.epochs = static_cast<int>(envInt("TAMRES_SCALE_EPOCHS", 30));
        ScaleModel scale(paperResolutions(), opts);
        Timer t_train;
        const double loss =
            scale.train(ds, 0, n_train, arch, crops,
                        static_cast<int>(envInt("TAMRES_PREVIEW_SIDE",
                                                192)));
        std::printf("[%s %s] scale model trained on %d imgs in %.1fs "
                    "(final BCE %.3f)\n",
                    figure, archName(arch).c_str(), n_train,
                    t_train.seconds(), loss);

        for (const double crop : crops) {
            TablePrinter table(std::string(figure) + " — " + spec.name +
                               " " + archName(arch) + " " +
                               TablePrinter::num(crop * 100, 0) +
                               "% center crop");
            table.setHeader({"method", "res", "GFLOPs", "accuracy"});
            double best_static = 0.0;
            for (int r : paperResolutions()) {
                const PipelineResult s = evalStatic(
                    ds, n_train, n_train + n_eval_fast, model, r, crop);
                best_static = std::max(best_static, s.accuracy);
                table.addRow({"static", std::to_string(r),
                              TablePrinter::num(s.mean_gflops, 2),
                              TablePrinter::num(s.accuracy * 100, 1)});
            }
            // The dynamic row is MEASURED: eval images are encoded
            // into an object store and served through the staged
            // engine (ranged preview read -> resumable partial
            // decode -> scale decision -> incremental read), so the
            // decisions and the bytes-read fraction come from the
            // real request flow.
            std::vector<int> hist;
            const PipelineResult d = evalDynamicStaged(
                ds, n_train, n_train + n_eval, model, scale, crop,
                static_cast<int>(envInt("TAMRES_PREVIEW_SIDE", 192)),
                static_cast<int>(envInt("TAMRES_PREVIEW_SCANS", 2)),
                &hist);
            table.addRow({"dynamic", "per-image",
                          TablePrinter::num(d.mean_gflops, 2),
                          TablePrinter::num(d.accuracy * 100, 1)});
            // Analytic cross-check (the historical path: previews
            // rendered directly, no codec in the loop). Kept next to
            // the measured row so drift between the two pipelines is
            // visible in the figure output.
            const PipelineResult a = evalDynamic(
                ds, n_train, n_train + n_eval, model, scale, crop,
                static_cast<int>(envInt("TAMRES_PREVIEW_SIDE", 192)));
            table.addRow({"dynamic (analytic)", "per-image",
                          TablePrinter::num(a.mean_gflops, 2),
                          TablePrinter::num(a.accuracy * 100, 1)});
            table.print();
            std::printf("  dynamic resolution histogram:");
            for (size_t i = 0; i < hist.size(); ++i) {
                std::printf(" %d:%d", paperResolutions()[i], hist[i]);
            }
            std::printf("  | best static %.1f%%, dynamic %.1f%% "
                        "(analytic %.1f%%), measured read fraction "
                        "%.3f\n\n",
                        best_static * 100, d.accuracy * 100,
                        a.accuracy * 100, d.mean_read_fraction);
        }
    }
}

} // namespace bench
} // namespace tamres

#endif // TAMRES_BENCH_FIG_DYNAMIC_COMMON_HH
