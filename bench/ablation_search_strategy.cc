/**
 * @file
 * Ablation: search strategy (random / anneal / genetic) and
 * cost-model pre-ranking vs. achieved throughput at fixed measurement
 * budgets, on the hot conv shapes of ResNet-18 at 224 and 280. This
 * probes the methodology choice behind Section VI: how much of the
 * tuned win depends on *how* the space is searched, and how much
 * measurement the analytic pre-ranker saves.
 */

#include "bench/bench_common.hh"
#include "tuning/cost_model.hh"
#include "tuning/tuner.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_search_strategy",
                  "Section VI methodology (search strategy & "
                  "cost-model pre-ranking)");

    // Two hot shapes: an early wide layer and a deep narrow one.
    const std::vector<ConvProblem> problems = {
        {1, 64, 56, 56, 64, 3, 3, 1, 1, 1},
        {1, 256, 18, 18, 256, 3, 3, 1, 1, 1},
    };
    const int budget = std::max(6, static_cast<int>(
        envInt("TAMRES_TUNING_TRIALS", 12)));

    TablePrinter out("achieved GFLOP/s by search strategy (budget = " +
                     std::to_string(budget) + " measurements)");
    out.setHeader({"shape", "strategy", "GFLOP/s", "tune time(s)"});
    for (const ConvProblem &p : problems) {
        struct Entry
        {
            const char *name;
            TuneOptions opts;
        };
        TuneOptions base;
        base.trials = budget;
        base.reps = 2;
        base.time_budget_s = 1e9;

        std::vector<Entry> entries;
        entries.push_back({"random", base});
        {
            TuneOptions o = base;
            o.strategy = SearchStrategy::Anneal;
            entries.push_back({"anneal", o});
        }
        {
            TuneOptions o = base;
            o.strategy = SearchStrategy::Genetic;
            entries.push_back({"genetic", o});
        }
        {
            TuneOptions o = base;
            o.use_cost_model = true;
            o.cost_model_top_k = std::max(2, budget / 3);
            entries.push_back({"random+costmodel", o});
        }
        for (const auto &e : entries) {
            AutoTuner tuner; // no cache: force a fresh search
            Timer t;
            const MeasureResult r = tuner.tune(p, e.opts);
            out.addRow({p.key(), e.name,
                        TablePrinter::num(r.gflops(p), 2),
                        TablePrinter::num(t.seconds(), 2)});
        }
    }
    out.print();
    std::printf(
        "\nexpected shape: all strategies land within a few percent "
        "of each other at equal budgets on this smooth space (random "
        "search is a strong baseline, as the AutoTVM line of work "
        "found); the cost-model pre-ranker reaches comparable "
        "throughput while timing ~1/3 of the candidates, cutting "
        "tuning wall-clock accordingly.\n");
    return 0;
}
