/**
 * @file
 * Reproduces paper Table I: compute complexity (GFLOPs) and accuracy
 * of ResNet-18 across inference resolutions, with the model "trained"
 * at 224 (the train-test resolution discrepancy makes 280 the peak).
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("table1_flops_accuracy",
                  "Table I (GFLOPs + accuracy vs. resolution, "
                  "ResNet-18 / ImageNet, 75% crop)");

    const int n = bench::evalImages();
    SyntheticDataset ds(imagenetLike(), n, 42);
    BackboneAccuracyModel model(BackboneArch::ResNet18, ds.spec(), 1);
    auto rn18 = buildResNet18();

    TablePrinter table("Table I — ResNet-18, crop 75%");
    table.setHeader({"Model", "Resolution", "GFLOPs", "Accuracy"});
    for (int r : paperResolutions()) {
        const double gflops =
            static_cast<double>(rn18->flops({1, 3, r, r})) / 1e9;
        const PipelineResult res = evalStatic(ds, 0, n, model, r, 0.75);
        table.addRow({"ResNet-18", std::to_string(r) + "x" +
                                       std::to_string(r),
                      TablePrinter::num(gflops, 1),
                      TablePrinter::num(res.accuracy * 100, 1)});
    }
    table.print();

    std::printf("\npaper anchors: 0.5/1.1/1.8/2.9/4.2/5.8/7.3 GFLOPs;"
                " 47.8/62.7/69.5/70.7/70.1/69.4/68.9 %% top-1\n");
    return 0;
}
