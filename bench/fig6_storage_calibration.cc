/**
 * @file
 * Reproduces paper Figure 6: storage calibration curves — relative
 * top-1 accuracy change vs. relative read size for ResNet-18/50 on the
 * ImageNet-like and Cars-like datasets, at all seven resolutions, for
 * three seeds.
 *
 * Methodology mirrors Section V: the amount of data read per image is
 * determined by sweeping SSIM thresholds over progressive scans; the
 * (SSIM, bytes) pairs are measured from real encoded images. Accuracy
 * is evaluated on a large record population whose per-image SSIM is
 * drawn from the measured tables, so curves are smooth despite the
 * bounded pixel budget.
 */

#include "bench/bench_common.hh"

using namespace tamres;

namespace {

void
runDataset(const DatasetSpec &spec)
{
    const int n_tab = bench::calImages();
    const int n_pop = bench::evalImages() / 2;
    SyntheticDataset ds(spec, n_tab, 42);
    const QualityTable table(ds, 0, n_tab, paperResolutions());
    const int num_res = static_cast<int>(paperResolutions().size());

    // SSIM threshold sweep (the paper's interval plus the lossless
    // endpoint).
    const std::vector<double> thresholds = {0.94,  0.96,  0.975, 0.985,
                                            0.992, 0.996, 0.999, 1.0};

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        TablePrinter out("Figure 6 — " + spec.name + " " +
                         archName(arch) +
                         ": accuracy change (%) vs relative read size");
        out.setHeader({"res", "seed", "ssim-thresh", "rel.read",
                       "acc.change(%)"});
        for (int seed = 1; seed <= 3; ++seed) {
            BackboneAccuracyModel model(arch, spec, seed);
            // Large pixel-free population; SSIM/read behaviour is
            // borrowed from the measured table entries round-robin.
            SyntheticDataset pop(spec, n_pop, 1000 + seed);
            for (int r = 0; r < num_res; ++r) {
                const int resolution = paperResolutions()[r];
                int base_correct = 0;
                for (int i = 0; i < n_pop; ++i) {
                    base_correct += model.correct(pop.record(i), 0.75,
                                                  resolution, 1.0);
                }
                const double base =
                    static_cast<double>(base_correct) / n_pop;
                for (const double thresh : thresholds) {
                    double read = 0.0;
                    int correct = 0;
                    for (int i = 0; i < n_pop; ++i) {
                        const int t = i % n_tab;
                        const int k =
                            table.scansForThreshold(t, r, thresh);
                        const double q =
                            table.entry(t).ssimAt(k, r, num_res);
                        read += table.entry(t).read_fraction[k];
                        correct += model.correct(pop.record(i), 0.75,
                                                 resolution, q);
                    }
                    out.addRow(
                        {std::to_string(resolution),
                         "seed" + std::to_string(seed),
                         TablePrinter::num(thresh, 3),
                         TablePrinter::num(read / n_pop, 3),
                         TablePrinter::num(
                             (static_cast<double>(correct) / n_pop -
                              base) * 100, 2)});
                }
            }
        }
        out.print();
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    bench::banner("fig6_storage_calibration",
                  "Figure 6 (a-d): accuracy change vs. relative read "
                  "size, ResNet-18/50 x ImageNet/Cars x 7 resolutions "
                  "x 3 seeds");
    runDataset(imagenetLike());
    runDataset(carsLike());
    std::printf("expected shape (paper): lower resolutions reach a "
                "given SSIM with fewer bytes but lose accuracy faster "
                "as reads shrink; curves shift left for Cars.\n");
    return 0;
}
