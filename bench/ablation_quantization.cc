/**
 * @file
 * Ablation: int8 quantization composed with resolution tuning. The
 * paper's related work (Section II-a) treats quantization as an
 * orthogonal compute-efficiency lever; this harness measures how it
 * actually composes with the resolution axis on this engine:
 * batch-1 latency of fp32 library / fp32 tuned / int8 graphs across
 * resolutions, plus the numeric deviation the int8 rewrite introduces
 * at the logits.
 */

#include <cmath>

#include "bench/bench_common.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"

using namespace tamres;

namespace {

double
relError(const Tensor &got, const Tensor &want)
{
    double num = 0.0, den = 0.0;
    for (int64_t i = 0; i < got.numel(); ++i) {
        const double d = static_cast<double>(got.data()[i]) -
                         want.data()[i];
        num += d * d;
        den += static_cast<double>(want.data()[i]) * want.data()[i];
    }
    return std::sqrt(num / std::max(den, 1e-20));
}

} // namespace

int
main()
{
    bench::banner("ablation_quantization",
                  "int8 quantization x resolution (Section II-a "
                  "orthogonality claim)");

    const std::vector<int> resolutions = {112, 168, 224, 336};

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        const char *name =
            arch == BackboneArch::ResNet18 ? "ResNet-18" : "ResNet-50";

        // fp32 graph, inference-optimized (the honest baseline: BN
        // folded and ReLU fused, same as the quantized build).
        auto fp32 = bench::buildBackbone(arch);
        optimizeForInference(*fp32);

        // int8 sibling, calibrated on one representative input.
        auto int8 = bench::buildBackbone(arch);
        optimizeForInference(*int8);
        Tensor cal_in({1, 3, 224, 224});
        Rng cal_rng(99);
        fillUniform(cal_in, cal_rng, 0.0f, 1.0f);
        const QuantCalibration cal =
            calibrateActivations(*int8, {cal_in});
        const int rewritten = quantizeConvs(*int8, &cal);

        TablePrinter tab(std::string(name) + " batch-1 latency (ms): " +
                         std::to_string(rewritten) +
                         " convs rewritten to int8");
        tab.setHeader({"Res", "fp32 lib", "fp32 tuned", "int8",
                       "int8/tuned", "logit relerr"});
        for (int r : resolutions) {
            bench::ensureTuned(*fp32, r);
            const double lib =
                bench::networkLatency(*fp32, r, KernelMode::Library);
            const double tuned =
                bench::networkLatency(*fp32, r, KernelMode::Tuned);
            const double qlat =
                bench::networkLatency(*int8, r, KernelMode::Tuned);

            Tensor in({1, 3, r, r});
            Rng rng(r);
            fillUniform(in, rng, 0.0f, 1.0f);
            const double err = relError(int8->run(in), fp32->run(in));

            tab.addRow({std::to_string(r),
                        TablePrinter::num(lib * 1e3, 1),
                        TablePrinter::num(tuned * 1e3, 1),
                        TablePrinter::num(qlat * 1e3, 1),
                        TablePrinter::num(qlat / tuned, 2),
                        TablePrinter::num(err, 4)});
        }
        tab.print();
    }

    std::printf(
        "\nexpected shape: the int8 path's logit deviation stays in "
        "the few-percent range at every resolution (quantization "
        "noise does not grow with input size), confirming the two "
        "levers compose. The vectorized integer GEMM (packed "
        "widening multiply-adds) beats the tuned fp32 kernels by "
        "roughly 2x at every resolution, and the advantage persists "
        "across the whole resolution grid — quantization shifts the "
        "accuracy-vs-latency frontier of Figs. 8/9 uniformly rather "
        "than replacing resolution as a knob.\n");
    return 0;
}
