/**
 * @file
 * Ablation: int8 quantization composed with resolution tuning. The
 * paper's related work (Section II-a) treats quantization as an
 * orthogonal compute-efficiency lever; this harness measures how it
 * actually composes with the resolution axis on this engine:
 * batch-1 latency of fp32 library / fp32 tuned / int8 graphs across
 * resolutions, plus the numeric deviation the int8 rewrite introduces
 * at the logits.
 *
 * The int8 numbers measure the PLANNED serving path — quantized
 * graphs run through Graph execution plans exactly like fp32 ones
 * (blocked quad-K int8 GEMM, prepacked weight panels shared via the
 * per-graph pack cache, SIMD-dispatched microkernels), so the latency
 * here is what the engines serve, not a standalone kernel loop. The
 * naive reference kernel (convForwardInt8) stays on as the
 * correctness oracle: the planned path is bitwise identical to it by
 * construction, and this harness re-checks that on a representative
 * backbone conv before timing anything.
 */

#include <cmath>
#include <cstring>

#include "bench/bench_common.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"

using namespace tamres;

namespace {

double
relError(const Tensor &got, const Tensor &want)
{
    double num = 0.0, den = 0.0;
    for (int64_t i = 0; i < got.numel(); ++i) {
        const double d = static_cast<double>(got.data()[i]) -
                         want.data()[i];
        num += d * d;
        den += static_cast<double>(want.data()[i]) * want.data()[i];
    }
    return std::sqrt(num / std::max(den, 1e-20));
}

/**
 * Oracle check: the planned int8 kernel (prepacked, SIMD-dispatched,
 * blocked) must be BITWISE identical to the naive reference kernel on
 * a representative backbone conv. Returns true on exact match.
 */
bool
oracleBitwiseCheck()
{
    ConvProblem p;
    p.n = 2;
    p.ic = 64;
    p.ih = p.iw = 28;
    p.oc = 64;
    p.kh = p.kw = 3;
    p.stride = 1;
    p.pad = 1;

    const int K = p.ic * p.kh * p.kw;
    Rng rng(4242);
    Tensor in({p.n, p.ic, p.ih, p.iw});
    fillUniform(in, rng, -1.0f, 1.0f);
    std::vector<float> w(static_cast<size_t>(p.oc) * K);
    for (float &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));
    std::vector<float> bias(static_cast<size_t>(p.oc));
    for (float &v : bias)
        v = static_cast<float>(rng.uniform(-0.1, 0.1));

    // Per-output-channel weight quantization, same as QuantConv2d.
    std::vector<int8_t> wq(w.size());
    std::vector<float> w_scales(static_cast<size_t>(p.oc));
    for (int oc = 0; oc < p.oc; ++oc) {
        const float *row = w.data() + static_cast<size_t>(oc) * K;
        w_scales[static_cast<size_t>(oc)] =
            symmetricScale(maxAbsValue(row, static_cast<size_t>(K)));
        quantizeSymmetric(row, static_cast<size_t>(K),
                          w_scales[static_cast<size_t>(oc)],
                          wq.data() + static_cast<size_t>(oc) * K);
    }

    const size_t out_n = static_cast<size_t>(p.n) * p.oc * p.oh() *
                         p.ow();
    std::vector<float> want(out_n), got(out_n);
    convForwardInt8(p, in.data(), /*act_scale=*/0.0f, wq.data(),
                    w_scales.data(), bias.data(), /*fused_relu=*/true,
                    want.data());

    // Planned path: quantize per image (dynamic, same rule as the
    // oracle), prepack the weights, run the blocked GEMM.
    const size_t per = static_cast<size_t>(p.ic) * p.ih * p.iw;
    std::vector<int8_t> qin(static_cast<size_t>(p.n) * per);
    std::vector<float> act_scales(static_cast<size_t>(p.n));
    for (int n = 0; n < p.n; ++n) {
        const float *src = in.data() + static_cast<size_t>(n) * per;
        act_scales[static_cast<size_t>(n)] =
            symmetricScale(maxAbsValue(src, per));
        quantizeSymmetric(src, per, act_scales[static_cast<size_t>(n)],
                          qin.data() + static_cast<size_t>(n) * per);
    }
    ConvConfig cfg; // the quantized path's one fixed blocking
    PackedConvWeights packed;
    packConvWeightsInt8(p, cfg, wq.data(), packed);
    QuantConvEpilogue epi;
    epi.w_scales = w_scales.data();
    epi.bias = bias.data();
    epi.act_scales = act_scales.data();
    epi.relu = true;
    convForwardInt8Gemm(p, qin.data(), epi, wq.data(), &packed,
                        got.data(), cfg);

    return std::memcmp(got.data(), want.data(),
                       out_n * sizeof(float)) == 0;
}

} // namespace

int
main()
{
    bench::banner("ablation_quantization",
                  "int8 quantization x resolution (Section II-a "
                  "orthogonality claim)");

    const bool oracle_ok = oracleBitwiseCheck();
    std::printf("planned int8 path vs naive oracle: %s\n",
                oracle_ok ? "BITWISE IDENTICAL" : "MISMATCH");
    if (!oracle_ok)
        return 1;

    const std::vector<int> resolutions = {112, 168, 224, 336};

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        const char *name =
            arch == BackboneArch::ResNet18 ? "ResNet-18" : "ResNet-50";

        // fp32 graph, inference-optimized (the honest baseline: BN
        // folded and ReLU fused, same as the quantized build).
        auto fp32 = bench::buildBackbone(arch);
        optimizeForInference(*fp32);

        // int8 sibling, calibrated on one representative input. The
        // graph's plans resolve + prepack the int8 weight panels on
        // first run; the timed runs below pack nothing.
        auto int8 = bench::buildBackbone(arch);
        Tensor cal_in({1, 3, 224, 224});
        Rng cal_rng(99);
        fillUniform(cal_in, cal_rng, 0.0f, 1.0f);
        optimizeForInference(*int8);
        const QuantCalibration cal =
            calibrateActivations(*int8, {cal_in});
        const int rewritten = quantizeConvs(*int8, &cal);

        TablePrinter tab(std::string(name) + " batch-1 latency (ms): " +
                         std::to_string(rewritten) +
                         " convs rewritten to int8 (planned path)");
        tab.setHeader({"Res", "fp32 lib", "fp32 tuned", "int8",
                       "int8/tuned", "logit relerr"});
        for (int r : resolutions) {
            bench::ensureTuned(*fp32, r);
            const double lib =
                bench::networkLatency(*fp32, r, KernelMode::Library);
            const double tuned =
                bench::networkLatency(*fp32, r, KernelMode::Tuned);
            const double qlat =
                bench::networkLatency(*int8, r, KernelMode::Tuned);

            Tensor in({1, 3, r, r});
            Rng rng(r);
            fillUniform(in, rng, 0.0f, 1.0f);
            const double err = relError(int8->run(in), fp32->run(in));

            tab.addRow({std::to_string(r),
                        TablePrinter::num(lib * 1e3, 1),
                        TablePrinter::num(tuned * 1e3, 1),
                        TablePrinter::num(qlat * 1e3, 1),
                        TablePrinter::num(qlat / tuned, 2),
                        TablePrinter::num(err, 4)});
        }
        tab.print();
    }

    std::printf(
        "\nexpected shape: the int8 path's logit deviation stays in "
        "the few-percent range at every resolution (quantization "
        "noise does not grow with input size), confirming the two "
        "levers compose. The planned int8 GEMM (quad-K packed panels, "
        "vpmaddwd/vpdpbusd microkernels, prepacked weights) beats the "
        "tuned fp32 kernels at every resolution, and the advantage "
        "persists across the whole resolution grid — quantization "
        "shifts the accuracy-vs-latency frontier of Figs. 8/9 "
        "uniformly rather than replacing resolution as a knob.\n");
    return 0;
}
