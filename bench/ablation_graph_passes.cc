/**
 * @file
 * Ablation: graph-level inference passes (batch-norm folding and
 * conv-ReLU epilogue fusion) vs. measured batch-1 latency. These
 * passes remove whole feature-map traversals and are complementary to
 * the per-kernel tuning of Section VI — the point of this bench is to
 * show how much of the end-to-end win is graph-level vs. kernel-level
 * on the same host.
 */

#include "bench/bench_common.hh"
#include "nn/passes.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_graph_passes",
                  "graph passes (BN folding + ReLU fusion) vs. "
                  "batch-1 latency");

    TablePrinter out("ResNet-18/50 latency (ms), library kernels");
    out.setHeader({"network", "res", "raw", "+bn-fold",
                   "+relu-fuse", "speedup"});
    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        for (const int res : {224, 336}) {
            auto raw = bench::buildBackbone(arch);
            const double t_raw =
                bench::networkLatency(*raw, res, KernelMode::Library);

            auto folded = bench::buildBackbone(arch);
            const int n_folded = foldBatchNorms(*folded);
            const double t_fold = bench::networkLatency(
                *folded, res, KernelMode::Library);

            const int n_fused = fuseConvRelu(*folded);
            const double t_fuse = bench::networkLatency(
                *folded, res, KernelMode::Library);

            out.addRow({archName(arch), std::to_string(res),
                        TablePrinter::num(t_raw * 1e3, 1),
                        TablePrinter::num(t_fold * 1e3, 1),
                        TablePrinter::num(t_fuse * 1e3, 1),
                        TablePrinter::num(t_raw / t_fuse, 2) + "x"});
            if (res == 224) {
                std::printf("%s: folded %d batch norms, fused %d "
                            "activations\n", archName(arch).c_str(),
                            n_folded, n_fused);
            }
        }
    }
    out.print();
    std::printf(
        "\nexpected shape: folding removes one feature-map traversal "
        "per conv (the larger win — batch norm reads and writes the "
        "whole map), fusion removes the separate ReLU traversal; both "
        "gains are a few percent of end-to-end latency since "
        "convolution compute dominates, and they stack with kernel "
        "tuning (fig7/table2).\n");
    return 0;
}
