/**
 * @file
 * Ablation A3 (DESIGN.md): scale-model design — predictor family
 * (feature-MLP vs. CNN on raw pixels) and preview input resolution
 * (56/84/112), scored by dynamic-pipeline accuracy at two crops.
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_scale_model",
                  "Ablation: scale-model architecture and preview "
                  "resolution");

    const DatasetSpec spec = imagenetLike();
    const int n_train =
        std::min(static_cast<int>(envInt("TAMRES_TRAIN_IMAGES", 480)),
                 360);
    const int n_eval = std::min(bench::evalImagesPix(), 240);
    SyntheticDataset ds(spec, n_train + n_eval, 42);
    BackboneAccuracyModel model(BackboneArch::ResNet18, spec, 1);

    TablePrinter out("scale-model ablation — ImageNet ResNet-18");
    out.setHeader({"kind", "input", "train(s)", "crop", "dyn.acc(%)",
                   "GFLOPs"});
    struct Variant
    {
        ScaleModelKind kind;
        int input_res;
        const char *name;
    };
    const Variant variants[] = {
        {ScaleModelKind::Mlp, 112, "feature-MLP"},
        {ScaleModelKind::Mlp, 56, "feature-MLP"},
        {ScaleModelKind::Cnn, 56, "CNN"},
        {ScaleModelKind::Cnn, 84, "CNN"},
    };
    for (const auto &v : variants) {
        ScaleModelOptions opts;
        opts.kind = v.kind;
        opts.input_res = v.input_res;
        opts.epochs =
            static_cast<int>(envInt("TAMRES_SCALE_EPOCHS", 30));
        ScaleModel scale(paperResolutions(), opts);
        Timer t;
        scale.train(ds, 0, n_train, BackboneArch::ResNet18,
                    {0.25, 0.56, 0.75, 1.0}, 160);
        const double train_s = t.seconds();
        for (const double crop : {0.25, 0.75}) {
            const PipelineResult d =
                evalDynamic(ds, n_train, n_train + n_eval, model, scale,
                            crop, 160);
            out.addRow({v.name, std::to_string(v.input_res),
                        TablePrinter::num(train_s, 1),
                        TablePrinter::num(crop * 100, 0) + "%",
                        TablePrinter::num(d.accuracy * 100, 1),
                        TablePrinter::num(d.mean_gflops, 2)});
        }
    }
    out.print();
    std::printf("\nexpected: object scale is recoverable from coarse "
                "previews, so lower preview resolutions remain "
                "competitive (the paper's 112 choice is conservative)."
                "\n");
    return 0;
}
