/**
 * @file
 * End-to-end serving throughput — progressive decode + backbone
 * inference per request — emitted as machine-readable
 * BENCH_serving.json so the serving-path trajectory is tracked across
 * PRs alongside BENCH_kernels.json.
 *
 * Measures, at 1 thread and at the process default (TAMRES_THREADS):
 *  - entropy decode Mpixel/s, restart-interval fan-out vs. the legacy
 *    serial-per-scan path (same bytes: markers are a side table);
 *  - backbone inference req/s, plan-backed runInto vs. the naive
 *    executor (per-request shape inference + tensor allocation);
 *  - the combined decode+resize+infer request rate;
 *  - the staged dynamic-resolution pipeline (Figure 4, measured):
 *    requests enter as encoded bytes and flow through ranged preview
 *    read -> resumable partial decode -> scale-model decision ->
 *    incremental read -> batched backbone, versus the static
 *    fixed-resolution path through the same staged machinery —
 *    dynamic-vs-static req/s and the measured bytes-read fraction,
 *    with an inline analytic recomputation as a cross-check.
 *
 * Budget knobs: TAMRES_LATENCY_REPS (timed reps per point),
 * TAMRES_ENGINE_REQS (staged closed-loop requests) and
 * TAMRES_THREADS (threaded-variant worker count).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/image.hh"
#include "image/synthetic.hh"
#include "nn/passes.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kRes = 224;

/** Decode + crop/resize + copy into the backbone input tensor. */
void
prepareInput(const EncodedImage &enc, Tensor &in)
{
    const Image decoded = decodeProgressive(enc);
    const Image sized = resize(decoded, kRes, kRes);
    std::copy_n(sized.data(), sized.numel(), in.data());
}

double
reqPerS(double seconds)
{
    return seconds > 0 ? 1.0 / seconds : 0.0;
}

} // namespace

int
main()
{
    bench::banner("serving_e2e",
                  "end-to-end serving hot path: restart-parallel "
                  "decode + plan-backed inference (Sec. VIII)");
    const int threads = ThreadPool::defaultParallelism();
    const int reps = bench::latencyReps();

    // --- Stored object: progressive stream with restart markers ----
    const Image img = generateSyntheticImage(
        {.height = 256, .width = 256, .class_id = 3, .seed = 17});
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    const EncodedImage enc = encodeProgressive(img, ccfg);
    EncodedImage legacy = enc; // same bytes, side tables stripped
    legacy.version = EncodedImage::kVersionLegacy;
    legacy.restart_bits.clear();
    legacy.restart_interval = 0;
    const double mpix = 256.0 * 256.0 / 1e6;

    // --- Serving graph: folded + fused ResNet-18 -------------------
    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*net);
    Tensor in({1, 3, kRes, kRes});
    Tensor out;
    prepareInput(enc, in);
    net->runInto(in, out); // compile + warm the plan

    struct Point
    {
        double decode_restart_mpix = 0.0;
        double decode_legacy_mpix = 0.0;
        double infer_planned_rps = 0.0;
        double infer_naive_rps = 0.0;
        double e2e_rps = 0.0;
    };

    auto measure = [&](int nthreads) {
        setenv("TAMRES_THREADS", std::to_string(nthreads).c_str(), 1);
        Point p;
        p.decode_restart_mpix =
            mpix /
            medianRunSeconds([&] { decodeProgressive(enc); }, reps);
        p.decode_legacy_mpix =
            mpix /
            medianRunSeconds([&] { decodeProgressive(legacy); }, reps);
        net->runInto(in, out); // re-warm at this thread count
        p.infer_planned_rps = reqPerS(
            medianRunSeconds([&] { net->runInto(in, out); }, reps));
        p.infer_naive_rps = reqPerS(
            medianRunSeconds([&] { net->runNaive(in); }, reps));
        p.e2e_rps = reqPerS(medianRunSeconds(
            [&] {
                prepareInput(enc, in);
                net->runInto(in, out);
            },
            reps));
        unsetenv("TAMRES_THREADS");
        return p;
    };

    const Point serial = measure(1);
    const Point threaded = measure(threads);

    // Sanity: restart decode must be bit-exact with the legacy path.
    {
        const Image a = decodeProgressive(enc);
        const Image b = decodeProgressive(legacy);
        if (a.numel() != b.numel() ||
            std::memcmp(a.data(), b.data(),
                        sizeof(float) * a.numel()) != 0) {
            std::fprintf(stderr,
                         "FAIL: restart decode not bit-exact\n");
            return 1;
        }
    }

    std::printf("decode (restart): %.2f Mpix/s serial, %.2f Mpix/s "
                "x%d (%.2fx)\n",
                serial.decode_restart_mpix,
                threaded.decode_restart_mpix, threads,
                threaded.decode_restart_mpix /
                    serial.decode_restart_mpix);
    std::printf("decode (legacy):  %.2f Mpix/s serial, %.2f Mpix/s "
                "x%d  | restart gain at %d threads: %.2fx\n",
                serial.decode_legacy_mpix, threaded.decode_legacy_mpix,
                threads, threads,
                threaded.decode_restart_mpix /
                    threaded.decode_legacy_mpix);
    std::printf("infer: planned %.2f req/s, naive %.2f req/s x%d "
                "(plan gain %.2fx)\n",
                threaded.infer_planned_rps, threaded.infer_naive_rps,
                threads,
                threaded.infer_planned_rps /
                    threaded.infer_naive_rps);
    std::printf("end-to-end: %.2f req/s serial, %.2f req/s x%d\n",
                serial.e2e_rps, threaded.e2e_rps, threads);

    // --- Staged dynamic-resolution serving (Fig. 4, measured) ------
    // A store of encoded objects, a quickly trained scale model on a
    // small grid, and the staged engine: dynamic (preview -> decision
    // -> incremental read) versus static 224 (full read) through the
    // SAME machinery, closed loop.
    struct StagedPoint
    {
        double rps = 0.0;
        double read_fraction = 1.0;
        std::vector<uint64_t> hist;
    };
    const int staged_reqs = bench::engineRequests();
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 224;
    spec.mean_width = 224;
    SyntheticDataset sds(spec, 48, 7);
    ScaleModelOptions sopts;
    sopts.epochs = 8;
    ScaleModel scale({112, 168, 224}, sopts);
    scale.train(sds, 0, 40, BackboneArch::ResNet18, {0.75}, 96);

    constexpr int kObjects = 6;
    ObjectStore store;
    ProgressiveConfig scfg_codec = ccfg;
    for (int i = 0; i < kObjects; ++i)
        store.put(static_cast<uint64_t>(i),
                  encodeProgressive(sds.renderAt(i, 256), scfg_codec));

    // Scan depth the decision demands: the preview prefix plus one
    // scan per grid step — the monotone bytes-for-resolution shape
    // the calibrated policies produce, without a calibration run.
    const int num_scans =
        store.peek(0).numScans();
    auto run_staged = [&](int fixed_resolution) {
        StagedEngineConfig scfg;
        scfg.preview_scans = 2;
        scfg.crop_area = 0.75;
        scfg.decode_workers = 1;
        scfg.queue_capacity =
            std::max(64, staged_reqs + kObjects);
        scfg.fixed_resolution = fixed_resolution;
        if (fixed_resolution == 0) {
            scfg.scan_depth = [&](uint64_t, int r_idx) {
                return std::min(num_scans, 2 + r_idx);
            };
        }
        scfg.backbone.workers = 1;
        scfg.backbone.max_batch = 4;
        StagedServingEngine engine(store, scale, net.get(), scfg);

        // Warm pass: compile the plans for every shape the decisions
        // will hit, then measure from the steady state.
        std::vector<StagedRequest> warm(kObjects);
        for (int i = 0; i < kObjects; ++i) {
            warm[i].id = static_cast<uint64_t>(i);
            engine.submit(warm[i]);
        }
        for (auto &r : warm)
            engine.wait(r);
        store.resetStats();
        // The engine's counters have no reset; report the measured
        // window as a delta so the warm pass does not contaminate
        // the histogram.
        const std::vector<uint64_t> hist_warm =
            engine.stats().resolution_hist;

        std::vector<StagedRequest> reqs(
            static_cast<size_t>(staged_reqs));
        Timer t;
        for (int i = 0; i < staged_reqs; ++i) {
            reqs[i].id = static_cast<uint64_t>(i % kObjects);
            engine.submit(reqs[i]);
        }
        for (auto &r : reqs)
            engine.wait(r);
        StagedPoint p;
        p.rps = staged_reqs / t.seconds();
        p.read_fraction = store.stats().relativeReadSize();
        p.hist = engine.stats().resolution_hist;
        for (size_t i = 0; i < p.hist.size(); ++i)
            p.hist[i] -= hist_warm[i];
        return p;
    };

    const StagedPoint dynamic_pt = run_staged(0);
    const StagedPoint static_pt = run_staged(224);

    // Analytic cross-check: recompute the dynamic read fraction from
    // an inline (engine-free) pass over the stored objects — decode
    // the preview, ask the scale model, apply the same scan-depth
    // rule — and compare against what the store metered.
    double analytic_read = 1.0;
    {
        uint64_t read_bytes = 0, full_bytes = 0;
        for (int i = 0; i < kObjects; ++i) {
            const EncodedImage &obj = store.peek(i);
            const Image preview = resize(
                centerCropFraction(decodeProgressive(obj, 2), 0.75),
                scale.options().input_res, scale.options().input_res);
            const int r_idx = scale.chooseResolutionIndex(preview);
            const int k = std::min(num_scans, 2 + r_idx);
            // Weight each object by how often the measured loop
            // served it (round-robin over staged_reqs requests), so
            // the recomputation matches the metered mix exactly.
            const uint64_t times = static_cast<uint64_t>(
                staged_reqs / kObjects +
                (i < staged_reqs % kObjects ? 1 : 0));
            read_bytes += times * obj.bytesForScans(k);
            full_bytes += times * obj.totalBytes();
        }
        analytic_read =
            static_cast<double>(read_bytes) / full_bytes;
    }

    std::printf("staged: dynamic %.2f req/s (read fraction %.3f, "
                "analytic %.3f), static-224 %.2f req/s "
                "(dynamic/static %.2fx)\n",
                dynamic_pt.rps, dynamic_pt.read_fraction,
                analytic_read, static_pt.rps,
                dynamic_pt.rps / static_pt.rps);
    std::printf("staged dynamic resolution histogram:");
    for (size_t i = 0; i < dynamic_pt.hist.size(); ++i)
        std::printf(" %d:%llu", scale.resolutions()[i],
                    static_cast<unsigned long long>(
                        dynamic_pt.hist[i]));
    std::printf("\n");

    FILE *f = std::fopen("BENCH_serving.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serving.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"threads\": %d,\n", threads);
    std::fprintf(f,
                 "  \"decode\": {\"restart_serial_mpix_s\": %.4f, "
                 "\"restart_threaded_mpix_s\": %.4f, "
                 "\"legacy_serial_mpix_s\": %.4f, "
                 "\"legacy_threaded_mpix_s\": %.4f, "
                 "\"restart_gain_threaded\": %.3f},\n",
                 serial.decode_restart_mpix,
                 threaded.decode_restart_mpix,
                 serial.decode_legacy_mpix,
                 threaded.decode_legacy_mpix,
                 threaded.decode_restart_mpix /
                     threaded.decode_legacy_mpix);
    std::fprintf(f,
                 "  \"infer\": {\"planned_serial_rps\": %.4f, "
                 "\"planned_threaded_rps\": %.4f, "
                 "\"naive_threaded_rps\": %.4f, "
                 "\"plan_gain_threaded\": %.3f},\n",
                 serial.infer_planned_rps, threaded.infer_planned_rps,
                 threaded.infer_naive_rps,
                 threaded.infer_planned_rps /
                     threaded.infer_naive_rps);
    std::fprintf(f,
                 "  \"e2e\": {\"serial_rps\": %.4f, "
                 "\"threaded_rps\": %.4f, \"speedup\": %.3f},\n",
                 serial.e2e_rps, threaded.e2e_rps,
                 threaded.e2e_rps / serial.e2e_rps);
    std::fprintf(f,
                 "  \"staged\": {\"dynamic_rps\": %.4f, "
                 "\"static_rps\": %.4f, "
                 "\"dynamic_vs_static_rps\": %.3f, "
                 "\"read_fraction\": %.4f, "
                 "\"read_fraction_analytic\": %.4f}\n}\n",
                 dynamic_pt.rps, static_pt.rps,
                 dynamic_pt.rps / static_pt.rps,
                 dynamic_pt.read_fraction, analytic_read);
    std::fclose(f);
    std::printf("\nwrote BENCH_serving.json\n");
    return 0;
}
