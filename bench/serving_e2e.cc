/**
 * @file
 * End-to-end serving throughput — progressive decode + backbone
 * inference per request — emitted as machine-readable
 * BENCH_serving.json so the serving-path trajectory is tracked across
 * PRs alongside BENCH_kernels.json.
 *
 * Measures, at 1 thread and at the process default (TAMRES_THREADS):
 *  - entropy decode Mpixel/s, restart-interval fan-out vs. the legacy
 *    serial-per-scan path (same bytes: markers are a side table);
 *  - backbone inference req/s, plan-backed runInto vs. the naive
 *    executor (per-request shape inference + tensor allocation);
 *  - the combined decode+resize+infer request rate.
 *
 * Budget knobs: TAMRES_LATENCY_REPS (timed reps per point) and
 * TAMRES_THREADS (threaded-variant worker count).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "image/image.hh"
#include "image/synthetic.hh"
#include "nn/passes.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kRes = 224;

/** Decode + crop/resize + copy into the backbone input tensor. */
void
prepareInput(const EncodedImage &enc, Tensor &in)
{
    const Image decoded = decodeProgressive(enc);
    const Image sized = resize(decoded, kRes, kRes);
    std::copy_n(sized.data(), sized.numel(), in.data());
}

double
reqPerS(double seconds)
{
    return seconds > 0 ? 1.0 / seconds : 0.0;
}

} // namespace

int
main()
{
    bench::banner("serving_e2e",
                  "end-to-end serving hot path: restart-parallel "
                  "decode + plan-backed inference (Sec. VIII)");
    const int threads = ThreadPool::defaultParallelism();
    const int reps = bench::latencyReps();

    // --- Stored object: progressive stream with restart markers ----
    const Image img = generateSyntheticImage(
        {.height = 256, .width = 256, .class_id = 3, .seed = 17});
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    const EncodedImage enc = encodeProgressive(img, ccfg);
    EncodedImage legacy = enc; // same bytes, side tables stripped
    legacy.version = EncodedImage::kVersionLegacy;
    legacy.restart_bits.clear();
    legacy.restart_interval = 0;
    const double mpix = 256.0 * 256.0 / 1e6;

    // --- Serving graph: folded + fused ResNet-18 -------------------
    auto net = bench::buildBackbone(BackboneArch::ResNet18);
    foldBatchNorms(*net);
    fuseConvRelu(*net);
    Tensor in({1, 3, kRes, kRes});
    Tensor out;
    prepareInput(enc, in);
    net->runInto(in, out); // compile + warm the plan

    struct Point
    {
        double decode_restart_mpix = 0.0;
        double decode_legacy_mpix = 0.0;
        double infer_planned_rps = 0.0;
        double infer_naive_rps = 0.0;
        double e2e_rps = 0.0;
    };

    auto measure = [&](int nthreads) {
        setenv("TAMRES_THREADS", std::to_string(nthreads).c_str(), 1);
        Point p;
        p.decode_restart_mpix =
            mpix /
            medianRunSeconds([&] { decodeProgressive(enc); }, reps);
        p.decode_legacy_mpix =
            mpix /
            medianRunSeconds([&] { decodeProgressive(legacy); }, reps);
        net->runInto(in, out); // re-warm at this thread count
        p.infer_planned_rps = reqPerS(
            medianRunSeconds([&] { net->runInto(in, out); }, reps));
        p.infer_naive_rps = reqPerS(
            medianRunSeconds([&] { net->runNaive(in); }, reps));
        p.e2e_rps = reqPerS(medianRunSeconds(
            [&] {
                prepareInput(enc, in);
                net->runInto(in, out);
            },
            reps));
        unsetenv("TAMRES_THREADS");
        return p;
    };

    const Point serial = measure(1);
    const Point threaded = measure(threads);

    // Sanity: restart decode must be bit-exact with the legacy path.
    {
        const Image a = decodeProgressive(enc);
        const Image b = decodeProgressive(legacy);
        if (a.numel() != b.numel() ||
            std::memcmp(a.data(), b.data(),
                        sizeof(float) * a.numel()) != 0) {
            std::fprintf(stderr,
                         "FAIL: restart decode not bit-exact\n");
            return 1;
        }
    }

    std::printf("decode (restart): %.2f Mpix/s serial, %.2f Mpix/s "
                "x%d (%.2fx)\n",
                serial.decode_restart_mpix,
                threaded.decode_restart_mpix, threads,
                threaded.decode_restart_mpix /
                    serial.decode_restart_mpix);
    std::printf("decode (legacy):  %.2f Mpix/s serial, %.2f Mpix/s "
                "x%d  | restart gain at %d threads: %.2fx\n",
                serial.decode_legacy_mpix, threaded.decode_legacy_mpix,
                threads, threads,
                threaded.decode_restart_mpix /
                    threaded.decode_legacy_mpix);
    std::printf("infer: planned %.2f req/s, naive %.2f req/s x%d "
                "(plan gain %.2fx)\n",
                threaded.infer_planned_rps, threaded.infer_naive_rps,
                threads,
                threaded.infer_planned_rps /
                    threaded.infer_naive_rps);
    std::printf("end-to-end: %.2f req/s serial, %.2f req/s x%d\n",
                serial.e2e_rps, threaded.e2e_rps, threads);

    FILE *f = std::fopen("BENCH_serving.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serving.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"threads\": %d,\n", threads);
    std::fprintf(f,
                 "  \"decode\": {\"restart_serial_mpix_s\": %.4f, "
                 "\"restart_threaded_mpix_s\": %.4f, "
                 "\"legacy_serial_mpix_s\": %.4f, "
                 "\"legacy_threaded_mpix_s\": %.4f, "
                 "\"restart_gain_threaded\": %.3f},\n",
                 serial.decode_restart_mpix,
                 threaded.decode_restart_mpix,
                 serial.decode_legacy_mpix,
                 threaded.decode_legacy_mpix,
                 threaded.decode_restart_mpix /
                     threaded.decode_legacy_mpix);
    std::fprintf(f,
                 "  \"infer\": {\"planned_serial_rps\": %.4f, "
                 "\"planned_threaded_rps\": %.4f, "
                 "\"naive_threaded_rps\": %.4f, "
                 "\"plan_gain_threaded\": %.3f},\n",
                 serial.infer_planned_rps, threaded.infer_planned_rps,
                 threaded.infer_naive_rps,
                 threaded.infer_planned_rps /
                     threaded.infer_naive_rps);
    std::fprintf(f,
                 "  \"e2e\": {\"serial_rps\": %.4f, "
                 "\"threaded_rps\": %.4f, \"speedup\": %.3f}\n}\n",
                 serial.e2e_rps, threaded.e2e_rps,
                 threaded.e2e_rps / serial.e2e_rps);
    std::fclose(f);
    std::printf("\nwrote BENCH_serving.json\n");
    return 0;
}
