/**
 * @file
 * Section VII-b extension ablation: calibrating the scale model's own
 * preview reads. The paper notes dynamic read savings are bounded by
 * the data read for the 112 preview and leaves breaking that bound as
 * future work; this bench implements it. For a sweep of
 * decision-agreement targets, the preview scan depth is calibrated
 * and the dynamic storage row re-evaluated, printing read fraction
 * and accuracy against the 112-policy-bounded baseline.
 */

#include "bench/bench_common.hh"
#include "core/calibration.hh"
#include "core/pipeline.hh"

using namespace tamres;

int
main()
{
    bench::banner("ablation_preview_calibration",
                  "Section VII-b future work (preview-read "
                  "calibration for the scale model)");

    const int n_cal = bench::calImages();
    const int n_train = bench::trainImages();
    SyntheticDataset ds(imagenetLike(), n_train + n_cal, 31);
    const BackboneAccuracyModel model(BackboneArch::ResNet18,
                                      ds.spec(), 1);
    QualityTable table(ds, n_train, n_train + n_cal,
                       paperResolutions());

    ScaleModelOptions sopts;
    ScaleModel scale(paperResolutions(), sopts);
    scale.train(ds, 0, n_train, BackboneArch::ResNet18,
                {0.25, 0.56, 0.75, 1.0}, 224);

    CalibrationOptions copts;
    copts.max_accuracy_loss = 0.02; // scaled to the sample size
    const StoragePolicy policy = calibrate(table, ds, model, copts);

    SyntheticDataset pop_ds(ds.spec(), bench::evalImages() / 2, 4242);
    const EvalPopulation pop{&pop_ds, pop_ds.size()};
    const StorageRow bound = evalDynamicStorage(table, ds, model,
                                                scale, policy, 0.75,
                                                pop);

    TablePrinter out("dynamic reads: 112-policy bound vs. explicit "
                     "preview depths");
    out.setHeader({"preview policy", "scans", "agreement", "read frac",
                   "savings", "accuracy"});
    out.addRow({"112-policy (paper)", "-", "-",
                TablePrinter::num(bound.read_fraction, 3),
                TablePrinter::num(bound.savingsPercent(), 1) + "%",
                TablePrinter::num(bound.accuracy_calibrated * 100, 1)});
    const std::vector<double> agreement =
        previewAgreementByDepth(table, ds, scale, 0.75);
    for (int k = 1; k <= table.numScans(); ++k) {
        const StorageRow row =
            evalDynamicStorage(table, ds, model, scale, policy, 0.75,
                               pop, k);
        out.addRow({"fixed depth", std::to_string(k),
                    TablePrinter::num(agreement[k - 1], 3),
                    TablePrinter::num(row.read_fraction, 3),
                    TablePrinter::num(row.savingsPercent(), 1) + "%",
                    TablePrinter::num(row.accuracy_calibrated * 100,
                                      1)});
    }
    out.print();
    std::printf(
        "\nexpected shape: object scale is a low-frequency property, "
        "so decision agreement saturates after 1-2 scans; wherever "
        "the backbone's own 112 policy demands more than that, the "
        "calibrated preview depth reads past the paper's 112-read "
        "lower bound on savings at near-equal accuracy (the Section "
        "VII-b conjecture). When the 112 policy is already minimal "
        "the bound binds only at strict agreement targets — the "
        "table shows the whole trade-off.\n");
    return 0;
}
