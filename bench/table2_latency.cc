/**
 * @file
 * Reproduces paper Table II: wall-clock latency (ms) of ResNet-50
 * with tuned and library kernel implementations across resolutions,
 * batch size 1.
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("table2_latency",
                  "Table II (ResNet-50 wall-clock latency, tuned vs. "
                  "library)");

    auto rn50 = bench::buildBackbone(BackboneArch::ResNet50);
    TablePrinter table("Table II — ResNet-50 latency (ms), batch 1");
    table.setHeader({"Res", "Tuned", "Library", "speedup"});
    for (int r : paperResolutions()) {
        bench::ensureTuned(*rn50, r);
        const double lib =
            bench::networkLatency(*rn50, r, KernelMode::Library);
        const double tuned =
            bench::networkLatency(*rn50, r, KernelMode::Tuned);
        table.addRow({std::to_string(r),
                      TablePrinter::num(tuned * 1e3, 1),
                      TablePrinter::num(lib * 1e3, 1),
                      TablePrinter::num(lib / tuned, 2)});
    }
    table.print();
    std::printf("\npaper (4790K): tuned 10.3..117.5 ms, MKLDNN "
                "28.8..161.1 ms — absolute numbers differ by host; "
                "the tuned column must dominate, most at non-224 "
                "resolutions.\n");
    return 0;
}
