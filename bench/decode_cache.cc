/**
 * @file
 * Hot-object decode cache under Zipf popularity — the bytes-read and
 * tail-latency economics of caching decoded previews + resumable
 * decoder snapshots, emitted as machine-readable BENCH_cache.json
 * (fields documented in bench/bench_common.hh) and gated by
 * tools/bench_gate.py.
 *
 * A decision-only staged engine (the fetch / decode / decide path is
 * what the cache short-circuits; backbone inference is orthogonal)
 * serves ONE fixed Zipf(alpha = 1.0) request sequence over a hot set
 * of stored objects, through a FaultyObjectStore that injects a
 * heavy latency tail on every physical fetch. Legs differ only in
 * the DecodeCache capacity:
 *
 *   off     no cache — every request fetches and decodes cold;
 *   small   a few entries: the hot head fits, the tail churns;
 *   medium  the working set mostly fits;
 *   large   everything fits — steady state is all hits.
 *
 * The request sequence, the Zipf draw, and the fault schedule are
 * pure functions of fixed seeds, so legs are byte-comparable: any
 * bytes_read difference is the cache, not the workload. The harness
 * hard-fails if (a) any cached entry's resumed decode is not
 * bit-identical to a cold decodeProgressive() at the same depth,
 * (b) terminal or cache conservation breaks in any leg, or (c) the
 * engine's bytes_read disagrees with what the store itself metered —
 * the "hits charge zero, partial hits charge the delta" contract.
 *
 * Budget knobs: TAMRES_ENGINE_REQS (scaled x8 for the Zipf mix).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.hh"
#include "codec/progressive.hh"
#include "core/staged_engine.hh"
#include "image/synthetic.hh"
#include "storage/decode_cache.hh"
#include "storage/fault_injection.hh"

using namespace tamres;

namespace {

struct Leg
{
    const char *name;
    size_t capacity_entries; //!< 0 = cache off
};

struct LegResult
{
    uint64_t done = 0;
    uint64_t degraded = 0;
    double goodput_rps = 0.0;
    double p99_ms = 0.0;
    StagedStats stats;
    ReadStats store_stats;
};

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(
        v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
    return v[idx];
}

/** Inverse-CDF Zipf(alpha) sampler over [0, n) with a fixed seed. */
std::vector<uint64_t>
zipfSequence(int n, double alpha, int draws, uint64_t seed)
{
    std::vector<double> cdf(static_cast<size_t>(n));
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf[static_cast<size_t>(i)] = sum;
    }
    Rng rng(seed);
    std::vector<uint64_t> seq(static_cast<size_t>(draws));
    for (auto &s : seq) {
        const double u = rng.uniform() * sum;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        s = static_cast<uint64_t>(it - cdf.begin());
    }
    return seq;
}

} // namespace

int
main()
{
    bench::banner("decode_cache",
                  "hot-object preview/snapshot cache under Zipf "
                  "popularity: bytes-read and p99 vs capacity");
    const int requests = bench::engineRequests() * 8;
    constexpr int kObjects = 48;
    constexpr double kAlpha = 1.0;

    // --- Stored objects + trained scale model ----------------------
    DatasetSpec spec = imagenetLike();
    spec.mean_height = 160;
    spec.mean_width = 160;
    SyntheticDataset ds(spec, kObjects, 7);
    ScaleModelOptions sopts;
    sopts.epochs = 6;
    ScaleModel scale({96, 128, 160}, sopts);
    scale.train(ds, 0, 32, BackboneArch::ResNet18, {0.75}, 96);

    ObjectStore store;
    ProgressiveConfig ccfg;
    ccfg.entropy = EntropyCoder::Huffman;
    ccfg.restart_interval = 64;
    std::vector<EncodedImage> encs;
    encs.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
        encs.push_back(encodeProgressive(ds.renderAt(i, 176), ccfg));
        store.put(static_cast<uint64_t>(i), encs.back());
    }
    const int num_scans = store.peek(0).numScans();

    // One fixed request sequence shared by every leg.
    const std::vector<uint64_t> seq =
        zipfSequence(kObjects, kAlpha, requests, 0x21Fu);

    // Per-entry footprint, measured rather than assumed: one
    // full-depth entry in a throwaway cache (admission gate off).
    size_t per_entry = 0;
    {
        DecodeCacheConfig probe_cfg;
        probe_cfg.require_second_hit = false;
        DecodeCache probe(probe_cfg);
        EncodedImage d = encs[0].headerCopy();
        ProgressiveDecoder dec(d);
        d.bytes = encs[0].bytes;
        dec.advanceTo(num_scans);
        probe.insert(0, num_scans, dec.image(), dec.snapshot());
        per_entry = static_cast<size_t>(probe.stats().bytes);
    }

    // Every physical fetch pays a latency-tail draw: the cache's p99
    // win is exactly the fetches it never issues.
    FaultPolicy policy;
    policy.seed = 0xCAC4Eu;
    policy.latency_tail_p = 0.5;
    policy.latency_tail_scale_s = 4e-3;
    policy.latency_max_s = 20e-3;

    const std::vector<Leg> legs = {{"off", 0},
                                   {"small", 6},
                                   {"medium", 24},
                                   {"large", 160}};

    auto run_leg = [&](const Leg &leg, DecodeCache *cache) {
        FaultyObjectStore faulty(store, policy);
        faulty.resetStats(); // per-leg metering on the shared base
        if (cache)
            faulty.attachCache(cache); // lands on root() == store
        StagedEngineConfig cfg;
        cfg.preview_scans = 2;
        cfg.crop_area = 0.75;
        cfg.decode_workers = 2;
        cfg.decode_batch = 2;
        cfg.queue_capacity = std::max(64, requests + kObjects);
        cfg.scan_depth = [&](uint64_t, int r_idx) {
            return std::min(num_scans, 2 + r_idx);
        };
        cfg.cache = cache;
        StagedServingEngine engine(faulty, scale, nullptr, cfg);

        std::vector<StagedRequest> reqs(
            static_cast<size_t>(requests));
        Timer t;
        for (int i = 0; i < requests; ++i) {
            reqs[static_cast<size_t>(i)].id =
                seq[static_cast<size_t>(i)];
            engine.submit(reqs[static_cast<size_t>(i)]);
        }
        for (auto &r : reqs)
            engine.wait(r);
        const double elapsed = t.seconds();

        LegResult res;
        std::vector<double> served_lat;
        for (auto &r : reqs) {
            switch (r.stateNow()) {
            case StagedState::Done:
                ++res.done;
                served_lat.push_back(r.latency_s);
                break;
            case StagedState::Degraded:
                ++res.degraded;
                served_lat.push_back(r.latency_s);
                break;
            default:
                std::fprintf(stderr,
                             "FAIL: leg %s request ended in state %d "
                             "(no faults were injected)\n",
                             leg.name,
                             static_cast<int>(r.stateNow()));
                std::exit(1);
            }
        }
        res.goodput_rps =
            elapsed > 0
                ? static_cast<double>(res.done + res.degraded) /
                      elapsed
                : 0.0;
        res.p99_ms = percentile(served_lat, 0.99) * 1e3;
        res.stats = engine.stats();
        res.store_stats = faulty.stats();
        engine.stop();
        if (cache)
            faulty.detachCache(cache);

        // Hard checks, every leg. Terminal conservation:
        const StagedStats &st = res.stats;
        const uint64_t sum = st.done + st.degraded + st.failed +
                             st.expired + st.shed_admission +
                             st.rejected + st.cancelled;
        if (st.admitted != sum) {
            std::fprintf(stderr,
                         "FAIL: leg %s terminal conservation "
                         "(admitted %llu != %llu)\n",
                         leg.name,
                         static_cast<unsigned long long>(st.admitted),
                         static_cast<unsigned long long>(sum));
            std::exit(1);
        }
        // Honest metering: the engine's bytes_read must be exactly
        // what the store delivered — hits charge zero because no
        // fetch happened, not because the meter looked away.
        if (st.bytes_read != res.store_stats.bytes_read) {
            std::fprintf(
                stderr,
                "FAIL: leg %s engine bytes_read %llu != store "
                "bytes_read %llu\n",
                leg.name,
                static_cast<unsigned long long>(st.bytes_read),
                static_cast<unsigned long long>(
                    res.store_stats.bytes_read));
            std::exit(1);
        }
        // Cache-internal conservation + engine/cache hit agreement.
        if (cache) {
            const DecodeCacheStats cs = st.cache;
            if (cs.insertions !=
                cs.entries + cs.evictions + cs.invalidations) {
                std::fprintf(stderr,
                             "FAIL: leg %s cache conservation\n",
                             leg.name);
                std::exit(1);
            }
            if (cs.hits != st.cache_hits + st.cache_resumes) {
                std::fprintf(stderr,
                             "FAIL: leg %s cache hits %llu != engine "
                             "hits %llu + resumes %llu\n",
                             leg.name,
                             static_cast<unsigned long long>(cs.hits),
                             static_cast<unsigned long long>(
                                 st.cache_hits),
                             static_cast<unsigned long long>(
                                 st.cache_resumes));
                std::exit(1);
            }
        }
        return res;
    };

    std::vector<LegResult> results;
    DecodeCache *largest_cache = nullptr;
    std::vector<std::unique_ptr<DecodeCache>> caches;
    for (const Leg &leg : legs) {
        DecodeCache *cache = nullptr;
        if (leg.capacity_entries > 0) {
            DecodeCacheConfig dcfg;
            dcfg.capacity_bytes = leg.capacity_entries * per_entry;
            caches.push_back(std::make_unique<DecodeCache>(dcfg));
            cache = caches.back().get();
        }
        const LegResult r = run_leg(leg, cache);
        if (cache)
            largest_cache = cache; // legs run in ascending capacity
        std::printf(
            "%-7s cap %3zu entries  bytes_read %9llu  p99 %6.2f ms  "
            "goodput %7.1f req/s  hits %llu  resumes %llu  saved "
            "%llu  evictions %llu\n",
            leg.name, leg.capacity_entries,
            static_cast<unsigned long long>(r.stats.bytes_read),
            r.p99_ms, r.goodput_rps,
            static_cast<unsigned long long>(r.stats.cache_hits),
            static_cast<unsigned long long>(r.stats.cache_resumes),
            static_cast<unsigned long long>(
                r.stats.cache_bytes_saved),
            static_cast<unsigned long long>(
                r.stats.cache.evictions));
        results.push_back(r);
    }

    // Bit-identity hard check: every entry still resident in the
    // largest cache must resume to the exact pixels a cold decode
    // produces at the same depth.
    int verified = 0;
    for (int i = 0; i < kObjects; ++i) {
        const DecodeCache::EntryPtr e = largest_cache->lookup(
            static_cast<uint64_t>(i), 1, num_scans);
        if (!e)
            continue;
        EncodedImage d = encs[static_cast<size_t>(i)].headerCopy();
        d.bytes.assign(
            static_cast<size_t>(d.scan_offsets[e->depth]), 0);
        ProgressiveDecoder dec(d, e->snap);
        const Image warm = dec.image();
        const Image cold =
            decodeProgressive(encs[static_cast<size_t>(i)], e->depth);
        const bool same =
            warm.numel() == cold.numel() &&
            std::memcmp(warm.data(), cold.data(),
                        warm.numel() * sizeof(float)) == 0;
        const bool preview_same =
            e->preview.empty() ||
            (e->preview.numel() == cold.numel() &&
             std::memcmp(e->preview.data(), cold.data(),
                         cold.numel() * sizeof(float)) == 0);
        if (!same || !preview_same) {
            std::fprintf(stderr,
                         "FAIL: cached entry (id %d, depth %d) is "
                         "not bit-identical to a cold decode\n",
                         i, e->depth);
            return 1;
        }
        ++verified;
    }
    if (verified == 0) {
        std::fprintf(stderr,
                     "FAIL: largest cache held no entries to verify\n");
        return 1;
    }
    std::printf("bit-identity: %d cached entries match their cold "
                "decodes exactly\n",
                verified);

    const LegResult &off = results.front();
    const LegResult &big = results.back();
    const double bytes_gain =
        big.stats.bytes_read > 0
            ? static_cast<double>(off.stats.bytes_read) /
                  static_cast<double>(big.stats.bytes_read)
            : 0.0;
    const double p99_gain =
        big.p99_ms > 0 ? off.p99_ms / big.p99_ms : 0.0;
    std::printf("cache bytes-read gain (off / large): %.2fx   p99 "
                "gain: %.2fx\n",
                bytes_gain, p99_gain);

    FILE *f = std::fopen("BENCH_cache.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_cache.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"requests\": %d,\n  \"objects\": %d,\n"
                 "  \"zipf_alpha\": %.2f,\n"
                 "  \"entry_bytes\": %zu,\n  \"legs\": [\n",
                 requests, kObjects, kAlpha, per_entry);
    for (size_t i = 0; i < results.size(); ++i) {
        const Leg &leg = legs[i];
        const LegResult &r = results[i];
        const double n = static_cast<double>(requests);
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"capacity_entries\": %zu,\n"
            "     \"bytes_read\": %llu, \"p99_ms\": %.4f, "
            "\"goodput_rps\": %.4f, \"done_fraction\": %.4f, "
            "\"degraded_fraction\": %.4f,\n"
            "     \"cache_hits\": %llu, \"cache_resumes\": %llu, "
            "\"cache_misses\": %llu, \"cache_bytes_saved\": %llu, "
            "\"evictions\": %llu, \"entries\": %llu}%s\n",
            leg.name, leg.capacity_entries,
            static_cast<unsigned long long>(r.stats.bytes_read),
            r.p99_ms, r.goodput_rps, r.done / n, r.degraded / n,
            static_cast<unsigned long long>(r.stats.cache_hits),
            static_cast<unsigned long long>(r.stats.cache_resumes),
            static_cast<unsigned long long>(r.stats.cache_misses),
            static_cast<unsigned long long>(
                r.stats.cache_bytes_saved),
            static_cast<unsigned long long>(r.stats.cache.evictions),
            static_cast<unsigned long long>(r.stats.cache.entries),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"cache_bytes_gain\": %.4f,\n"
                 "  \"cache_p99_gain\": %.4f\n}\n",
                 bytes_gain, p99_gain);
    std::fclose(f);
    std::printf("\nwrote BENCH_cache.json\n");
    return 0;
}
