/**
 * @file
 * Reproduces paper Figure 7: inference throughput (GFLOPs/s) of
 * ResNet-18 and ResNet-50 across resolutions, library implementation
 * (blocking fixed offline for 224) vs. per-resolution autotuned
 * kernels — plus the Section VII-a speedup summary (ideal vs. library
 * vs. tuned 448->112 speedups, and tuned-280 vs. library-224 latency).
 */

#include "bench/bench_common.hh"

using namespace tamres;

int
main()
{
    bench::banner("fig7_throughput",
                  "Figure 7 (a-d): throughput tuned vs. library, "
                  "ResNet-18/50 x 7 resolutions + Sec. VII-a summary");

    struct Point
    {
        double lib_s, tuned_s, gflops;
    };

    for (const BackboneArch arch :
         {BackboneArch::ResNet18, BackboneArch::ResNet50}) {
        auto net = bench::buildBackbone(arch);
        TablePrinter table("Figure 7 — " + archName(arch) +
                           " throughput (GFLOPs/s), batch 1");
        table.setHeader({"res", "library", "tuned", "tuned/library"});

        std::vector<Point> points;
        for (int r : paperResolutions()) {
            bench::ensureTuned(*net, r);
            Point p;
            p.gflops =
                static_cast<double>(net->flops({1, 3, r, r})) / 1e9;
            p.lib_s = bench::networkLatency(*net, r, KernelMode::Library);
            p.tuned_s = bench::networkLatency(*net, r, KernelMode::Tuned);
            points.push_back(p);
            table.addRow({std::to_string(r),
                          TablePrinter::num(p.gflops / p.lib_s, 1),
                          TablePrinter::num(p.gflops / p.tuned_s, 1),
                          TablePrinter::num(p.lib_s / p.tuned_s, 2)});
        }
        table.print();

        // Section VII-a summary: 448 -> 112 speedups.
        const Point &p112 = points.front();
        const Point &p448 = points.back();
        const double ideal = p448.gflops / p112.gflops;
        std::printf("\n448->112 speedup (%s): ideal %.1fx | library "
                    "%.1fx | tuned %.1fx\n",
                    archName(arch).c_str(), ideal,
                    p448.lib_s / p112.lib_s,
                    p448.tuned_s / p112.tuned_s);
        // Headline claim: tuned 280 vs library 224.
        const Point &p224 = points[2];
        const Point &p280 = points[3];
        std::printf("tuned@280 vs library@224 latency ratio: %.2fx "
                    "(paper: tuned 280 is 1.2-1.7x faster than "
                    "library 224)\n\n",
                    p224.lib_s / p280.tuned_s);
    }
    return 0;
}
