/**
 * @file
 * Reproduces paper Table IV: Stanford-Cars read-bandwidth savings —
 * the shape-dominated dataset tolerates much lower fidelity, so
 * savings are far larger than on ImageNet.
 */

#include "bench/table_savings_common.hh"

int
main()
{
    tamres::bench::banner("table4_cars_savings",
                          "Table IV (Cars read bandwidth savings)");
    tamres::bench::runSavingsTable(tamres::carsLike(), "Table IV");
    std::printf("paper: per-resolution savings up to ~69%%; dynamic "
                "saves 43-49%%; Cars >> ImageNet savings at matched "
                "accuracy loss.\n");
    return 0;
}
