/**
 * @file
 * Reproduces paper Figure 8: accuracy vs. FLOPs for static and
 * dynamic resolution with ResNet-18/50 on the ImageNet-like dataset
 * across 25/56/75/100% center crops.
 */

#include "bench/fig_dynamic_common.hh"

int
main()
{
    tamres::bench::banner(
        "fig8_dynamic_imagenet",
        "Figure 8 (a-h): static vs. dynamic resolution, ImageNet");
    tamres::bench::runDynamicFigure(tamres::imagenetLike(), "Fig.8");
    std::printf("expected shape (paper): smaller crops favor lower "
                "resolutions; the dynamic point sits near the apex of "
                "each static curve at lower average FLOPs.\n");
    return 0;
}
