/**
 * @file
 * Quantized serving: fp32 vs int8 through the REAL batched engine.
 * One ServingEngine carries both graphs (EngineConfig::quant_graph);
 * the fp32 leg and the int8 leg drive the same closed loop with the
 * same clients, batch cap and workers — the only difference is the
 * want_int8 stamp on the requests, i.e. exactly what the overload
 * tier policy flips under pressure. Emits BENCH_quant.json (fields
 * documented in bench/bench_common.hh).
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/engine.hh"
#include "nn/passes.hh"
#include "nn/quant.hh"
#include "util/thread_pool.hh"

using namespace tamres;

namespace {

constexpr int kRes = 224;

struct LegResult
{
    double rps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
};

/** Closed-loop leg: @p clients in-flight requests, all one precision. */
LegResult
runLeg(ServingEngine &engine, const Tensor &item, int clients,
       int total, bool want_int8)
{
    std::vector<double> lat;
    lat.reserve(static_cast<size_t>(total));
    std::mutex lat_mu;
    Timer t;
    std::vector<std::thread> cts;
    std::atomic<int> remaining{total};
    std::atomic<uint64_t> served{0};
    for (int c = 0; c < clients; ++c) {
        cts.emplace_back([&] {
            InferenceRequest r;
            r.input = item.clone();
            r.want_int8 = want_int8;
            std::vector<double> mine;
            while (remaining.fetch_sub(1) > 0) {
                if (engine.submit(r)) {
                    engine.wait(r);
                    ++served;
                    mine.push_back(r.latency_s);
                }
            }
            std::lock_guard<std::mutex> lock(lat_mu);
            lat.insert(lat.end(), mine.begin(), mine.end());
        });
    }
    for (auto &th : cts)
        th.join();
    const double secs = t.seconds();

    LegResult res;
    res.rps = static_cast<double>(served.load()) / secs;
    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        res.p50_ms = lat[lat.size() / 2] * 1e3;
        res.p99_ms = lat[std::min(lat.size() - 1,
                                  lat.size() * 99 / 100)] *
                     1e3;
    }
    return res;
}

double
relError(const Tensor &got, const Tensor &want)
{
    double num = 0.0, den = 0.0;
    for (int64_t i = 0; i < got.numel(); ++i) {
        const double d = static_cast<double>(got.data()[i]) -
                         want.data()[i];
        num += d * d;
        den += static_cast<double>(want.data()[i]) * want.data()[i];
    }
    return std::sqrt(num / std::max(den, 1e-20));
}

} // namespace

int
main()
{
    bench::banner("quantized_serving",
                  "int8 precision tier on the measured engine "
                  "(Section II-a lever, served)");

    const int hw = ThreadPool::defaultParallelism();
    const int reqs = bench::engineRequests();
    const int mb = 4;

    // Two siblings from the same seed: the fp32 serving graph and its
    // calibrated int8 twin (static activation scales, so the engine
    // may batch int8 requests freely — batch-N is bit-identical to
    // N x batch-1).
    auto fp32 = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*fp32);
    bench::ensureTuned(*fp32, kRes);
    KernelSelector::instance().setMode(KernelMode::Tuned);

    auto int8 = bench::buildBackbone(BackboneArch::ResNet18);
    optimizeForInference(*int8);
    Tensor cal_in({1, 3, kRes, kRes});
    Rng cal_rng(99);
    fillUniform(cal_in, cal_rng, 0.0f, 1.0f);
    const QuantCalibration cal = calibrateActivations(*int8, {cal_in});
    const int rewritten = quantizeConvs(*int8, &cal);

    Tensor item({1, 3, kRes, kRes});
    Rng rng(107);
    fillUniform(item, rng, 0.0f, 1.0f);

    // Accuracy proxy: logit deviation of the int8 twin on the bench
    // input (informational; the ablation harness sweeps this across
    // resolutions).
    const double acc_err = relError(int8->run(item), fp32->run(item));

    setenv("TAMRES_THREADS", "1", 1); // workers own the cores
    EngineConfig cfg;
    cfg.workers = hw;
    cfg.max_batch = mb;
    cfg.max_delay_us = 0; // closed loop keeps the queue fed
    cfg.queue_capacity = 4 * mb * hw + 8;
    cfg.quant_graph = int8.get();
    cfg.warm_shapes.push_back(Shape{mb, 3, kRes, kRes});
    cfg.warm_shapes.push_back(Shape{1, 3, kRes, kRes});

    const int clients = std::min(16, 2 * mb * hw);
    LegResult fp32_leg, int8_leg;
    {
        ServingEngine engine(*fp32, cfg);
        fp32_leg = runLeg(engine, item, clients, reqs, false);
    }
    {
        ServingEngine engine(*fp32, cfg);
        int8_leg = runLeg(engine, item, clients, reqs, true);
        const EngineStats st = engine.stats();
        if (st.served_int8 != st.served) {
            std::fprintf(stderr,
                         "int8 leg served %llu of %llu requests on "
                         "the quantized graph\n",
                         static_cast<unsigned long long>(
                             st.served_int8),
                         static_cast<unsigned long long>(st.served));
            return 1;
        }
    }
    unsetenv("TAMRES_THREADS");

    TablePrinter tab("fp32 vs int8 leg, same engine (" +
                     std::to_string(hw) + " workers, max_batch " +
                     std::to_string(mb) + ", " +
                     std::to_string(rewritten) + " convs int8)");
    tab.setHeader({"leg", "req/s", "p50 ms", "p99 ms"});
    tab.addRow({"fp32", TablePrinter::num(fp32_leg.rps, 2),
                TablePrinter::num(fp32_leg.p50_ms, 0),
                TablePrinter::num(fp32_leg.p99_ms, 0)});
    tab.addRow({"int8", TablePrinter::num(int8_leg.rps, 2),
                TablePrinter::num(int8_leg.p50_ms, 0),
                TablePrinter::num(int8_leg.p99_ms, 0)});
    tab.print();

    const double speedup = int8_leg.rps / std::max(fp32_leg.rps, 1e-9);
    std::printf("\nint8 serving speedup: %.2fx (logit relerr %.4f)\n",
                speedup, acc_err);

    FILE *f = std::fopen("BENCH_quant.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_quant.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"workers\": %d,\n  \"requests\": %d,\n", hw,
                 reqs);
    std::fprintf(f, "  \"max_batch\": %d,\n", mb);
    std::fprintf(f, "  \"convs_quantized\": %d,\n", rewritten);
    std::fprintf(f, "  \"fp32_rps\": %.4f,\n", fp32_leg.rps);
    std::fprintf(f, "  \"fp32_p50_ms\": %.2f,\n", fp32_leg.p50_ms);
    std::fprintf(f, "  \"fp32_p99_ms\": %.2f,\n", fp32_leg.p99_ms);
    std::fprintf(f, "  \"int8_rps\": %.4f,\n", int8_leg.rps);
    std::fprintf(f, "  \"int8_p50_ms\": %.2f,\n", int8_leg.p50_ms);
    std::fprintf(f, "  \"int8_p99_ms\": %.2f,\n", int8_leg.p99_ms);
    std::fprintf(f, "  \"int8_speedup\": %.4f,\n", speedup);
    std::fprintf(f, "  \"accuracy_rel_err\": %.6f\n}\n", acc_err);
    std::fclose(f);
    std::printf("wrote BENCH_quant.json (int8 vs fp32: %.2fx at %d "
                "worker(s))\n",
                speedup, hw);
    return 0;
}
