/**
 * @file
 * Structured, recoverable error reporting for the serving data path.
 *
 * logging.hh draws the line between bugs (panic/tamres_assert, which
 * abort) and impossible user requests (fatal). This file adds the
 * third category real deployments are made of: *expected* runtime
 * failures — a missing object, a flaky read, a truncated or corrupted
 * byte range — that a serving engine must contain per request and
 * retry or degrade around, never die on. They are thrown as
 * tamres::Error carrying an ErrorKind so handlers can branch on the
 * failure class (retry a Transient fetch, trim-and-refetch a Corrupt
 * range, fail a NotFound request) without parsing message strings.
 */

#ifndef TAMRES_UTIL_ERROR_HH
#define TAMRES_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace tamres {

/** Classification of recoverable runtime failures. */
enum class ErrorKind : int
{
    /** A named object does not exist (maps to a per-request failure). */
    NotFound = 0,
    /** A retryable I/O failure (injected or real 5xx-style error). */
    Transient,
    /** A byte range ends before the structure framed inside it. */
    Truncated,
    /**
     * Framing or checksum mismatch detected BEFORE any decode state
     * was touched — the clean prefix survives, so the caller may trim
     * back to the last verified boundary and refetch.
     */
    Corrupt,
    /**
     * An entropy-decode invariant was violated mid-scan: decoder
     * coefficient state is unspecified past the last completed scan
     * and must not be resumed. Unrecoverable per request.
     */
    Decode,
    /**
     * The request's cooperative CancelToken fired (client cancel or
     * deadline expiry) and the operation stopped at a clean boundary:
     * nothing is partially applied past the last completed scan. Not
     * a tier-health signal — the circuit breaker does not count it
     * and the retry loop never retries it; the engine maps it to the
     * Cancelled or Expired terminal by the token's reason.
     */
    Cancelled,
};

/** Short stable name for an ErrorKind ("not-found", "transient", ...). */
const char *errorKindName(ErrorKind kind);

/** A recoverable runtime failure with a machine-checkable kind. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorKind kind, std::string what, bool fail_fast = false)
        : std::runtime_error(std::move(what)), kind_(kind),
          fail_fast_(fail_fast)
    {}

    ErrorKind kind() const { return kind_; }

    /**
     * True when retrying this failure is known to be pointless right
     * now (e.g. a circuit breaker is Open and rejecting fetches before
     * they reach the store). Handlers should skip their backoff loop
     * and degrade/fail immediately instead of sleeping toward an
     * outcome the thrower has already predicted.
     */
    bool failFast() const { return fail_fast_; }

  private:
    ErrorKind kind_;
    bool fail_fast_;
};

/** Throw an Error with a printf-formatted message. */
[[noreturn]] void throwError(ErrorKind kind, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Check a condition that depends on external input (stored bytes, a
 * delivered range); throws Error{kind} when it fails. The structured
 * sibling of tamres_assert: asserts guard internal invariants and
 * abort, checks guard input validity and throw.
 */
#define tamres_check(cond, kind, fmt, ...)                                \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::tamres::throwError(kind, fmt, ##__VA_ARGS__);               \
        }                                                                 \
    } while (0)

} // namespace tamres

#endif // TAMRES_UTIL_ERROR_HH
