/**
 * @file
 * A minimal fork-join thread pool used by the parallel convolution
 * kernels and the codec's block-parallel passes.
 *
 * The pool exposes a single primitive, parallelFor, which partitions an
 * index range across worker threads and blocks until every chunk has
 * completed. On a single-hardware-thread host the pool degenerates to a
 * serial loop with no thread handoff, so kernels pay no overhead there.
 *
 * Safety properties:
 *  - Exceptions thrown by a chunk are captured and rethrown on the
 *    calling thread after every chunk has finished (first one wins).
 *  - Reentrant calls (parallelFor from inside a chunk) and concurrent
 *    calls from a second user thread degrade to serial execution on
 *    the calling thread instead of deadlocking.
 *
 * The process-wide default parallelism is controlled by the
 * TAMRES_THREADS environment variable (read per call, so tests can
 * vary it at runtime); it defaults to the hardware concurrency.
 */

#ifndef TAMRES_UTIL_THREAD_POOL_HH
#define TAMRES_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tamres {

/** Fixed-size fork-join worker pool. */
class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads workers. threads <= 1 creates no
     * worker threads; all work runs on the calling thread.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads participating in parallelFor (>= 1). */
    int threads() const { return nthreads_; }

    /**
     * Invoke fn(chunk_begin, chunk_end) over [0, n) partitioned into
     * contiguous chunks, at most one per participating thread (and at
     * most @p max_parts when positive). Blocks until all chunks
     * finish. A chunk that throws does not terminate the process: the
     * first exception is rethrown here once every chunk has returned.
     * Reentrant or concurrent invocations run fn(0, n) serially on the
     * calling thread.
     *
     * The callable is passed by non-owning reference (parallelFor is
     * fully synchronous, so the caller's lambda outlives every chunk);
     * no std::function is constructed and the dispatch itself performs
     * no heap allocation — a property the plan runtime's zero-alloc
     * steady state depends on.
     */
    template <typename Fn>
    void
    parallelFor(int64_t n, Fn &&fn, int max_parts = 0)
    {
        using Decayed = std::remove_reference_t<Fn>;
        parallelForRaw(
            n,
            [](void *ctx, int64_t begin, int64_t end) {
                (*static_cast<Decayed *>(ctx))(begin, end);
            },
            const_cast<void *>(
                static_cast<const void *>(std::addressof(fn))),
            max_parts);
    }

    /** Type-erased chunk entry point used by parallelFor. */
    using ChunkFn = void (*)(void *ctx, int64_t begin, int64_t end);

    /** Non-template core of parallelFor (fn + context pointer). */
    void parallelForRaw(int64_t n, ChunkFn fn, void *ctx,
                        int max_parts = 0);

    /** True while the current thread is executing a parallelFor chunk. */
    static bool inParallelRegion();

    /**
     * [begin, end) of chunk @p idx when [0, n) is split into @p parts
     * near-equal contiguous chunks — the partition parallelFor uses.
     * Exposed for callers that pre-partition work themselves (e.g. the
     * codec's per-chunk bit writers).
     */
    static std::pair<int64_t, int64_t> chunkBounds(int idx, int parts,
                                                   int64_t n);

    /**
     * Process-wide pool. Sized generously (at least 8 workers) so that
     * hosts whose hardware_concurrency is small can still exercise
     * multi-threaded execution when TAMRES_THREADS asks for it; idle
     * workers cost nothing but a blocked condition-variable wait.
     */
    static ThreadPool &global();

    /**
     * Effective worker count requested right now: TAMRES_THREADS when
     * set (clamped to [1, global().threads()]), otherwise the hardware
     * concurrency. Kernels pass this as max_parts.
     */
    static int defaultParallelism();

  private:
    void workerLoop(int idx);
    void runChunk(ChunkFn fn, void *ctx, int64_t begin, int64_t end);

    int nthreads_;
    std::vector<std::thread> workers_;

    /** Serializes whole parallelFor invocations (fork-level lock). */
    std::mutex forkMutex_;

    std::mutex mutex_;
    std::condition_variable wakeCv_;
    std::condition_variable doneCv_;
    ChunkFn jobFn_ = nullptr;
    void *jobCtx_ = nullptr;
    int64_t jobSize_ = 0;
    int jobParts_ = 0;
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
};

} // namespace tamres

#endif // TAMRES_UTIL_THREAD_POOL_HH
