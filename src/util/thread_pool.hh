/**
 * @file
 * A minimal fork-join thread pool used by the parallel convolution
 * kernels.
 *
 * The pool exposes a single primitive, parallelFor, which partitions an
 * index range across worker threads and blocks until every chunk has
 * completed. On a single-hardware-thread host the pool degenerates to a
 * serial loop with no thread handoff, so kernels pay no overhead there.
 */

#ifndef TAMRES_UTIL_THREAD_POOL_HH
#define TAMRES_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tamres {

/** Fixed-size fork-join worker pool. */
class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads workers. threads <= 1 creates no
     * worker threads; all work runs on the calling thread.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads participating in parallelFor (>= 1). */
    int threads() const { return nthreads_; }

    /**
     * Invoke fn(chunk_begin, chunk_end) over [0, n) partitioned into
     * contiguous chunks, one per participating thread. Blocks until all
     * chunks finish. Not reentrant.
     */
    void parallelFor(int64_t n,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** Process-wide pool sized to the hardware concurrency. */
    static ThreadPool &global();

  private:
    void workerLoop(int idx);

    int nthreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wakeCv_;
    std::condition_variable doneCv_;
    const std::function<void(int64_t, int64_t)> *job_ = nullptr;
    int64_t jobSize_ = 0;
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
};

} // namespace tamres

#endif // TAMRES_UTIL_THREAD_POOL_HH
