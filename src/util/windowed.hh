/**
 * @file
 * Small sliding-window statistics for overload control.
 *
 * Three fixed-footprint accumulators used by the circuit breaker and
 * the brownout controller:
 *
 *  - WindowedOutcomes: good/bad event counts over a trailing time
 *    window, implemented as a ring of time buckets so old evidence
 *    ages out without per-event allocation or timestamp storage.
 *  - Ewma: exponentially-weighted moving average (latency smoothing).
 *  - QuantileWindow: ring of the last N samples with on-demand
 *    quantile extraction (hedge-delay tracking).
 *
 * None of these lock: each is embedded in an owner that already
 * serializes access (the breaker's mutex, the engine's stats mutex).
 * Time is passed in by the caller so the owner's injectable Clock is
 * the single source of truth.
 */

#ifndef TAMRES_UTIL_WINDOWED_HH
#define TAMRES_UTIL_WINDOWED_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace tamres {

/**
 * Good/bad counts over a trailing window of `buckets * bucketWidth`
 * seconds. Each ring slot covers one bucket-width of time and is
 * lazily reset when the clock reaches it again, so recording and
 * querying are O(buckets) worst case with no allocation after
 * construction.
 */
class WindowedOutcomes
{
  public:
    WindowedOutcomes(double window_s, int buckets = 8)
        : bucket_w_(window_s / std::max(1, buckets)),
          ring_(static_cast<size_t>(std::max(1, buckets)))
    {
        tamres_assert(window_s > 0.0, "window must be positive");
    }

    void
    record(double now, bool bad)
    {
        Bucket &b = slotFor(now);
        if (bad)
            b.bad++;
        else
            b.good++;
    }

    /** Events recorded within the trailing window ending at @p now. */
    int64_t
    total(double now) const
    {
        int64_t good = 0, bad = 0;
        sum(now, good, bad);
        return good + bad;
    }

    /** Fraction of in-window events that were bad; 0 when empty. */
    double
    badFraction(double now) const
    {
        int64_t good = 0, bad = 0;
        sum(now, good, bad);
        int64_t n = good + bad;
        return n == 0 ? 0.0 : static_cast<double>(bad) / n;
    }

    /** Drop all evidence (used when a controller changes regime). */
    void
    reset()
    {
        for (Bucket &b : ring_)
            b = Bucket{};
    }

  private:
    struct Bucket
    {
        int64_t index = -1; // absolute bucket index, -1 == never used
        int64_t good = 0;
        int64_t bad = 0;
    };

    int64_t
    indexFor(double now) const
    {
        return static_cast<int64_t>(std::floor(now / bucket_w_));
    }

    Bucket &
    slotFor(double now)
    {
        int64_t idx = indexFor(now);
        Bucket &b = ring_[static_cast<size_t>(idx % static_cast<int64_t>(
                              ring_.size()))];
        if (b.index != idx) {
            b.index = idx;
            b.good = 0;
            b.bad = 0;
        }
        return b;
    }

    void
    sum(double now, int64_t &good, int64_t &bad) const
    {
        int64_t newest = indexFor(now);
        int64_t oldest = newest - static_cast<int64_t>(ring_.size()) + 1;
        for (const Bucket &b : ring_) {
            if (b.index >= oldest && b.index <= newest) {
                good += b.good;
                bad += b.bad;
            }
        }
    }

    double bucket_w_;
    std::vector<Bucket> ring_;
};

/** Exponentially-weighted moving average; first sample seeds it. */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    void
    record(double sample)
    {
        value_ = seeded_ ? (1.0 - alpha_) * value_ + alpha_ * sample
                         : sample;
        seeded_ = true;
    }

    double value() const { return seeded_ ? value_ : 0.0; }
    bool seeded() const { return seeded_; }

    void
    reset()
    {
        seeded_ = false;
        value_ = 0.0;
    }

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/**
 * Ring of the last N samples with on-demand quantile extraction.
 * quantile() copies into a scratch buffer and nth_elements it —
 * O(N) per query, fine for the per-fetch cadence it serves.
 */
class QuantileWindow
{
  public:
    explicit QuantileWindow(int capacity)
        : ring_(static_cast<size_t>(std::max(1, capacity)))
    {}

    void
    record(double sample)
    {
        ring_[next_ % ring_.size()] = sample;
        next_++;
    }

    int64_t count() const
    {
        return std::min<int64_t>(next_,
                                 static_cast<int64_t>(ring_.size()));
    }

    /** The q-quantile (0..1) of retained samples; 0 when empty. */
    double
    quantile(double q) const
    {
        size_t n = static_cast<size_t>(count());
        if (n == 0)
            return 0.0;
        scratch_.assign(ring_.begin(),
                        ring_.begin() + static_cast<ptrdiff_t>(n));
        size_t k = static_cast<size_t>(
            std::min<double>(n - 1, std::max(0.0, q * (n - 1))));
        std::nth_element(scratch_.begin(),
                         scratch_.begin() + static_cast<ptrdiff_t>(k),
                         scratch_.end());
        return scratch_[k];
    }

    void
    reset()
    {
        next_ = 0;
    }

  private:
    std::vector<double> ring_;
    mutable std::vector<double> scratch_;
    int64_t next_ = 0;
};

} // namespace tamres

#endif // TAMRES_UTIL_WINDOWED_HH
