/**
 * @file
 * Plain-text table and CSV emission for the benchmark harnesses.
 *
 * Every experiment binary prints its paper table/figure series through
 * TablePrinter so the output format is uniform and machine-greppable.
 */

#ifndef TAMRES_UTIL_TABLE_HH
#define TAMRES_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace tamres {

/** Accumulates rows of string cells and renders an aligned text table. */
class TablePrinter
{
  public:
    /** Construct with a title printed above the table. */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; cell count should match the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render the aligned table to a string. */
    std::string render() const;

    /** Render as CSV (header + rows). */
    std::string renderCsv() const;

    /** Print the aligned table to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Minimal CSV file writer. */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row of cells. */
    void writeRow(const std::vector<std::string> &cells);

  private:
    void *file_; // FILE*, kept opaque to avoid cstdio in the header
};

} // namespace tamres

#endif // TAMRES_UTIL_TABLE_HH
