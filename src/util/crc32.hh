/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * spans. Used as the per-scan payload checksum of the progressive
 * codec: cheap relative to entropy decode, and strong enough to turn
 * storage-tier bit flips into a detectable (and therefore retryable)
 * Corrupt error instead of silently wrong pixels.
 */

#ifndef TAMRES_UTIL_CRC32_HH
#define TAMRES_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace tamres {

/**
 * CRC-32 of @p size bytes at @p data. Pass a previous result as
 * @p seed to checksum a logical stream in pieces.
 */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

} // namespace tamres

#endif // TAMRES_UTIL_CRC32_HH
