/**
 * @file
 * Worker-liveness supervision for the serving pipeline.
 *
 * Cooperative cancellation (util/cancel.hh) only helps when the code
 * holding a request still reaches its next token check. The watchdog
 * covers the residue: a per-worker heartbeat registry plus a
 * supervisor that flags any *busy* worker silent for longer than the
 * liveness budget — a wedged storage read, a livelocked retry loop, a
 * stuck stage — and hands a diagnostic report to a callback that can
 * fail-fast the stuck request (the staged engine cancels its token
 * with CancelReason::Watchdog and dumps per-request diagnostics).
 *
 * Time has two roles here, deliberately split:
 *
 *   - *Budget* time — "how long has this worker been silent" — comes
 *     from an injectable Clock, so tests drive expiry with a
 *     ManualClock and assert flag edges deterministically via poll().
 *   - *Supervision cadence* — how often the background thread wakes
 *     to evaluate budgets — is wall-clock by necessity (a wedged
 *     worker cannot advance any clock). Like hedge timing, this is a
 *     documented exception to the injectable-clock rule; tests that
 *     need determinism disable the thread (supervise = false) and
 *     call poll() by hand.
 *
 * A worker is flagged at most once per silent episode: the flag arms
 * again only after the worker beats or goes idle. Idle workers are
 * never flagged — an empty queue is not a liveness failure.
 */

#ifndef TAMRES_UTIL_WATCHDOG_HH
#define TAMRES_UTIL_WATCHDOG_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.hh"

namespace tamres {

/** Diagnostics for one flagged worker, passed to the flag callback. */
struct WatchdogReport
{
    int worker = 0;            //!< registerWorker() index
    const char *phase = "";    //!< last reported pipeline phase
    uint64_t request_id = 0;   //!< request the worker was holding
    double silent_s = 0;       //!< budget-clock seconds since the beat
};

/** Per-worker heartbeat registry + liveness supervisor. */
class Watchdog
{
  public:
    struct Config
    {
        /** Max budget-clock silence for a busy worker before a flag. */
        double liveness_budget_s = 1.0;
        /** Wall-clock cadence of the supervisor thread. */
        double poll_interval_s = 0.01;
        /** Budget time source; nullptr = the process steady clock. */
        const Clock *clock = nullptr;
        /** Spawn the supervisor thread (false = tests poll() by hand). */
        bool supervise = true;
    };

    using FlagFn = std::function<void(const WatchdogReport &)>;

    /**
     * @p on_flag runs on the supervisor thread (or the poll() caller)
     * with no watchdog lock held, so it may call back into beat()/
     * idle() or take its own locks freely. It must not block.
     */
    Watchdog(Config config, FlagFn on_flag);
    ~Watchdog();

    /** Add a worker slot; returns its index. Not before first beat. */
    int registerWorker();

    /**
     * Heartbeat: worker @p worker is alive, in @p phase (a static
     * string), holding request @p request_id. Re-arms the flag.
     */
    void beat(int worker, const char *phase, uint64_t request_id);

    /** The worker finished its work item; it cannot be flagged. */
    void idle(int worker);

    /**
     * Evaluate every busy worker against the liveness budget NOW (on
     * the budget clock) and invoke the flag callback for each newly
     * expired one. Returns the number of flags raised by this call.
     * The supervisor thread calls this on its cadence; tests with
     * supervise = false call it directly after advancing a
     * ManualClock.
     */
    int poll();

    /** Total flags raised since construction. */
    uint64_t flags() const;

    /** Join the supervisor thread (idempotent; dtor calls it). */
    void stop();

  private:
    void loop();

    struct Worker
    {
        bool busy = false;
        bool flagged = false;     //!< flagged this silent episode
        const char *phase = "";
        uint64_t request_id = 0;
        double last_beat_s = 0;   //!< budget-clock time of last beat
    };

    Config cfg_;
    const Clock *clock_;
    FlagFn on_flag_;

    mutable std::mutex mu_; //!< guards workers_, flags_, stopping_
    std::condition_variable cv_;
    bool stopping_ = false;
    std::vector<Worker> workers_;
    uint64_t flags_ = 0;

    std::thread thread_;
};

} // namespace tamres

#endif // TAMRES_UTIL_WATCHDOG_HH
