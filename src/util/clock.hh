/**
 * @file
 * Injectable time source for the overload control plane.
 *
 * The circuit breaker's cooldown, the brownout controller's dwell
 * timers and the staged engine's retry backoff all reason about
 * elapsed time. Binding them to std::chrono directly would make every
 * state-machine test a sleep-and-hope affair; instead they take a
 * Clock, and tests inject a ManualClock whose time only moves when
 * the test says so — Closed -> Open -> HalfOpen transitions and
 * quality-tier shifts then replay deterministically at any thread
 * count, with zero wall-clock sleeping.
 *
 * Contract: now() is monotone non-decreasing within one clock, in
 * seconds, with an arbitrary epoch (callers only ever difference
 * values from the SAME clock). sleepFor(s) returns after at least s
 * seconds of *that clock's* time have passed: the steady clock really
 * sleeps; the manual clock just advances itself, so a retry backoff
 * under test is charged against deadlines without ever blocking.
 *
 * Hedged reads are the deliberate exception: a hedge fires when a
 * fetch exceeds a real wall-clock delay (it races real threads), so
 * the hedge path always measures real time and is tested with real
 * (small) injected latencies rather than a manual clock.
 */

#ifndef TAMRES_UTIL_CLOCK_HH
#define TAMRES_UTIL_CLOCK_HH

#include <mutex>

namespace tamres {

/** Monotonic seconds + sleep, injectable for deterministic tests. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic seconds since an arbitrary per-clock epoch. */
    virtual double now() const = 0;

    /** Block until at least @p seconds of this clock have elapsed. */
    virtual void sleepFor(double seconds) = 0;

    /** The process-wide real (steady_clock-backed) clock. */
    static Clock &steady();
};

/**
 * A clock tests drive by hand. now() returns the value last set;
 * sleepFor(s) atomically advances it by s (so code that "sleeps" on a
 * manual clock consumes virtual time instantly). Thread-safe: decode
 * workers may advance() and read concurrently with the test thread.
 */
class ManualClock : public Clock
{
  public:
    explicit ManualClock(double start = 0.0) : now_(start) {}

    double
    now() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return now_;
    }

    void
    sleepFor(double seconds) override
    {
        if (seconds > 0.0)
            advance(seconds);
    }

    /** Move time forward by @p seconds (never backward). */
    void
    advance(double seconds)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (seconds > 0.0)
            now_ += seconds;
    }

  private:
    mutable std::mutex mu_;
    double now_;
};

} // namespace tamres

#endif // TAMRES_UTIL_CLOCK_HH
