/**
 * @file
 * Portable SIMD layer: runtime CPU detection and dispatch level.
 *
 * The kernels in src/nn, src/codec, src/image and src/tensor provide
 * explicit vector implementations (AVX2+FMA on x86-64, NEON on
 * aarch64) next to their scalar fallbacks, and choose between them at
 * *runtime* via simdLevel() — never via -march at compile time alone.
 * That keeps one binary portable across the fleet: the AVX2 paths are
 * compiled with per-function target attributes (TAMRES_TARGET_AVX2)
 * and only executed when cpuid says the host supports them.
 *
 * Dispatch contract
 * -----------------
 *  - simdDetected() is the strongest level the host supports, probed
 *    once (cpuid / architecture).
 *  - simdLevel() is the *active* level every dispatch site must read.
 *    It starts at min(detected, TAMRES_SIMD) — the environment
 *    variable accepts "off"/"scalar"/"0" (force the scalar fallback;
 *    the CI forced-scalar leg sets this), "avx2", "neon", or
 *    "on"/"native" (the default: whatever was detected).
 *  - setSimdLevel() lowers/restores the level at runtime (clamped to
 *    the detected maximum) so tests and benches can compare paths in
 *    one process; SimdLevelGuard is the RAII form. Do not flip the
 *    level concurrently with kernel execution.
 *
 * Numerics: SIMD paths are bit-identical to their scalar fallbacks
 * whenever they use only the same adds/subs/shuffles (e.g. the
 * winograd tile transforms, elementwise add/relu). Paths that fuse
 * multiply-adds (GEMM microkernels, color conversion) may round
 * differently from the scalar fallback; every path individually stays
 * deterministic and bit-identical across thread counts.
 */

#ifndef TAMRES_UTIL_SIMD_HH
#define TAMRES_UTIL_SIMD_HH

#if defined(__x86_64__) || defined(__i386__)
#define TAMRES_SIMD_X86 1
#include <immintrin.h>
#else
#define TAMRES_SIMD_X86 0
#endif

// aarch64 only: guarantees NEON with the fused-multiply intrinsics
// the kernels use (32-bit ARM NEON variants are not worth the matrix).
#if defined(__aarch64__)
#define TAMRES_SIMD_NEON 1
#include <arm_neon.h>
#else
#define TAMRES_SIMD_NEON 0
#endif

#if TAMRES_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
/** Marks a function compiled for AVX2+FMA regardless of -march. */
#define TAMRES_TARGET_AVX2 __attribute__((target("avx2,fma")))
/**
 * Marks a function compiled for AVX2+FMA plus the 256-bit EVEX VNNI
 * dot-product instructions (vpdpbusd). Only executed when
 * simdVnniActive() says the host has AVX512-VNNI+VL.
 */
#define TAMRES_TARGET_AVX2VNNI \
    __attribute__((target("avx2,fma,avx512vnni,avx512vl")))
#else
#define TAMRES_TARGET_AVX2VNNI
#endif

namespace tamres {

/** Instruction-set level a kernel dispatch can run at. */
enum class SimdLevel
{
    Scalar = 0, //!< portable fallback, always available
    Avx2 = 1,   //!< x86-64 AVX2 + FMA (256-bit float lanes)
    Neon = 2,   //!< aarch64 NEON (128-bit float lanes)
};

/** "scalar" / "avx2" / "neon". */
const char *simdLevelName(SimdLevel level);

/** Strongest level the host CPU supports (probed once). */
SimdLevel simdDetected();

/**
 * The active dispatch level: min(detected, TAMRES_SIMD env cap) until
 * overridden by setSimdLevel(). Cheap (one relaxed atomic load) — hot
 * paths may read it per call.
 */
SimdLevel simdLevel();

/**
 * Override the active level (clamped to the detected maximum, so
 * requesting e.g. Avx2 on a non-AVX2 host yields Scalar). Returns the
 * level actually applied.
 */
SimdLevel setSimdLevel(SimdLevel level);

/**
 * Whether the host supports the 256-bit VNNI dot product (AVX512-VNNI
 * with AVX512-VL), probed once. VNNI is a *sub-feature* of the Avx2
 * dispatch level, not a level of its own: the int8 microkernels pick
 * the vpdpbusd variant inside the Avx2 branch when this (and the
 * runtime switch below) allows it. Always false off x86.
 */
bool simdVnniDetected();

/**
 * The active VNNI switch: starts at simdVnniDetected() capped by the
 * TAMRES_VNNI environment variable ("off"/"0" disables; anything else
 * trusts detection). Cheap relaxed atomic load.
 */
bool simdVnni();

/**
 * Enable/disable the VNNI sub-feature at runtime (clamped to the
 * detection — requesting it on a host without VNNI stays false).
 * Returns the value actually applied. Lets tests compare the
 * vpmaddwd and vpdpbusd int8 kernels bitwise in one process.
 */
bool setSimdVnni(bool on);

/**
 * True when the int8 dispatch may run the VNNI microkernel: active
 * level is Avx2 AND the VNNI switch is on.
 */
inline bool simdVnniActive()
{
    return simdLevel() == SimdLevel::Avx2 && simdVnni();
}

/** RAII override for tests/benches comparing dispatch paths. */
class SimdLevelGuard
{
  public:
    explicit SimdLevelGuard(SimdLevel level)
        : prev_(simdLevel())
    {
        setSimdLevel(level);
    }
    ~SimdLevelGuard() { setSimdLevel(prev_); }
    SimdLevelGuard(const SimdLevelGuard &) = delete;
    SimdLevelGuard &operator=(const SimdLevelGuard &) = delete;

  private:
    SimdLevel prev_;
};

/** RAII override of the VNNI sub-feature switch. */
class SimdVnniGuard
{
  public:
    explicit SimdVnniGuard(bool on)
        : prev_(simdVnni())
    {
        setSimdVnni(on);
    }
    ~SimdVnniGuard() { setSimdVnni(prev_); }
    SimdVnniGuard(const SimdVnniGuard &) = delete;
    SimdVnniGuard &operator=(const SimdVnniGuard &) = delete;

  private:
    bool prev_;
};

} // namespace tamres

#endif // TAMRES_UTIL_SIMD_HH
