#include "util/watchdog.hh"

#include <chrono>

#include "util/logging.hh"

namespace tamres {

Watchdog::Watchdog(Config config, FlagFn on_flag)
    : cfg_(config),
      clock_(config.clock != nullptr ? config.clock : &Clock::steady()),
      on_flag_(std::move(on_flag))
{
    tamres_assert(cfg_.liveness_budget_s > 0,
                  "watchdog liveness budget must be positive");
    if (cfg_.supervise)
        thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog()
{
    stop();
}

int
Watchdog::registerWorker()
{
    std::lock_guard<std::mutex> lock(mu_);
    workers_.push_back(Worker{});
    return static_cast<int>(workers_.size()) - 1;
}

void
Watchdog::beat(int worker, const char *phase, uint64_t request_id)
{
    const double now = clock_->now();
    std::lock_guard<std::mutex> lock(mu_);
    tamres_assert(worker >= 0 &&
                  worker < static_cast<int>(workers_.size()),
                  "beat from unregistered worker %d", worker);
    Worker &w = workers_[static_cast<size_t>(worker)];
    w.busy = true;
    w.flagged = false;
    w.phase = phase;
    w.request_id = request_id;
    w.last_beat_s = now;
}

void
Watchdog::idle(int worker)
{
    std::lock_guard<std::mutex> lock(mu_);
    tamres_assert(worker >= 0 &&
                  worker < static_cast<int>(workers_.size()),
                  "idle from unregistered worker %d", worker);
    Worker &w = workers_[static_cast<size_t>(worker)];
    w.busy = false;
    w.flagged = false;
    w.phase = "";
    w.request_id = 0;
}

int
Watchdog::poll()
{
    const double now = clock_->now();
    std::vector<WatchdogReport> reports;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < workers_.size(); ++i) {
            Worker &w = workers_[i];
            if (!w.busy || w.flagged)
                continue;
            const double silent = now - w.last_beat_s;
            if (silent < cfg_.liveness_budget_s)
                continue;
            w.flagged = true; // once per silent episode
            ++flags_;
            WatchdogReport r;
            r.worker = static_cast<int>(i);
            r.phase = w.phase;
            r.request_id = w.request_id;
            r.silent_s = silent;
            reports.push_back(r);
        }
    }
    // Callbacks run lock-free so they may re-enter beat()/idle() or
    // take engine locks without ordering against mu_.
    for (const WatchdogReport &r : reports)
        if (on_flag_)
            on_flag_(r);
    return static_cast<int>(reports.size());
}

uint64_t
Watchdog::flags() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return flags_;
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
        // Wall-clock cadence: a wedged worker advances no clock, so
        // the supervisor must wake on real time (see file docs).
        cv_.wait_for(lock, std::chrono::duration<double>(
                               cfg_.poll_interval_s));
        if (stopping_)
            break;
        lock.unlock();
        poll();
        lock.lock();
    }
}

} // namespace tamres
