#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tamres {

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::Avx2: return "avx2";
      case SimdLevel::Neon: return "neon";
    }
    return "?";
}

namespace {

SimdLevel
probe()
{
#if TAMRES_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return SimdLevel::Avx2;
#elif TAMRES_SIMD_NEON
    // NEON is architecturally guaranteed on aarch64.
    return SimdLevel::Neon;
#endif
    return SimdLevel::Scalar;
}

/** Initial level: the detection capped by the TAMRES_SIMD variable. */
SimdLevel
initialLevel()
{
    const SimdLevel detected = simdDetected();
    const char *v = std::getenv("TAMRES_SIMD");
    if (!v || !*v)
        return detected;
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "scalar") == 0 ||
        std::strcmp(v, "0") == 0)
        return SimdLevel::Scalar;
    if (std::strcmp(v, "avx2") == 0)
        return detected == SimdLevel::Avx2 ? SimdLevel::Avx2
                                           : SimdLevel::Scalar;
    if (std::strcmp(v, "neon") == 0)
        return detected == SimdLevel::Neon ? SimdLevel::Neon
                                           : SimdLevel::Scalar;
    // "on" / "native" / anything else: trust the detection.
    return detected;
}

std::atomic<SimdLevel> &
activeLevel()
{
    static std::atomic<SimdLevel> level{initialLevel()};
    return level;
}

bool
probeVnni()
{
#if TAMRES_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx512vnni") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

/** Initial VNNI switch: detection capped by TAMRES_VNNI. */
bool
initialVnni()
{
    if (!simdVnniDetected())
        return false;
    const char *v = std::getenv("TAMRES_VNNI");
    if (v && (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0))
        return false;
    return true;
}

std::atomic<bool> &
activeVnni()
{
    static std::atomic<bool> on{initialVnni()};
    return on;
}

} // namespace

SimdLevel
simdDetected()
{
    static const SimdLevel detected = probe();
    return detected;
}

SimdLevel
simdLevel()
{
    return activeLevel().load(std::memory_order_relaxed);
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    if (level != SimdLevel::Scalar && level != simdDetected())
        level = SimdLevel::Scalar;
    activeLevel().store(level, std::memory_order_relaxed);
    return level;
}

bool
simdVnniDetected()
{
    static const bool detected = probeVnni();
    return detected;
}

bool
simdVnni()
{
    return activeVnni().load(std::memory_order_relaxed);
}

bool
setSimdVnni(bool on)
{
    if (on && !simdVnniDetected())
        on = false;
    activeVnni().store(on, std::memory_order_relaxed);
    return on;
}

} // namespace tamres
