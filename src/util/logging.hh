/**
 * @file
 * Status and error reporting in the style of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a tamres bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — functionality may be degraded but execution continues.
 * inform() — normal operating status for the user.
 */

#ifndef TAMRES_UTIL_LOGGING_HH
#define TAMRES_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tamres {

/** Print a formatted message prefixed "info: " to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted message prefixed "warn: " to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a violated internal invariant (a library bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Check a runtime invariant; panics with location info when it fails.
 * Unlike assert(), stays active in release builds — the invariants it
 * protects (shape agreement, codec framing) are cheap relative to the
 * kernels they guard.
 */
#define tamres_assert(cond, fmt, ...)                                     \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::tamres::panic("assertion '%s' failed at %s:%d: " fmt,       \
                            #cond, __FILE__, __LINE__, ##__VA_ARGS__);    \
        }                                                                 \
    } while (0)

} // namespace tamres

#endif // TAMRES_UTIL_LOGGING_HH
