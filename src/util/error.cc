#include "util/error.hh"

#include <cstdarg>
#include <cstdio>

namespace tamres {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::NotFound: return "not-found";
      case ErrorKind::Transient: return "transient";
      case ErrorKind::Truncated: return "truncated";
      case ErrorKind::Corrupt: return "corrupt";
      case ErrorKind::Decode: return "decode";
      case ErrorKind::Cancelled: return "cancelled";
    }
    return "?";
}

void
throwError(ErrorKind kind, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw Error(kind, buf);
}

} // namespace tamres
