/**
 * @file
 * Cooperative cancellation/deadline token for the request lifecycle.
 *
 * A CancelToken travels with a request from submit() to its terminal
 * state. It can fire for four reasons — the client gave up (Client),
 * the request's absolute deadline passed on the injectable Clock
 * (Deadline), the serving watchdog flagged the worker holding it
 * (Watchdog), or a timed fetch abandoned the I/O carrying it
 * (Abandoned) — and every long-running stage of the pipeline polls it
 * at its own clean boundary:
 *
 *   - ObjectStore::fetchScanRange between per-scan delivery chunks;
 *   - ProgressiveDecoder between scans (never inside one — a scan is
 *     the atomic decode unit, so cancellation can only land on a
 *     prefix that is bit-identical to a clean decode of that depth);
 *   - StagedServingEngine between stages and before batch formation.
 *
 * The reason decides the throw and therefore the terminal: Client and
 * Deadline raise ErrorKind::Cancelled, which the engine maps to the
 * Cancelled / Expired terminals and never retries. Watchdog and
 * Abandoned raise a fail-fast Transient — "this operation was
 * abandoned by supervision" — which drops straight into the existing
 * retry/degrade ladder (no backoff sleep) and, on the storage path,
 * is counted by the circuit breaker like any other tier failure.
 *
 * Firing is one-way and first-reason-wins. A token armed with a
 * deadline fires lazily: reason() consults the clock, so a ManualClock
 * drives deadline expiry deterministically in tests.
 */

#ifndef TAMRES_UTIL_CANCEL_HH
#define TAMRES_UTIL_CANCEL_HH

#include <atomic>
#include <string>

#include "util/clock.hh"
#include "util/error.hh"

namespace tamres {

/** Why a CancelToken fired (None = it has not). */
enum class CancelReason : int
{
    None = 0,  //!< not fired
    Client,    //!< caller invoked cancel(); maps to terminal Cancelled
    Deadline,  //!< absolute deadline passed; maps to terminal Expired
    Watchdog,  //!< supervisor flagged the worker; degrade fail-fast
    Abandoned, //!< timed fetch gave up on this I/O; retry ladder
};

/** Short stable name for a CancelReason ("client", "deadline", ...). */
inline const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None: return "none";
      case CancelReason::Client: return "client";
      case CancelReason::Deadline: return "deadline";
      case CancelReason::Watchdog: return "watchdog";
      case CancelReason::Abandoned: return "abandoned";
    }
    return "?";
}

/**
 * One-way cancellation flag + optional absolute deadline.
 *
 * Thread-safety: cancel()/cancelled()/reason()/fired()/throwIfFired()
 * are safe from any thread. armDeadline()/reset() are setup-phase
 * calls: they must be published to readers by some external
 * happens-before edge (the engine arms the token in submit() under
 * its queue mutex before any worker can see the request).
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /**
     * Arm the deadline: the token fires with CancelReason::Deadline
     * once @p clock .now() >= @p deadline_abs_s. The clock must
     * outlive the token's last reader.
     */
    void
    armDeadline(const Clock &clock, double deadline_abs_s)
    {
        clock_ = &clock;
        deadline_abs_s_ = deadline_abs_s;
    }

    /** Disarm and clear, so a request object can be resubmitted. */
    void
    reset()
    {
        reason_.store(0, std::memory_order_relaxed);
        clock_ = nullptr;
        deadline_abs_s_ = 0.0;
    }

    /** Fire the token. First reason wins; later calls are no-ops. */
    void
    cancel(CancelReason reason = CancelReason::Client)
    {
        int expected = 0;
        reason_.compare_exchange_strong(expected,
                                        static_cast<int>(reason),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
    }

    /** True iff cancel() was called (deadline expiry not included). */
    bool
    cancelled() const
    {
        return reason_.load(std::memory_order_acquire) != 0;
    }

    /**
     * Why the token has fired, or None. An explicitly set reason wins
     * over deadline expiry; an armed, past deadline reports Deadline.
     */
    CancelReason
    reason() const
    {
        const int r = reason_.load(std::memory_order_acquire);
        if (r != 0)
            return static_cast<CancelReason>(r);
        if (clock_ != nullptr && clock_->now() >= deadline_abs_s_)
            return CancelReason::Deadline;
        return CancelReason::None;
    }

    /** True once the token has fired for any reason. */
    bool fired() const { return reason() != CancelReason::None; }

    /** Absolute deadline in the armed clock's units (0 = unarmed). */
    double deadlineAbs() const { return deadline_abs_s_; }

    /**
     * Throw the reason-mapped Error if fired, else return.
     *
     *   Client, Deadline   -> Error{Cancelled}: the request is over;
     *                         never retried, mapped to a terminal.
     *   Watchdog, Abandoned-> Error{Transient, fail_fast}: this
     *                         *operation* was abandoned by
     *                         supervision; the retry ladder skips its
     *                         backoff and degrades, and the breaker
     *                         counts it as a tier failure.
     */
    void
    throwIfFired() const
    {
        const CancelReason r = reason();
        switch (r) {
          case CancelReason::None:
            return;
          case CancelReason::Client:
          case CancelReason::Deadline:
            throw Error(ErrorKind::Cancelled,
                        std::string("request cancelled (") +
                            cancelReasonName(r) + ")");
          case CancelReason::Watchdog:
          case CancelReason::Abandoned:
            throw Error(ErrorKind::Transient,
                        std::string("operation abandoned by "
                                    "supervision (") +
                            cancelReasonName(r) + ")",
                        /*fail_fast=*/true);
        }
    }

  private:
    std::atomic<int> reason_{0};
    const Clock *clock_ = nullptr;
    double deadline_abs_s_ = 0.0;
};

} // namespace tamres

#endif // TAMRES_UTIL_CANCEL_HH
