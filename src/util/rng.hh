/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic components of tamres (synthetic data, accuracy draws,
 * tuner search) take an explicit Rng so experiments are reproducible
 * from a single seed.
 */

#ifndef TAMRES_UTIL_RNG_HH
#define TAMRES_UTIL_RNG_HH

#include <cstdint>
#include <cmath>

namespace tamres {

/** A small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to fill state; avoids the all-zero state.
        uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return (next() >> 11) * 0x1.0p-53; }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        // Lemire-style rejection-free-enough bounded draw.
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(uniformInt(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Standard normal via Box–Muller. */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Normal with mean/stddev. */
    double normal(double mean, double sd) { return mean + sd * normal(); }

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Logistic-distributed value (mean 0, scale s). */
    double
    logistic(double s = 1.0)
    {
        double u = uniform();
        if (u < 1e-12) u = 1e-12;
        if (u > 1.0 - 1e-12) u = 1.0 - 1e-12;
        return s * std::log(u / (1.0 - u));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace tamres

#endif // TAMRES_UTIL_RNG_HH
