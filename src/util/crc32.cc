#include "util/crc32.hh"

namespace tamres {

namespace {

struct Crc32Table
{
    uint32_t entries[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

const Crc32Table crc_table;

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size, uint32_t seed)
{
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = crc_table.entries[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace tamres
