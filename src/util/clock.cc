#include "util/clock.hh"

#include <chrono>
#include <thread>

namespace tamres {

namespace {

class SteadyClock final : public Clock
{
  public:
    double
    now() const override
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    void
    sleepFor(double seconds) override
    {
        if (seconds > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
    }
};

} // namespace

Clock &
Clock::steady()
{
    static SteadyClock clock;
    return clock;
}

} // namespace tamres
