/**
 * @file
 * Environment-variable helpers used to parameterize benchmark budgets
 * (e.g. TAMRES_TUNING_TRIALS) without recompiling.
 */

#ifndef TAMRES_UTIL_ENV_HH
#define TAMRES_UTIL_ENV_HH

#include <cstdlib>
#include <string>

namespace tamres {

/** Read an integer environment variable, returning @p def when unset. */
inline int64_t
envInt(const char *name, int64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtoll(v, nullptr, 10);
}

/** Read a double environment variable, returning @p def when unset. */
inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtod(v, nullptr);
}

/** Read a string environment variable, returning @p def when unset. */
inline std::string
envString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : def;
}

} // namespace tamres

#endif // TAMRES_UTIL_ENV_HH
