#include "util/thread_pool.hh"

#include <algorithm>

namespace tamres {

ThreadPool::ThreadPool(int threads)
    : nthreads_(std::max(1, threads))
{
    // Worker 0 is the calling thread; spawn nthreads_ - 1 helpers.
    for (int i = 1; i < nthreads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (n <= 0)
        return;
    const int parts = static_cast<int>(
        std::min<int64_t>(nthreads_, n));
    auto chunk = [&](int idx) -> std::pair<int64_t, int64_t> {
        const int64_t base = n / parts;
        const int64_t rem = n % parts;
        const int64_t begin = idx * base + std::min<int64_t>(idx, rem);
        const int64_t len = base + (idx < rem ? 1 : 0);
        return {begin, begin + len};
    };

    if (parts == 1) {
        fn(0, n);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobSize_ = n;
        // Every helper thread acknowledges the job, even ones that get
        // no chunk (idx >= parts), so the completion count is exact.
        pending_ = nthreads_ - 1;
        ++generation_;
    }
    wakeCv_.notify_all();

    // The calling thread takes the first chunk.
    auto [b0, e0] = chunk(0);
    fn(b0, e0);

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
}

void
ThreadPool::workerLoop(int idx)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(int64_t, int64_t)> *job = nullptr;
        int64_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock, [&] {
                return stop_ || (job_ && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
            n = jobSize_;
        }
        const int parts = static_cast<int>(
            std::min<int64_t>(nthreads_, n));
        if (idx < parts) {
            const int64_t base = n / parts;
            const int64_t rem = n % parts;
            const int64_t begin = idx * base + std::min<int64_t>(idx, rem);
            const int64_t len = base + (idx < rem ? 1 : 0);
            (*job)(begin, begin + len);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        static_cast<int>(std::thread::hardware_concurrency()));
    return pool;
}

} // namespace tamres
