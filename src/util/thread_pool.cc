#include "util/thread_pool.hh"

#include <algorithm>

#include "util/env.hh"

namespace tamres {

namespace {

/** Set while the current thread runs a parallelFor chunk. */
thread_local bool tls_in_chunk = false;

} // namespace

std::pair<int64_t, int64_t>
ThreadPool::chunkBounds(int idx, int parts, int64_t n)
{
    const int64_t base = n / parts;
    const int64_t rem = n % parts;
    const int64_t begin = idx * base + std::min<int64_t>(idx, rem);
    const int64_t len = base + (idx < rem ? 1 : 0);
    return {begin, begin + len};
}

ThreadPool::ThreadPool(int threads)
    : nthreads_(std::max(1, threads))
{
    // Worker 0 is the calling thread; spawn nthreads_ - 1 helpers.
    for (int i = 1; i < nthreads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inParallelRegion()
{
    return tls_in_chunk;
}

void
ThreadPool::runChunk(ChunkFn fn, void *ctx, int64_t begin, int64_t end)
{
    tls_in_chunk = true;
    try {
        fn(ctx, begin, end);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_)
            error_ = std::current_exception();
    }
    tls_in_chunk = false;
}

void
ThreadPool::parallelForRaw(int64_t n, ChunkFn fn, void *ctx,
                           int max_parts)
{
    if (n <= 0)
        return;
    int64_t limit = nthreads_;
    if (max_parts > 0)
        limit = std::min<int64_t>(limit, max_parts);
    const int parts = static_cast<int>(std::min<int64_t>(limit, n));

    // Serial fast path and nested calls (a chunk spawning more
    // parallel work) run inline: nested forks would deadlock the
    // single job slot. The tls check must come before touching
    // forkMutex_ — try_lock on a mutex the thread already owns is UB.
    if (parts == 1 || tls_in_chunk) {
        fn(ctx, 0, n);
        return;
    }
    // Concurrent calls from a second user thread also run inline: a
    // busy pool means another fork is already using every worker.
    // Exceptions propagate naturally on all inline paths.
    std::unique_lock<std::mutex> fork(forkMutex_, std::try_to_lock);
    if (!fork.owns_lock()) {
        fn(ctx, 0, n);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = fn;
        jobCtx_ = ctx;
        jobSize_ = n;
        jobParts_ = parts;
        error_ = nullptr;
        // Every helper thread acknowledges the job, even ones that get
        // no chunk (idx >= parts), so the completion count is exact.
        pending_ = nthreads_ - 1;
        ++generation_;
    }
    wakeCv_.notify_all();

    // The calling thread takes the first chunk.
    const auto [b0, e0] = chunkBounds(0, parts, n);
    runChunk(fn, ctx, b0, e0);

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    jobFn_ = nullptr;
    jobCtx_ = nullptr;
    if (error_) {
        const std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop(int idx)
{
    uint64_t seen = 0;
    for (;;) {
        ChunkFn job = nullptr;
        void *ctx = nullptr;
        int64_t n = 0;
        int parts = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock, [&] {
                return stop_ || (jobFn_ && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = jobFn_;
            ctx = jobCtx_;
            n = jobSize_;
            parts = jobParts_;
        }
        if (idx < parts) {
            const auto [begin, end] = chunkBounds(idx, parts, n);
            runChunk(job, ctx, begin, end);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([] {
        const int hw = std::max(
            1, static_cast<int>(std::thread::hardware_concurrency()));
        // Clamp the env request so a typo cannot ask the OS for an
        // unbounded number of threads.
        const int env = std::clamp(
            static_cast<int>(envInt("TAMRES_THREADS", 0)), 0, 256);
        // At least 8 so TAMRES_THREADS can request real concurrency on
        // small hosts; idle workers sleep on a condition variable.
        return std::max({hw, env, 8});
    }());
    return pool;
}

int
ThreadPool::defaultParallelism()
{
    const int hw = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    const int env = static_cast<int>(envInt("TAMRES_THREADS", hw));
    return std::clamp(env, 1, global().threads());
}

} // namespace tamres
