#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace tamres {

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::render() const
{
    // Compute column widths over header + rows.
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << cells[i]
                << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        out << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

std::string
TablePrinter::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out << ",";
            out << cells[i];
        }
        out << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

CsvWriter::CsvWriter(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
    file_ = f;
}

CsvWriter::~CsvWriter()
{
    std::fclose(static_cast<FILE *>(file_));
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    FILE *f = static_cast<FILE *>(file_);
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            std::fputc(',', f);
        std::fputs(cells[i].c_str(), f);
    }
    std::fputc('\n', f);
}

} // namespace tamres
