/**
 * @file
 * Wall-clock timing helpers used by the autotuner and the benchmark
 * harnesses.
 */

#ifndef TAMRES_UTIL_TIMER_HH
#define TAMRES_UTIL_TIMER_HH

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

namespace tamres {

/** Monotonic stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Run @p fn @p reps times and return the median wall-clock seconds of a
 * single run. One untimed warmup run is performed first.
 */
inline double
medianRunSeconds(const std::function<void()> &fn, int reps = 3)
{
    fn(); // warmup
    std::vector<double> samples;
    samples.reserve(reps);
    for (int i = 0; i < reps; ++i) {
        Timer t;
        fn();
        samples.push_back(t.seconds());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace tamres

#endif // TAMRES_UTIL_TIMER_HH
