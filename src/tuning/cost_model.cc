#include "tuning/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tamres {

MachineModel
MachineModel::host()
{
    return MachineModel{};
}

namespace {

/**
 * Efficiency of an (mr x nr) register micro-kernel: per reduction
 * step it performs mr*nr FMAs against mr+nr loads. Normalized so the
 * best supported tile (8x16) approaches 1.
 */
double
microEfficiency(int mr, int nr)
{
    const double work = static_cast<double>(mr) * nr;
    const double loads = static_cast<double>(mr) + nr;
    const double ratio = work / loads;            // FMAs per load
    const double best = (8.0 * 16.0) / (8.0 + 16.0);
    return 0.35 + 0.65 * std::min(1.0, ratio / best);
}

/** Multiplicative penalty when a working set exceeds a cache level. */
double
cachePenalty(double bytes, double capacity)
{
    if (bytes <= capacity)
        return 1.0;
    // Smooth degradation: each doubling past capacity costs ~25%.
    return 1.0 + 0.25 * std::log2(bytes / capacity);
}

double
predictGemm(int64_t m, int64_t n, int64_t k, const ConvConfig &cfg,
            const MachineModel &mm)
{
    const double macs = static_cast<double>(m) * n * k;
    double eff = microEfficiency(cfg.mr, cfg.nr);

    // GotoBLAS panel residency: the B panel (kc x nr) should fit L1,
    // the A block (mc x kc) should fit L2.
    eff /= cachePenalty(4.0 * cfg.kc * cfg.nr, mm.l1_bytes);
    eff /= cachePenalty(4.0 * cfg.mc * cfg.kc, mm.l2_bytes);

    // Edge waste: partial micro-tiles at the M/N fringes do full
    // register work for partial results.
    const double m_waste =
        static_cast<double>((m + cfg.mr - 1) / cfg.mr * cfg.mr) /
        static_cast<double>(m);
    const double n_waste =
        static_cast<double>((n + cfg.nr - 1) / cfg.nr * cfg.nr) /
        static_cast<double>(n);
    // Oversized nc relative to N wastes no work but loses L3 reuse
    // granularity; undersized nc repacks A more often.
    const double repacks =
        std::max(1.0, static_cast<double>(n) / cfg.nc);
    const double pack_bytes =
        repacks * 4.0 * static_cast<double>(m) * k; // A repacking
    const double pack_s = pack_bytes / mm.mem_bw;

    const double compute_s =
        macs * m_waste * n_waste / (mm.peak_flops * eff);
    return compute_s + pack_s;
}

} // namespace

double
predictConvSeconds(const ConvProblem &p, const ConvConfig &cfg,
                   const MachineModel &mm)
{
    tamres_assert(convConfigValid(p, cfg),
                  "cost model requires a valid config");
    const int64_t oh = p.oh();
    const int64_t ow = p.ow();
    const int64_t icg = p.ic / p.groups;
    const int64_t ocg = p.oc / p.groups;
    const double macs = static_cast<double>(p.macs());

    switch (cfg.algo) {
      case ConvAlgo::Reference:
        // Unblocked scalar nest with bounds checks everywhere.
        return macs / (0.08 * mm.peak_flops);

      case ConvAlgo::Direct: {
        // Register block of oc_tile x ow_tile accumulators; efficiency
        // from FMAs per weight load, with stride-induced gather cost.
        const double work =
            static_cast<double>(cfg.oc_tile) * cfg.ow_tile;
        const double loads =
            static_cast<double>(cfg.oc_tile) + cfg.ow_tile;
        const double best = (8.0 * 28.0) / (8.0 + 28.0);
        double eff = 0.25 + 0.55 * std::min(1.0, (work / loads) / best);
        if (p.stride > 1)
            eff *= 0.8; // strided input rows defeat contiguous loads
        // Fringe waste along ow.
        const double waste =
            static_cast<double>((ow + cfg.ow_tile - 1) / cfg.ow_tile *
                                cfg.ow_tile) /
            static_cast<double>(ow);
        return macs * waste / (mm.peak_flops * eff);
      }

      case ConvAlgo::Depthwise: {
        // One-channel reduction: arithmetic intensity is intrinsically
        // low; runtime is bandwidth-leaning.
        const double waste =
            static_cast<double>((ow + cfg.ow_tile - 1) / cfg.ow_tile *
                                cfg.ow_tile) /
            static_cast<double>(ow);
        const double compute_s =
            macs * waste / (0.35 * mm.peak_flops);
        const double bytes = 4.0 * static_cast<double>(p.n) * p.ic *
                             (p.ih * p.iw + oh * ow);
        return compute_s + bytes / mm.mem_bw;
      }

      case ConvAlgo::Im2col: {
        const int64_t K = icg * p.kh * p.kw;
        const int64_t N = oh * ow;
        double total = 0.0;
        // im2col materialization (skipped for pointwise).
        const bool pointwise = p.kh == 1 && p.kw == 1 &&
                               p.stride == 1 && p.pad == 0;
        if (!pointwise)
            total += 2.0 * 4.0 * static_cast<double>(K) * N /
                     mm.mem_bw; // write + read back
        total += p.n * p.groups *
                 predictGemm(ocg, N, K, cfg, mm);
        return total;
      }

      case ConvAlgo::Winograd: {
        const int64_t tiles = ((oh + 1) / 2) * ((ow + 1) / 2);
        // Transforms: ~32 adds per 4x4 input tile per channel, 24 per
        // output tile; weight transform amortized over tiles.
        const double xform_flops =
            static_cast<double>(p.n) * tiles *
            (32.0 * icg + 24.0 * p.oc);
        const double xform_s = xform_flops / (0.30 * mm.peak_flops);
        // 16 GEMMs of (oc x icg x tile_block) each; multiply count is
        // macs / 2.25.
        double gemm_s = 0.0;
        const int64_t blocks =
            (tiles + cfg.wino_tile_block - 1) / cfg.wino_tile_block;
        const int64_t tb =
            std::min<int64_t>(cfg.wino_tile_block, tiles);
        gemm_s = static_cast<double>(p.n) * blocks * 16.0 *
                 predictGemm(p.oc, tb, icg, cfg, mm);
        // Scratch traffic for V/M buffers.
        const double scratch_bytes =
            static_cast<double>(p.n) * blocks * 16.0 * 4.0 * tb *
            (icg + p.oc);
        return xform_s + gemm_s + scratch_bytes / mm.mem_bw;
      }
    }
    panic("unhandled algo in cost model");
}

std::vector<int>
rankByPredictedCost(const ConvProblem &p,
                    const std::vector<ConvConfig> &configs,
                    const MachineModel &mm)
{
    std::vector<std::pair<double, int>> scored;
    scored.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        const double s =
            convConfigValid(p, configs[i])
                ? predictConvSeconds(p, configs[i], mm)
                : 1e30;
        scored.emplace_back(s, static_cast<int>(i));
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<int> order;
    order.reserve(scored.size());
    for (const auto &[s, i] : scored)
        order.push_back(i);
    return order;
}

} // namespace tamres
