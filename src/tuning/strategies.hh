/**
 * @file
 * Search-space primitives and strategies for the conv autotuner.
 *
 * AutoTVM-class tuners differ mainly in how they draw the next
 * candidate: uniformly (random search), by perturbing the incumbent
 * (simulated annealing), or by recombining elites (genetic). All three
 * are provided over the same ConvConfig space so
 * bench/ablation_search_strategy can compare achieved throughput at a
 * fixed measurement budget. The primitives (random draw, single-knob
 * mutation, uniform crossover) are shared with AutoTuner's candidate
 * enumeration.
 */

#ifndef TAMRES_TUNING_STRATEGIES_HH
#define TAMRES_TUNING_STRATEGIES_HH

#include <functional>
#include <vector>

#include "nn/conv_kernels.hh"
#include "util/rng.hh"

namespace tamres {

/** How the tuner draws candidates. */
enum class SearchStrategy
{
    Random, //!< independent uniform draws (baseline)
    Anneal, //!< single-knob mutations with Metropolis acceptance
    Genetic, //!< population with crossover + mutation
};

/** "random" / "anneal" / "genetic". */
const char *searchStrategyName(SearchStrategy strategy);

/** Tunable-knob value tables shared by all strategies. */
namespace knob {

const std::vector<int> &mcs();
const std::vector<int> &kcs();
const std::vector<int> &ncs();
const std::vector<int> &mrs();
const std::vector<int> &nrs();
const std::vector<int> &ocTiles();
const std::vector<int> &owTiles();
const std::vector<int> &winoTileBlocks();
/**
 * Worker-thread caps: {1, default/2, default} (deduplicated; built
 * per call so it tracks the live TAMRES_THREADS value).
 */
std::vector<int> threadCounts();

} // namespace knob

/**
 * Draw a uniformly random config valid for @p p (algorithm family is
 * chosen among the families eligible for the problem; retries
 * internally until valid).
 */
ConvConfig randomConvConfig(const ConvProblem &p, Rng &rng);

/**
 * Perturb one knob of @p cfg to a neighboring table value; with small
 * probability switches the algorithm family instead. Always returns a
 * config valid for @p p.
 */
ConvConfig mutateConvConfig(const ConvProblem &p, const ConvConfig &cfg,
                            Rng &rng);

/**
 * Uniform crossover: each knob is taken from one parent at random.
 * When the parents use different algorithms the child inherits one
 * parent's algorithm (and stays valid for @p p).
 */
ConvConfig crossoverConvConfig(const ConvProblem &p, const ConvConfig &a,
                               const ConvConfig &b, Rng &rng);

/** Measured fitness callback: wall-clock seconds for one config. */
using MeasureFn = std::function<double(const ConvConfig &)>;

/** Budget for a strategy run. */
struct StrategyBudget
{
    int measurements = 24;      //!< total configs to measure
    double time_budget_s = 1e9; //!< wall-clock cap
    uint64_t seed = 7;
};

/** Outcome of a strategy run. */
struct StrategyResult
{
    ConvConfig best;
    double best_seconds = 1e30;
    int measured = 0;
};

/**
 * Simulated annealing from the best of @p seeds (all seeds are
 * measured first and count against the budget).
 */
StrategyResult annealSearch(const ConvProblem &p,
                            const std::vector<ConvConfig> &seeds,
                            const MeasureFn &measure,
                            const StrategyBudget &budget);

/**
 * Steady-state genetic search: seeds plus random draws form the
 * initial population; children replace the worst member.
 */
StrategyResult geneticSearch(const ConvProblem &p,
                             const std::vector<ConvConfig> &seeds,
                             const MeasureFn &measure,
                             const StrategyBudget &budget);

} // namespace tamres

#endif // TAMRES_TUNING_STRATEGIES_HH
