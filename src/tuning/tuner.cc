#include "tuning/tuner.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "nn/kernel_selector.hh"
#include "tuning/cost_model.hh"
#include "tuning/strategies.hh"
#include "nn/ops.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/rng.hh"
#include "util/timer.hh"

namespace tamres {

MeasureResult
measureConv(const ConvProblem &p, const ConvConfig &cfg, int reps)
{
    tamres_assert(convConfigValid(p, cfg),
                  "cannot measure invalid config %s",
                  cfg.toString().c_str());
    std::vector<float> in(static_cast<size_t>(p.n) * p.ic * p.ih * p.iw);
    std::vector<float> w(static_cast<size_t>(p.oc) * (p.ic / p.groups) *
                         p.kh * p.kw);
    std::vector<float> bias(p.oc);
    std::vector<float> out(static_cast<size_t>(p.n) * p.oc * p.oh() *
                           p.ow());
    Rng rng(0x5eedull);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-0.5, 0.5));

    MeasureResult res;
    res.config = cfg;
    res.seconds = medianRunSeconds(
        [&] {
            convForward(p, in.data(), w.data(), bias.data(), out.data(),
                        cfg);
        },
        reps);
    return res;
}

// ---------------------------------------------------------------------
// ConfigCache
// ---------------------------------------------------------------------

ConfigCache::ConfigCache(std::string path) : path_(std::move(path))
{
    load();
}

namespace {

int
algoToInt(ConvAlgo a)
{
    return static_cast<int>(a);
}

ConvAlgo
algoFromInt(int v)
{
    switch (v) {
      case 1: return ConvAlgo::Direct;
      case 2: return ConvAlgo::Im2col;
      case 3: return ConvAlgo::Winograd;
      case 4: return ConvAlgo::Depthwise;
      default: return ConvAlgo::Reference;
    }
}

} // namespace

namespace {

/**
 * On-disk cache format tag. v2 added the threads column; v3 added the
 * simd column (the dispatch level the config was measured under — a
 * blocking tuned for AVX2 micro-kernels is not evidence for the
 * scalar fallback, so entries from other levels are skipped at load).
 * Unversioned (v1) files would otherwise misparse silently, so
 * anything without the tag is discarded and rebuilt.
 */
const char *const kCacheVersion = "tamres-cache-v3";

} // namespace

void
ConfigCache::load()
{
    FILE *f = std::fopen(path_.c_str(), "r");
    if (!f)
        return; // absent cache file is fine — will be created on store
    char header[32];
    if (std::fscanf(f, "%31s", header) != 1 ||
        std::strcmp(header, kCacheVersion) != 0) {
        warn("ConfigCache: %s has no '%s' header; discarding stale "
             "cache", path_.c_str(), kCacheVersion);
        std::fclose(f);
        // Truncate so future appends land in a well-formed file (an
        // ignored-but-kept file would collect unreadable entries).
        f = std::fopen(path_.c_str(), "w");
        if (f) {
            std::fprintf(f, "%s\n", kCacheVersion);
            std::fclose(f);
        }
        return;
    }
    char key[128];
    char simd[16];
    int algo, oc_tile, ow_tile, mc, kc, nc, mr, nr, wino_tb, threads;
    double gf;
    size_t other_level = 0;
    while (std::fscanf(f, "%127s %15s %d %d %d %d %d %d %d %d %d %d %lf",
                       key, simd, &algo, &oc_tile, &ow_tile, &mc, &kc,
                       &nc, &mr, &nr, &wino_tb, &threads, &gf) == 13) {
        if (std::strcmp(simd, simdLevelName(simdLevel())) != 0) {
            ++other_level;
            continue;
        }
        Entry e;
        e.config.algo = algoFromInt(algo);
        e.config.oc_tile = oc_tile;
        e.config.ow_tile = ow_tile;
        e.config.mc = mc;
        e.config.kc = kc;
        e.config.nc = nc;
        e.config.mr = mr;
        e.config.nr = nr;
        e.config.wino_tile_block = wino_tb;
        e.config.threads = threads;
        e.gflops = gf;
        entries_[key] = e;
    }
    std::fclose(f);
    if (!entries_.empty() || other_level > 0) {
        inform("ConfigCache: loaded %zu tuned configs from %s "
               "(%zu skipped: measured at another simd level)",
               entries_.size(), path_.c_str(), other_level);
    }
}

void
ConfigCache::appendToFile(const std::string &key, const Entry &e) const
{
    if (path_.empty())
        return;
    FILE *f = std::fopen(path_.c_str(), "a");
    if (!f) {
        warn("ConfigCache: cannot append to %s", path_.c_str());
        return;
    }
    std::fseek(f, 0, SEEK_END);
    if (std::ftell(f) == 0)
        std::fprintf(f, "%s\n", kCacheVersion);
    std::fprintf(f, "%s %s %d %d %d %d %d %d %d %d %d %d %.4f\n",
                 key.c_str(), simdLevelName(simdLevel()),
                 algoToInt(e.config.algo), e.config.oc_tile,
                 e.config.ow_tile, e.config.mc, e.config.kc, e.config.nc,
                 e.config.mr, e.config.nr, e.config.wino_tile_block,
                 e.config.threads, e.gflops);
    std::fclose(f);
}

bool
ConfigCache::lookup(const ConvProblem &p, ConvConfig &cfg,
                    double *gflops) const
{
    auto it = entries_.find(p.key());
    if (it == entries_.end())
        return false;
    cfg = it->second.config;
    if (gflops)
        *gflops = it->second.gflops;
    return true;
}

void
ConfigCache::store(const ConvProblem &p, const ConvConfig &cfg,
                   double gflops)
{
    const std::string key = p.key();
    entries_[key] = Entry{cfg, gflops};
    appendToFile(key, Entry{cfg, gflops});
}

std::vector<ConvConfig>
ConfigCache::siblings(const ConvProblem &p) const
{
    std::vector<ConvConfig> out;
    for (const auto &[key, entry] : entries_) {
        ConvProblem q;
        if (std::sscanf(key.c_str(),
                        "%dx%dx%dx%d_oc%d_k%dx%d_s%d_p%d_g%d", &q.n,
                        &q.ic, &q.ih, &q.iw, &q.oc, &q.kh, &q.kw,
                        &q.stride, &q.pad, &q.groups) != 10)
            continue;
        const bool same_layer = q.n == p.n && q.ic == p.ic &&
                                q.oc == p.oc && q.kh == p.kh &&
                                q.kw == p.kw && q.stride == p.stride &&
                                q.pad == p.pad && q.groups == p.groups;
        const bool different_extent = q.ih != p.ih || q.iw != p.iw;
        if (same_layer && different_extent &&
            convConfigValid(p, entry.config))
            out.push_back(entry.config);
    }
    return out;
}

// ---------------------------------------------------------------------
// AutoTuner
// ---------------------------------------------------------------------

std::vector<ConvConfig>
AutoTuner::candidates(const ConvProblem &p, const TuneOptions &opts) const
{
    std::vector<ConvConfig> out;
    // Deterministic seeds first: the generic default and the library
    // config, so the tuner never regresses below either.
    out.push_back(KernelSelector::defaultConfig(p));
    out.push_back(KernelSelector::libraryConfig(p));
    // Transfer seeds: cached winners of the same layer at other
    // resolutions.
    if (opts.transfer && cache_) {
        for (const ConvConfig &c : cache_->siblings(p))
            out.push_back(c);
    }

    Rng rng(opts.seed ^ std::hash<std::string>{}(p.key()));
    std::set<std::string> seen;
    std::vector<ConvConfig> unique;
    for (const auto &c : out)
        if (seen.insert(c.toString()).second)
            unique.push_back(c);
    out = unique;

    int attempts = 0;
    while (static_cast<int>(out.size()) < opts.trials &&
           attempts < opts.trials * 10) {
        ++attempts;
        const ConvConfig c = randomConvConfig(p, rng);
        if (seen.insert(c.toString()).second)
            out.push_back(c);
    }
    return out;
}

MeasureResult
AutoTuner::tune(const ConvProblem &p, const TuneOptions &opts)
{
    if (cache_) {
        ConvConfig cached;
        double gf = 0.0;
        if (cache_->lookup(p, cached, &gf)) {
            MeasureResult res;
            res.config = cached;
            res.seconds = gf > 0
                              ? static_cast<double>(p.macs()) / gf / 1e9
                              : 0.0;
            return res;
        }
    }

    MeasureResult best;
    if (opts.strategy == SearchStrategy::Random) {
        best = tuneRandom(p, opts);
    } else {
        // Seed the local searches with the deterministic baselines
        // (plus transfer seeds when enabled).
        std::vector<ConvConfig> seeds = {
            KernelSelector::defaultConfig(p),
            KernelSelector::libraryConfig(p)};
        if (opts.transfer && cache_) {
            for (const ConvConfig &c : cache_->siblings(p))
                seeds.push_back(c);
        }
        StrategyBudget budget;
        budget.measurements = opts.trials;
        budget.time_budget_s = opts.time_budget_s;
        budget.seed = opts.seed;
        const MeasureFn measure = [&](const ConvConfig &c) {
            return measureConv(p, c, opts.reps).seconds;
        };
        const StrategyResult r =
            opts.strategy == SearchStrategy::Anneal
                ? annealSearch(p, seeds, measure, budget)
                : geneticSearch(p, seeds, measure, budget);
        best.config = r.best;
        best.seconds = r.best_seconds;
    }
    tamres_assert(best.seconds < 1e30, "no candidate measured");
    if (cache_)
        cache_->store(p, best.config, best.gflops(p));
    return best;
}

MeasureResult
AutoTuner::tuneRandom(const ConvProblem &p, const TuneOptions &opts)
{
    std::vector<ConvConfig> cands = candidates(p, opts);
    int limit = static_cast<int>(cands.size());
    if (opts.use_cost_model) {
        // Measure only the top-K by predicted cost; the deterministic
        // seeds stay in front so the tuner never regresses below the
        // library baseline.
        const std::vector<int> order = rankByPredictedCost(p, cands);
        std::vector<ConvConfig> picked = {cands[0], cands[1]};
        for (int idx : order) {
            if (static_cast<int>(picked.size()) >=
                opts.cost_model_top_k + 2)
                break;
            if (idx != 0 && idx != 1)
                picked.push_back(cands[idx]);
        }
        cands = std::move(picked);
        limit = static_cast<int>(cands.size());
    }

    MeasureResult best;
    best.seconds = 1e30;
    Timer budget;
    int measured = 0;
    for (int i = 0; i < limit; ++i) {
        const ConvConfig &c = cands[i];
        const MeasureResult r = measureConv(p, c, opts.reps);
        ++measured;
        if (opts.verbose) {
            inform("tune %s: %-40s %.3f ms (%.2f GFLOP/s)",
                   p.key().c_str(), c.toString().c_str(),
                   r.seconds * 1e3, r.gflops(p));
        }
        if (r.seconds < best.seconds)
            best = r;
        // Respect the time budget, but always measure the two seeds.
        if (measured >= 2 && budget.seconds() > opts.time_budget_s)
            break;
    }
    return best;
}

std::vector<ConvProblem>
AutoTuner::convProblems(Graph &graph, const Shape &shape)
{
    // Walk the graph once, collecting each Conv2d's problem at the
    // shapes induced by this input resolution.
    std::vector<ConvProblem> out;
    std::set<std::string> seen;

    // Shape propagation happens inside Graph; replay it via profile on
    // shapes only. Simplest correct approach: run shape inference via
    // outputShape per op while tracking shapes — Graph::flops already
    // does this internally, so reuse by temporarily visiting ops with
    // their input shapes through a dedicated traversal.
    graph.visitShapes(shape, [&](Op &op, const std::vector<Shape> &ins) {
        auto *conv = dynamic_cast<Conv2d *>(&op);
        if (!conv)
            return;
        const ConvProblem p = conv->problemFor(ins[0]);
        if (seen.insert(p.key()).second)
            out.push_back(p);
    });
    return out;
}

void
AutoTuner::tuneNetworkGrid(Graph &graph,
                           const std::vector<int> &resolutions,
                           const TuneOptions &opts)
{
    tamres_assert(cache_, "grid tuning needs a persistent cache for "
                          "transfer seeds");
    TuneOptions per_res = opts;
    per_res.transfer = true;
    for (const int r : resolutions)
        tuneNetwork(graph, {1, 3, r, r}, per_res);
}

void
AutoTuner::tuneNetwork(Graph &graph, const Shape &shape,
                       const TuneOptions &opts)
{
    for (const ConvProblem &p : convProblems(graph, shape)) {
        const MeasureResult best = tune(p, opts);
        KernelSelector::instance().registerTuned(p, best.config);
        if (opts.verbose) {
            inform("tuned %-36s -> %-40s %.2f GFLOP/s", p.key().c_str(),
                   best.config.toString().c_str(), best.gflops(p));
        }
    }
}

} // namespace tamres
