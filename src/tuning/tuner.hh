/**
 * @file
 * Black-box autotuning of convolution kernel configurations
 * (Section VI of the paper).
 *
 * The tuner treats kernel selection as measurement-driven search, the
 * same methodology as AutoTVM [3]: candidate ConvConfigs are drawn from
 * a structured space (algorithm choice, cache/register blocking), each
 * is timed on the host, and the fastest is kept, per problem shape.
 * Results persist in a ConfigCache file so later runs (and other
 * binaries) reuse them.
 */

#ifndef TAMRES_TUNING_TUNER_HH
#define TAMRES_TUNING_TUNER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/conv_kernels.hh"
#include "nn/graph.hh"
#include "tuning/strategies.hh"

namespace tamres {

/** Outcome of measuring one candidate. */
struct MeasureResult
{
    ConvConfig config;
    double seconds = 0.0; //!< median wall-clock of one invocation

    /** Achieved arithmetic throughput. */
    double
    gflops(const ConvProblem &p) const
    {
        return seconds > 0
                   ? static_cast<double>(p.macs()) / seconds / 1e9
                   : 0.0;
    }
};

/**
 * Time one (problem, config) pair on the host. Inputs are filled with
 * pseudo-random data; an untimed warmup precedes @p reps timed runs and
 * the median is returned.
 */
MeasureResult measureConv(const ConvProblem &p, const ConvConfig &cfg,
                          int reps = 3);

/** Tuning budget knobs. */
struct TuneOptions
{
    int trials = 24;            //!< candidate configs to draw
    int reps = 3;               //!< timed repetitions per candidate
    double time_budget_s = 2.5; //!< stop drawing when exceeded
    uint64_t seed = 7;          //!< search seed
    bool verbose = false;       //!< log per-candidate results

    /** Candidate-selection strategy (ablation_search_strategy). */
    SearchStrategy strategy = SearchStrategy::Random;

    /**
     * Pre-rank candidates with the analytic cost model and measure
     * only the most promising cost_model_top_k (random strategy
     * only). Cuts tuning wall-clock several-fold.
     */
    bool use_cost_model = false;
    int cost_model_top_k = 8;

    /**
     * Seed the search with cached winners of the *same layer at other
     * resolutions* (transfer tuning): good blockings transfer across
     * neighboring shapes, so warm-started search reaches the same
     * quality with a fraction of the measurements.
     */
    bool transfer = false;
};

/** Persistent store of tuned configs keyed by ConvProblem::key(). */
class ConfigCache
{
  public:
    /** In-memory only. */
    ConfigCache() = default;

    /** Backed by @p path; loads existing entries immediately. */
    explicit ConfigCache(std::string path);

    /** Look up a config; returns false when absent. */
    bool lookup(const ConvProblem &p, ConvConfig &cfg,
                double *gflops = nullptr) const;

    /**
     * Configs cached for "siblings" of @p p: problems identical in
     * every field except spatial extent (the same layer tuned at a
     * different network resolution). Used as transfer-tuning seeds.
     */
    std::vector<ConvConfig> siblings(const ConvProblem &p) const;

    /** Insert/overwrite and append to the backing file (if any). */
    void store(const ConvProblem &p, const ConvConfig &cfg,
               double gflops);

    size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        ConvConfig config;
        double gflops;
    };

    void load();
    void appendToFile(const std::string &key, const Entry &e) const;

    std::string path_;
    std::unordered_map<std::string, Entry> entries_;
};

/** Measurement-driven searcher over the ConvConfig space. */
class AutoTuner
{
  public:
    /** @param cache optional persistent cache (not owned). */
    explicit AutoTuner(ConfigCache *cache = nullptr) : cache_(cache) {}

    /**
     * Tune one problem: returns the best config found. Consults the
     * cache first; stores the winner back.
     */
    MeasureResult tune(const ConvProblem &p, const TuneOptions &opts);

    /**
     * Enumerate the unique conv problems @p graph poses at an input of
     * @p shape.
     */
    static std::vector<ConvProblem> convProblems(Graph &graph,
                                                 const Shape &shape);

    /**
     * Tune every conv problem of a network at one input shape and
     * register the winners with the KernelSelector, so running the
     * graph in KernelMode::Tuned uses them.
     */
    void tuneNetwork(Graph &graph, const Shape &shape,
                     const TuneOptions &opts);

    /**
     * Tune a network across a whole resolution grid (the dynamic-
     * resolution deployment case): resolutions are visited in order
     * and transfer seeding is enabled, so each shape's search starts
     * from the cached winners of its siblings at already-tuned
     * resolutions (bench/ablation_transfer_tuning quantifies the
     * saving). Requires a cache.
     */
    void tuneNetworkGrid(Graph &graph,
                         const std::vector<int> &resolutions,
                         const TuneOptions &opts);

  private:
    /** Candidate enumeration, deterministic under opts.seed. */
    std::vector<ConvConfig> candidates(const ConvProblem &p,
                                       const TuneOptions &opts) const;

    /** Random-strategy search (optionally cost-model pre-ranked). */
    MeasureResult tuneRandom(const ConvProblem &p,
                             const TuneOptions &opts);

    ConfigCache *cache_;
};

} // namespace tamres

#endif // TAMRES_TUNING_TUNER_HH
