#include "tuning/strategies.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

namespace tamres {

const char *
searchStrategyName(SearchStrategy strategy)
{
    switch (strategy) {
      case SearchStrategy::Random: return "random";
      case SearchStrategy::Anneal: return "anneal";
      case SearchStrategy::Genetic: return "genetic";
    }
    return "?";
}

namespace knob {

const std::vector<int> &
mcs()
{
    static const std::vector<int> v = {16, 32, 64, 128};
    return v;
}

const std::vector<int> &
kcs()
{
    static const std::vector<int> v = {64, 128, 256, 512};
    return v;
}

const std::vector<int> &
ncs()
{
    static const std::vector<int> v = {256, 512, 1024, 2048, 3136, 4096};
    return v;
}

const std::vector<int> &
mrs()
{
    // Includes 1: with the vector micro-kernels a single broadcast row
    // against 16 columns (1x16) is a real candidate for very wide,
    // shallow GEMMs, and the paper's shape-dependence argument now
    // extends to the register tile itself.
    static const std::vector<int> v = {1, 2, 4, 6, 8};
    return v;
}

const std::vector<int> &
nrs()
{
    static const std::vector<int> v = {4, 8, 16};
    return v;
}

const std::vector<int> &
ocTiles()
{
    static const std::vector<int> v = {1, 2, 4, 8};
    return v;
}

const std::vector<int> &
owTiles()
{
    static const std::vector<int> v = {4, 7, 8, 14, 16, 28};
    return v;
}

const std::vector<int> &
winoTileBlocks()
{
    static const std::vector<int> v = {64, 128, 256, 512, 1024};
    return v;
}

std::vector<int>
threadCounts()
{
    // Serial, half the available workers, and the full default — so
    // the tuner can discover when threading overhead loses (tiny
    // shapes) without measuring every count. 0 (process default) is
    // deliberately absent: tuned configs should pin their winner.
    // Built per call because defaultParallelism() tracks the current
    // TAMRES_THREADS value.
    std::vector<int> t = {1};
    const int full = ThreadPool::defaultParallelism();
    if (full >= 4)
        t.push_back(full / 2);
    if (full > 1)
        t.push_back(full);
    return t;
}

} // namespace knob

namespace {

int
pick(const std::vector<int> &table, Rng &rng)
{
    return table[rng.uniformInt(static_cast<uint64_t>(table.size()))];
}

/** Move one table value to an adjacent entry (clamped). */
int
neighbor(const std::vector<int> &table, int current, Rng &rng)
{
    auto it = std::find(table.begin(), table.end(), current);
    if (it == table.end())
        return pick(table, rng);
    int idx = static_cast<int>(it - table.begin());
    idx += rng.uniformInt(2) == 0 ? -1 : 1;
    idx = std::clamp(idx, 0, static_cast<int>(table.size()) - 1);
    return table[idx];
}

/** Algorithm families eligible for a problem. */
std::vector<ConvAlgo>
eligibleAlgos(const ConvProblem &p)
{
    std::vector<ConvAlgo> algos;
    if (p.groups > 1) {
        algos.push_back(ConvAlgo::Direct);
        if (p.groups == p.ic && p.ic == p.oc)
            algos.push_back(ConvAlgo::Depthwise);
    } else {
        algos.push_back(ConvAlgo::Direct);
        algos.push_back(ConvAlgo::Im2col);
        if (p.kh == 3 && p.kw == 3 && p.stride == 1)
            algos.push_back(ConvAlgo::Winograd);
    }
    return algos;
}

/** Redraw every knob relevant to cfg.algo. */
void
randomizeKnobs(ConvConfig &cfg, Rng &rng)
{
    switch (cfg.algo) {
      case ConvAlgo::Reference:
        return;
      case ConvAlgo::Direct:
        cfg.oc_tile = pick(knob::ocTiles(), rng);
        cfg.ow_tile = pick(knob::owTiles(), rng);
        break;
      case ConvAlgo::Depthwise:
        cfg.ow_tile = pick(knob::owTiles(), rng);
        break;
      case ConvAlgo::Winograd:
        cfg.wino_tile_block = pick(knob::winoTileBlocks(), rng);
        [[fallthrough]];
      case ConvAlgo::Im2col:
        cfg.mc = pick(knob::mcs(), rng);
        cfg.kc = pick(knob::kcs(), rng);
        cfg.nc = pick(knob::ncs(), rng);
        cfg.mr = pick(knob::mrs(), rng);
        cfg.nr = pick(knob::nrs(), rng);
        break;
    }
    cfg.threads = pick(knob::threadCounts(), rng);
}

} // namespace

ConvConfig
randomConvConfig(const ConvProblem &p, Rng &rng)
{
    const std::vector<ConvAlgo> algos = eligibleAlgos(p);
    for (int attempt = 0; attempt < 64; ++attempt) {
        ConvConfig cfg;
        cfg.algo =
            algos[rng.uniformInt(static_cast<uint64_t>(algos.size()))];
        randomizeKnobs(cfg, rng);
        if (convConfigValid(p, cfg))
            return cfg;
    }
    panic("could not draw a valid config for %s", p.key().c_str());
}

ConvConfig
mutateConvConfig(const ConvProblem &p, const ConvConfig &cfg, Rng &rng)
{
    for (int attempt = 0; attempt < 64; ++attempt) {
        ConvConfig next = cfg;
        // 1-in-8: jump algorithm family but keep every knob value, so
        // the jump stays local in the shared-knob dimensions (the
        // GEMM blocking carries over between im2col and winograd; a
        // family landing on defaults is a reasonable center).
        if (rng.uniformInt(8) == 0) {
            const std::vector<ConvAlgo> algos = eligibleAlgos(p);
            next.algo = algos[rng.uniformInt(
                static_cast<uint64_t>(algos.size()))];
            if (!(next == cfg) && convConfigValid(p, next))
                return next;
            continue;
        }
        switch (next.algo) {
          case ConvAlgo::Reference:
            return next;
          case ConvAlgo::Direct:
            switch (rng.uniformInt(3)) {
              case 0:
                next.oc_tile = neighbor(knob::ocTiles(), next.oc_tile,
                                        rng);
                break;
              case 1:
                next.ow_tile = neighbor(knob::owTiles(), next.ow_tile,
                                        rng);
                break;
              default:
                next.threads = neighbor(knob::threadCounts(),
                                        next.threads, rng);
                break;
            }
            break;
          case ConvAlgo::Depthwise:
            if (rng.uniformInt(2) == 0)
                next.ow_tile = neighbor(knob::owTiles(), next.ow_tile,
                                        rng);
            else
                next.threads = neighbor(knob::threadCounts(),
                                        next.threads, rng);
            break;
          case ConvAlgo::Winograd:
          case ConvAlgo::Im2col: {
            const int which = static_cast<int>(rng.uniformInt(
                next.algo == ConvAlgo::Winograd ? 7 : 6));
            switch (which) {
              case 0: next.mc = neighbor(knob::mcs(), next.mc, rng);
                break;
              case 1: next.kc = neighbor(knob::kcs(), next.kc, rng);
                break;
              case 2: next.nc = neighbor(knob::ncs(), next.nc, rng);
                break;
              case 3: next.mr = neighbor(knob::mrs(), next.mr, rng);
                break;
              case 4: next.nr = neighbor(knob::nrs(), next.nr, rng);
                break;
              case 5:
                next.threads = neighbor(knob::threadCounts(),
                                        next.threads, rng);
                break;
              default:
                next.wino_tile_block = neighbor(
                    knob::winoTileBlocks(), next.wino_tile_block, rng);
                break;
            }
            break;
          }
        }
        if (convConfigValid(p, next))
            return next;
    }
    return cfg;
}

ConvConfig
crossoverConvConfig(const ConvProblem &p, const ConvConfig &a,
                    const ConvConfig &b, Rng &rng)
{
    ConvConfig child = rng.uniformInt(2) == 0 ? a : b;
    const ConvConfig &other = (child == a) ? b : a;
    if (child.algo == other.algo) {
        // Same family: mix knobs uniformly.
        if (rng.uniformInt(2))
            child.oc_tile = other.oc_tile;
        if (rng.uniformInt(2))
            child.ow_tile = other.ow_tile;
        if (rng.uniformInt(2))
            child.mc = other.mc;
        if (rng.uniformInt(2))
            child.kc = other.kc;
        if (rng.uniformInt(2))
            child.nc = other.nc;
        if (rng.uniformInt(2))
            child.mr = other.mr;
        if (rng.uniformInt(2))
            child.nr = other.nr;
        if (rng.uniformInt(2))
            child.wino_tile_block = other.wino_tile_block;
        if (rng.uniformInt(2))
            child.threads = other.threads;
    }
    if (!convConfigValid(p, child))
        return rng.uniformInt(2) == 0 ? a : b;
    return child;
}

StrategyResult
annealSearch(const ConvProblem &p, const std::vector<ConvConfig> &seeds,
             const MeasureFn &measure, const StrategyBudget &budget)
{
    tamres_assert(!seeds.empty(), "anneal needs at least one seed");
    Rng rng(budget.seed ^ 0xA44Eull);
    Timer timer;

    StrategyResult result;
    ConvConfig current;
    double current_s = 1e30;
    for (const ConvConfig &s : seeds) {
        if (!convConfigValid(p, s))
            continue;
        const double t = measure(s);
        ++result.measured;
        if (t < current_s) {
            current = s;
            current_s = t;
        }
        if (result.measured >= budget.measurements)
            break;
    }
    tamres_assert(current_s < 1e30, "no valid seed measured");
    result.best = current;
    result.best_seconds = current_s;

    // Geometric cooling; temperature is relative to the incumbent's
    // runtime so acceptance behaves uniformly across problem sizes.
    double temperature = 0.35;
    const double cooling = 0.90;
    while (result.measured < budget.measurements &&
           timer.seconds() < budget.time_budget_s) {
        const ConvConfig cand = mutateConvConfig(p, current, rng);
        const double t = measure(cand);
        ++result.measured;
        if (t < result.best_seconds) {
            result.best = cand;
            result.best_seconds = t;
        }
        const double rel = (t - current_s) / std::max(current_s, 1e-12);
        if (rel <= 0.0 ||
            rng.uniform() < std::exp(-rel / std::max(temperature,
                                                     1e-3))) {
            current = cand;
            current_s = t;
        }
        temperature *= cooling;
    }
    return result;
}

StrategyResult
geneticSearch(const ConvProblem &p, const std::vector<ConvConfig> &seeds,
              const MeasureFn &measure, const StrategyBudget &budget)
{
    Rng rng(budget.seed ^ 0x6E6Eull);
    Timer timer;

    struct Member
    {
        ConvConfig config;
        double seconds;
    };
    std::vector<Member> population;
    StrategyResult result;

    auto add = [&](const ConvConfig &cfg) {
        if (!convConfigValid(p, cfg) ||
            result.measured >= budget.measurements)
            return;
        const double t = measure(cfg);
        ++result.measured;
        population.push_back({cfg, t});
        if (t < result.best_seconds) {
            result.best = cfg;
            result.best_seconds = t;
        }
    };

    for (const ConvConfig &s : seeds)
        add(s);
    const int pop_target =
        std::clamp(budget.measurements / 3, 4, 12);
    while (static_cast<int>(population.size()) < pop_target &&
           result.measured < budget.measurements)
        add(randomConvConfig(p, rng));
    tamres_assert(!population.empty(), "no valid member measured");

    // Steady-state loop: tournament-select parents, breed, replace the
    // worst member when the child is better.
    while (result.measured < budget.measurements &&
           timer.seconds() < budget.time_budget_s) {
        auto tournament = [&]() -> const Member & {
            const Member &a = population[rng.uniformInt(
                static_cast<uint64_t>(population.size()))];
            const Member &b = population[rng.uniformInt(
                static_cast<uint64_t>(population.size()))];
            return a.seconds <= b.seconds ? a : b;
        };
        ConvConfig child = crossoverConvConfig(
            p, tournament().config, tournament().config, rng);
        if (rng.uniformInt(2) == 0)
            child = mutateConvConfig(p, child, rng);
        const double t = measure(child);
        ++result.measured;
        if (t < result.best_seconds) {
            result.best = child;
            result.best_seconds = t;
        }
        auto worst = std::max_element(
            population.begin(), population.end(),
            [](const Member &a, const Member &b) {
                return a.seconds < b.seconds;
            });
        if (t < worst->seconds)
            *worst = Member{child, t};
    }
    return result;
}

} // namespace tamres
