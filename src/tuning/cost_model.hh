/**
 * @file
 * Analytic cost model for conv configurations.
 *
 * Measurement-driven search (Section VI) spends most of its budget
 * timing configurations that an experienced performance engineer could
 * reject on paper: micro-kernels with poor compute/load ratios, cache
 * blocks that overflow L1/L2, im2col buffers that blow the LLC. This
 * model encodes those first-order effects — arithmetic intensity of
 * the (mr x nr) register tile, cache-fit penalties for the GotoBLAS
 * panels, packing/transform overhead bytes, Winograd's 2.25x multiply
 * reduction less its transform cost — and returns predicted seconds.
 *
 * It is a *pre-ranking* model in the spirit of AutoTVM's learned cost
 * model [3]: the tuner still measures, but only the top-K predicted
 * candidates (TuneOptions::cost_model_top_k), cutting tuning time
 * several-fold at equal achieved throughput
 * (bench/ablation_cost_model).
 */

#ifndef TAMRES_TUNING_COST_MODEL_HH
#define TAMRES_TUNING_COST_MODEL_HH

#include <vector>

#include "nn/conv_kernels.hh"

namespace tamres {

/** Host parameters the model is conditioned on. */
struct MachineModel
{
    double peak_flops = 8e9;      //!< sustained scalar+SIMD FLOP/s
    double l1_bytes = 32 * 1024;  //!< per-core L1D
    double l2_bytes = 512 * 1024; //!< per-core L2
    double mem_bw = 8e9;          //!< streaming bandwidth, bytes/s

    /** A conservative default for the benchmarking host. */
    static MachineModel host();
};

/**
 * Predicted wall-clock seconds for running @p cfg on @p p. The
 * absolute scale is rough; only the *ordering* across configs matters
 * for pre-ranking. Config must be valid for the problem.
 */
double predictConvSeconds(const ConvProblem &p, const ConvConfig &cfg,
                          const MachineModel &machine =
                              MachineModel::host());

/**
 * Indices of @p configs ordered by ascending predicted time (best
 * first). Invalid configs sort last.
 */
std::vector<int> rankByPredictedCost(
    const ConvProblem &p, const std::vector<ConvConfig> &configs,
    const MachineModel &machine = MachineModel::host());

} // namespace tamres

#endif // TAMRES_TUNING_COST_MODEL_HH
