/**
 * @file
 * A byte-accounting object store for progressively encoded images.
 *
 * Models the paper's deployment setting (Section I): images live in a
 * separate storage tier and every byte moved toward the compute tier is
 * metered. Readers request a *prefix of scans* per image; the store
 * returns the encoded prefix and charges exactly those bytes, which is
 * how the paper's 20-30% read-savings numbers are measured.
 *
 * Error contract: a read of an id that was never put() throws
 * Error{NotFound} — a data/request error the serving tier maps to a
 * per-request failure, never a process abort.
 *
 * Unified read API: fetchScanRange is the ONE virtual read primitive —
 * the only method that physically delivers and meters payload bytes.
 * The convenience reads (readScans, readAdditionalScans,
 * readScanRangeBytes) are non-virtual wrappers implemented on it, so a
 * decorator (FaultyObjectStore's injection, BreakerObjectStore's
 * admission, a decode cache's invalidation hook) overrides exactly one
 * method and its semantics — metering, faults, breaker verdicts —
 * can never diverge across entry points.
 */

#ifndef TAMRES_STORAGE_OBJECT_STORE_HH
#define TAMRES_STORAGE_OBJECT_STORE_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "codec/progressive.hh"
#include "util/cancel.hh"

namespace tamres {

/** Cumulative read-side statistics. */
struct ReadStats
{
    uint64_t requests = 0;     //!< number of read calls
    uint64_t bytes_read = 0;   //!< bytes actually transferred
    uint64_t bytes_full = 0;   //!< bytes a full read would have cost

    // Injected-fault counters (zero on a clean store; bumped by
    // FaultyObjectStore so chaos harnesses can report what they did).
    uint64_t faults_delayed = 0;   //!< reads that hit injected latency
    uint64_t faults_transient = 0; //!< reads failed with Transient
    uint64_t faults_truncated = 0; //!< reads short-delivered on purpose
    uint64_t faults_corrupted = 0; //!< reads with an injected bit flip
    uint64_t faults_hung = 0;      //!< reads wedged until release/cancel

    // Circuit-breaker counters (zero without a BreakerObjectStore).
    uint64_t breaker_fast_fails = 0; //!< fetches rejected while Open
    uint64_t breaker_trips = 0;      //!< Closed/HalfOpen -> Open edges

    /** Fraction of a full-read workload actually transferred. */
    double
    relativeReadSize() const
    {
        return bytes_full == 0
                   ? 1.0
                   : static_cast<double>(bytes_read) / bytes_full;
    }

    /** Fraction of bytes saved vs. reading everything. */
    double savings() const { return 1.0 - relativeReadSize(); }

    void
    merge(const ReadStats &other)
    {
        requests += other.requests;
        bytes_read += other.bytes_read;
        bytes_full += other.bytes_full;
        faults_delayed += other.faults_delayed;
        faults_transient += other.faults_transient;
        faults_truncated += other.faults_truncated;
        faults_corrupted += other.faults_corrupted;
        faults_hung += other.faults_hung;
        breaker_fast_fails += other.breaker_fast_fails;
        breaker_trips += other.breaker_trips;
    }
};

/**
 * In-memory store of progressive images with metered reads.
 *
 * Concurrency contract: read-side calls (readScans, readScanRangeBytes,
 * fetchScanRange, peek, stats) are safe from multiple threads — the
 * staged serving engine's decode workers meter ranged reads
 * concurrently. put() is a structural mutation and must not race any
 * read: populate the store, then serve.
 *
 * Missing objects: every read-side method throws Error{NotFound} for an
 * id that is not in the store. Callers in the serving tier catch this
 * and fail the one request; it is not an invariant violation.
 */
class DecodeCache; // storage/decode_cache.hh

class ObjectStore
{
  public:
    virtual ~ObjectStore() = default;

    /**
     * Insert an encoded image under @p id (replaces any existing).
     * Invalidates the id in every attached DecodeCache: cached decoded
     * prefixes of the replaced bytes must never serve the new object.
     * Decorators forward put() to their base, so the invalidation
     * fires at any stack depth.
     */
    virtual void put(uint64_t id, EncodedImage image);

    /** True when @p id is present. */
    virtual bool contains(uint64_t id) const;

    /** Total stored bytes across all objects. */
    virtual uint64_t storedBytes() const;

    /** Number of stored objects. */
    virtual size_t size() const { return objects_.size(); }

    /**
     * Read the first @p num_scans scans of object @p id, charging their
     * bytes to the store's statistics, and return the decoded preview.
     *
     * Non-virtual convenience wrapper over fetchScanRange: it fetches
     * the [0, num_scans) range into a delivery buffer and decodes the
     * bytes actually delivered, so a decorator's injected faults and
     * admission verdicts apply to it identically.
     */
    Image readScans(uint64_t id, int num_scans);

    /**
     * Read additional scans of an object already partially read in this
     * request context: charges only the incremental bytes between
     * @p from_scans and @p to_scans (the dynamic pipeline's second
     * fetch reuses the scan-1..k bytes it already has).
     *
     * Non-virtual wrapper over fetchScanRange(charge_full = false);
     * the full-read denominator was charged by the logical request's
     * first read.
     */
    Image readAdditionalScans(uint64_t id, int from_scans,
                              int to_scans);

    /**
     * Meter a ranged read of scans [from_scans, to_scans) WITHOUT
     * decoding — the staged serving path fetches bytes here and feeds
     * them to a resumable ProgressiveDecoder instead of re-decoding
     * the whole prefix. Returns the incremental bytes charged. The
     * full-read denominator is charged once per logical request, on
     * the from_scans == 0 fetch.
     *
     * Non-virtual wrapper over fetchScanRange into a scratch delivery
     * buffer that is discarded after metering.
     */
    size_t readScanRangeBytes(uint64_t id, int from_scans,
                              int to_scans);

    /**
     * THE virtual read primitive — every path that moves payload
     * bytes out of the store lands here, which is the single method a
     * decorator overrides.
     *
     * Physically deliver the bytes of scans [from_scans, to_scans) of
     * object @p id by appending them to @p dst, metering the appended
     * bytes like readScanRangeBytes. Requires dst.size() ==
     * scan_offsets[from_scans] of the stored object — i.e. @p dst is a
     * delivery buffer holding exactly the scans before the range.
     *
     * @p charge_full controls the full-read denominator: it is charged
     * only when from_scans == 0 AND charge_full is true, so a caller
     * retrying a failed first fetch passes charge_full = false to avoid
     * double counting the logical request.
     *
     * @p max_bytes caps the appended bytes (a fault-injecting subclass
     * uses it to deliver short reads); the metered bytes equal what was
     * actually appended. Returns the appended byte count.
     *
     * @p cancel (optional) is a cooperative cancellation token. The
     * store delivers the range scan-by-scan and checks the token
     * between chunks; when it fires, the bytes already appended stay
     * appended AND metered (metering counts work done, not work used),
     * the full-read denominator is NOT charged, and the fetch throws
     * the token's reason-mapped error (Cancelled for client/deadline,
     * fail-fast Transient for watchdog/abandonment — see
     * util/cancel.hh).
     */
    virtual size_t fetchScanRange(uint64_t id, int from_scans,
                                  int to_scans,
                                  std::vector<uint8_t> &dst,
                                  bool charge_full = true,
                                  size_t max_bytes = SIZE_MAX,
                                  const CancelToken *cancel = nullptr);

    /** Access an object's metadata (scan sizes etc.). */
    virtual const EncodedImage &peek(uint64_t id) const;

    /** Cumulative read statistics (snapshot; safe while serving). */
    virtual ReadStats stats() const;

    /** Reset the read statistics (objects are kept). */
    virtual void resetStats();

    /**
     * The physical store at the bottom of a decorator stack (the
     * object that owns the bytes and runs put()). Decorators override
     * this to forward to their base; the plain store returns itself.
     */
    virtual ObjectStore &root() { return *this; }

    /**
     * Register @p cache for put-invalidation: every subsequent put()
     * of an id (through this store or any decorator over it — the
     * registration lands on root()) calls cache->invalidate(id). The
     * cache must outlive the store or detach first.
     */
    void attachCache(DecodeCache *cache);

    /** Remove a previously attached cache (no-op when absent). */
    void detachCache(DecodeCache *cache);

  private:
    const EncodedImage &get(uint64_t id) const;

    std::unordered_map<uint64_t, EncodedImage> objects_;
    mutable std::mutex stats_mu_; //!< guards stats_ only
    ReadStats stats_;
    mutable std::mutex cache_mu_; //!< guards caches_ only
    std::vector<DecodeCache *> caches_;
};

/**
 * Time/cost model for moving bytes from storage to compute.
 * Captures the paper's observation that storage and network usage are
 * billed and can dominate ("data stall") when bandwidth-bound.
 */
struct BandwidthModel
{
    double bytes_per_second = 500e6; //!< link bandwidth
    double request_latency_s = 2e-4; //!< fixed per-request overhead
    double dollars_per_gb = 0.02;    //!< metered egress cost

    /** Seconds to serve @p bytes in @p requests requests. */
    double
    transferSeconds(uint64_t bytes, uint64_t requests = 1) const
    {
        return static_cast<double>(bytes) / bytes_per_second +
               request_latency_s * static_cast<double>(requests);
    }

    /** Dollar cost of moving @p bytes. */
    double
    transferCost(uint64_t bytes) const
    {
        return static_cast<double>(bytes) / 1e9 * dollars_per_gb;
    }
};

} // namespace tamres

#endif // TAMRES_STORAGE_OBJECT_STORE_HH
