/**
 * @file
 * Deterministic fault injection for the storage tier.
 *
 * FaultyObjectStore wraps a base ObjectStore and perturbs its byte
 * deliveries the way a real remote object store misbehaves under load:
 * per-read latency with a heavy tail, transient request failures,
 * short (truncated) ranged reads, and in-flight bit corruption. Every
 * decision is a pure function of (policy seed, object id, scan range,
 * attempt number), so a chaos run replays bit-identically from one
 * seed — the property the fault-schedule tests and the BENCH_faults
 * harness rely on.
 *
 * Only fetchScanRange() — the ONE virtual read primitive of the
 * unified ObjectStore API — is overridden, and that is sufficient:
 * the convenience reads (readScans / readAdditionalScans /
 * readScanRangeBytes) are non-virtual wrappers that route their
 * physical transfer through it, so injected faults reach every read
 * entry point identically. Injection perturbs the per-request
 * delivery buffer, never the store's pristine copy; metadata access
 * (peek) stays untouched.
 */

#ifndef TAMRES_STORAGE_FAULT_INJECTION_HH
#define TAMRES_STORAGE_FAULT_INJECTION_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/object_store.hh"

namespace tamres {

/** Identifies one delivery attempt for deterministic fault draws. */
struct FaultContext
{
    uint64_t id;        //!< object being read
    int from_scans;     //!< range start (scan index)
    int to_scans;       //!< range end (exclusive)
    int attempt;        //!< 0 for the first try of this exact range
    size_t range_bytes; //!< clean size of the requested range
};

/**
 * What to do to one delivery. deliver_bytes == SIZE_MAX means deliver
 * everything; flip_bit < 0 means no corruption. A scripted schedule
 * (FaultScript) returns these directly; the stochastic policy draws
 * them from the seeded Rng.
 */
struct FaultDecision
{
    double delay_s = 0;               //!< added latency before delivery
    bool fail = false;                //!< throw Error{Transient}
    size_t deliver_bytes = SIZE_MAX;  //!< cap on delivered bytes
    int64_t flip_bit = -1;            //!< bit index to flip in the range
    /**
     * Wedge this read indefinitely: it blocks until the caller's
     * CancelToken fires or releaseHangs() is called, then throws
     * (nothing is delivered). Unlike delay_s — which is capped at
     * latency_max_s and always completes — a hang models a truly
     * stuck I/O that only supervision can unblock.
     */
    bool hang = false;
};

/** Scripted fault schedule: full control for deterministic tests. */
using FaultScript = std::function<FaultDecision(const FaultContext &)>;

/**
 * Stochastic fault policy. Probabilities are per fetchScanRange call;
 * the latency tail is Pareto(alpha = 2), scale latency_tail_scale_s,
 * capped at latency_max_s. A non-null script overrides the stochastic
 * draws entirely.
 */
struct FaultPolicy
{
    uint64_t seed = 1;               //!< master seed for all draws

    double latency_fixed_s = 0;      //!< added to every read
    double latency_tail_p = 0;       //!< P(read hits the heavy tail)
    double latency_tail_scale_s = 0; //!< Pareto scale of the tail
    double latency_max_s = 0.05;     //!< hard cap on injected delay

    double transient_p = 0;          //!< P(throw Error{Transient})
    double truncate_p = 0;           //!< P(short delivery)
    double corrupt_p = 0;            //!< P(one bit flip in the range)
    double hang_p = 0;               //!< P(read wedges indefinitely)

    FaultScript script;              //!< when set, replaces the draws
};

/**
 * ObjectStore decorator that injects faults into fetchScanRange.
 *
 * Thread safety matches the base store: concurrent reads are safe (the
 * per-range attempt counters sit behind their own mutex). stats()
 * returns the BASE store's accounting merged with this wrapper's fault
 * counters, so existing byte-savings assertions keep holding.
 *
 * The wrapper does not own the base store; it must outlive the wrapper.
 */
class FaultyObjectStore : public ObjectStore
{
  public:
    FaultyObjectStore(ObjectStore &base, FaultPolicy policy)
        : base_(&base), policy_(std::move(policy))
    {}

    // Structural + pass-through surface (the convenience reads are
    // non-virtual wrappers on the base class and need no forwarding).
    void put(uint64_t id, EncodedImage image) override;
    bool contains(uint64_t id) const override;
    uint64_t storedBytes() const override;
    size_t size() const override;
    const EncodedImage &peek(uint64_t id) const override;
    ReadStats stats() const override;
    void resetStats() override;
    ObjectStore &root() override { return base_->root(); }

    /** The perturbed path: delay / fail / hang / truncate / corrupt. */
    size_t fetchScanRange(uint64_t id, int from_scans, int to_scans,
                          std::vector<uint8_t> &dst, bool charge_full,
                          size_t max_bytes = SIZE_MAX,
                          const CancelToken *cancel = nullptr) override;

    const FaultPolicy &policy() const { return policy_; }

    /** Reset the per-range attempt counters (replays the schedule). */
    void resetAttempts();

    /**
     * Permanently release every hung read, current and future: wedged
     * fetches wake and throw Error{Transient, "hung read released"},
     * and later hang decisions throw immediately instead of blocking.
     * The escape hatch for tearing down an unsupervised configuration
     * whose workers are wedged on purpose.
     */
    void releaseHangs();

  private:
    FaultDecision decide(const FaultContext &ctx);

    ObjectStore *base_;
    FaultPolicy policy_;

    mutable std::mutex mu_; //!< guards attempts_, fault_stats_, hangs
    std::condition_variable hang_cv_;
    bool hangs_released_ = false;
    std::unordered_map<uint64_t, int> attempts_; //!< keyed on range
    ReadStats fault_stats_; //!< only the faults_* fields are used
};

} // namespace tamres

#endif // TAMRES_STORAGE_FAULT_INJECTION_HH
