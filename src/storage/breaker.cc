#include "storage/breaker.hh"

#include "util/error.hh"

namespace tamres {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

BreakerObjectStore::BreakerObjectStore(ObjectStore &base,
                                       BreakerConfig config)
    : base_(&base), cfg_(config),
      clock_(config.clock ? config.clock : &Clock::steady()),
      window_(config.window_s), latency_(config.latency_alpha)
{}

void
BreakerObjectStore::put(uint64_t id, EncodedImage image)
{
    base_->put(id, std::move(image));
}

bool
BreakerObjectStore::contains(uint64_t id) const
{
    return base_->contains(id);
}

uint64_t
BreakerObjectStore::storedBytes() const
{
    return base_->storedBytes();
}

size_t
BreakerObjectStore::size() const
{
    return base_->size();
}

const EncodedImage &
BreakerObjectStore::peek(uint64_t id) const
{
    return base_->peek(id);
}

ReadStats
BreakerObjectStore::stats() const
{
    ReadStats out = base_->stats();
    std::lock_guard<std::mutex> lock(mu_);
    out.breaker_fast_fails += counters_.fast_fails;
    out.breaker_trips += counters_.trips;
    return out;
}

void
BreakerObjectStore::resetStats()
{
    base_->resetStats();
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = BreakerStats{};
}

BreakerState
BreakerObjectStore::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

BreakerStats
BreakerObjectStore::breakerStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    BreakerStats out = counters_;
    out.state = state_;
    out.failure_rate = window_.badFraction(clock_->now());
    out.latency_ewma_s = latency_.value();
    return out;
}

bool
BreakerObjectStore::admit(double now, bool &is_probe)
{
    std::lock_guard<std::mutex> lock(mu_);
    is_probe = false;
    if (state_ == BreakerState::Open) {
        if (now - opened_at_ >= cfg_.cooldown_s) {
            // Lazy Open -> HalfOpen: the first caller past the
            // cooldown becomes the first probe.
            state_ = BreakerState::HalfOpen;
            probes_in_flight_ = 0;
            probe_successes_ = 0;
        } else {
            ++counters_.fast_fails;
            throw Error(ErrorKind::Transient,
                        "circuit breaker open: storage fetches "
                        "failing fast until cooldown expires",
                        /*fail_fast=*/true);
        }
    }
    if (state_ == BreakerState::HalfOpen) {
        if (probes_in_flight_ >= cfg_.half_open_probes) {
            ++counters_.fast_fails;
            throw Error(ErrorKind::Transient,
                        "circuit breaker half-open: probe budget "
                        "exhausted, fetch failing fast",
                        /*fail_fast=*/true);
        }
        ++probes_in_flight_;
        ++counters_.probes;
        is_probe = true;
    }
    return true;
}

void
BreakerObjectStore::settle(double now, bool is_probe, bool failed,
                           double elapsed_s)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (is_probe && probes_in_flight_ > 0)
        --probes_in_flight_;

    if (!failed)
        latency_.record(elapsed_s);
    window_.record(now, failed);

    if (state_ == BreakerState::HalfOpen) {
        if (failed) {
            ++counters_.probe_failures;
            ++counters_.trips;
            state_ = BreakerState::Open;
            opened_at_ = now;
            window_.reset();
        } else if (++probe_successes_ >= cfg_.close_after) {
            ++counters_.closes;
            state_ = BreakerState::Closed;
            window_.reset();
            latency_.reset();
        }
        return;
    }

    if (state_ == BreakerState::Closed &&
        window_.total(now) >= cfg_.min_samples) {
        const bool rate_trip =
            window_.badFraction(now) >= cfg_.failure_threshold;
        const bool latency_trip =
            cfg_.latency_threshold_s > 0 && latency_.seeded() &&
            latency_.value() >= cfg_.latency_threshold_s;
        if (rate_trip || latency_trip) {
            ++counters_.trips;
            state_ = BreakerState::Open;
            opened_at_ = now;
            window_.reset();
        }
    }
}

size_t
BreakerObjectStore::fetchScanRange(uint64_t id, int from_scans,
                                   int to_scans,
                                   std::vector<uint8_t> &dst,
                                   bool charge_full, size_t max_bytes,
                                   const CancelToken *cancel)
{
    bool is_probe = false;
    admit(clock_->now(), is_probe); // throws fail-fast when rejected

    const double t0 = clock_->now();
    try {
        const size_t got = base_->fetchScanRange(
            id, from_scans, to_scans, dst, charge_full, max_bytes,
            cancel);
        // A short delivery the CALLER did not ask for is a failure
        // signal: the range came back truncated.
        const EncodedImage &obj = base_->peek(id);
        const size_t clean = obj.bytesForScans(to_scans) -
                             obj.bytesForScans(from_scans);
        const bool truncated =
            got < std::min(clean, max_bytes);
        settle(clock_->now(), is_probe, truncated,
               clock_->now() - t0);
        return got;
    } catch (const Error &e) {
        if (e.kind() == ErrorKind::Transient) {
            settle(clock_->now(), is_probe, /*failed=*/true,
                   clock_->now() - t0);
        } else {
            // NotFound, Cancelled etc.: a data/request error says
            // nothing about tier health — release any probe slot
            // without recording. (An *abandoned* read is different:
            // the token maps Abandoned/Watchdog to Transient above,
            // so supervision give-ups DO count as tier failures.)
            std::lock_guard<std::mutex> lock(mu_);
            if (is_probe && probes_in_flight_ > 0)
                --probes_in_flight_;
        }
        throw;
    }
}

} // namespace tamres
