/**
 * @file
 * Circuit breaker for the storage tier.
 *
 * BreakerObjectStore wraps any ObjectStore (including a
 * FaultyObjectStore) and watches the health of its fetchScanRange
 * deliveries: the failure rate over a trailing time window and a
 * latency EWMA. When the tier is sick it stops sending fetches at all
 * — callers get an immediate Error{Transient} with failFast() set, so
 * the staged engine's retry loop degrades the request NOW instead of
 * burning its deadline on backoff sleeps toward a store that is known
 * to be down. That is the fleet-level half of PR 6's per-request
 * story: one request discovers the outage, every other request is
 * spared rediscovering it.
 *
 * State machine (standard three-state breaker):
 *
 *   Closed   — all traffic passes; outcomes recorded. When the window
 *              holds >= min_samples and the failure fraction crosses
 *              failure_threshold (or the latency EWMA crosses
 *              latency_threshold_s, when enabled), trip to Open.
 *   Open     — every fetch fails fast without touching the base store.
 *              After cooldown_s of the injected clock, the next fetch
 *              is admitted as a probe (lazy transition to HalfOpen —
 *              there is no background thread).
 *   HalfOpen — at most half_open_probes fetches are in flight as
 *              probes; the rest still fail fast. close_after
 *              consecutive probe successes close the breaker (window
 *              reset, clean slate); any probe failure re-opens it and
 *              restarts the cooldown.
 *
 * What counts as a failure: an Error{Transient} thrown by the base
 * store, or a short delivery (fewer bytes appended than the clean
 * range size — a truncated read the decoder will reject). NotFound
 * passes through un-counted: a missing object is a data error, not a
 * sign the tier is unhealthy. Injected corruption is invisible at this
 * layer by design — it is detected by the decoder's CRC check, and the
 * engine's trim-and-refetch shows up here as extra (successful)
 * fetches, which is the honest signal.
 *
 * Only fetchScanRange is overridden, mirroring FaultyObjectStore: it
 * is the ONE virtual read primitive of the unified ObjectStore API,
 * and the convenience reads are non-virtual wrappers that route their
 * physical transfer through it — so the breaker's verdicts guard
 * every read entry point identically. Metadata access (peek) stays
 * unguarded: it moves no payload bytes.
 *
 * All time comes from an injectable Clock so the state machine is
 * deterministic under test (a ManualClock advances cooldowns without
 * sleeping). stats() returns the base store's accounting merged with
 * this wrapper's breaker counters.
 */

#ifndef TAMRES_STORAGE_BREAKER_HH
#define TAMRES_STORAGE_BREAKER_HH

#include <cstdint>

#include "storage/object_store.hh"
#include "util/clock.hh"
#include "util/windowed.hh"

namespace tamres {

/** Knobs for BreakerObjectStore. Defaults suit the chaos benches. */
struct BreakerConfig
{
    double window_s = 1.0;           //!< failure-rate window length
    int min_samples = 8;             //!< evidence needed before tripping
    double failure_threshold = 0.5;  //!< trip when bad fraction >= this
    double latency_threshold_s = 0;  //!< trip on EWMA >= this (0 = off)
    double latency_alpha = 0.2;      //!< EWMA smoothing factor
    double cooldown_s = 0.25;        //!< Open dwell before probing
    int half_open_probes = 2;        //!< max concurrent HalfOpen probes
    int close_after = 3;             //!< probe successes to close

    Clock *clock = nullptr;          //!< nullptr -> Clock::steady()
};

enum class BreakerState : int
{
    Closed = 0,
    Open,
    HalfOpen,
};

/** Short stable name ("closed", "open", "half-open"). */
const char *breakerStateName(BreakerState state);

/** Snapshot of the breaker's health and transition counters. */
struct BreakerStats
{
    BreakerState state = BreakerState::Closed;
    uint64_t trips = 0;          //!< Closed/HalfOpen -> Open edges
    uint64_t fast_fails = 0;     //!< fetches rejected without I/O
    uint64_t probes = 0;         //!< fetches admitted while HalfOpen
    uint64_t probe_failures = 0; //!< probes that failed (re-opened)
    uint64_t closes = 0;         //!< HalfOpen -> Closed edges
    double failure_rate = 0;     //!< windowed bad fraction right now
    double latency_ewma_s = 0;   //!< smoothed fetch latency
};

/**
 * ObjectStore decorator that fail-fasts fetches when the inner store
 * is unhealthy. Thread-safe to the same degree as the base store;
 * state transitions sit behind one mutex that is NOT held across the
 * base fetch, so healthy traffic runs at full concurrency.
 *
 * Does not own the base store; it must outlive the wrapper.
 */
class BreakerObjectStore : public ObjectStore
{
  public:
    BreakerObjectStore(ObjectStore &base, BreakerConfig config);

    // Structural + pass-through surface (the convenience reads are
    // non-virtual wrappers on the base class and need no forwarding).
    void put(uint64_t id, EncodedImage image) override;
    bool contains(uint64_t id) const override;
    uint64_t storedBytes() const override;
    size_t size() const override;
    const EncodedImage &peek(uint64_t id) const override;
    ReadStats stats() const override;
    void resetStats() override;
    ObjectStore &root() override { return base_->root(); }

    /** The guarded path: fail fast when Open, probe when HalfOpen. */
    size_t fetchScanRange(uint64_t id, int from_scans, int to_scans,
                          std::vector<uint8_t> &dst, bool charge_full,
                          size_t max_bytes = SIZE_MAX,
                          const CancelToken *cancel = nullptr) override;

    /** Current state (racy snapshot; exact under external quiesce). */
    BreakerState state() const;

    /** Health + transition counters (racy snapshot, like state()). */
    BreakerStats breakerStats() const;

    const BreakerConfig &config() const { return cfg_; }

  private:
    /**
     * Gate one fetch: returns true when it may proceed (and whether it
     * counts as a HalfOpen probe), throws fail-fast Transient when not.
     */
    bool admit(double now, bool &is_probe);

    /** Record one admitted fetch's outcome and run the trip logic. */
    void settle(double now, bool is_probe, bool failed,
                double elapsed_s);

    ObjectStore *base_;
    BreakerConfig cfg_;
    Clock *clock_;

    mutable std::mutex mu_; //!< guards everything below
    BreakerState state_ = BreakerState::Closed;
    double opened_at_ = 0;      //!< clock time of the last trip
    int probes_in_flight_ = 0;  //!< admitted, un-settled probes
    int probe_successes_ = 0;   //!< consecutive, since HalfOpen entry
    WindowedOutcomes window_;
    Ewma latency_;
    BreakerStats counters_;     //!< state/rate fields filled on read
};

} // namespace tamres

#endif // TAMRES_STORAGE_BREAKER_HH
