#include "storage/object_store.hh"

#include "util/logging.hh"

namespace tamres {

void
ObjectStore::put(uint64_t id, EncodedImage image)
{
    objects_[id] = std::move(image);
}

bool
ObjectStore::contains(uint64_t id) const
{
    return objects_.count(id) != 0;
}

uint64_t
ObjectStore::storedBytes() const
{
    uint64_t total = 0;
    for (const auto &[id, obj] : objects_)
        total += obj.totalBytes();
    return total;
}

const EncodedImage &
ObjectStore::get(uint64_t id) const
{
    auto it = objects_.find(id);
    tamres_assert(it != objects_.end(),
                  "object %llu not in store",
                  static_cast<unsigned long long>(id));
    return it->second;
}

Image
ObjectStore::readScans(uint64_t id, int num_scans)
{
    const EncodedImage &obj = get(id);
    ++stats_.requests;
    stats_.bytes_read += obj.bytesForScans(num_scans);
    stats_.bytes_full += obj.totalBytes();
    return decodeProgressive(obj, num_scans);
}

Image
ObjectStore::readAdditionalScans(uint64_t id, int from_scans,
                                 int to_scans)
{
    const EncodedImage &obj = get(id);
    tamres_assert(from_scans >= 0 && to_scans >= from_scans &&
                  to_scans <= obj.numScans(),
                  "invalid incremental scan range [%d, %d]",
                  from_scans, to_scans);
    ++stats_.requests;
    stats_.bytes_read +=
        obj.bytesForScans(to_scans) - obj.bytesForScans(from_scans);
    // The full-read denominator was already charged by the first read
    // of this object in the same logical request, so don't double
    // count it.
    return decodeProgressive(obj, to_scans);
}

const EncodedImage &
ObjectStore::peek(uint64_t id) const
{
    return get(id);
}

} // namespace tamres
