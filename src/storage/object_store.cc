#include "storage/object_store.hh"

#include <algorithm>

#include "storage/decode_cache.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace tamres {

void
ObjectStore::put(uint64_t id, EncodedImage image)
{
    objects_[id] = std::move(image);
    // Replacing an object's bytes makes any cached decode of the old
    // bytes wrong — drop them before anyone can resume from them.
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (DecodeCache *cache : caches_)
        cache->invalidate(id);
}

void
ObjectStore::attachCache(DecodeCache *cache)
{
    ObjectStore &r = root();
    std::lock_guard<std::mutex> lock(r.cache_mu_);
    r.caches_.push_back(cache);
}

void
ObjectStore::detachCache(DecodeCache *cache)
{
    ObjectStore &r = root();
    std::lock_guard<std::mutex> lock(r.cache_mu_);
    r.caches_.erase(
        std::remove(r.caches_.begin(), r.caches_.end(), cache),
        r.caches_.end());
}

bool
ObjectStore::contains(uint64_t id) const
{
    return objects_.count(id) != 0;
}

uint64_t
ObjectStore::storedBytes() const
{
    uint64_t total = 0;
    for (const auto &[id, obj] : objects_)
        total += obj.totalBytes();
    return total;
}

const EncodedImage &
ObjectStore::get(uint64_t id) const
{
    auto it = objects_.find(id);
    // A missing id is a request error (bad manifest, deleted object),
    // not a library bug: callers map it to a per-request failure.
    tamres_check(it != objects_.end(), ErrorKind::NotFound,
                 "object %llu not in store",
                 static_cast<unsigned long long>(id));
    return it->second;
}

// The convenience reads are thin non-virtual wrappers over the one
// virtual primitive. Each builds a per-call delivery buffer, routes
// the physical transfer (and ALL metering) through fetchScanRange —
// so a decorator's override applies — and decodes the bytes actually
// delivered, never the pristine stored object.

Image
ObjectStore::readScans(uint64_t id, int num_scans)
{
    EncodedImage delivery = peek(id).headerCopy();
    fetchScanRange(id, 0, num_scans, delivery.bytes,
                   /*charge_full=*/true);
    return decodeProgressive(delivery, num_scans);
}

Image
ObjectStore::readAdditionalScans(uint64_t id, int from_scans,
                                 int to_scans)
{
    // The caller already holds (and was charged for) the first
    // from_scans scans, so the wrapper seeds the delivery buffer with
    // that prefix unmetered and fetches only the incremental range.
    // charge_full = false: the full-read denominator belongs to the
    // logical request's FIRST read, even for a from_scans == 0 range.
    const EncodedImage &obj = peek(id);
    EncodedImage delivery = obj.headerCopy();
    delivery.bytes.assign(obj.bytes.begin(),
                          obj.bytes.begin() +
                              obj.bytesForScans(from_scans));
    fetchScanRange(id, from_scans, to_scans, delivery.bytes,
                   /*charge_full=*/false);
    return decodeProgressive(delivery, to_scans);
}

size_t
ObjectStore::readScanRangeBytes(uint64_t id, int from_scans,
                                int to_scans)
{
    // Scratch delivery buffer: a zero-filled placeholder prefix (the
    // primitive only requires dst.size() == the range's start offset)
    // plus the fetched range, discarded after metering.
    std::vector<uint8_t> buf(peek(id).bytesForScans(from_scans));
    return fetchScanRange(id, from_scans, to_scans, buf,
                          /*charge_full=*/true);
}

size_t
ObjectStore::fetchScanRange(uint64_t id, int from_scans, int to_scans,
                            std::vector<uint8_t> &dst, bool charge_full,
                            size_t max_bytes, const CancelToken *cancel)
{
    const EncodedImage &obj = get(id);
    tamres_assert(from_scans >= 0 && to_scans >= from_scans &&
                  to_scans <= obj.numScans(),
                  "invalid incremental scan range [%d, %d]",
                  from_scans, to_scans);
    const size_t begin = obj.bytesForScans(from_scans);
    const size_t end = obj.bytesForScans(to_scans);
    tamres_assert(dst.size() == begin,
                  "delivery buffer holds %zu bytes, range starts at "
                  "%zu", dst.size(), begin);
    const size_t take = std::min(end - begin, max_bytes);
    // Deliver scan-at-a-time so a cooperative cancellation can land
    // between chunks: the delivered prefix always ends exactly where
    // metering says it does, and the caller's buffer never holds a
    // chunk the stats have not charged.
    size_t appended = 0;
    bool fired = false;
    for (int s = from_scans; s < to_scans && appended < take; ++s) {
        if (cancel != nullptr && cancel->fired()) {
            fired = true;
            break;
        }
        const size_t lo = obj.bytesForScans(s);
        const size_t hi =
            std::min(obj.bytesForScans(s + 1), begin + take);
        dst.insert(dst.end(), obj.bytes.begin() + lo,
                   obj.bytes.begin() + hi);
        appended += hi - lo;
    }
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.bytes_read += appended;
        // Charge the full-read denominator once per logical request:
        // on the first successful prefix-starting fetch. Retries of a
        // failed from == 0 fetch pass charge_full = false, and a
        // cancelled delivery never charges it (the logical request is
        // over, not served).
        if (from_scans == 0 && charge_full && !fired)
            stats_.bytes_full += obj.totalBytes();
    }
    if (fired)
        cancel->throwIfFired();
    return appended;
}

const EncodedImage &
ObjectStore::peek(uint64_t id) const
{
    return get(id);
}

ReadStats
ObjectStore::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

void
ObjectStore::resetStats()
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = ReadStats{};
}

} // namespace tamres
