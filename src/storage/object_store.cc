#include "storage/object_store.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/logging.hh"

namespace tamres {

void
ObjectStore::put(uint64_t id, EncodedImage image)
{
    objects_[id] = std::move(image);
}

bool
ObjectStore::contains(uint64_t id) const
{
    return objects_.count(id) != 0;
}

uint64_t
ObjectStore::storedBytes() const
{
    uint64_t total = 0;
    for (const auto &[id, obj] : objects_)
        total += obj.totalBytes();
    return total;
}

const EncodedImage &
ObjectStore::get(uint64_t id) const
{
    auto it = objects_.find(id);
    // A missing id is a request error (bad manifest, deleted object),
    // not a library bug: callers map it to a per-request failure.
    tamres_check(it != objects_.end(), ErrorKind::NotFound,
                 "object %llu not in store",
                 static_cast<unsigned long long>(id));
    return it->second;
}

Image
ObjectStore::readScans(uint64_t id, int num_scans)
{
    const EncodedImage &obj = get(id);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.bytes_read += obj.bytesForScans(num_scans);
        stats_.bytes_full += obj.totalBytes();
    }
    return decodeProgressive(obj, num_scans);
}

Image
ObjectStore::readAdditionalScans(uint64_t id, int from_scans,
                                 int to_scans)
{
    const EncodedImage &obj = get(id);
    tamres_assert(from_scans >= 0 && to_scans >= from_scans &&
                  to_scans <= obj.numScans(),
                  "invalid incremental scan range [%d, %d]",
                  from_scans, to_scans);
    const size_t bytes =
        obj.bytesForScans(to_scans) - obj.bytesForScans(from_scans);
    {
        // The full-read denominator was already charged by the first
        // read of this object in the same logical request (always a
        // readScans call), so don't double count it — even for a
        // from_scans == 0 range.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.bytes_read += bytes;
    }
    return decodeProgressive(obj, to_scans);
}

size_t
ObjectStore::readScanRangeBytes(uint64_t id, int from_scans,
                                int to_scans)
{
    const EncodedImage &obj = get(id);
    tamres_assert(from_scans >= 0 && to_scans >= from_scans &&
                  to_scans <= obj.numScans(),
                  "invalid incremental scan range [%d, %d]",
                  from_scans, to_scans);
    const size_t bytes =
        obj.bytesForScans(to_scans) - obj.bytesForScans(from_scans);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    stats_.bytes_read += bytes;
    // The full-read denominator is charged once per logical request:
    // on the first (prefix-starting) fetch. Incremental ranges were
    // already accounted by that fetch, so don't double count it.
    if (from_scans == 0)
        stats_.bytes_full += obj.totalBytes();
    return bytes;
}

size_t
ObjectStore::fetchScanRange(uint64_t id, int from_scans, int to_scans,
                            std::vector<uint8_t> &dst, bool charge_full,
                            size_t max_bytes, const CancelToken *cancel)
{
    const EncodedImage &obj = get(id);
    tamres_assert(from_scans >= 0 && to_scans >= from_scans &&
                  to_scans <= obj.numScans(),
                  "invalid incremental scan range [%d, %d]",
                  from_scans, to_scans);
    const size_t begin = obj.bytesForScans(from_scans);
    const size_t end = obj.bytesForScans(to_scans);
    tamres_assert(dst.size() == begin,
                  "delivery buffer holds %zu bytes, range starts at "
                  "%zu", dst.size(), begin);
    const size_t take = std::min(end - begin, max_bytes);
    // Deliver scan-at-a-time so a cooperative cancellation can land
    // between chunks: the delivered prefix always ends exactly where
    // metering says it does, and the caller's buffer never holds a
    // chunk the stats have not charged.
    size_t appended = 0;
    bool fired = false;
    for (int s = from_scans; s < to_scans && appended < take; ++s) {
        if (cancel != nullptr && cancel->fired()) {
            fired = true;
            break;
        }
        const size_t lo = obj.bytesForScans(s);
        const size_t hi =
            std::min(obj.bytesForScans(s + 1), begin + take);
        dst.insert(dst.end(), obj.bytes.begin() + lo,
                   obj.bytes.begin() + hi);
        appended += hi - lo;
    }
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.bytes_read += appended;
        // Charge the full-read denominator once per logical request:
        // on the first successful prefix-starting fetch. Retries of a
        // failed from == 0 fetch pass charge_full = false, and a
        // cancelled delivery never charges it (the logical request is
        // over, not served).
        if (from_scans == 0 && charge_full && !fired)
            stats_.bytes_full += obj.totalBytes();
    }
    if (fired)
        cancel->throwIfFired();
    return appended;
}

const EncodedImage &
ObjectStore::peek(uint64_t id) const
{
    return get(id);
}

ReadStats
ObjectStore::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

void
ObjectStore::resetStats()
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = ReadStats{};
}

} // namespace tamres
