/**
 * @file
 * Hot-object decode cache for Zipfian traffic.
 *
 * Under heavy-tailed popularity most ranged reads re-fetch and
 * re-decode the same preview prefixes. DecodeCache converts that
 * redundancy into bytes-read and latency savings: entries are keyed
 * by (object id, scan depth) and hold the decoded preview Image plus
 * an immutable DecoderSnapshot of the ProgressiveDecoder's state at
 * that scan boundary, so a request can either reuse the preview
 * outright or resume a decoder from the snapshot and fetch only the
 * missing byte range. Full contract in docs/caching.md.
 *
 * Correctness anchors:
 *
 *  - Bit-identity: a snapshot resume is bit-identical to a cold
 *    decode of the same depth (codec invariant, asserted in
 *    tests/test_codec_resume.cc), so a cache hit can never change a
 *    served result — only how many bytes paid for it.
 *  - No aliasing: entries are immutable and handed out as
 *    shared_ptr<const Entry>; resuming deep-copies the coefficients
 *    into the request's own decoder, so any number of concurrent
 *    readers share one entry while eviction proceeds underneath them.
 *  - Invalidation: ObjectStore::put() calls invalidate(id) on every
 *    cache attached via ObjectStore::attachCache(), so a replaced
 *    object's stale decodes are dropped before anyone resumes them.
 *
 * Sizing and churn control:
 *
 *  - Byte-accounted capacity: an entry is charged for its preview
 *    pixels, its snapshot's coefficient planes, and a fixed metadata
 *    overhead. Inserting past capacity evicts from the LRU tail.
 *  - Second-hit admission: the first insert attempt for a key only
 *    registers it in a bounded seen-table; the entry is admitted on
 *    the second attempt. One-hit wonders in a Zipf tail thus never
 *    churn the hot set (disable with require_second_hit = false).
 *
 * Thread safety: every method is safe from concurrent decode workers;
 * one internal mutex guards the index, the LRU list, and the stats.
 */

#ifndef TAMRES_STORAGE_DECODE_CACHE_HH
#define TAMRES_STORAGE_DECODE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "codec/progressive.hh"
#include "image/image.hh"

namespace tamres {

/** DecodeCache knobs. */
struct DecodeCacheConfig
{
    /** Byte budget across all entries (preview + snapshot + overhead). */
    size_t capacity_bytes = 64u << 20;

    /**
     * Admit a key only on its SECOND insert attempt (TinyLFU-style
     * frequency gate at depth 1). False admits everything first-touch.
     */
    bool require_second_hit = true;

    /**
     * Bound on the seen-table the admission gate remembers first
     * touches in; when full it is cleared wholesale (a coarse reset —
     * some keys pay one extra miss, nothing is ever served stale).
     */
    size_t seen_capacity = 4096;
};

/** Counter snapshot from DecodeCache::stats(). */
struct DecodeCacheStats
{
    uint64_t hits = 0;              //!< lookups that returned an entry
    uint64_t misses = 0;            //!< lookups that found nothing
    uint64_t insertions = 0;        //!< entries admitted
    uint64_t admission_rejects = 0; //!< inserts gated out (first touch)
    uint64_t evictions = 0;         //!< entries dropped for capacity
    uint64_t invalidations = 0;     //!< entries dropped by put()
    uint64_t entries = 0;           //!< resident entries right now
    uint64_t bytes = 0;             //!< resident charged bytes right now
};

/**
 * Size-bounded, byte-accounted cache of decoded scan prefixes (see
 * file docs for the full contract).
 */
class DecodeCache
{
  public:
    /** One immutable cached prefix. */
    struct Entry
    {
        uint64_t id = 0;       //!< object the prefix belongs to
        int depth = 0;         //!< scans decoded into this entry
        Image preview;         //!< decoded image at depth (may be
                               //!< empty: snapshot-only entries)
        DecoderSnapshot snap;  //!< resumable decoder state at depth
        size_t charged_bytes = 0; //!< what capacity accounting charged
    };
    using EntryPtr = std::shared_ptr<const Entry>;

    explicit DecodeCache(DecodeCacheConfig config = {});

    DecodeCache(const DecodeCache &) = delete;
    DecodeCache &operator=(const DecodeCache &) = delete;

    /**
     * Deepest entry for @p id with min_depth <= depth <= max_depth,
     * or null. A hit refreshes the entry's LRU position. The returned
     * entry stays valid (immutable) even if it is evicted or
     * invalidated after return.
     */
    EntryPtr lookup(uint64_t id, int min_depth, int max_depth);

    /**
     * Offer a decoded prefix for caching. May be gated out by
     * second-hit admission or a per-entry size above capacity; an
     * existing entry at the same (id, depth) is refreshed, not
     * duplicated. @p preview may be empty for snapshot-only entries
     * (deep prefixes whose pixels were never materialized); @p snap
     * must be valid. Evicts LRU entries until the newcomer fits.
     */
    void insert(uint64_t id, int depth, Image preview,
                DecoderSnapshot snap);

    /** Drop every entry (any depth) for @p id. */
    void invalidate(uint64_t id);

    /** Drop everything (admission memory included); stats survive. */
    void clear();

    /** Counter snapshot (safe while serving). */
    DecodeCacheStats stats() const;

    const DecodeCacheConfig &config() const { return cfg_; }

  private:
    using LruList = std::list<EntryPtr>;

    /** Unlink one entry from the index + LRU and refund its bytes. */
    void removeLocked(uint64_t id, int depth);
    /** Evict LRU tail entries until used_bytes_ <= capacity. */
    void evictToFitLocked();

    DecodeCacheConfig cfg_;

    mutable std::mutex mu_; //!< guards everything below
    LruList lru_;           //!< front = most recently used
    /** id -> (depth -> LRU position), depths sorted for range lookup. */
    std::unordered_map<uint64_t, std::map<int, LruList::iterator>>
        index_;
    /** Admission memory: id -> depths seen once (bounded, see config). */
    std::unordered_map<uint64_t, std::unordered_set<int>> seen_;
    size_t seen_count_ = 0;
    size_t used_bytes_ = 0;
    DecodeCacheStats stats_;
};

} // namespace tamres

#endif // TAMRES_STORAGE_DECODE_CACHE_HH
