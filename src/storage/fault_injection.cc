#include "storage/fault_injection.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/error.hh"
#include "util/rng.hh"

namespace tamres {

namespace {

/** splitmix64 finalizer: turns a counter into a well-mixed word. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine fault-draw inputs into one deterministic 64-bit seed. */
uint64_t
mixSeed(uint64_t seed, uint64_t id, int from, int to, int attempt)
{
    uint64_t h = mix64(seed);
    h = mix64(h ^ id);
    h = mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(from))
                   << 32 | static_cast<uint32_t>(to)));
    h = mix64(h ^ static_cast<uint64_t>(attempt));
    return h;
}

/** Key for the per-range attempt counter. */
uint64_t
rangeKey(uint64_t id, int from, int to)
{
    return mix64(mix64(id) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(from))
                  << 32 | static_cast<uint32_t>(to)));
}

} // namespace

void
FaultyObjectStore::put(uint64_t id, EncodedImage image)
{
    base_->put(id, std::move(image));
}

bool
FaultyObjectStore::contains(uint64_t id) const
{
    return base_->contains(id);
}

uint64_t
FaultyObjectStore::storedBytes() const
{
    return base_->storedBytes();
}

size_t
FaultyObjectStore::size() const
{
    return base_->size();
}

const EncodedImage &
FaultyObjectStore::peek(uint64_t id) const
{
    return base_->peek(id);
}

ReadStats
FaultyObjectStore::stats() const
{
    ReadStats out = base_->stats();
    std::lock_guard<std::mutex> lock(mu_);
    out.faults_delayed += fault_stats_.faults_delayed;
    out.faults_transient += fault_stats_.faults_transient;
    out.faults_truncated += fault_stats_.faults_truncated;
    out.faults_corrupted += fault_stats_.faults_corrupted;
    out.faults_hung += fault_stats_.faults_hung;
    return out;
}

void
FaultyObjectStore::resetStats()
{
    base_->resetStats();
    std::lock_guard<std::mutex> lock(mu_);
    fault_stats_ = ReadStats{};
}

void
FaultyObjectStore::resetAttempts()
{
    std::lock_guard<std::mutex> lock(mu_);
    attempts_.clear();
}

void
FaultyObjectStore::releaseHangs()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        hangs_released_ = true;
    }
    hang_cv_.notify_all();
}

FaultDecision
FaultyObjectStore::decide(const FaultContext &ctx)
{
    if (policy_.script)
        return policy_.script(ctx);

    FaultDecision d;
    Rng rng(mixSeed(policy_.seed, ctx.id, ctx.from_scans, ctx.to_scans,
                    ctx.attempt));
    d.delay_s = policy_.latency_fixed_s;
    if (policy_.latency_tail_p > 0 &&
        rng.bernoulli(policy_.latency_tail_p)) {
        // Pareto(alpha = 2): x = scale / sqrt(1 - u).
        const double u = rng.uniform();
        d.delay_s += policy_.latency_tail_scale_s /
                     std::sqrt(1.0 - std::min(u, 1.0 - 1e-12));
    }
    d.delay_s = std::min(d.delay_s, policy_.latency_max_s);
    if (policy_.hang_p > 0 && rng.bernoulli(policy_.hang_p)) {
        d.hang = true;
        return d; // a wedged read delivers nothing at all
    }
    if (policy_.transient_p > 0 && rng.bernoulli(policy_.transient_p)) {
        d.fail = true;
        return d; // a failed request neither truncates nor corrupts
    }
    if (policy_.truncate_p > 0 && ctx.range_bytes > 0 &&
        rng.bernoulli(policy_.truncate_p)) {
        d.deliver_bytes = rng.uniformInt(ctx.range_bytes);
    }
    if (policy_.corrupt_p > 0 && ctx.range_bytes > 0 &&
        rng.bernoulli(policy_.corrupt_p)) {
        d.flip_bit = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(ctx.range_bytes) * 8));
    }
    return d;
}

size_t
FaultyObjectStore::fetchScanRange(uint64_t id, int from_scans,
                                  int to_scans,
                                  std::vector<uint8_t> &dst,
                                  bool charge_full, size_t max_bytes,
                                  const CancelToken *cancel)
{
    // Resolve metadata first: a missing object throws NotFound before
    // any fault is drawn (injection perturbs deliveries, not lookups).
    const EncodedImage &obj = base_->peek(id);
    const size_t clean = obj.bytesForScans(to_scans) -
                         obj.bytesForScans(from_scans);

    FaultContext ctx;
    ctx.id = id;
    ctx.from_scans = from_scans;
    ctx.to_scans = to_scans;
    ctx.range_bytes = clean;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ctx.attempt = attempts_[rangeKey(id, from_scans, to_scans)]++;
    }
    const FaultDecision d = decide(ctx);

    if (d.delay_s > 0) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++fault_stats_.faults_delayed;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(d.delay_s));
    }
    if (d.hang) {
        // A wedged read: block until the caller's token fires or the
        // hangs are released, then throw. The wait polls — a fired
        // deadline on a ManualClock has no notifier, and 1 ms of wall
        // latency on an already-doomed read is noise.
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++fault_stats_.faults_hung;
            while (!hangs_released_ &&
                   !(cancel != nullptr && cancel->fired()))
                hang_cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
        if (cancel != nullptr)
            cancel->throwIfFired(); // Abandoned/Watchdog -> Transient
        throwError(ErrorKind::Transient,
                   "injected hung read released: object %llu scans "
                   "[%d, %d) attempt %d",
                   static_cast<unsigned long long>(id), from_scans,
                   to_scans, ctx.attempt);
    }
    if (d.fail) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++fault_stats_.faults_transient;
        }
        throwError(ErrorKind::Transient,
                   "injected transient fault: object %llu scans "
                   "[%d, %d) attempt %d",
                   static_cast<unsigned long long>(id), from_scans,
                   to_scans, ctx.attempt);
    }

    const size_t cap = std::min(max_bytes, d.deliver_bytes);
    const size_t before = dst.size();
    const size_t got =
        base_->fetchScanRange(id, from_scans, to_scans, dst,
                              charge_full, cap, cancel);
    if (d.deliver_bytes < clean && got < clean) {
        std::lock_guard<std::mutex> lock(mu_);
        ++fault_stats_.faults_truncated;
    }
    if (d.flip_bit >= 0 && got > 0) {
        // Corrupt only the freshly appended bytes: the caller's
        // already-verified prefix stays intact, as it would on a real
        // link where earlier responses landed clean.
        const size_t bit =
            static_cast<size_t>(d.flip_bit) % (got * 8);
        dst[before + bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        std::lock_guard<std::mutex> lock(mu_);
        ++fault_stats_.faults_corrupted;
    }
    return got;
}

} // namespace tamres
