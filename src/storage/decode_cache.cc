#include "storage/decode_cache.hh"

#include "util/logging.hh"

namespace tamres {

namespace {

/**
 * Fixed per-entry charge covering the index node, the LRU node, the
 * Entry struct and the shared_ptr control block — so a cache of many
 * tiny snapshots cannot pretend it is free.
 */
constexpr size_t kEntryOverheadBytes = 256;

size_t
entryBytes(const Image &preview, const DecoderSnapshot &snap)
{
    return preview.numel() * sizeof(float) + snap.coeffBytes() +
           kEntryOverheadBytes;
}

} // namespace

DecodeCache::DecodeCache(DecodeCacheConfig config) : cfg_(config) {}

DecodeCache::EntryPtr
DecodeCache::lookup(uint64_t id, int min_depth, int max_depth)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(id);
    if (it != index_.end() && !it->second.empty()) {
        // Deepest depth <= max_depth: the first element at or before
        // the upper bound in the sorted per-id depth map.
        auto dit = it->second.upper_bound(max_depth);
        if (dit != it->second.begin()) {
            --dit;
            if (dit->first >= min_depth) {
                // Refresh recency: splice the hit to the LRU front.
                lru_.splice(lru_.begin(), lru_, dit->second);
                ++stats_.hits;
                return *dit->second;
            }
        }
    }
    ++stats_.misses;
    return nullptr;
}

void
DecodeCache::insert(uint64_t id, int depth, Image preview,
                    DecoderSnapshot snap)
{
    tamres_assert(snap.valid(),
                  "decode cache entries need a valid snapshot");
    tamres_assert(snap.scansDecoded() == depth,
                  "snapshot depth %d does not match entry depth %d",
                  snap.scansDecoded(), depth);
    const size_t bytes = entryBytes(preview, snap);

    std::lock_guard<std::mutex> lock(mu_);
    if (bytes > cfg_.capacity_bytes) {
        ++stats_.admission_rejects; // could only fit by emptying it
        return;
    }
    auto it = index_.find(id);
    if (it != index_.end()) {
        auto dit = it->second.find(depth);
        if (dit != it->second.end()) {
            // Already resident: refresh recency, keep the original
            // (identical — decode is deterministic) entry.
            lru_.splice(lru_.begin(), lru_, dit->second);
            return;
        }
    }
    if (cfg_.require_second_hit) {
        auto &depths = seen_[id];
        if (depths.insert(depth).second) {
            // First touch: remember it, admit on the next offer.
            ++stats_.admission_rejects;
            if (++seen_count_ > cfg_.seen_capacity) {
                seen_.clear();
                seen_count_ = 0;
            }
            return;
        }
        depths.erase(depth);
        if (depths.empty())
            seen_.erase(id);
        --seen_count_;
    }

    auto entry = std::make_shared<Entry>();
    entry->id = id;
    entry->depth = depth;
    entry->preview = std::move(preview);
    entry->snap = std::move(snap);
    entry->charged_bytes = bytes;
    lru_.push_front(std::move(entry));
    index_[id][depth] = lru_.begin();
    used_bytes_ += bytes;
    ++stats_.insertions;
    evictToFitLocked();
}

void
DecodeCache::removeLocked(uint64_t id, int depth)
{
    auto it = index_.find(id);
    if (it == index_.end())
        return;
    auto dit = it->second.find(depth);
    if (dit == it->second.end())
        return;
    used_bytes_ -= (*dit->second)->charged_bytes;
    lru_.erase(dit->second);
    it->second.erase(dit);
    if (it->second.empty())
        index_.erase(it);
}

void
DecodeCache::evictToFitLocked()
{
    while (used_bytes_ > cfg_.capacity_bytes && !lru_.empty()) {
        const EntryPtr victim = lru_.back();
        removeLocked(victim->id, victim->depth);
        ++stats_.evictions;
    }
}

void
DecodeCache::invalidate(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end())
        return;
    while (!it->second.empty()) {
        removeLocked(id, it->second.begin()->first);
        ++stats_.invalidations;
        it = index_.find(id);
        if (it == index_.end())
            break;
    }
    // Forget admission history too: the new object's first offer is a
    // genuinely new key.
    auto sit = seen_.find(id);
    if (sit != seen_.end()) {
        seen_count_ -= sit->second.size();
        seen_.erase(sit);
    }
}

void
DecodeCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    seen_.clear();
    seen_count_ = 0;
    used_bytes_ = 0;
}

DecodeCacheStats
DecodeCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    DecodeCacheStats out = stats_;
    out.entries = static_cast<uint64_t>(lru_.size());
    out.bytes = static_cast<uint64_t>(used_bytes_);
    return out;
}

} // namespace tamres
