/**
 * @file
 * Cloud cost accounting for image-serving workloads.
 *
 * The paper's motivation (Sections I and VIII-b) is monetary: cloud
 * deployments bill stored bytes, egress bytes, and requests, so the
 * 20-30% read reductions of calibrated/dynamic policies translate to
 * dollars. This model prices a workload (image corpus + monthly
 * inference volume) under a pricing sheet patterned on public object
 * stores, so bench/cloud_cost can print full-read vs. calibrated vs.
 * dynamic bills side by side.
 */

#ifndef TAMRES_STORAGE_COST_HH
#define TAMRES_STORAGE_COST_HH

#include <cstdint>

namespace tamres {

/** Pricing sheet (USD). Defaults mirror common object-store tiers. */
struct CloudPricing
{
    double storage_gb_month = 0.023; //!< $/GB-month at rest
    double egress_gb = 0.09;         //!< $/GB transferred out
    double request_per_10k = 0.004;  //!< $/10k GET requests
};

/** A month of inference traffic against a stored corpus. */
struct Workload
{
    int64_t corpus_images = 1000000;   //!< images at rest
    double mean_image_bytes = 120000;  //!< full encoded size
    int64_t reads_per_month = 10000000; //!< inference requests
    /**
     * Mean fraction of each image's bytes actually transferred per
     * read (1.0 = full reads; calibrated/dynamic policies lower it;
     * incremental fetches that need a second request are charged via
     * extra_requests_per_read).
     */
    double mean_read_fraction = 1.0;
    double extra_requests_per_read = 0.0; //!< e.g. second-range GETs
};

/** Itemized monthly bill. */
struct MonthlyCost
{
    double storage_usd = 0.0;
    double egress_usd = 0.0;
    double request_usd = 0.0;

    double total() const { return storage_usd + egress_usd + request_usd; }
};

/** Price @p workload under @p pricing. */
MonthlyCost monthlyCost(const Workload &workload,
                        const CloudPricing &pricing = {});

} // namespace tamres

#endif // TAMRES_STORAGE_COST_HH
