#include "storage/cost.hh"

#include "util/logging.hh"

namespace tamres {

MonthlyCost
monthlyCost(const Workload &w, const CloudPricing &p)
{
    tamres_assert(w.corpus_images >= 0 && w.mean_image_bytes >= 0 &&
                  w.reads_per_month >= 0,
                  "workload quantities must be non-negative");
    tamres_assert(w.mean_read_fraction >= 0.0 &&
                  w.mean_read_fraction <= 1.0,
                  "read fraction must be in [0, 1]");
    constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

    MonthlyCost cost;
    cost.storage_usd = static_cast<double>(w.corpus_images) *
                       w.mean_image_bytes / kGiB * p.storage_gb_month;
    cost.egress_usd = static_cast<double>(w.reads_per_month) *
                      w.mean_image_bytes * w.mean_read_fraction / kGiB *
                      p.egress_gb;
    cost.request_usd = static_cast<double>(w.reads_per_month) *
                       (1.0 + w.extra_requests_per_read) / 10000.0 *
                       p.request_per_10k;
    return cost;
}

} // namespace tamres
