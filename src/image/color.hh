/**
 * @file
 * RGB <-> YCbCr color transform (JPEG / BT.601 full-range convention).
 *
 * The progressive codec can operate either directly on the stored
 * planes ("planar" mode, the historical default) or in a luma/chroma
 * space, which is what real progressive JPEG does: the eye — and, it
 * turns out, classification accuracy — is far more sensitive to
 * luminance detail than to chrominance detail, so the chroma planes
 * can be quantized harder and optionally subsampled 2x2 (4:2:0)
 * before encoding. The transform here is the JFIF full-range variant:
 * all three output planes span [0, 1], with Cb/Cr centered at 0.5.
 */

#ifndef TAMRES_IMAGE_COLOR_HH
#define TAMRES_IMAGE_COLOR_HH

#include "image/image.hh"

namespace tamres {

/**
 * Convert a 3-channel RGB image in [0, 1] to full-range YCbCr.
 * Plane 0 is luma; planes 1 and 2 are Cb/Cr offset to [0, 1].
 */
Image rgbToYcbcr(const Image &rgb);

/** Inverse of rgbToYcbcr(); output is clamped to [0, 1]. */
Image ycbcrToRgb(const Image &ycbcr);

/**
 * Box-downsample a single-channel plane by 2x2 (4:2:0 chroma
 * subsampling). Odd dimensions round up: output is ceil(h/2) x
 * ceil(w/2), edge pixels averaging only the in-bounds samples.
 */
Image downsamplePlane2x2(const Image &plane);

/**
 * Bilinear 2x upsample of a single-channel plane back to an explicit
 * (out_h, out_w) full-resolution size (the inverse of
 * downsamplePlane2x2 up to interpolation loss).
 */
Image upsamplePlane2x(const Image &plane, int out_h, int out_w);

/**
 * Scale chroma contrast of an RGB image by @p keep in [0, 1] (0 =
 * grayscale, 1 = unchanged). The synthetic generator textures RGB
 * channels independently, which is unnaturally chroma-busy compared
 * with photographs, whose channels correlate strongly; experiments on
 * chroma-aware codec modes use this to restore natural statistics.
 */
Image desaturateChroma(const Image &rgb, float keep);

} // namespace tamres

#endif // TAMRES_IMAGE_COLOR_HH
