#include "image/synthetic.hh"
#include <algorithm>

#include <cmath>

#include "util/rng.hh"

namespace tamres {

namespace {

/** Integer lattice hash -> [0, 1). */
double
latticeNoise(uint64_t seed, int64_t x, int64_t y)
{
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(x) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<uint64_t>(y) * 0xc2b2ae3d27d4eb4full;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return (h >> 11) * 0x1.0p-53;
}

/** Smoothly interpolated value noise at one frequency. */
double
valueNoise(uint64_t seed, double x, double y)
{
    const int64_t x0 = static_cast<int64_t>(std::floor(x));
    const int64_t y0 = static_cast<int64_t>(std::floor(y));
    const double fx = x - x0;
    const double fy = y - y0;
    // smoothstep weights
    const double wx = fx * fx * (3 - 2 * fx);
    const double wy = fy * fy * (3 - 2 * fy);
    const double v00 = latticeNoise(seed, x0, y0);
    const double v01 = latticeNoise(seed, x0 + 1, y0);
    const double v10 = latticeNoise(seed, x0, y0 + 1);
    const double v11 = latticeNoise(seed, x0 + 1, y0 + 1);
    return v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
           v10 * wy * (1 - wx) + v11 * wy * wx;
}

/** Multi-octave 1/f-ish noise in [0, 1]. */
double
fractalNoise(uint64_t seed, double x, double y, int octaves,
             double detail)
{
    double acc = 0.0;
    double amp = 1.0;
    double norm = 0.0;
    double freq = 1.0;
    for (int o = 0; o < octaves; ++o) {
        acc += amp * valueNoise(seed + o * 1000003ull, x * freq, y * freq);
        norm += amp;
        // "detail" shifts energy toward higher octaves.
        amp *= 0.35 + 0.45 * detail;
        freq *= 2.0;
    }
    return acc / norm;
}

/**
 * Signed distance-like membership of a point in the class's shape
 * archetype. (px, py) are object-local coordinates in [-1, 1].
 * Returns > 0 inside the shape, with soft edges handled by caller.
 */
double
shapeMembership(int archetype, double px, double py)
{
    const double r = std::sqrt(px * px + py * py);
    switch (archetype % 8) {
      case 0: // disk
        return 1.0 - r;
      case 1: // square
        return 1.0 - std::max(std::fabs(px), std::fabs(py));
      case 2: // ring
        return 0.35 - std::fabs(r - 0.65);
      case 3: // diamond
        return 1.0 - (std::fabs(px) + std::fabs(py));
      case 4: // horizontal bar
        return std::min(1.0 - std::fabs(px), 0.45 - std::fabs(py));
      case 5: // cross
        return std::max(std::min(1.0 - std::fabs(px),
                                 0.3 - std::fabs(py)),
                        std::min(1.0 - std::fabs(py),
                                 0.3 - std::fabs(px)));
      case 6: // triangle (upward)
        return std::min({py + 0.8, 0.8 - py - 1.6 * px,
                         0.8 - py + 1.6 * px}) / 1.6;
      default: // crescent
        return std::min(1.0 - r,
                        std::sqrt((px - 0.35) * (px - 0.35) + py * py) -
                            0.55);
    }
}

} // namespace

Image
generateSyntheticImage(const SyntheticImageSpec &spec)
{
    tamres_assert(spec.num_classes > 0 &&
                  spec.class_id >= 0 && spec.class_id < spec.num_classes,
                  "class id out of range");
    tamres_assert(spec.object_scale > 0.0 && spec.object_scale <= 1.5,
                  "object scale must be in (0, 1.5]");

    Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + spec.class_id);
    Image img(spec.height, spec.width, 3);

    // Class-dependent appearance parameters.
    const int archetype = spec.class_id;
    Rng class_rng(0xabcdull + spec.class_id * 7919ull);
    const double hue[3] = {class_rng.uniform(0.2, 1.0),
                           class_rng.uniform(0.2, 1.0),
                           class_rng.uniform(0.2, 1.0)};
    // Texture frequency painted on the object; classes differ so that
    // fine detail carries class-discriminative information (like the
    // paper's remark on texture vs. shape importance across datasets).
    const double obj_freq = 2.0 + 2.0 * (spec.class_id % 4);

    // Instance pose: small random offset and rotation.
    const double cx = 0.5 + rng.uniform(-0.08, 0.08);
    const double cy = 0.5 + rng.uniform(-0.08, 0.08);
    const double theta = rng.uniform(0.0, 2 * M_PI);
    const double cos_t = std::cos(theta);
    const double sin_t = std::sin(theta);

    const double short_side = std::min(spec.height, spec.width);
    const double radius = 0.5 * spec.object_scale * short_side;

    const uint64_t bg_seed = rng.next();
    const uint64_t tex_seed = rng.next();
    const double bg_base_freq = 4.0 / short_side;

    for (int y = 0; y < spec.height; ++y) {
        for (int x = 0; x < spec.width; ++x) {
            // Background: colored fractal noise.
            for (int c = 0; c < 3; ++c) {
                const double v = fractalNoise(
                    bg_seed + c * 17ull, x * bg_base_freq * 8,
                    y * bg_base_freq * 8, 5, spec.texture_detail);
                img.at(c, y, x) = static_cast<float>(0.25 + 0.5 * v);
            }

            // Object-local coordinates (rotated, normalized by radius).
            const double dx = (x - cx * spec.width) / radius;
            const double dy = (y - cy * spec.height) / radius;
            const double px = cos_t * dx - sin_t * dy;
            const double py = sin_t * dx + cos_t * dy;
            if (std::fabs(px) > 1.4 || std::fabs(py) > 1.4)
                continue;

            const double m = shapeMembership(archetype, px, py);
            if (m <= 0.0)
                continue;
            // Soft edge over ~6% of the radius for band-limited borders.
            const double alpha = std::min(1.0, m / 0.06);

            // Object texture: class-frequency stripes + noise.
            const double stripe =
                0.5 + 0.35 * std::sin(obj_freq * M_PI * (px + py));
            const double grain = fractalNoise(tex_seed, px * 6 + 9,
                                              py * 6 + 9, 3, 0.7);
            for (int c = 0; c < 3; ++c) {
                const double obj_v =
                    hue[c] * (0.55 * stripe + 0.45 * grain);
                img.at(c, y, x) = static_cast<float>(
                    (1 - alpha) * img.at(c, y, x) + alpha * obj_v);
            }
        }
    }
    img.clamp01();
    return img;
}

} // namespace tamres
