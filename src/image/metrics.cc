#include "image/metrics.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

namespace tamres {

namespace {

void
checkSame(const Image &a, const Image &b)
{
    tamres_assert(a.height() == b.height() && a.width() == b.width() &&
                  a.channels() == b.channels(),
                  "metric inputs must have identical dimensions");
}

/** 11-tap Gaussian kernel with sigma 1.5, normalized to sum 1. */
std::array<double, 11>
gaussian11()
{
    std::array<double, 11> k{};
    const double sigma = 1.5;
    double sum = 0.0;
    for (int i = 0; i < 11; ++i) {
        const double d = i - 5;
        k[i] = std::exp(-d * d / (2 * sigma * sigma));
        sum += k[i];
    }
    for (double &v : k)
        v /= sum;
    return k;
}

/**
 * Separable 11x11 Gaussian blur of a single plane with edge clamping.
 */
std::vector<double>
blurPlane(const float *src, int h, int w)
{
    static const std::array<double, 11> kernel = gaussian11();
    std::vector<double> tmp(static_cast<size_t>(h) * w);
    std::vector<double> out(static_cast<size_t>(h) * w);
    // Horizontal pass.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            double acc = 0.0;
            for (int i = 0; i < 11; ++i) {
                int xx = std::clamp(x + i - 5, 0, w - 1);
                acc += kernel[i] * src[y * w + xx];
            }
            tmp[static_cast<size_t>(y) * w + x] = acc;
        }
    }
    // Vertical pass.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            double acc = 0.0;
            for (int i = 0; i < 11; ++i) {
                int yy = std::clamp(y + i - 5, 0, h - 1);
                acc += kernel[i] * tmp[static_cast<size_t>(yy) * w + x];
            }
            out[static_cast<size_t>(y) * w + x] = acc;
        }
    }
    return out;
}

} // namespace

double
mse(const Image &a, const Image &b)
{
    checkSame(a, b);
    const float *pa = a.data();
    const float *pb = b.data();
    double acc = 0.0;
    const size_t n = a.numel();
    for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(pa[i]) - pb[i];
        acc += d * d;
    }
    return acc / static_cast<double>(n);
}

double
psnr(const Image &a, const Image &b)
{
    const double m = mse(a, b);
    if (m <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / m);
}

namespace {

/** Per-channel mean contrast-structure term and mean full SSIM term. */
struct SsimTerms
{
    double cs = 0.0;   //!< mean (2 cov + C2) / (va + vb + C2)
    double full = 0.0; //!< mean full SSIM (luminance included)
};

SsimTerms
ssimTerms(const Image &a, const Image &b)
{
    const double c1 = 0.01 * 0.01;
    const double c2 = 0.03 * 0.03;
    const int h = a.height();
    const int w = a.width();
    SsimTerms terms;
    for (int c = 0; c < a.channels(); ++c) {
        const float *pa = a.plane(c);
        const float *pb = b.plane(c);
        const size_t n = static_cast<size_t>(h) * w;

        std::vector<float> aa(n), bb(n), ab(n);
        for (size_t i = 0; i < n; ++i) {
            aa[i] = pa[i] * pa[i];
            bb[i] = pb[i] * pb[i];
            ab[i] = pa[i] * pb[i];
        }

        const auto mu_a = blurPlane(pa, h, w);
        const auto mu_b = blurPlane(pb, h, w);
        const auto m_aa = blurPlane(aa.data(), h, w);
        const auto m_bb = blurPlane(bb.data(), h, w);
        const auto m_ab = blurPlane(ab.data(), h, w);

        double acc_cs = 0.0, acc_full = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double ma = mu_a[i];
            const double mb = mu_b[i];
            const double va = m_aa[i] - ma * ma;
            const double vb = m_bb[i] - mb * mb;
            const double cov = m_ab[i] - ma * mb;
            const double cs = (2 * cov + c2) / (va + vb + c2);
            const double lum =
                (2 * ma * mb + c1) / (ma * ma + mb * mb + c1);
            acc_cs += cs;
            acc_full += lum * cs;
        }
        terms.cs += acc_cs / static_cast<double>(n);
        terms.full += acc_full / static_cast<double>(n);
    }
    terms.cs /= a.channels();
    terms.full /= a.channels();
    return terms;
}

/** Downsample a plane pair by 2x2 averaging (shared by msSsim). */
Image
halve(const Image &src)
{
    const int h = std::max(1, src.height() / 2);
    const int w = std::max(1, src.width() / 2);
    return resizeArea(src, h, w);
}

} // namespace

double
msSsim(const Image &a, const Image &b, int levels)
{
    checkSame(a, b);
    tamres_assert(levels >= 1, "msSsim needs at least one level");
    // Standard MS-SSIM exponents (Wang et al. 2003).
    static const double kWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363,
                                       0.1333};
    levels = std::min(levels, 5);
    // Keep the coarsest scale at least as large as the 11-tap window.
    while (levels > 1 &&
           (std::min(a.height(), a.width()) >> (levels - 1)) < 11)
        --levels;

    double wsum = 0.0;
    for (int l = 0; l < levels; ++l)
        wsum += kWeights[l];

    Image ca = a, cb = b;
    double score = 1.0;
    for (int l = 0; l < levels; ++l) {
        const SsimTerms t = ssimTerms(ca, cb);
        const double weight = kWeights[l] / wsum;
        // Luminance enters at the coarsest level only.
        const double term = (l == levels - 1) ? t.full : t.cs;
        score *= std::pow(std::max(term, 1e-9), weight);
        if (l + 1 < levels) {
            ca = halve(ca);
            cb = halve(cb);
        }
    }
    return score;
}

double
ssim(const Image &a, const Image &b)
{
    checkSame(a, b);
    const double c1 = 0.01 * 0.01;
    const double c2 = 0.03 * 0.03;
    const int h = a.height();
    const int w = a.width();
    double total = 0.0;
    for (int c = 0; c < a.channels(); ++c) {
        const float *pa = a.plane(c);
        const float *pb = b.plane(c);
        const size_t n = static_cast<size_t>(h) * w;

        // Products needed for local variances/covariance.
        std::vector<float> aa(n), bb(n), ab(n);
        for (size_t i = 0; i < n; ++i) {
            aa[i] = pa[i] * pa[i];
            bb[i] = pb[i] * pb[i];
            ab[i] = pa[i] * pb[i];
        }

        const auto mu_a = blurPlane(pa, h, w);
        const auto mu_b = blurPlane(pb, h, w);
        const auto m_aa = blurPlane(aa.data(), h, w);
        const auto m_bb = blurPlane(bb.data(), h, w);
        const auto m_ab = blurPlane(ab.data(), h, w);

        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double ma = mu_a[i];
            const double mb = mu_b[i];
            const double va = m_aa[i] - ma * ma;
            const double vb = m_bb[i] - mb * mb;
            const double cov = m_ab[i] - ma * mb;
            const double num = (2 * ma * mb + c1) * (2 * cov + c2);
            const double den = (ma * ma + mb * mb + c1) * (va + vb + c2);
            acc += num / den;
        }
        total += acc / static_cast<double>(n);
    }
    return total / a.channels();
}

} // namespace tamres
