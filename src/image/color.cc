#include "image/color.hh"

#include <algorithm>

#include "util/simd.hh"

namespace tamres {

namespace {

/*
 * Planar color-convert inner loops with explicit vector forms. Both
 * directions are pure elementwise maps, so any split across pixels is
 * bit-identical; the vector paths fuse multiply-adds and may round
 * differently from the scalar fallback (each path individually is
 * deterministic).
 */

void
rgbToYcbcrScalar(const float *r, const float *g, const float *b,
                 float *y, float *cb, float *cr, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        // JFIF full-range BT.601 coefficients.
        y[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
        cb[i] = -0.168736f * r[i] - 0.331264f * g[i] + 0.5f * b[i] + 0.5f;
        cr[i] = 0.5f * r[i] - 0.418688f * g[i] - 0.081312f * b[i] + 0.5f;
    }
}

void
ycbcrToRgbScalar(const float *y, const float *cb, const float *cr,
                 float *r, float *g, float *b, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        const float cbv = cb[i] - 0.5f;
        const float crv = cr[i] - 0.5f;
        r[i] = y[i] + 1.402f * crv;
        g[i] = y[i] - 0.344136f * cbv - 0.714136f * crv;
        b[i] = y[i] + 1.772f * cbv;
    }
}

#if TAMRES_SIMD_X86

TAMRES_TARGET_AVX2 void
rgbToYcbcrAvx2(const float *r, const float *g, const float *b, float *y,
               float *cb, float *cr, size_t n)
{
    const __m256 half = _mm256_set1_ps(0.5f);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 rv = _mm256_loadu_ps(r + i);
        const __m256 gv = _mm256_loadu_ps(g + i);
        const __m256 bv = _mm256_loadu_ps(b + i);
        __m256 yv = _mm256_mul_ps(_mm256_set1_ps(0.299f), rv);
        yv = _mm256_fmadd_ps(_mm256_set1_ps(0.587f), gv, yv);
        yv = _mm256_fmadd_ps(_mm256_set1_ps(0.114f), bv, yv);
        __m256 cbv = _mm256_fmadd_ps(_mm256_set1_ps(-0.168736f), rv,
                                     half);
        cbv = _mm256_fmadd_ps(_mm256_set1_ps(-0.331264f), gv, cbv);
        cbv = _mm256_fmadd_ps(half, bv, cbv);
        __m256 crv = _mm256_fmadd_ps(half, rv, half);
        crv = _mm256_fmadd_ps(_mm256_set1_ps(-0.418688f), gv, crv);
        crv = _mm256_fmadd_ps(_mm256_set1_ps(-0.081312f), bv, crv);
        _mm256_storeu_ps(y + i, yv);
        _mm256_storeu_ps(cb + i, cbv);
        _mm256_storeu_ps(cr + i, crv);
    }
    if (i < n)
        rgbToYcbcrScalar(r + i, g + i, b + i, y + i, cb + i, cr + i,
                         n - i);
}

TAMRES_TARGET_AVX2 void
ycbcrToRgbAvx2(const float *y, const float *cb, const float *cr,
               float *r, float *g, float *b, size_t n)
{
    const __m256 half = _mm256_set1_ps(0.5f);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 yv = _mm256_loadu_ps(y + i);
        const __m256 cbv = _mm256_sub_ps(_mm256_loadu_ps(cb + i), half);
        const __m256 crv = _mm256_sub_ps(_mm256_loadu_ps(cr + i), half);
        const __m256 rv =
            _mm256_fmadd_ps(_mm256_set1_ps(1.402f), crv, yv);
        __m256 gv = _mm256_fmadd_ps(_mm256_set1_ps(-0.344136f), cbv,
                                    yv);
        gv = _mm256_fmadd_ps(_mm256_set1_ps(-0.714136f), crv, gv);
        const __m256 bv =
            _mm256_fmadd_ps(_mm256_set1_ps(1.772f), cbv, yv);
        _mm256_storeu_ps(r + i, rv);
        _mm256_storeu_ps(g + i, gv);
        _mm256_storeu_ps(b + i, bv);
    }
    if (i < n)
        ycbcrToRgbScalar(y + i, cb + i, cr + i, r + i, g + i, b + i,
                         n - i);
}

#endif // TAMRES_SIMD_X86

#if TAMRES_SIMD_NEON

void
rgbToYcbcrNeon(const float *r, const float *g, const float *b, float *y,
               float *cb, float *cr, size_t n)
{
    const float32x4_t half = vdupq_n_f32(0.5f);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t rv = vld1q_f32(r + i);
        const float32x4_t gv = vld1q_f32(g + i);
        const float32x4_t bv = vld1q_f32(b + i);
        float32x4_t yv = vmulq_n_f32(rv, 0.299f);
        yv = vfmaq_n_f32(yv, gv, 0.587f);
        yv = vfmaq_n_f32(yv, bv, 0.114f);
        float32x4_t cbv = vfmaq_n_f32(half, rv, -0.168736f);
        cbv = vfmaq_n_f32(cbv, gv, -0.331264f);
        cbv = vfmaq_f32(cbv, half, bv);
        float32x4_t crv = vfmaq_f32(half, half, rv);
        crv = vfmaq_n_f32(crv, gv, -0.418688f);
        crv = vfmaq_n_f32(crv, bv, -0.081312f);
        vst1q_f32(y + i, yv);
        vst1q_f32(cb + i, cbv);
        vst1q_f32(cr + i, crv);
    }
    if (i < n)
        rgbToYcbcrScalar(r + i, g + i, b + i, y + i, cb + i, cr + i,
                         n - i);
}

void
ycbcrToRgbNeon(const float *y, const float *cb, const float *cr,
               float *r, float *g, float *b, size_t n)
{
    const float32x4_t half = vdupq_n_f32(0.5f);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t yv = vld1q_f32(y + i);
        const float32x4_t cbv = vsubq_f32(vld1q_f32(cb + i), half);
        const float32x4_t crv = vsubq_f32(vld1q_f32(cr + i), half);
        const float32x4_t rv = vfmaq_n_f32(yv, crv, 1.402f);
        float32x4_t gv = vfmaq_n_f32(yv, cbv, -0.344136f);
        gv = vfmaq_n_f32(gv, crv, -0.714136f);
        const float32x4_t bv = vfmaq_n_f32(yv, cbv, 1.772f);
        vst1q_f32(r + i, rv);
        vst1q_f32(g + i, gv);
        vst1q_f32(b + i, bv);
    }
    if (i < n)
        ycbcrToRgbScalar(y + i, cb + i, cr + i, r + i, g + i, b + i,
                         n - i);
}

#endif // TAMRES_SIMD_NEON

} // namespace

Image
rgbToYcbcr(const Image &rgb)
{
    tamres_assert(rgb.channels() == 3,
                  "rgbToYcbcr needs a 3-channel image, got %d",
                  rgb.channels());
    const int h = rgb.height();
    const int w = rgb.width();
    Image out(h, w, 3);
    const float *r = rgb.plane(0);
    const float *g = rgb.plane(1);
    const float *b = rgb.plane(2);
    float *y = out.plane(0);
    float *cb = out.plane(1);
    float *cr = out.plane(2);
    const size_t n = static_cast<size_t>(h) * w;
    switch (simdLevel()) {
#if TAMRES_SIMD_X86
      case SimdLevel::Avx2:
        rgbToYcbcrAvx2(r, g, b, y, cb, cr, n);
        break;
#endif
#if TAMRES_SIMD_NEON
      case SimdLevel::Neon:
        rgbToYcbcrNeon(r, g, b, y, cb, cr, n);
        break;
#endif
      default:
        rgbToYcbcrScalar(r, g, b, y, cb, cr, n);
        break;
    }
    return out;
}

Image
ycbcrToRgb(const Image &ycbcr)
{
    tamres_assert(ycbcr.channels() == 3,
                  "ycbcrToRgb needs a 3-channel image, got %d",
                  ycbcr.channels());
    const int h = ycbcr.height();
    const int w = ycbcr.width();
    Image out(h, w, 3);
    const float *y = ycbcr.plane(0);
    const float *cb = ycbcr.plane(1);
    const float *cr = ycbcr.plane(2);
    float *r = out.plane(0);
    float *g = out.plane(1);
    float *b = out.plane(2);
    const size_t n = static_cast<size_t>(h) * w;
    switch (simdLevel()) {
#if TAMRES_SIMD_X86
      case SimdLevel::Avx2:
        ycbcrToRgbAvx2(y, cb, cr, r, g, b, n);
        break;
#endif
#if TAMRES_SIMD_NEON
      case SimdLevel::Neon:
        ycbcrToRgbNeon(y, cb, cr, r, g, b, n);
        break;
#endif
      default:
        ycbcrToRgbScalar(y, cb, cr, r, g, b, n);
        break;
    }
    out.clamp01();
    return out;
}

Image
downsamplePlane2x2(const Image &plane)
{
    tamres_assert(plane.channels() == 1,
                  "downsamplePlane2x2 operates on single planes");
    const int h = plane.height();
    const int w = plane.width();
    const int oh = (h + 1) / 2;
    const int ow = (w + 1) / 2;
    Image out(oh, ow, 1);
    const float *src = plane.plane(0);
    float *dst = out.plane(0);
    for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
            float sum = 0.0f;
            int cnt = 0;
            for (int dy = 0; dy < 2; ++dy) {
                const int sy = y * 2 + dy;
                if (sy >= h)
                    continue;
                for (int dx = 0; dx < 2; ++dx) {
                    const int sx = x * 2 + dx;
                    if (sx >= w)
                        continue;
                    sum += src[sy * w + sx];
                    ++cnt;
                }
            }
            dst[y * ow + x] = sum / cnt;
        }
    }
    return out;
}

Image
upsamplePlane2x(const Image &plane, int out_h, int out_w)
{
    tamres_assert(plane.channels() == 1,
                  "upsamplePlane2x operates on single planes");
    tamres_assert(out_h >= plane.height() && out_w >= plane.width(),
                  "upsample target smaller than the plane");
    const int h = plane.height();
    const int w = plane.width();
    Image out(out_h, out_w, 1);
    const float *src = plane.plane(0);
    float *dst = out.plane(0);
    for (int y = 0; y < out_h; ++y) {
        // Sample at the center of the 2x2 cell that produced each
        // low-res pixel (half-pixel phase).
        const float fy = std::clamp((y - 0.5f) / 2.0f, 0.0f,
                                    static_cast<float>(h - 1));
        const int y0 = static_cast<int>(fy);
        const int y1 = std::min(y0 + 1, h - 1);
        const float wy = fy - y0;
        for (int x = 0; x < out_w; ++x) {
            const float fx = std::clamp((x - 0.5f) / 2.0f, 0.0f,
                                        static_cast<float>(w - 1));
            const int x0 = static_cast<int>(fx);
            const int x1 = std::min(x0 + 1, w - 1);
            const float wx = fx - x0;
            const float top = src[y0 * w + x0] * (1.0f - wx) +
                              src[y0 * w + x1] * wx;
            const float bot = src[y1 * w + x0] * (1.0f - wx) +
                              src[y1 * w + x1] * wx;
            dst[y * out_w + x] = top * (1.0f - wy) + bot * wy;
        }
    }
    return out;
}

Image
desaturateChroma(const Image &rgb, float keep)
{
    tamres_assert(keep >= 0.0f && keep <= 1.0f,
                  "chroma keep factor must be in [0, 1]");
    Image ycc = rgbToYcbcr(rgb);
    for (int c = 1; c < 3; ++c) {
        float *p = ycc.plane(c);
        const size_t n =
            static_cast<size_t>(ycc.height()) * ycc.width();
        for (size_t i = 0; i < n; ++i)
            p[i] = 0.5f + (p[i] - 0.5f) * keep;
    }
    return ycbcrToRgb(ycc);
}

} // namespace tamres
