#include "image/color.hh"

#include <algorithm>

namespace tamres {

Image
rgbToYcbcr(const Image &rgb)
{
    tamres_assert(rgb.channels() == 3,
                  "rgbToYcbcr needs a 3-channel image, got %d",
                  rgb.channels());
    const int h = rgb.height();
    const int w = rgb.width();
    Image out(h, w, 3);
    const float *r = rgb.plane(0);
    const float *g = rgb.plane(1);
    const float *b = rgb.plane(2);
    float *y = out.plane(0);
    float *cb = out.plane(1);
    float *cr = out.plane(2);
    const size_t n = static_cast<size_t>(h) * w;
    for (size_t i = 0; i < n; ++i) {
        // JFIF full-range BT.601 coefficients.
        y[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
        cb[i] = -0.168736f * r[i] - 0.331264f * g[i] + 0.5f * b[i] + 0.5f;
        cr[i] = 0.5f * r[i] - 0.418688f * g[i] - 0.081312f * b[i] + 0.5f;
    }
    return out;
}

Image
ycbcrToRgb(const Image &ycbcr)
{
    tamres_assert(ycbcr.channels() == 3,
                  "ycbcrToRgb needs a 3-channel image, got %d",
                  ycbcr.channels());
    const int h = ycbcr.height();
    const int w = ycbcr.width();
    Image out(h, w, 3);
    const float *y = ycbcr.plane(0);
    const float *cb = ycbcr.plane(1);
    const float *cr = ycbcr.plane(2);
    float *r = out.plane(0);
    float *g = out.plane(1);
    float *b = out.plane(2);
    const size_t n = static_cast<size_t>(h) * w;
    for (size_t i = 0; i < n; ++i) {
        const float cbv = cb[i] - 0.5f;
        const float crv = cr[i] - 0.5f;
        r[i] = y[i] + 1.402f * crv;
        g[i] = y[i] - 0.344136f * cbv - 0.714136f * crv;
        b[i] = y[i] + 1.772f * cbv;
    }
    out.clamp01();
    return out;
}

Image
downsamplePlane2x2(const Image &plane)
{
    tamres_assert(plane.channels() == 1,
                  "downsamplePlane2x2 operates on single planes");
    const int h = plane.height();
    const int w = plane.width();
    const int oh = (h + 1) / 2;
    const int ow = (w + 1) / 2;
    Image out(oh, ow, 1);
    const float *src = plane.plane(0);
    float *dst = out.plane(0);
    for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
            float sum = 0.0f;
            int cnt = 0;
            for (int dy = 0; dy < 2; ++dy) {
                const int sy = y * 2 + dy;
                if (sy >= h)
                    continue;
                for (int dx = 0; dx < 2; ++dx) {
                    const int sx = x * 2 + dx;
                    if (sx >= w)
                        continue;
                    sum += src[sy * w + sx];
                    ++cnt;
                }
            }
            dst[y * ow + x] = sum / cnt;
        }
    }
    return out;
}

Image
upsamplePlane2x(const Image &plane, int out_h, int out_w)
{
    tamres_assert(plane.channels() == 1,
                  "upsamplePlane2x operates on single planes");
    tamres_assert(out_h >= plane.height() && out_w >= plane.width(),
                  "upsample target smaller than the plane");
    const int h = plane.height();
    const int w = plane.width();
    Image out(out_h, out_w, 1);
    const float *src = plane.plane(0);
    float *dst = out.plane(0);
    for (int y = 0; y < out_h; ++y) {
        // Sample at the center of the 2x2 cell that produced each
        // low-res pixel (half-pixel phase).
        const float fy = std::clamp((y - 0.5f) / 2.0f, 0.0f,
                                    static_cast<float>(h - 1));
        const int y0 = static_cast<int>(fy);
        const int y1 = std::min(y0 + 1, h - 1);
        const float wy = fy - y0;
        for (int x = 0; x < out_w; ++x) {
            const float fx = std::clamp((x - 0.5f) / 2.0f, 0.0f,
                                        static_cast<float>(w - 1));
            const int x0 = static_cast<int>(fx);
            const int x1 = std::min(x0 + 1, w - 1);
            const float wx = fx - x0;
            const float top = src[y0 * w + x0] * (1.0f - wx) +
                              src[y0 * w + x1] * wx;
            const float bot = src[y1 * w + x0] * (1.0f - wx) +
                              src[y1 * w + x1] * wx;
            dst[y * out_w + x] = top * (1.0f - wy) + bot * wy;
        }
    }
    return out;
}

Image
desaturateChroma(const Image &rgb, float keep)
{
    tamres_assert(keep >= 0.0f && keep <= 1.0f,
                  "chroma keep factor must be in [0, 1]");
    Image ycc = rgbToYcbcr(rgb);
    for (int c = 1; c < 3; ++c) {
        float *p = ycc.plane(c);
        const size_t n =
            static_cast<size_t>(ycc.height()) * ycc.width();
        for (size_t i = 0; i < n; ++i)
            p[i] = 0.5f + (p[i] - 0.5f) * keep;
    }
    return ycbcrToRgb(ycc);
}

} // namespace tamres
