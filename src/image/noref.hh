/**
 * @file
 * No-reference (blind) image quality metrics.
 *
 * Section VIII-c of the paper points at reduced- and no-reference
 * metrics [33] as the path past SSIM's main operational weakness: SSIM
 * needs the fully decoded reference, so a storage policy that wants to
 * stop reading early must either have pre-tabulated quality (our
 * QualityTable) or estimate quality from the truncated decode alone.
 * These estimators work from the truncated decode alone:
 *
 *  - blockiness(): energy of discontinuities across the codec's 8x8
 *    block grid relative to within-block discontinuities. Truncated
 *    spectral-selection decodes are piecewise-smooth per block, so the
 *    grid signature rises as fewer scans are read.
 *  - sharpness(): variance of the 3x3 Laplacian — a classical focus
 *    measure; high-frequency scans restore it.
 *  - norefQuality(): a bounded [0, 1] score combining both, oriented
 *    like SSIM (1 = full fidelity). Monotonicity with scan count is
 *    locked by tests; NorefCalibrator maps it to read policies the same
 *    way Section V calibrates SSIM.
 */

#ifndef TAMRES_IMAGE_NOREF_HH
#define TAMRES_IMAGE_NOREF_HH

#include "image/image.hh"

namespace tamres {

/**
 * Blocking-artifact strength over the fixed 8x8 codec grid: mean
 * absolute step across block boundaries divided by mean absolute step
 * inside blocks. ~1 for natural images, rising with quantization or
 * truncated decodes. Needs at least 2 blocks per axis.
 */
double blockiness(const Image &img);

/** Variance of the 3x3 Laplacian response, averaged over channels. */
double sharpness(const Image &img);

/**
 * Blind quality score in [0, 1], oriented like SSIM (higher = closer
 * to the full decode). Combines a blockiness penalty with a sharpness
 * ratio against @p sharpness_ref, the sharpness the image family shows
 * at full fidelity (estimated during calibration from training data).
 */
double norefQuality(const Image &img, double sharpness_ref);

} // namespace tamres

#endif // TAMRES_IMAGE_NOREF_HH
