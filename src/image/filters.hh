/**
 * @file
 * Higher-order resampling filters and spatial filtering.
 *
 * The paper's preprocessing stack (Section III) maps stored pixels to
 * arbitrary inference resolutions; the choice of resampling filter
 * trades aliasing against sharpness and affects both measured SSIM and
 * downstream accuracy. Besides the bilinear/area filters in image.hh,
 * this module provides the two classical high-quality kernels —
 * Catmull-Rom bicubic and Lanczos-3 windowed sinc — plus a separable
 * Gaussian blur used by the no-reference metrics and the synthetic
 * image generator.
 */

#ifndef TAMRES_IMAGE_FILTERS_HH
#define TAMRES_IMAGE_FILTERS_HH

#include "image/image.hh"

namespace tamres {

/** Resampling filter families understood by resizeWith(). */
enum class ResizeFilter
{
    Bilinear, //!< 2-tap triangle (image.hh fast path)
    Area,     //!< box / pixel-area averaging
    Bicubic,  //!< Catmull-Rom cubic (a = -0.5), 4-tap
    Lanczos3, //!< Lanczos windowed sinc, 6-tap
};

/** "bilinear" / "area" / "bicubic" / "lanczos3". */
const char *resizeFilterName(ResizeFilter filter);

/**
 * Catmull-Rom bicubic resize (a = -0.5). Sharper than bilinear with
 * mild ringing; the default in most training data loaders.
 */
Image resizeBicubic(const Image &src, int out_h, int out_w);

/**
 * Lanczos-3 resize. Near-ideal sinc reconstruction for upsampling;
 * when downscaling the kernel support is widened by the scale factor
 * so the filter also band-limits (anti-aliases).
 */
Image resizeLanczos3(const Image &src, int out_h, int out_w);

/** Dispatch on the filter enum. */
Image resizeWith(const Image &src, int out_h, int out_w,
                 ResizeFilter filter);

/**
 * Separable Gaussian blur with standard deviation @p sigma; the kernel
 * radius is ceil(3 sigma). Edges clamp. sigma <= 0 returns a copy.
 */
Image gaussianBlur(const Image &src, double sigma);

/**
 * Per-plane Sobel gradient magnitude (single-channel output averaged
 * over input channels); used by sharpness metrics and the scale
 * features.
 */
Image sobelMagnitude(const Image &src);

} // namespace tamres

#endif // TAMRES_IMAGE_FILTERS_HH
