#include "image/image.hh"

#include <algorithm>
#include <cmath>

namespace tamres {

void
Image::clamp01()
{
    for (float &v : data_)
        v = std::clamp(v, 0.0f, 1.0f);
}

double
Image::mean() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return data_.empty() ? 0.0 : acc / static_cast<double>(data_.size());
}

Image
resizeBilinear(const Image &src, int out_h, int out_w)
{
    tamres_assert(out_h > 0 && out_w > 0, "resize dims must be positive");
    Image out(out_h, out_w, src.channels());
    const double sy = static_cast<double>(src.height()) / out_h;
    const double sx = static_cast<double>(src.width()) / out_w;
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        float *op = out.plane(c);
        for (int y = 0; y < out_h; ++y) {
            // Align sample centers (the "half-pixel" convention).
            double fy = (y + 0.5) * sy - 0.5;
            fy = std::clamp(fy, 0.0, static_cast<double>(src.height() - 1));
            const int y0 = static_cast<int>(fy);
            const int y1 = std::min(y0 + 1, src.height() - 1);
            const double wy = fy - y0;
            for (int x = 0; x < out_w; ++x) {
                double fx = (x + 0.5) * sx - 0.5;
                fx = std::clamp(fx, 0.0,
                                static_cast<double>(src.width() - 1));
                const int x0 = static_cast<int>(fx);
                const int x1 = std::min(x0 + 1, src.width() - 1);
                const double wx = fx - x0;
                const double v00 = sp[y0 * src.width() + x0];
                const double v01 = sp[y0 * src.width() + x1];
                const double v10 = sp[y1 * src.width() + x0];
                const double v11 = sp[y1 * src.width() + x1];
                op[y * out_w + x] = static_cast<float>(
                    v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
                    v10 * wy * (1 - wx) + v11 * wy * wx);
            }
        }
    }
    return out;
}

Image
resizeArea(const Image &src, int out_h, int out_w)
{
    tamres_assert(out_h > 0 && out_w > 0, "resize dims must be positive");
    Image out(out_h, out_w, src.channels());
    const double sy = static_cast<double>(src.height()) / out_h;
    const double sx = static_cast<double>(src.width()) / out_w;
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        float *op = out.plane(c);
        for (int y = 0; y < out_h; ++y) {
            const double y_begin = y * sy;
            const double y_end = std::min((y + 1) * sy,
                                          static_cast<double>(src.height()));
            for (int x = 0; x < out_w; ++x) {
                const double x_begin = x * sx;
                const double x_end = std::min(
                    (x + 1) * sx, static_cast<double>(src.width()));
                double acc = 0.0;
                double weight = 0.0;
                for (int yy = static_cast<int>(y_begin);
                     yy < static_cast<int>(std::ceil(y_end)); ++yy) {
                    const double hy = std::min<double>(yy + 1, y_end) -
                                      std::max<double>(yy, y_begin);
                    for (int xx = static_cast<int>(x_begin);
                         xx < static_cast<int>(std::ceil(x_end)); ++xx) {
                        const double hx =
                            std::min<double>(xx + 1, x_end) -
                            std::max<double>(xx, x_begin);
                        acc += sp[yy * src.width() + xx] * hy * hx;
                        weight += hy * hx;
                    }
                }
                op[y * out_w + x] =
                    static_cast<float>(weight > 0 ? acc / weight : 0.0);
            }
        }
    }
    return out;
}

Image
resize(const Image &src, int out_h, int out_w)
{
    if (src.height() == out_h && src.width() == out_w) {
        Image out = src;
        return out;
    }
    const bool big_shrink = src.height() > 2 * out_h ||
                            src.width() > 2 * out_w;
    return big_shrink ? resizeArea(src, out_h, out_w)
                      : resizeBilinear(src, out_h, out_w);
}

Image
crop(const Image &src, int top, int left, int h, int w)
{
    tamres_assert(top >= 0 && left >= 0 && h > 0 && w > 0 &&
                  top + h <= src.height() && left + w <= src.width(),
                  "crop rectangle out of bounds");
    Image out(h, w, src.channels());
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        float *op = out.plane(c);
        for (int y = 0; y < h; ++y) {
            std::copy_n(sp + (top + y) * src.width() + left, w,
                        op + y * w);
        }
    }
    return out;
}

Image
centerCropFraction(const Image &src, double area_fraction)
{
    tamres_assert(area_fraction > 0.0 && area_fraction <= 1.0,
                  "area fraction must be in (0, 1]");
    const double side = std::sqrt(area_fraction);
    int h = std::max(1, static_cast<int>(std::lround(src.height() * side)));
    int w = std::max(1, static_cast<int>(std::lround(src.width() * side)));
    h = std::min(h, src.height());
    w = std::min(w, src.width());
    const int top = (src.height() - h) / 2;
    const int left = (src.width() - w) / 2;
    return crop(src, top, left, h, w);
}

} // namespace tamres
