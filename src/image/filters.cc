#include "image/filters.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tamres {

namespace {

/** Catmull-Rom cubic kernel (a = -0.5), support [-2, 2]. */
double
cubicWeight(double x)
{
    const double a = -0.5;
    x = std::fabs(x);
    if (x < 1.0)
        return ((a + 2.0) * x - (a + 3.0)) * x * x + 1.0;
    if (x < 2.0)
        return (((x - 5.0) * x + 8.0) * x - 4.0) * a;
    return 0.0;
}

/** Lanczos-3 kernel, support [-3, 3]. */
double
lanczos3Weight(double x)
{
    x = std::fabs(x);
    if (x < 1e-9)
        return 1.0;
    if (x >= 3.0)
        return 0.0;
    const double pix = M_PI * x;
    return 3.0 * std::sin(pix) * std::sin(pix / 3.0) / (pix * pix);
}

/**
 * One resampled axis as a sparse weight matrix: for each output
 * coordinate, the first source tap and the normalized tap weights.
 * When minifying, the kernel is stretched by the scale factor so it
 * band-limits as well as interpolates.
 */
struct AxisTaps
{
    std::vector<int> first;       //!< first source index per output
    std::vector<double> weights;  //!< taps_per_out weights per output
    int taps_per_out = 0;
};

AxisTaps
buildTaps(int in_size, int out_size, double support,
          double (*kernel)(double))
{
    tamres_assert(in_size > 0 && out_size > 0, "resize sizes positive");
    const double scale = static_cast<double>(in_size) / out_size;
    const double stretch = std::max(1.0, scale);
    const double radius = support * stretch;
    AxisTaps taps;
    taps.taps_per_out = static_cast<int>(std::ceil(radius * 2)) + 1;
    taps.first.resize(out_size);
    taps.weights.resize(static_cast<size_t>(out_size) *
                        taps.taps_per_out);
    for (int o = 0; o < out_size; ++o) {
        const double center = (o + 0.5) * scale - 0.5;
        int first = static_cast<int>(std::floor(center - radius));
        taps.first[o] = first;
        double sum = 0.0;
        for (int t = 0; t < taps.taps_per_out; ++t) {
            const double x = (center - (first + t)) / stretch;
            const double w = kernel(x);
            taps.weights[static_cast<size_t>(o) * taps.taps_per_out + t] =
                w;
            sum += w;
        }
        if (std::fabs(sum) > 1e-12) {
            for (int t = 0; t < taps.taps_per_out; ++t)
                taps.weights[static_cast<size_t>(o) * taps.taps_per_out +
                             t] /= sum;
        }
    }
    return taps;
}

/** Generic separable resampler over clamped source coordinates. */
Image
resampleSeparable(const Image &src, int out_h, int out_w, double support,
                  double (*kernel)(double))
{
    const int in_h = src.height();
    const int in_w = src.width();
    const AxisTaps tx = buildTaps(in_w, out_w, support, kernel);
    const AxisTaps ty = buildTaps(in_h, out_h, support, kernel);

    Image dst(out_h, out_w, src.channels());
    // Horizontal pass into an intermediate (in_h x out_w) buffer.
    std::vector<double> tmp(static_cast<size_t>(in_h) * out_w);
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        for (int y = 0; y < in_h; ++y) {
            for (int x = 0; x < out_w; ++x) {
                double acc = 0.0;
                const double *w =
                    &tx.weights[static_cast<size_t>(x) * tx.taps_per_out];
                for (int t = 0; t < tx.taps_per_out; ++t) {
                    const int sx =
                        std::clamp(tx.first[x] + t, 0, in_w - 1);
                    acc += w[t] * sp[static_cast<size_t>(y) * in_w + sx];
                }
                tmp[static_cast<size_t>(y) * out_w + x] = acc;
            }
        }
        // Vertical pass.
        float *dp = dst.plane(c);
        for (int y = 0; y < out_h; ++y) {
            const double *w =
                &ty.weights[static_cast<size_t>(y) * ty.taps_per_out];
            for (int x = 0; x < out_w; ++x) {
                double acc = 0.0;
                for (int t = 0; t < ty.taps_per_out; ++t) {
                    const int sy =
                        std::clamp(ty.first[y] + t, 0, in_h - 1);
                    acc += w[t] * tmp[static_cast<size_t>(sy) * out_w + x];
                }
                dp[static_cast<size_t>(y) * out_w + x] =
                    static_cast<float>(std::clamp(acc, 0.0, 1.0));
            }
        }
    }
    return dst;
}

} // namespace

const char *
resizeFilterName(ResizeFilter filter)
{
    switch (filter) {
      case ResizeFilter::Bilinear: return "bilinear";
      case ResizeFilter::Area: return "area";
      case ResizeFilter::Bicubic: return "bicubic";
      case ResizeFilter::Lanczos3: return "lanczos3";
    }
    return "?";
}

Image
resizeBicubic(const Image &src, int out_h, int out_w)
{
    return resampleSeparable(src, out_h, out_w, 2.0, cubicWeight);
}

Image
resizeLanczos3(const Image &src, int out_h, int out_w)
{
    return resampleSeparable(src, out_h, out_w, 3.0, lanczos3Weight);
}

Image
resizeWith(const Image &src, int out_h, int out_w, ResizeFilter filter)
{
    switch (filter) {
      case ResizeFilter::Bilinear:
        return resizeBilinear(src, out_h, out_w);
      case ResizeFilter::Area:
        return resizeArea(src, out_h, out_w);
      case ResizeFilter::Bicubic:
        return resizeBicubic(src, out_h, out_w);
      case ResizeFilter::Lanczos3:
        return resizeLanczos3(src, out_h, out_w);
    }
    panic("unknown resize filter");
}

Image
gaussianBlur(const Image &src, double sigma)
{
    if (sigma <= 0.0)
        return src;
    const int radius = static_cast<int>(std::ceil(3.0 * sigma));
    std::vector<double> kernel(2 * radius + 1);
    double sum = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        kernel[i + radius] = std::exp(-i * i / (2.0 * sigma * sigma));
        sum += kernel[i + radius];
    }
    for (double &v : kernel)
        v /= sum;

    const int h = src.height();
    const int w = src.width();
    Image dst(h, w, src.channels());
    std::vector<double> tmp(static_cast<size_t>(h) * w);
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                double acc = 0.0;
                for (int i = -radius; i <= radius; ++i) {
                    const int xx = std::clamp(x + i, 0, w - 1);
                    acc += kernel[i + radius] *
                           sp[static_cast<size_t>(y) * w + xx];
                }
                tmp[static_cast<size_t>(y) * w + x] = acc;
            }
        }
        float *dp = dst.plane(c);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                double acc = 0.0;
                for (int i = -radius; i <= radius; ++i) {
                    const int yy = std::clamp(y + i, 0, h - 1);
                    acc += kernel[i + radius] *
                           tmp[static_cast<size_t>(yy) * w + x];
                }
                dp[static_cast<size_t>(y) * w + x] =
                    static_cast<float>(acc);
            }
        }
    }
    return dst;
}

Image
sobelMagnitude(const Image &src)
{
    const int h = src.height();
    const int w = src.width();
    Image dst(h, w, 1);
    float *dp = dst.plane(0);
    for (int c = 0; c < src.channels(); ++c) {
        const float *sp = src.plane(c);
        auto px = [&](int y, int x) {
            return sp[static_cast<size_t>(std::clamp(y, 0, h - 1)) * w +
                      std::clamp(x, 0, w - 1)];
        };
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const double gx = px(y - 1, x + 1) + 2 * px(y, x + 1) +
                                  px(y + 1, x + 1) - px(y - 1, x - 1) -
                                  2 * px(y, x - 1) - px(y + 1, x - 1);
                const double gy = px(y + 1, x - 1) + 2 * px(y + 1, x) +
                                  px(y + 1, x + 1) - px(y - 1, x - 1) -
                                  2 * px(y - 1, x) - px(y - 1, x + 1);
                dp[static_cast<size_t>(y) * w + x] += static_cast<float>(
                    std::sqrt(gx * gx + gy * gy) / src.channels());
            }
        }
    }
    return dst;
}

} // namespace tamres
