/**
 * @file
 * Image representation used throughout the storage/codec/pipeline code.
 *
 * Images are stored planar (CHW) as float32 in [0, 1]; three channels
 * unless stated otherwise. Planar layout matches both the codec (which
 * processes channels independently) and the nn engine (NCHW).
 */

#ifndef TAMRES_IMAGE_IMAGE_HH
#define TAMRES_IMAGE_IMAGE_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace tamres {

/** Planar float image in [0, 1]. */
class Image
{
  public:
    Image() = default;

    /** Allocate a zero (black) image. */
    Image(int height, int width, int channels = 3)
        : height_(height), width_(width), channels_(channels),
          data_(static_cast<size_t>(height) * width * channels, 0.0f)
    {
        tamres_assert(height > 0 && width > 0 && channels > 0,
                      "image dims must be positive");
    }

    int height() const { return height_; }
    int width() const { return width_; }
    int channels() const { return channels_; }
    bool empty() const { return data_.empty(); }

    /** Total number of float samples. */
    size_t numel() const { return data_.size(); }

    /** Mutable sample access, planar layout. */
    float &
    at(int c, int y, int x)
    {
        return data_[(static_cast<size_t>(c) * height_ + y) * width_ + x];
    }

    /** Const sample access. */
    float
    at(int c, int y, int x) const
    {
        return data_[(static_cast<size_t>(c) * height_ + y) * width_ + x];
    }

    /** Pointer to the start of channel plane @p c. */
    float *plane(int c) { return data_.data() + static_cast<size_t>(c) * height_ * width_; }
    const float *plane(int c) const
    {
        return data_.data() + static_cast<size_t>(c) * height_ * width_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Clamp all samples to [0, 1]. */
    void clamp01();

    /** Mean sample value over all channels. */
    double mean() const;

  private:
    int height_ = 0;
    int width_ = 0;
    int channels_ = 0;
    std::vector<float> data_;
};

/** Bilinear resize to (out_h, out_w). */
Image resizeBilinear(const Image &src, int out_h, int out_w);

/**
 * Area-averaging (box) resize — preferred for large downscales where
 * bilinear aliases.
 */
Image resizeArea(const Image &src, int out_h, int out_w);

/**
 * Resize with automatic filter choice: area when shrinking by more than
 * 2x in either dimension, bilinear otherwise. Mirrors common
 * preprocessing stacks.
 */
Image resize(const Image &src, int out_h, int out_w);

/**
 * Extract a centered crop covering @p area_fraction of the source area
 * (square root applied per axis), e.g. 0.75 keeps the central ~87% per
 * side. area_fraction must be in (0, 1].
 */
Image centerCropFraction(const Image &src, double area_fraction);

/** Extract an explicit rectangle; must lie within the image. */
Image crop(const Image &src, int top, int left, int h, int w);

} // namespace tamres

#endif // TAMRES_IMAGE_IMAGE_HH
