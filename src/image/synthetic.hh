/**
 * @file
 * Procedural generation of labeled synthetic images.
 *
 * Stands in for the ImageNet / Stanford-Cars pixels the paper uses.
 * Every image contains a textured multi-octave noise background plus a
 * single class-determined foreground object rendered at an explicit
 * apparent scale (fraction of the short image side). The experiments in
 * the paper consume exactly these degrees of freedom — object scale,
 * image size, and frequency content (which drives how much progressive
 * codec data a given SSIM requires) — so controlling them directly
 * preserves the behaviour under study.
 */

#ifndef TAMRES_IMAGE_SYNTHETIC_HH
#define TAMRES_IMAGE_SYNTHETIC_HH

#include <cstdint>

#include "image/image.hh"

namespace tamres {

/** Parameters for one synthetic image. */
struct SyntheticImageSpec
{
    int height = 224;           //!< stored image height
    int width = 224;            //!< stored image width
    int class_id = 0;           //!< label; determines shape/texture family
    int num_classes = 16;       //!< label alphabet size
    /**
     * Object size as a fraction of min(height, width); the "apparent
     * scale" the paper's crop/resolution analysis revolves around.
     */
    double object_scale = 0.45;
    uint64_t seed = 1;          //!< instance seed (pose, background)
    /** Relative high-frequency energy of the background in [0, 1]. */
    double texture_detail = 0.5;
};

/** Render a synthetic image from a spec. */
Image generateSyntheticImage(const SyntheticImageSpec &spec);

} // namespace tamres

#endif // TAMRES_IMAGE_SYNTHETIC_HH
