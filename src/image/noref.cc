#include "image/noref.hh"

#include <algorithm>
#include <cmath>

namespace tamres {

double
blockiness(const Image &img)
{
    const int h = img.height();
    const int w = img.width();
    tamres_assert(h >= 16 && w >= 16,
                  "blockiness needs at least two 8x8 blocks per axis");
    double boundary = 0.0, interior = 0.0;
    int64_t nb = 0, ni = 0;
    for (int c = 0; c < img.channels(); ++c) {
        const float *p = img.plane(c);
        // Vertical edges: steps between columns x-1 and x.
        for (int y = 0; y < h; ++y) {
            for (int x = 1; x < w; ++x) {
                const double d =
                    std::fabs(static_cast<double>(
                                  p[static_cast<size_t>(y) * w + x]) -
                              p[static_cast<size_t>(y) * w + x - 1]);
                if (x % 8 == 0) {
                    boundary += d;
                    ++nb;
                } else {
                    interior += d;
                    ++ni;
                }
            }
        }
        // Horizontal edges: steps between rows y-1 and y.
        for (int y = 1; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const double d =
                    std::fabs(static_cast<double>(
                                  p[static_cast<size_t>(y) * w + x]) -
                              p[static_cast<size_t>(y - 1) * w + x]);
                if (y % 8 == 0) {
                    boundary += d;
                    ++nb;
                } else {
                    interior += d;
                    ++ni;
                }
            }
        }
    }
    const double mb = nb ? boundary / nb : 0.0;
    const double mi = ni ? interior / ni : 0.0;
    // Stabilize against flat images where both means vanish.
    return (mb + 1e-6) / (mi + 1e-6);
}

double
sharpness(const Image &img)
{
    const int h = img.height();
    const int w = img.width();
    tamres_assert(h >= 3 && w >= 3, "sharpness needs a 3x3 support");
    double total = 0.0;
    for (int c = 0; c < img.channels(); ++c) {
        const float *p = img.plane(c);
        double sum = 0.0, sq = 0.0;
        int64_t n = 0;
        for (int y = 1; y < h - 1; ++y) {
            for (int x = 1; x < w - 1; ++x) {
                const double lap =
                    4.0 * p[static_cast<size_t>(y) * w + x] -
                    p[static_cast<size_t>(y - 1) * w + x] -
                    p[static_cast<size_t>(y + 1) * w + x] -
                    p[static_cast<size_t>(y) * w + x - 1] -
                    p[static_cast<size_t>(y) * w + x + 1];
                sum += lap;
                sq += lap * lap;
                ++n;
            }
        }
        const double mean = sum / n;
        total += sq / n - mean * mean;
    }
    return total / img.channels();
}

double
norefQuality(const Image &img, double sharpness_ref)
{
    tamres_assert(sharpness_ref > 0.0, "reference sharpness positive");
    // Sharpness recovery: fraction of the family's full-fidelity
    // Laplacian energy present in this decode (capped at 1).
    const double s = std::min(1.0, sharpness(img) / sharpness_ref);
    // Blockiness penalty: 1 when boundary steps match interior steps,
    // decaying as the 8x8 grid signature emerges.
    const double b = blockiness(img);
    const double grid = std::max(0.0, b - 1.0);
    const double block_score = 1.0 / (1.0 + 0.75 * grid);
    return std::clamp(0.5 * s + 0.5 * block_score, 0.0, 1.0);
}

} // namespace tamres
