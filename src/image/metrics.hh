/**
 * @file
 * Full-reference image quality metrics: PSNR and SSIM.
 *
 * SSIM follows Wang et al. (2004) — an 11x11 Gaussian window with
 * sigma 1.5, stabilizers C1 = (0.01 L)^2 and C2 = (0.03 L)^2 with
 * dynamic range L = 1 (images are float in [0, 1]) — the metric the
 * paper's storage calibration uses (Section V).
 */

#ifndef TAMRES_IMAGE_METRICS_HH
#define TAMRES_IMAGE_METRICS_HH

#include "image/image.hh"

namespace tamres {

/** Mean squared error between same-shaped images. */
double mse(const Image &a, const Image &b);

/** Peak signal-to-noise ratio in dB (peak = 1.0); inf for identical. */
double psnr(const Image &a, const Image &b);

/**
 * Mean SSIM over all channels using an 11x11 Gaussian window
 * (sigma = 1.5). Images must have identical dimensions.
 */
double ssim(const Image &a, const Image &b);

/**
 * Multi-scale SSIM (Wang et al. 2003): contrast/structure terms are
 * combined across @p levels dyadic scales (standard per-level weights,
 * renormalized when fewer levels fit), with the luminance term applied
 * at the coarsest scale only. Tracks perceived quality better than
 * single-scale SSIM when the viewing resolution differs from the
 * stored resolution — exactly the regime the paper's storage
 * calibration operates in (Section VIII-c). Levels are clamped so the
 * coarsest scale keeps the 11-tap window; images must be >= 11 px.
 */
double msSsim(const Image &a, const Image &b, int levels = 5);

} // namespace tamres

#endif // TAMRES_IMAGE_METRICS_HH
