/**
 * @file
 * Synthetic dataset generation with dataset-level profiles standing in
 * for ImageNet and Stanford Cars.
 *
 * Each ImageRecord fixes the latent variables the paper's experiments
 * manipulate: stored image size (ImageNet avg 472x405 vs Cars 699x482,
 * Section V), the object's apparent scale (lognormal per dataset), and
 * the instance seed that renders deterministic pixels. Images are
 * rendered procedurally (image/synthetic.hh) and encoded with the
 * progressive codec into an ObjectStore.
 */

#ifndef TAMRES_SIM_DATASET_HH
#define TAMRES_SIM_DATASET_HH

#include <string>
#include <vector>

#include "image/synthetic.hh"
#include "storage/object_store.hh"

namespace tamres {

/** Dataset-level distributional profile. */
struct DatasetSpec
{
    std::string name;
    int num_classes = 16;

    // Stored image geometry (mean dimensions; per-image jitter).
    int mean_height = 405;
    int mean_width = 472;
    double size_jitter = 0.25; //!< lognormal sigma of the size factor

    // Apparent object scale f: fraction of the short image side.
    double object_scale_mean = 0.50; //!< median of lognormal f
    double object_scale_sigma = 0.40;

    /** High-frequency energy of backgrounds/textures in [0, 1]. */
    double texture_detail = 0.6;

    /** Progressive-encoding quality used at ingest. */
    int encode_quality = 85;
};

/**
 * ImageNet-like profile: moderate image sizes, wide object-scale
 * spread, texture-heavy classes (fine detail matters).
 */
DatasetSpec imagenetLike();

/**
 * Stanford-Cars-like profile: larger stored images, larger objects
 * (cars fill the frame), shape-dominated classes that tolerate fidelity
 * loss (the paper's Section V observation).
 */
DatasetSpec carsLike();

/** Latent description of one dataset image. */
struct ImageRecord
{
    uint64_t id = 0;
    int label = 0;
    int height = 0;         //!< stored pixel height
    int width = 0;          //!< stored pixel width
    double object_scale = 0.5; //!< f: object size / short side
    uint64_t seed = 0;      //!< rendering seed
};

/**
 * A deterministic synthetic dataset: records are derived from
 * (spec, seed) only, so any split/seed combination is reproducible.
 */
class SyntheticDataset
{
  public:
    SyntheticDataset(DatasetSpec spec, int size, uint64_t seed);

    const DatasetSpec &spec() const { return spec_; }
    int size() const { return static_cast<int>(records_.size()); }
    const ImageRecord &record(int i) const { return records_.at(i); }

    /** Render the stored-resolution pixels of image @p i. */
    Image render(int i) const;

    /**
     * Render the same latent image with its long side clamped to
     * @p max_side pixels (aspect preserved, same pose/texture seeds).
     * Cheap substitute for render+downscale in compute-bound
     * experiments that don't exercise the storage path.
     */
    Image renderAt(int i, int max_side) const;

    /**
     * Render, progressively encode, and insert images [first, last)
     * into @p store keyed by record id, at the spec's encode quality
     * with the default codec configuration.
     */
    void ingest(ObjectStore &store, int first, int last) const;

    /**
     * As above with an explicit codec configuration (scan script,
     * color mode, entropy layer, quality) used verbatim — the spec's
     * encode_quality is ignored. Storage experiments comparing codec
     * modes must build their QualityTable with the same config.
     */
    void ingest(ObjectStore &store, int first, int last,
                const ProgressiveConfig &cfg) const;

  private:
    DatasetSpec spec_;
    std::vector<ImageRecord> records_;
};

/**
 * Disjoint shard bounds for the paper's Figure-5 cross-validation
 * training scheme: splits [0, size) into @p k near-equal shards and
 * returns the half-open [begin, end) of shard @p which.
 */
std::pair<int, int> shardRange(int size, int k, int which);

} // namespace tamres

#endif // TAMRES_SIM_DATASET_HH
