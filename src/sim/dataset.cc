#include "sim/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/rng.hh"

namespace tamres {

DatasetSpec
imagenetLike()
{
    DatasetSpec spec;
    spec.name = "imagenet-like";
    spec.num_classes = 16;
    spec.mean_height = 405;
    spec.mean_width = 472;
    spec.size_jitter = 0.25;
    spec.object_scale_mean = 0.50;
    spec.object_scale_sigma = 0.40;
    spec.texture_detail = 0.65;
    spec.encode_quality = 85;
    return spec;
}

DatasetSpec
carsLike()
{
    DatasetSpec spec;
    spec.name = "cars-like";
    spec.num_classes = 16;
    spec.mean_height = 482;
    spec.mean_width = 699;
    spec.size_jitter = 0.30;
    spec.object_scale_mean = 0.68; // cars fill more of the frame
    spec.object_scale_sigma = 0.30;
    spec.texture_detail = 0.45;    // shape-dominated appearance
    spec.encode_quality = 85;
    return spec;
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec, int size,
                                   uint64_t seed)
    : spec_(std::move(spec))
{
    tamres_assert(size > 0, "dataset size must be positive");
    records_.reserve(size);
    Rng rng(seed ^ 0x1234abcdull);
    for (int i = 0; i < size; ++i) {
        ImageRecord rec;
        rec.id = seed * 1000003ull + static_cast<uint64_t>(i);
        rec.label = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(spec_.num_classes)));
        const double size_factor =
            std::exp(rng.normal(0.0, spec_.size_jitter));
        rec.height = std::clamp(
            static_cast<int>(std::lround(spec_.mean_height *
                                         size_factor)), 96, 1024);
        rec.width = std::clamp(
            static_cast<int>(std::lround(spec_.mean_width *
                                         size_factor)), 96, 1024);
        rec.object_scale = std::clamp(
            spec_.object_scale_mean *
                std::exp(rng.normal(0.0, spec_.object_scale_sigma)),
            0.08, 1.3);
        rec.seed = rng.next();
        records_.push_back(rec);
    }
}

Image
SyntheticDataset::render(int i) const
{
    const ImageRecord &rec = record(i);
    SyntheticImageSpec spec;
    spec.height = rec.height;
    spec.width = rec.width;
    spec.class_id = rec.label;
    spec.num_classes = spec_.num_classes;
    spec.object_scale = rec.object_scale;
    spec.seed = rec.seed;
    spec.texture_detail = spec_.texture_detail;
    return generateSyntheticImage(spec);
}

Image
SyntheticDataset::renderAt(int i, int max_side) const
{
    const ImageRecord &rec = record(i);
    const int long_side = std::max(rec.height, rec.width);
    const double scale =
        std::min(1.0, static_cast<double>(max_side) / long_side);
    SyntheticImageSpec spec;
    spec.height = std::max(
        32, static_cast<int>(std::lround(rec.height * scale)));
    spec.width = std::max(
        32, static_cast<int>(std::lround(rec.width * scale)));
    spec.class_id = rec.label;
    spec.num_classes = spec_.num_classes;
    spec.object_scale = rec.object_scale;
    spec.seed = rec.seed;
    spec.texture_detail = spec_.texture_detail;
    return generateSyntheticImage(spec);
}

void
SyntheticDataset::ingest(ObjectStore &store, int first, int last) const
{
    ProgressiveConfig cfg;
    cfg.quality = spec_.encode_quality;
    ingest(store, first, last, cfg);
}

void
SyntheticDataset::ingest(ObjectStore &store, int first, int last,
                         const ProgressiveConfig &cfg) const
{
    tamres_assert(first >= 0 && last <= size() && first <= last,
                  "invalid ingest range [%d, %d)", first, last);
    for (int i = first; i < last; ++i)
        store.put(record(i).id, encodeProgressive(render(i), cfg));
}

std::pair<int, int>
shardRange(int size, int k, int which)
{
    tamres_assert(k > 0 && which >= 0 && which < k, "bad shard index");
    const int base = size / k;
    const int rem = size % k;
    const int begin = which * base + std::min(which, rem);
    const int len = base + (which < rem ? 1 : 0);
    return {begin, begin + len};
}

} // namespace tamres
