/**
 * @file
 * Calibrated probabilistic stand-in for trained backbone checkpoints.
 *
 * The paper's accuracy experiments (Tables I/III/IV, Figures 6/8/9)
 * measure top-1 accuracy as a function of inference resolution, crop
 * size (object scale), and image quality (SSIM after partial reads).
 * We reproduce those response surfaces with a per-image latent model:
 *
 *   correct(image) <=> margin > difficulty_i
 *   margin = b - pen_scale - pen_clip - pen_upsample - pen_quality
 *
 * where pen_scale is an asymmetric quadratic in log apparent-object-
 * size around the backbone's preferred scale s* (this produces the
 * train-test resolution discrepancy of Touvron et al. [31]: a peak
 * near 280 for 75% crops at train resolution 224, crossovers at small
 * crops), pen_clip charges objects truncated by aggressive crops,
 * pen_upsample charges blurry upsampling past the stored pixels, and
 * pen_quality charges SSIM below a resolution-dependent knee (higher
 * resolutions tolerate lower SSIM — the Section V observation).
 * difficulty_i is a logistic draw hashed from (image id, model seed),
 * so correctness is deterministic, reproducible, and consistent across
 * resolutions for a given trained-model instance.
 *
 * Parameters are calibrated against the paper's reported numbers
 * (EXPERIMENTS.md records paper-vs-ours for every anchor).
 */

#ifndef TAMRES_SIM_ACCURACY_MODEL_HH
#define TAMRES_SIM_ACCURACY_MODEL_HH

#include <cstdint>
#include <string>

#include "sim/dataset.hh"
#include "util/logging.hh"

namespace tamres {

/** Backbone architectures the paper evaluates. */
enum class BackboneArch
{
    ResNet18,
    ResNet50,
};

/** "ResNet-18" / "ResNet-50". */
std::string archName(BackboneArch arch);

/** Calibrated response-surface parameters. */
struct AccuracyParams
{
    double base_logit = 1.3;   //!< b: headroom at the ideal operating point
    double diff_scale = 1.0;   //!< logistic difficulty scale s_d
    double s_star = 162.0;     //!< preferred apparent object size (pixels)
    double w_lo = 2.2;         //!< penalty weight, objects too small
    double w_hi = 3.0;         //!< penalty weight, objects too large
    double w_clip = 2.0;       //!< penalty weight, object clipped by crop
    double clip_free = 1.0;    //!< f_eff below this incurs no clip penalty
    double f_cap = 1.25;       //!< apparent-scale saturation from clipping
    double w_up = 0.6;         //!< upsampling-past-source penalty weight
    double w_q = 0.030;        //!< quality penalty weight
    double q_knee0 = 0.995;    //!< SSIM knee at 112
    double q_knee_slope = 0.012; //!< knee decrease per ln(r/112)
};

/** Calibrated parameters for (architecture, dataset profile). */
AccuracyParams accuracyParams(BackboneArch arch, const DatasetSpec &spec);

/**
 * A deterministic instance of a "trained backbone": architecture +
 * dataset profile + training seed (the paper's three seeds / sharded
 * backbones are instances with different seeds).
 */
class BackboneAccuracyModel
{
  public:
    BackboneAccuracyModel(BackboneArch arch, const DatasetSpec &spec,
                          uint64_t model_seed);

    BackboneArch arch() const { return arch_; }
    uint64_t seed() const { return model_seed_; }
    const AccuracyParams &params() const { return params_; }

    /**
     * Fine-tune the backbone for a known apparent-scale distribution
     * (Touvron et al. [31], the state of the art the paper's dynamic
     * pipeline is evaluated against): shifts the preferred apparent
     * object size to @p s_px pixels. The core/finetune helpers compute
     * s_px from a dataset sample at a known (crop, resolution).
     */
    void
    fineTuneToScale(double s_px)
    {
        tamres_assert(s_px > 0.0, "preferred scale must be positive");
        params_.s_star = s_px;
    }

    /**
     * Decision margin for one image under the given test conditions.
     *
     * @param rec        the image's latent record
     * @param crop_area  center-crop area fraction in (0, 1]
     * @param resolution inference resolution (square)
     * @param ssim_q     SSIM of the actually-read pixels vs. the
     *                   full-fidelity version at this resolution
     */
    double margin(const ImageRecord &rec, double crop_area,
                  int resolution, double ssim_q = 1.0) const;

    /** Population-level P(correct) given the margin (logistic CDF). */
    double pCorrect(const ImageRecord &rec, double crop_area,
                    int resolution, double ssim_q = 1.0) const;

    /** Deterministic per-image correctness draw. */
    bool correct(const ImageRecord &rec, double crop_area,
                 int resolution, double ssim_q = 1.0) const;

  private:
    double difficulty(const ImageRecord &rec) const;

    BackboneArch arch_;
    uint64_t model_seed_;
    AccuracyParams params_;
};

} // namespace tamres

#endif // TAMRES_SIM_ACCURACY_MODEL_HH
