#include "sim/accuracy_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tamres {

std::string
archName(BackboneArch arch)
{
    switch (arch) {
      case BackboneArch::ResNet18: return "ResNet-18";
      case BackboneArch::ResNet50: return "ResNet-50";
    }
    return "?";
}

AccuracyParams
accuracyParams(BackboneArch arch, const DatasetSpec &spec)
{
    AccuracyParams p;
    const bool rn50 = arch == BackboneArch::ResNet50;
    if (spec.name == "cars-like") {
        // Fine-grained classification: bigger objects (f ~ 0.68), a
        // later peak (~336 for 75% crops), a steep low-resolution
        // collapse, and high tolerance to fidelity loss.
        p.s_star = 264.0;
        p.base_logit = rn50 ? 2.66 : 2.55;
        p.w_lo = rn50 ? 2.05 : 2.65;
        p.w_hi = rn50 ? 1.70 : 2.00;
        p.w_clip = rn50 ? 2.2 : 2.5;
        p.w_q = 0.012;
        p.q_knee0 = 0.988;
        p.q_knee_slope = 0.014;
    } else {
        // ImageNet-like: peak near 280 for 75% crops, gentle decline
        // above, flatter low-resolution falloff, texture-sensitive
        // quality response.
        p.s_star = 158.0;
        p.base_logit = rn50 ? 1.25 : 1.05;
        p.w_lo = rn50 ? 1.00 : 1.20;
        p.w_hi = rn50 ? 0.34 : 0.44;
        p.w_clip = rn50 ? 4.2 : 5.0;
        p.w_up = 0.30;
        p.w_q = 0.030;
        p.q_knee0 = 0.995;
        p.q_knee_slope = 0.012;
    }
    return p;
}

BackboneAccuracyModel::BackboneAccuracyModel(BackboneArch arch,
                                             const DatasetSpec &spec,
                                             uint64_t model_seed)
    : arch_(arch), model_seed_(model_seed),
      params_(accuracyParams(arch, spec))
{
    // Training-seed jitter: different training runs / data shards land
    // at slightly different preferred scales and headrooms, producing
    // the seed-to-seed spread visible in the paper's Figure 6.
    uint64_t h = model_seed * 0x9e3779b97f4a7c15ull + 0x7777;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    const double u1 = (h >> 11) * 0x1.0p-53;
    const double u2 = ((h * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
    params_.s_star *= 1.0 + 0.06 * (u1 - 0.5);
    params_.base_logit += 0.06 * (u2 - 0.5);
}

double
BackboneAccuracyModel::difficulty(const ImageRecord &rec) const
{
    // Logistic(0, 1) draw hashed from (image, model seed).
    uint64_t h = rec.id * 0xc2b2ae3d27d4eb4full ^
                 model_seed_ * 0x9e3779b97f4a7c15ull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    double u = (h >> 11) * 0x1.0p-53;
    u = std::clamp(u, 1e-12, 1.0 - 1e-12);
    return std::log(u / (1.0 - u));
}

double
BackboneAccuracyModel::margin(const ImageRecord &rec, double crop_area,
                              int resolution, double ssim_q) const
{
    tamres_assert(crop_area > 0.0 && crop_area <= 1.0,
                  "crop area fraction must be in (0, 1]");
    tamres_assert(resolution > 0, "resolution must be positive");
    const AccuracyParams &pp = params_;

    const double side_frac = std::sqrt(crop_area);
    const double f_eff = rec.object_scale / side_frac;

    // Apparent object size in pixels at the inference resolution.
    const double s_px = resolution * std::min(f_eff, pp.f_cap);
    const double z = std::log(s_px / pp.s_star);
    const double pen_scale =
        (z < 0 ? pp.w_lo : pp.w_hi) * z * z;

    // Crops tighter than the object truncate it: information is lost
    // no matter the resolution.
    const double clip_excess = std::max(0.0, f_eff - pp.clip_free);
    const double pen_clip = pp.w_clip * clip_excess * clip_excess;

    // Upsampling past the stored pixels adds no information and blurs.
    const double src_side =
        side_frac * std::min(rec.height, rec.width);
    const double up = std::max(0.0, std::log(resolution / src_side));
    const double pen_up = pp.w_up * up * up;

    // Quality below the resolution-dependent SSIM knee.
    const double knee =
        pp.q_knee0 - pp.q_knee_slope * std::log(resolution / 112.0);
    const double deficit = std::max(0.0, knee - ssim_q) * 100.0;
    const double pen_q = pp.w_q * deficit * deficit;

    return pp.base_logit - pen_scale - pen_clip - pen_up - pen_q;
}

double
BackboneAccuracyModel::pCorrect(const ImageRecord &rec, double crop_area,
                                int resolution, double ssim_q) const
{
    const double m =
        margin(rec, crop_area, resolution, ssim_q) / params_.diff_scale;
    return 1.0 / (1.0 + std::exp(-m));
}

bool
BackboneAccuracyModel::correct(const ImageRecord &rec, double crop_area,
                               int resolution, double ssim_q) const
{
    return margin(rec, crop_area, resolution, ssim_q) / params_.diff_scale
           > difficulty(rec);
}

} // namespace tamres
